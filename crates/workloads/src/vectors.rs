//! Clustered embedding vectors (SIFT-1B stand-in): a Gaussian mixture whose
//! clusteredness drives the same nprobe/recall trade-off the paper tunes in
//! §VII-B2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for `dim`-dimensional mixture vectors.
pub struct VectorWorkload {
    rng: StdRng,
    dim: usize,
    centers: Vec<Vec<f32>>,
    spread: f32,
}

impl VectorWorkload {
    /// A mixture of `n_clusters` Gaussians in `dim` dimensions.
    pub fn new(seed: u64, dim: usize, n_clusters: usize, spread: f32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = (0..n_clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect();
        Self {
            rng,
            dim,
            centers,
            spread,
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One vector from a random cluster.
    pub fn vector(&mut self) -> Vec<f32> {
        let c = self.rng.gen_range(0..self.centers.len());
        let center = self.centers[c].clone();
        center
            .iter()
            .map(|&x| x + gaussian(&mut self.rng) * self.spread)
            .collect()
    }

    /// `n` vectors.
    pub fn vectors(&mut self, n: usize) -> Vec<Vec<f32>> {
        (0..n).map(|_| self.vector()).collect()
    }

    /// A query near a cluster (same distribution as data — standard ANN
    /// benchmark practice).
    pub fn query(&mut self) -> Vec<f32> {
        self.vector()
    }
}

/// Box–Muller standard normal.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_have_right_dim_and_are_deterministic() {
        let a = VectorWorkload::new(1, 32, 8, 0.5).vectors(10);
        let b = VectorWorkload::new(1, 32, 8, 0.5).vectors(10);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.len() == 32));
    }

    #[test]
    fn vectors_cluster_around_centers() {
        let mut w = VectorWorkload::new(2, 8, 4, 0.3);
        let centers = w.centers.clone();
        let data = w.vectors(400);
        // Every vector is close to some center relative to the spread.
        for v in &data {
            let min_d2: f32 = centers
                .iter()
                .map(|c| c.iter().zip(v).map(|(a, b)| (a - b) * (a - b)).sum::<f32>())
                .fold(f32::INFINITY, f32::min);
            assert!(
                min_d2 < 8.0 * 0.3 * 0.3 * 30.0,
                "vector far from all centers: {min_d2}"
            );
        }
    }
}
