//! Synthetic workload generators standing in for the paper's datasets
//! (§VII): C4/FineWeb web text → zipfian synthetic text with planted
//! needles; 2B 128-byte hashes → seeded uuid streams; SIFT-1B → Gaussian
//! cluster mixtures. Distribution-faithful at MB scale; the TCO harness
//! extrapolates linearly per §VII-D2.

pub mod text;
pub mod uuid;
pub mod vectors;

pub use text::TextWorkload;
pub use uuid::UuidWorkload;
pub use vectors::VectorWorkload;

use rottnest_format::{ColumnData, DataType, Field, RecordBatch, Schema};

/// Builds a single-column Utf8 batch from documents.
pub fn text_batch(column: &str, docs: &[String]) -> RecordBatch {
    let schema = Schema::new(vec![Field::new(column, DataType::Utf8)]);
    RecordBatch::new(schema, vec![ColumnData::from_strings(docs.iter())]).expect("schema matches")
}

/// Builds a single-column Binary batch from fixed-length keys.
pub fn uuid_batch(column: &str, keys: &[Vec<u8>]) -> RecordBatch {
    let schema = Schema::new(vec![Field::new(column, DataType::Binary)]);
    RecordBatch::new(schema, vec![ColumnData::from_blobs(keys.iter())]).expect("schema matches")
}

/// Builds a single-column vector batch.
pub fn vector_batch(column: &str, dim: u32, vectors: Vec<Vec<f32>>) -> RecordBatch {
    let schema = Schema::new(vec![Field::new(column, DataType::VectorF32 { dim })]);
    let col = ColumnData::from_vectors(dim, vectors).expect("dims match");
    RecordBatch::new(schema, vec![col]).expect("schema matches")
}
