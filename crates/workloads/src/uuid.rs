//! High-cardinality identifier streams (observability trace ids, blockchain
//! transaction hashes) — uniform random fixed-length keys, like the paper's
//! "2 billion 128-byte hashes" scaled down.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for fixed-length binary keys.
pub struct UuidWorkload {
    rng: StdRng,
    key_len: usize,
}

impl UuidWorkload {
    /// Keys of `key_len` bytes from `seed`.
    pub fn new(seed: u64, key_len: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            key_len,
        }
    }

    /// One fresh key.
    pub fn key(&mut self) -> Vec<u8> {
        (0..self.key_len).map(|_| self.rng.gen()).collect()
    }

    /// `n` fresh keys.
    pub fn keys(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.key()).collect()
    }

    /// A key guaranteed absent from any stream this generator produced
    /// (distinct RNG stream).
    pub fn missing_key(&self, salt: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(0xdead_beef ^ salt);
        (0..self.key_len).map(|_| rng.gen()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_fixed_length_and_deterministic() {
        let a = UuidWorkload::new(1, 16).keys(10);
        let b = UuidWorkload::new(1, 16).keys(10);
        assert_eq!(a, b);
        assert!(a.iter().all(|k| k.len() == 16));
    }

    #[test]
    fn keys_are_distinct() {
        let keys = UuidWorkload::new(2, 16).keys(10_000);
        let set: std::collections::HashSet<&Vec<u8>> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
    }

    #[test]
    fn missing_key_is_absent() {
        let mut w = UuidWorkload::new(3, 16);
        let keys = w.keys(5_000);
        let missing = w.missing_key(0);
        assert!(!keys.contains(&missing));
    }
}
