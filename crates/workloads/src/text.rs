//! Web-crawl-like text with a zipfian vocabulary and planted needles.
//!
//! Stands in for the paper's C4/FineWeb corpus: realistic word-frequency
//! skew (so LZ compression ratios and FM-index behavior resemble web text)
//! plus *planted needles* — unique strings inserted at known documents, the
//! "did my eval set leak into pretraining" query of §II-B.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator state for one corpus.
pub struct TextWorkload {
    rng: StdRng,
    vocab: Vec<String>,
    cdf: Vec<f64>,
    avg_words: usize,
}

impl TextWorkload {
    /// Creates a corpus generator with `vocab_size` words under a zipf(1.0)
    /// rank distribution and ~`avg_words` words per document.
    pub fn new(seed: u64, vocab_size: usize, avg_words: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let vocab: Vec<String> = (0..vocab_size).map(|i| synth_word(i, &mut rng)).collect();
        // Zipf CDF over ranks.
        let mut weights: Vec<f64> = (1..=vocab_size).map(|r| 1.0 / r as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in weights.iter_mut() {
            acc += *w / total;
            *w = acc;
        }
        Self {
            rng,
            vocab,
            cdf: weights,
            avg_words,
        }
    }

    fn word(&mut self) -> &str {
        let u: f64 = self.rng.gen();
        let idx = self
            .cdf
            .partition_point(|&c| c < u)
            .min(self.vocab.len() - 1);
        &self.vocab[idx]
    }

    /// Generates one document.
    pub fn doc(&mut self) -> String {
        let n = self
            .rng
            .gen_range(self.avg_words / 2..=self.avg_words + self.avg_words / 2)
            .max(1);
        let mut out = String::with_capacity(n * 7);
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            let w = self.word().to_owned();
            out.push_str(&w);
        }
        out
    }

    /// Generates `n` documents.
    pub fn docs(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.doc()).collect()
    }

    /// Generates `n` documents, planting `needle` inside the documents at
    /// `positions` (mid-document).
    pub fn docs_with_needle(&mut self, n: usize, needle: &str, positions: &[usize]) -> Vec<String> {
        let mut docs = self.docs(n);
        for &p in positions {
            if let Some(doc) = docs.get_mut(p) {
                let mid = doc.len() / 2;
                let mut cut = mid;
                while cut < doc.len() && !doc.is_char_boundary(cut) {
                    cut += 1;
                }
                doc.insert_str(cut.min(doc.len()), &format!(" {needle} "));
            }
        }
        docs
    }

    /// A mid-frequency word suitable as a "selective but present" pattern.
    pub fn midfreq_word(&self) -> &str {
        &self.vocab[self.vocab.len() / 20]
    }

    /// A rare vocabulary word (tail of the zipf distribution).
    pub fn rare_word(&self) -> &str {
        &self.vocab[self.vocab.len() - 1]
    }
}

fn synth_word(rank: usize, rng: &mut StdRng) -> String {
    // Short words for common ranks, longer for the tail, letters only so
    // patterns never collide with separators.
    let len = 3 + (rank as f64).log2() as usize / 2 + rng.gen_range(0..2usize);
    let letters = b"abcdefghijklmnopqrstuvwxyz";
    let mut w: String = (0..len)
        .map(|_| letters[rng.gen_range(0..26usize)] as char)
        .collect();
    w.push_str(&format!("{:x}", rank % 16)); // disambiguate
    w
}

/// A zipf sampler usable standalone (queries pick words by the same law).
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// CDF over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        let mut weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in weights.iter_mut() {
            acc += *w / total;
            *w = acc;
        }
        Self { cdf: weights }
    }
}

impl Distribution<usize> for ZipfSampler {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a: Vec<String> = TextWorkload::new(7, 1000, 20).docs(5);
        let b: Vec<String> = TextWorkload::new(7, 1000, 20).docs(5);
        assert_eq!(a, b);
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let mut w = TextWorkload::new(1, 500, 50);
        let docs = w.docs(200);
        let top = w.vocab[0].clone();
        let rare = w.rare_word().to_owned();
        let count = |needle: &str| {
            docs.iter()
                .map(|d| d.matches(needle).count())
                .sum::<usize>()
        };
        assert!(count(&top) > count(&rare) * 10, "zipf head must dominate");
    }

    #[test]
    fn needles_are_planted_exactly() {
        let mut w = TextWorkload::new(2, 300, 30);
        let docs = w.docs_with_needle(100, "EVAL-SET-LEAK-XYZZY", &[3, 50, 99]);
        let hits: Vec<usize> = docs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.contains("EVAL-SET-LEAK-XYZZY"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits, vec![3, 50, 99]);
    }

    #[test]
    fn zipf_sampler_biases_low_ranks() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<usize> = (0..2000).map(|_| z.sample(&mut rng)).collect();
        let low = draws.iter().filter(|&&d| d < 10).count();
        let high = draws.iter().filter(|&&d| d >= 90).count();
        assert!(low > high * 3);
    }
}
