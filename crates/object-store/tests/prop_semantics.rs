//! Model-based property test: the memory store must behave exactly like a
//! `HashMap<String, Vec<u8>>` under arbitrary operation sequences — the
//! "strong read-after-write consistency" contract everything above relies
//! on (§II-D).

use bytes::Bytes;
use proptest::prelude::*;
use rottnest_object_store::{MemoryStore, ObjectStore, StoreError};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    PutIfAbsent(u8, Vec<u8>),
    Get(u8),
    GetRange(u8, u8, u8),
    Head(u8),
    Delete(u8),
    List(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(k, v)| Op::Put(k % 12, v)),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(k, v)| Op::PutIfAbsent(k % 12, v)),
        any::<u8>().prop_map(|k| Op::Get(k % 12)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(k, a, b)| Op::GetRange(k % 12, a, b)),
        any::<u8>().prop_map(|k| Op::Head(k % 12)),
        any::<u8>().prop_map(|k| Op::Delete(k % 12)),
        any::<u8>().prop_map(|p| Op::List(p % 3)),
    ]
}

fn key_of(k: u8) -> String {
    format!("dir{}/obj{}", k % 3, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn memory_store_matches_hashmap_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let store = MemoryStore::unmetered();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                Op::Put(k, v) => {
                    store.put(&key_of(k), Bytes::from(v.clone())).unwrap();
                    model.insert(key_of(k), v);
                }
                Op::PutIfAbsent(k, v) => {
                    let r = store.put_if_absent(&key_of(k), Bytes::from(v.clone()));
                    match model.entry(key_of(k)) {
                        Entry::Occupied(_) => {
                            prop_assert!(matches!(r, Err(StoreError::AlreadyExists(_))));
                        }
                        Entry::Vacant(e) => {
                            prop_assert!(r.is_ok());
                            e.insert(v);
                        }
                    }
                }
                Op::Get(k) => {
                    match (store.get(&key_of(k)), model.get(&key_of(k))) {
                        (Ok(got), Some(want)) => prop_assert_eq!(got.as_ref(), want.as_slice()),
                        (Err(StoreError::NotFound(_)), None) => {}
                        (got, want) => prop_assert!(false, "get mismatch: {got:?} vs {want:?}"),
                    }
                }
                Op::GetRange(k, a, b) => {
                    let (start, end) = (u64::from(a.min(b)), u64::from(a.max(b)));
                    match (store.get_range(&key_of(k), start..end), model.get(&key_of(k))) {
                        (Ok(got), Some(want)) => {
                            // S3 semantics: end truncates to the object length.
                            let s = (start as usize).min(want.len());
                            let e = (end as usize).min(want.len());
                            prop_assert_eq!(got.as_ref(), &want[s.min(e)..e]);
                        }
                        (Err(StoreError::NotFound(_)), None) => {}
                        (Err(StoreError::InvalidRange { .. }), Some(want)) => {
                            // Only legal when start exceeds the object length.
                            prop_assert!(start as usize > want.len());
                        }
                        (got, want) => prop_assert!(false, "range mismatch: {got:?} vs {want:?}"),
                    }
                }
                Op::Head(k) => {
                    match (store.head(&key_of(k)), model.get(&key_of(k))) {
                        (Ok(meta), Some(want)) => prop_assert_eq!(meta.size as usize, want.len()),
                        (Err(StoreError::NotFound(_)), None) => {}
                        (got, want) => prop_assert!(false, "head mismatch: {got:?} vs {want:?}"),
                    }
                }
                Op::Delete(k) => {
                    store.delete(&key_of(k)).unwrap();
                    model.remove(&key_of(k));
                }
                Op::List(p) => {
                    let prefix = format!("dir{p}/");
                    let got: Vec<String> =
                        store.list(&prefix).unwrap().into_iter().map(|m| m.key).collect();
                    let mut want: Vec<String> =
                        model.keys().filter(|k| k.starts_with(&prefix)).cloned().collect();
                    want.sort();
                    prop_assert_eq!(got, want);
                }
            }
        }
        // Final global agreement.
        prop_assert_eq!(store.len(), model.len());
        prop_assert_eq!(
            store.total_bytes() as usize,
            model.values().map(|v| v.len()).sum::<usize>()
        );
    }
}
