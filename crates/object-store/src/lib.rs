//! Object storage substrate for Rottnest.
//!
//! The paper evaluates Rottnest against AWS S3. This crate provides the same
//! *semantics* S3 guarantees since 2020 — strong read-after-write consistency,
//! a single global clock on object timestamps, conditional PUT
//! (`put_if_absent`, the primitive data-lake commit protocols build on),
//! prefix LIST, and byte-range GET — over two backends:
//!
//! * [`MemoryStore`] — in-memory, with a deterministic **latency model**
//!   calibrated to the paper's Figure 10a (requests below ~1 MiB are
//!   latency-bound at a fixed first-byte latency; larger requests become
//!   throughput-bound), a per-prefix GET **rate limit** (S3's 5500 GET RPS,
//!   §VII-D3), request **statistics** for the TCO cost model, and **fault
//!   injection** for crash-recovery tests.
//! * [`FsStore`] — local filesystem, used by the runnable examples.
//!
//! A simulated clock ([`SimClock`]) is shared by the store and all protocol
//! code: each request advances it by the request's modeled latency, and a
//! batch issued through [`ObjectStore::get_ranges`] advances it by the
//! *maximum* of its members (the paper's access *width*), so measured
//! "latencies" reproduce the dependency structure (access *depth*) of real
//! object-store access plans.

pub mod bytecache;
pub mod cancel;
pub mod coalesce;
pub mod fault;
pub mod fs;
pub mod fxhash;
pub mod health;
pub mod latency;
pub mod memory;
pub mod parallel;
pub mod pool;
pub mod retry;
pub mod singleflight;
pub mod stats;

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

pub use bytecache::ByteLru;
pub use cancel::{cancelled_error, is_cancelled, CancelStore, CANCELLED};
pub use coalesce::{CoalescePlan, DEFAULT_COALESCE_GAP};
pub use fault::{ChaosConfig, FaultInjector, FaultKind, OutageKind, OutageVerdict, OutageWindow};
pub use fs::FsStore;
pub use fxhash::{FxHashMap, FxHashSet};
pub use health::{Admit, BreakerState, HealthConfig, HealthTracker};
pub use latency::{LatencyModel, PrefixThrottle, ThrottleMode};
pub use memory::MemoryStore;
pub use parallel::{
    chunk_ranges, default_parallelism, ordered_parallel_map, ordered_parallel_map_io,
    ordered_parallel_map_threshold, ordered_pipeline, SMALL_BATCH_INLINE,
};
pub use pool::{Offer, WorkerPool};
pub use retry::{current_deadline_ms, push_deadline, DeadlineGuard, RetryPolicy, RetryStore};
pub use singleflight::SingleFlight;
pub use stats::{RequestStats, StatsSnapshot};

/// Metadata about a stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Full key of the object within the store.
    pub key: String,
    /// Object size in bytes.
    pub size: u64,
    /// Creation timestamp in milliseconds on the store's global clock.
    ///
    /// Rottnest's `vacuum` relies on this clock being the *store's* (§IV-C:
    /// "this timeout is against the object store's clock"), never the
    /// client's.
    pub created_ms: u64,
}

/// A byte-range request used by [`ObjectStore::get_ranges`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeRequest {
    /// Object key.
    pub key: String,
    /// Byte range to fetch (`start..end`, end exclusive).
    pub range: Range<u64>,
}

impl RangeRequest {
    /// Convenience constructor.
    pub fn new(key: impl Into<String>, range: Range<u64>) -> Self {
        Self {
            key: key.into(),
            range,
        }
    }
}

/// Errors returned by object store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The requested key does not exist.
    NotFound(String),
    /// `put_if_absent` found the key already present.
    AlreadyExists(String),
    /// The requested byte range falls outside the object.
    InvalidRange {
        /// Key of the object.
        key: String,
        /// Actual object length.
        len: u64,
        /// Requested range start.
        start: u64,
        /// Requested range end.
        end: u64,
    },
    /// A fault injected by [`FaultInjector`] for testing.
    ///
    /// Models a *crash* (process death mid-protocol), not a request-level
    /// hiccup — deliberately **not** retryable, so crash-recovery tests see
    /// the error surface exactly once.
    Injected(&'static str),
    /// Backend I/O failure (filesystem backend).
    Io(String),
    /// The store rejected the request for exceeding a rate limit (S3's
    /// `503 SlowDown`, §VII-D3). Retry after `retry_after_ms` on the
    /// store's clock.
    Throttled {
        /// Suggested wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// A transient request-level failure (timeout, dropped connection,
    /// internal error). The request may or may not have taken effect;
    /// retrying is safe for idempotent operations.
    Transient(&'static str),
    /// The circuit breaker for this key's failure domain is open: the
    /// request was rejected *without touching the backend*. Not
    /// retryable — the whole point is to fail fast; callers should back
    /// off for `retry_after_ms` or degrade.
    BreakerOpen {
        /// Failure domain (first key path segment) whose breaker tripped.
        domain: String,
        /// Suggested wait before trying the domain again, in ms.
        retry_after_ms: u64,
    },
    /// The caller's deadline cannot accommodate another retry: the next
    /// backoff wait would end past the deadline, so the retry loop stops
    /// with this typed error instead of swallowing the sleep.
    DeadlineExceeded {
        /// Absolute deadline on the store clock, in milliseconds.
        deadline_ms: u64,
        /// Store-clock time when the retry loop gave up.
        now_ms: u64,
    },
    /// Provenance wrapper added by the decorator stack when a fault
    /// exhausts its retries: names the operation and key (and therefore
    /// the failure domain) instead of surfacing a bare `Transient`.
    /// Never wraps semantic outcomes (`NotFound` / `AlreadyExists` /
    /// `InvalidRange`), so existing match sites keep working.
    Context {
        /// Store operation that failed (`"get"`, `"put"`, ...).
        op: &'static str,
        /// Key (or prefix) the operation targeted.
        key: String,
        /// The underlying error.
        source: Box<StoreError>,
    },
}

impl StoreError {
    /// Whether a client should retry the failed request.
    ///
    /// Only rate-limit rejections and transient request failures are
    /// retryable. `Injected` faults model crashes and must surface;
    /// `NotFound` / `AlreadyExists` / `InvalidRange` / `Io` are
    /// deterministic outcomes a retry cannot change; `BreakerOpen` and
    /// `DeadlineExceeded` exist precisely to *stop* retrying. A
    /// `Context` wrapper classifies as its root cause.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self.root(),
            StoreError::Throttled { .. } | StoreError::Transient(_)
        )
    }

    /// Drills through any [`StoreError::Context`] provenance wrappers to
    /// the underlying error.
    pub fn root(&self) -> &StoreError {
        let mut cur = self;
        while let StoreError::Context { source, .. } = cur {
            cur = source;
        }
        cur
    }

    /// Wraps `self` in a [`StoreError::Context`] naming the failed
    /// operation and key. Semantic outcomes (`NotFound`,
    /// `AlreadyExists`, `InvalidRange`) pass through unwrapped — callers
    /// match on them structurally — and an existing `Context` is kept
    /// (the innermost annotation is the most precise).
    pub fn with_context(self, op: &'static str, key: &str) -> StoreError {
        match self {
            StoreError::NotFound(_)
            | StoreError::AlreadyExists(_)
            | StoreError::InvalidRange { .. }
            | StoreError::Context { .. } => self,
            other => StoreError::Context {
                op,
                key: key.to_string(),
                source: Box::new(other),
            },
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(k) => write!(f, "object not found: {k}"),
            StoreError::AlreadyExists(k) => write!(f, "object already exists: {k}"),
            StoreError::InvalidRange {
                key,
                len,
                start,
                end,
            } => {
                write!(f, "invalid range {start}..{end} for {key} (len {len})")
            }
            StoreError::Injected(m) => write!(f, "injected fault: {m}"),
            StoreError::Io(m) => write!(f, "io error: {m}"),
            StoreError::Throttled { retry_after_ms } => {
                write!(
                    f,
                    "throttled (503 SlowDown), retry after {retry_after_ms}ms"
                )
            }
            StoreError::Transient(m) => write!(f, "transient failure: {m}"),
            StoreError::BreakerOpen {
                domain,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "circuit breaker open for domain '{domain}', retry after {retry_after_ms}ms"
                )
            }
            StoreError::DeadlineExceeded {
                deadline_ms,
                now_ms,
            } => {
                write!(
                    f,
                    "deadline {deadline_ms}ms cannot fit another retry (now {now_ms}ms)"
                )
            }
            StoreError::Context { op, key, source } => {
                write!(f, "{op} {key}: {source}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Object storage with S3 semantics.
///
/// All operations are strongly consistent: a successful `put` is immediately
/// visible to `get`, `head` and `list` (read-after-write), and timestamps are
/// issued by a single global clock. These are exactly the primitives the
/// Rottnest protocol requires (§II-D "broad compatibility": only
/// read-after-write consistency, no atomic rename).
pub trait ObjectStore: Send + Sync {
    /// Stores `data` under `key`, overwriting any existing object.
    fn put(&self, key: &str, data: Bytes) -> Result<()>;

    /// Stores `data` under `key` only if the key does not exist.
    ///
    /// Returns [`StoreError::AlreadyExists`] if it does. This is the
    /// compare-and-swap primitive used for transactional commit logs.
    fn put_if_absent(&self, key: &str, data: Bytes) -> Result<()>;

    /// Fetches a whole object.
    fn get(&self, key: &str) -> Result<Bytes>;

    /// Fetches a byte range of an object.
    fn get_range(&self, key: &str, range: Range<u64>) -> Result<Bytes>;

    /// Fetches many byte ranges *in parallel* (one simulated round trip of
    /// width `requests.len()`).
    ///
    /// The default implementation coalesces near-adjacent ranges of the
    /// same key (per [`coalesce_gap`](ObjectStore::coalesce_gap)) into
    /// merged GETs, slices the originals back out, and loops the merged
    /// reads sequentially; backends with a latency model override it to
    /// also charge the batch as one round trip. Note that with coalescing
    /// active an out-of-bounds member may surface its `InvalidRange` in a
    /// different order than a per-range loop would, though the error
    /// itself is identical.
    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<Vec<Bytes>> {
        match self.coalesce_gap() {
            Some(gap) if requests.len() > 1 => {
                let plan = CoalescePlan::build(requests, gap);
                let mut payloads = Vec::with_capacity(plan.merged().len());
                for m in plan.merged() {
                    payloads.push(self.get_range(&m.key, m.range.clone())?);
                }
                self.record_coalesced(plan.saved());
                plan.slice_back(requests, &payloads)
            }
            _ => requests
                .iter()
                .map(|r| self.get_range(&r.key, r.range.clone()))
                .collect(),
        }
    }

    /// Returns metadata without fetching the payload.
    fn head(&self, key: &str) -> Result<ObjectMeta>;

    /// Lists all objects whose key starts with `prefix`, in key order.
    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>>;

    /// Deletes an object. Deleting a missing key is not an error (S3
    /// semantics).
    fn delete(&self, key: &str) -> Result<()>;

    /// Current time in milliseconds on the store's global clock.
    fn now_ms(&self) -> u64;

    /// Snapshot of the request statistics accumulated so far.
    fn stats(&self) -> StatsSnapshot;

    /// The simulated clock driving latency accounting, if this backend has
    /// one. Benchmarks snapshot it around operations to measure modeled
    /// latency.
    fn clock(&self) -> Option<&SimClock> {
        None
    }

    /// Reports retry activity performed by a wrapping [`RetryStore`] so it
    /// lands in this backend's [`stats()`](ObjectStore::stats) (the TCO
    /// model prices retried requests too). Backends without stats ignore it.
    fn record_retry(&self, retries: u64, backoff_ms: u64) {
        let _ = (retries, backoff_ms);
    }

    /// Maximum byte gap [`get_ranges`](ObjectStore::get_ranges) bridges
    /// when merging same-key ranges into one GET; `None` disables
    /// coalescing entirely (every range is its own request).
    fn coalesce_gap(&self) -> Option<u64> {
        Some(DEFAULT_COALESCE_GAP)
    }

    /// A process-unique identity for this backend instance, used to
    /// namespace entries in process-wide caches. The default of `0` marks
    /// the store as *uncacheable* — wrappers that don't forward this
    /// method simply opt out of caching rather than colliding.
    fn store_id(&self) -> u64 {
        0
    }

    /// Reports component-cache activity performed by a caching reader so
    /// it lands in this backend's stats; `bytes_saved` counts GET bytes
    /// the cache avoided transferring. Backends without stats ignore it.
    fn record_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        let _ = (hits, misses, bytes_saved);
    }

    /// Reports `n` range requests absorbed into merged GETs by range
    /// coalescing. Backends without stats ignore it.
    fn record_coalesced(&self, n: u64) {
        let _ = n;
    }

    /// Reports page-cache activity performed by a caching page reader;
    /// `bytes_saved` counts GET bytes the cache avoided transferring.
    /// Backends without stats ignore it.
    fn record_page_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        let _ = (hits, misses, bytes_saved);
    }

    /// Reports `n` pages read by a one-shot consumer (index-builder
    /// downloads, brute-force column scans) that deliberately bypassed
    /// page-cache admission, so ingest traffic cannot evict warm probe
    /// pages. Backends without stats ignore it.
    fn record_page_cache_bypass(&self, n: u64) {
        let _ = n;
    }

    /// Reports `n` reads served by single-flight deduplication (joining an
    /// identical in-flight request instead of issuing a GET). Backends
    /// without stats ignore it.
    fn record_dedup(&self, n: u64) {
        let _ = n;
    }

    /// Reports health-subsystem activity performed by a wrapping
    /// [`RetryStore`]: requests rejected by an open circuit breaker and
    /// retries denied by an empty retry budget. Backends without stats
    /// ignore it.
    fn record_health(&self, breaker_rejections: u64, retry_tokens_denied: u64) {
        let _ = (breaker_rejections, retry_tokens_denied);
    }
}

/// Allocates a fresh process-unique [`store_id`](ObjectStore::store_id).
/// Backend constructors call this so that two stores reusing the same
/// object keys never share cache entries.
pub fn next_store_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// References to stores are stores: this lets decorators like
/// [`RetryStore`] wrap `&dyn ObjectStore` without taking ownership.
impl<T: ObjectStore + ?Sized> ObjectStore for &T {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        (**self).put(key, data)
    }
    fn put_if_absent(&self, key: &str, data: Bytes) -> Result<()> {
        (**self).put_if_absent(key, data)
    }
    fn get(&self, key: &str) -> Result<Bytes> {
        (**self).get(key)
    }
    fn get_range(&self, key: &str, range: Range<u64>) -> Result<Bytes> {
        (**self).get_range(key, range)
    }
    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<Vec<Bytes>> {
        (**self).get_ranges(requests)
    }
    fn head(&self, key: &str) -> Result<ObjectMeta> {
        (**self).head(key)
    }
    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        (**self).list(prefix)
    }
    fn delete(&self, key: &str) -> Result<()> {
        (**self).delete(key)
    }
    fn now_ms(&self) -> u64 {
        (**self).now_ms()
    }
    fn stats(&self) -> StatsSnapshot {
        (**self).stats()
    }
    fn clock(&self) -> Option<&SimClock> {
        (**self).clock()
    }
    fn record_retry(&self, retries: u64, backoff_ms: u64) {
        (**self).record_retry(retries, backoff_ms)
    }
    fn coalesce_gap(&self) -> Option<u64> {
        (**self).coalesce_gap()
    }
    fn store_id(&self) -> u64 {
        (**self).store_id()
    }
    fn record_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        (**self).record_cache(hits, misses, bytes_saved)
    }
    fn record_coalesced(&self, n: u64) {
        (**self).record_coalesced(n)
    }
    fn record_page_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        (**self).record_page_cache(hits, misses, bytes_saved)
    }
    fn record_page_cache_bypass(&self, n: u64) {
        (**self).record_page_cache_bypass(n)
    }
    fn record_dedup(&self, n: u64) {
        (**self).record_dedup(n)
    }
    fn record_health(&self, breaker_rejections: u64, retry_tokens_denied: u64) {
        (**self).record_health(breaker_rejections, retry_tokens_denied)
    }
}

/// A shared simulated clock, in microseconds.
///
/// The clock advances when the owning store serves requests (by each
/// request's modeled latency) and can also be advanced manually to model the
/// passage of wall-clock time (e.g. between `index` and `vacuum` in protocol
/// tests).
#[derive(Debug, Default)]
pub struct SimClock {
    micros: AtomicU64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Current simulated time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_micros() / 1000
    }

    /// Advances the clock by `micros`.
    ///
    /// On a thread producing an item for one of the I/O-aware parallel
    /// helpers ([`ordered_parallel_map_io`], [`ordered_pipeline`] with a
    /// clock), the latency is captured into the item's lane instead and
    /// charged later via the overlap schedule — see
    /// [`parallel`]'s module docs. Everywhere else the
    /// clock advances additively, exactly as a serial caller expects.
    pub fn advance_micros(&self, micros: u64) {
        if parallel::capture_deferred_latency(micros) {
            return;
        }
        self.micros.fetch_add(micros, Ordering::SeqCst);
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.advance_micros(ms * 1000);
    }

    /// Measures the simulated duration of `f` in microseconds.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> (T, u64) {
        let start = self.now_micros();
        let out = f();
        (out, self.now_micros() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        assert!(StoreError::Throttled { retry_after_ms: 10 }.is_retryable());
        assert!(StoreError::Transient("timeout").is_retryable());
        assert!(!StoreError::NotFound("k".into()).is_retryable());
        assert!(!StoreError::AlreadyExists("k".into()).is_retryable());
        assert!(!StoreError::Injected("crash").is_retryable());
        assert!(!StoreError::Io("disk".into()).is_retryable());
        assert!(!StoreError::InvalidRange {
            key: "k".into(),
            len: 1,
            start: 2,
            end: 3
        }
        .is_retryable());
        assert!(!StoreError::BreakerOpen {
            domain: "idx".into(),
            retry_after_ms: 100
        }
        .is_retryable());
        assert!(!StoreError::DeadlineExceeded {
            deadline_ms: 10,
            now_ms: 11
        }
        .is_retryable());
        // Context classifies as its root cause.
        assert!(StoreError::Transient("timeout")
            .with_context("get", "idx/meta/0")
            .is_retryable());
        assert!(!StoreError::Io("disk".into())
            .with_context("put", "tbl/f")
            .is_retryable());
    }

    #[test]
    fn context_wrapping_preserves_semantics_and_provenance() {
        // Semantic outcomes pass through unwrapped so structural matches
        // at call sites keep working.
        assert!(matches!(
            StoreError::NotFound("k".into()).with_context("get", "k"),
            StoreError::NotFound(_)
        ));
        assert!(matches!(
            StoreError::AlreadyExists("k".into()).with_context("put_if_absent", "k"),
            StoreError::AlreadyExists(_)
        ));
        // Faults gain op + key, visible in Display and via root().
        let e = StoreError::Transient("timeout").with_context("get", "idx/meta/0");
        assert_eq!(e.to_string(), "get idx/meta/0: transient failure: timeout");
        assert_eq!(e.root(), &StoreError::Transient("timeout"));
        // Double wrapping keeps the innermost (most precise) annotation.
        let e2 = e.clone().with_context("get_ranges", "idx");
        assert_eq!(e2, e);
    }

    #[test]
    fn sim_clock_advances_and_times() {
        let clock = SimClock::new();
        assert_eq!(clock.now_micros(), 0);
        clock.advance_ms(5);
        assert_eq!(clock.now_ms(), 5);
        let ((), elapsed) = clock.time(|| clock.advance_micros(1500));
        assert_eq!(elapsed, 1500);
    }
}
