//! Range coalescing for batched reads.
//!
//! `ObjectStore::get_ranges` callers frequently ask for many small,
//! near-adjacent slices of the same object — index pages, component
//! payloads, posting blocks. Issuing one GET per slice pays the full
//! per-request round trip every time, while S3-class stores amortise far
//! better when nearby ranges are merged into a single larger GET and
//! sliced apart client-side. This module computes that merge plan and
//! reverses it, reproducing `get_range`'s truncation and error semantics
//! exactly so callers cannot observe the difference.

use bytes::Bytes;

use crate::{RangeRequest, Result, StoreError};

/// Default maximum gap (bytes) bridged between two ranges of the same key.
///
/// Under the paper-calibrated latency model a GET costs ~30 ms to first
/// byte and ~10 ms per additional MiB, so transferring up to half a MiB of
/// dead bytes is always cheaper than paying a second round trip — and it
/// also spends one fewer request against the per-prefix GET quota.
pub const DEFAULT_COALESCE_GAP: u64 = 512 * 1024;

/// The merge plan for one `get_ranges` call: which merged GETs to issue
/// and how to slice each original request back out of the payloads.
#[derive(Debug)]
pub struct CoalescePlan {
    merged: Vec<RangeRequest>,
    /// For each original request, the index of the merged GET covering it.
    assignment: Vec<usize>,
}

impl CoalescePlan {
    /// Groups `requests` by key, orders each group by start offset, and
    /// merges ranges whose gap is at most `gap` bytes. Overlapping and
    /// duplicate ranges always merge, whatever the gap.
    pub fn build(requests: &[RangeRequest], gap: u64) -> Self {
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| {
            let (ra, rb) = (&requests[a], &requests[b]);
            ra.key
                .cmp(&rb.key)
                .then(ra.range.start.cmp(&rb.range.start))
                .then(ra.range.end.cmp(&rb.range.end))
        });
        let mut merged: Vec<RangeRequest> = Vec::new();
        let mut assignment = vec![0usize; requests.len()];
        for &i in &order {
            let req = &requests[i];
            match merged.last_mut() {
                Some(m)
                    if m.key == req.key && req.range.start <= m.range.end.saturating_add(gap) =>
                {
                    m.range.end = m.range.end.max(req.range.end);
                }
                _ => merged.push(RangeRequest::new(req.key.clone(), req.range.clone())),
            }
            assignment[i] = merged.len() - 1;
        }
        Self { merged, assignment }
    }

    /// A degenerate plan that issues every request as its own GET, for
    /// stores with coalescing disabled.
    pub fn identity(requests: &[RangeRequest]) -> Self {
        Self {
            merged: requests.to_vec(),
            assignment: (0..requests.len()).collect(),
        }
    }

    /// The merged GETs to issue, in (key, offset) order.
    pub fn merged(&self) -> &[RangeRequest] {
        &self.merged
    }

    /// How many original requests were absorbed into a neighbour's GET.
    pub fn saved(&self) -> u64 {
        (self.assignment.len() - self.merged.len()) as u64
    }

    /// Slices each original request's bytes back out of the merged
    /// payloads.
    ///
    /// Equivalence with per-range GETs: a merged read `m.start..m.end` of
    /// an object of length `len` returns `min(m.end, len) - m.start`
    /// bytes (`m.start <= len` whenever any member was satisfiable), so
    /// the true object length is recoverable as `m.start + payload.len()`
    /// whenever the payload was truncated. A member range is out of
    /// bounds — exactly the condition under which a direct `get_range`
    /// returns [`StoreError::InvalidRange`] — iff its start lies past the
    /// recovered end of the object.
    pub fn slice_back(&self, requests: &[RangeRequest], payloads: &[Bytes]) -> Result<Vec<Bytes>> {
        let mut out = Vec::with_capacity(requests.len());
        for (req, &m) in requests.iter().zip(&self.assignment) {
            let payload = &payloads[m];
            let base = self.merged[m].range.start;
            let avail = payload.len() as u64;
            // `base <= req.range.start` by construction of the plan.
            let start = req.range.start - base;
            let end = (req.range.end - base).min(avail);
            if start > end {
                return Err(StoreError::InvalidRange {
                    key: req.key.clone(),
                    len: base + avail,
                    start: req.range.start,
                    end: req.range.end,
                });
            }
            out.push(payload.slice(start as usize..end as usize));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(key: &str, range: std::ops::Range<u64>) -> RangeRequest {
        RangeRequest::new(key, range)
    }

    #[test]
    fn adjacent_and_gapped_ranges_merge() {
        let reqs = [
            req("k", 0..10),
            req("k", 10..20),
            req("k", 25..30),   // 5-byte gap, within threshold
            req("k", 100..110), // far away
        ];
        let plan = CoalescePlan::build(&reqs, 8);
        assert_eq!(plan.merged().len(), 2);
        assert_eq!(plan.merged()[0].range, 0..30);
        assert_eq!(plan.merged()[1].range, 100..110);
        assert_eq!(plan.saved(), 2);
    }

    #[test]
    fn distinct_keys_never_merge() {
        let reqs = [req("a", 0..10), req("b", 10..20)];
        let plan = CoalescePlan::build(&reqs, u64::MAX - (1 << 32));
        assert_eq!(plan.merged().len(), 2);
        assert_eq!(plan.saved(), 0);
    }

    #[test]
    fn overlapping_ranges_merge_even_at_zero_gap() {
        let reqs = [req("k", 0..50), req("k", 40..60), req("k", 60..70)];
        let plan = CoalescePlan::build(&reqs, 0);
        assert_eq!(plan.merged().len(), 1);
        assert_eq!(plan.merged()[0].range, 0..70);
    }

    #[test]
    fn slice_back_restores_original_requests() {
        let data: Vec<u8> = (0..=99).collect();
        let reqs = [req("k", 90..95), req("k", 5..10), req("k", 12..20)];
        let plan = CoalescePlan::build(&reqs, 16);
        assert_eq!(plan.merged().len(), 2);
        let payloads: Vec<Bytes> = plan
            .merged()
            .iter()
            .map(|m| {
                Bytes::copy_from_slice(&data[m.range.start as usize..m.range.end.min(100) as usize])
            })
            .collect();
        let slices = plan.slice_back(&reqs, &payloads).unwrap();
        assert_eq!(&slices[0][..], &data[90..95]);
        assert_eq!(&slices[1][..], &data[5..10]);
        assert_eq!(&slices[2][..], &data[12..20]);
    }

    #[test]
    fn slice_back_truncates_overlong_tails_like_s3() {
        // Object is 100 bytes; a member runs past the end.
        let reqs = [req("k", 80..90), req("k", 95..150)];
        let plan = CoalescePlan::build(&reqs, 64);
        assert_eq!(plan.merged().len(), 1);
        // The merged GET 80..150 comes back truncated at byte 100.
        let payload = Bytes::from(vec![7u8; 20]);
        let slices = plan.slice_back(&reqs, &[payload]).unwrap();
        assert_eq!(slices[0].len(), 10);
        assert_eq!(slices[1].len(), 5, "95..150 truncates to 95..100");
    }

    #[test]
    fn slice_back_reports_invalid_range_past_the_end() {
        // Object is 100 bytes; the second member starts past the end —
        // a direct get_range would return InvalidRange with len=100.
        let reqs = [req("k", 90..100), req("k", 120..130)];
        let plan = CoalescePlan::build(&reqs, 64);
        assert_eq!(plan.merged().len(), 1);
        let payload = Bytes::from(vec![7u8; 10]); // 90..130 truncated at 100
        let err = plan.slice_back(&reqs, &[payload]).unwrap_err();
        match err {
            StoreError::InvalidRange {
                len, start, end, ..
            } => {
                assert_eq!((len, start, end), (100, 120, 130));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
