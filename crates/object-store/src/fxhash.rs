//! A small FxHash-style hasher and map/set aliases.
//!
//! The standard library's SipHash is collision-resistant but slow for the
//! short integer and string keys that dominate Rottnest's hot paths (page
//! ids, file ids, component indices). This is the same multiply-and-rotate
//! construction used by rustc's `FxHasher`, implemented here so the workspace
//! stays within its dependency whitelist.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for trusted keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("key-{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&format!("key-{i}")), Some(&i));
        }
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let build: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(build.hash_one(i));
        }
        // A 64-bit hash over 10k keys should be collision-free.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn unaligned_tails_hash_differently() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let build: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        let a = build.hash_one(b"abcdefgh1".as_slice());
        let b = build.hash_one(b"abcdefgh2".as_slice());
        assert_ne!(a, b);
        // Length is mixed in: a trailing zero byte differs from truncation.
        let c = build.hash_one(b"abcdefgh\0".as_slice());
        let d = build.hash_one(b"abcdefgh".as_slice());
        assert_ne!(c, d);
    }
}
