//! Deterministic parallel primitives shared by the read and write paths.
//!
//! Both the search executor and the ingest pipeline follow the same
//! contract: fan independent work over a bounded executor, then merge the
//! results **in input order**, so the parallel outcome is byte-for-byte
//! identical to running the same closures sequentially. The helpers here
//! run on the process-wide [`WorkerPool`] (see [`crate::pool`]): each call
//! registers a batch of claimable units, idle pool workers steal units
//! from it, and the calling thread always claims units from its own batch
//! too — so a fan-out degrades to the serial loop when every worker is
//! busy instead of blocking, and nested fan-out cannot deadlock on pool
//! exhaustion. Crates lower in the dependency graph (format, fm) use the
//! same helpers to parallelize deterministic CPU work — page compression,
//! wavelet-matrix construction, BWT derivation — without spawning threads
//! of their own.
//!
//! Two shapes are provided:
//!
//! * [`ordered_parallel_map`] — map a slice, collect all results, return
//!   them in input order. The right shape for CPU-bound batch work where
//!   the whole result set is needed anyway (encoding pages, building
//!   wavelet blocks, training PQ subspaces). Batches of at most
//!   [`SMALL_BATCH_INLINE`] items skip the pool entirely and run inline:
//!   for cheap items the injector round trip costs more than it buys.
//! * [`ordered_pipeline`] — a bounded producer/consumer: workers produce
//!   item results out of order, a single consumer (the caller's thread)
//!   receives them strictly in input order with at most a small window of
//!   items in flight. The right shape for streaming ingest, where decoded
//!   files must feed a stateful builder in order and buffering every
//!   decoded file at once would blow memory.
//!
//! # Simulated-latency overlap
//!
//! The [`SimClock`] normally charges every store request's modeled latency
//! additively, which is correct for a serial caller but would bill a
//! fanned-out download as if its requests ran back to back. The I/O-aware
//! helpers ([`ordered_parallel_map_io`], and [`ordered_pipeline`] when
//! given a clock) instead *capture* each item's request latency in a
//! thread-local while the item is produced, then charge the clock with the
//! critical path of a deterministic greedy placement of the items onto
//! `parallelism` virtual connections — item `i` lands on the
//! earliest-finishing lane, lowest index on ties, exactly the schedule a
//! work-conserving pool draining an in-order queue produces. Simulated
//! time therefore reflects overlapped I/O, yet depends only on the items'
//! (deterministic) latencies, never on host core count, pool occupancy,
//! or real thread scheduling — the capture happens around each unit
//! wherever it executes (pool worker or the caller), and lane capture
//! nests: an I/O-aware helper called from inside another captured item
//! charges its critical path to the outer item's lane, exactly as a
//! serial caller would have paid it. Closures passed to the *plain*
//! [`ordered_parallel_map`] must not issue store requests; the I/O-aware
//! variants exist for that.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::pool::{BatchRun, RunOne, WorkerPool};
use crate::SimClock;

/// Default bound for build-side parallelism: the machine's available
/// parallelism, capped at 8 (the same cap the search executor uses) so a
/// large host does not fan a single ingest over dozens of workers.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(8)
}

/// Batches of at most this many items run inline on the caller's thread
/// instead of registering with the pool: for tiny batches the injector
/// round trip (lock, wake, quiesce) dwarfs the work it could offload.
/// Results are identical either way; only wall-clock changes (simulated
/// time is governed by lane capture, which is executor-independent).
pub const SMALL_BATCH_INLINE: usize = 3;

thread_local! {
    /// Simulated latency captured for the unit the current thread is
    /// producing. `None` outside the I/O-aware helpers, in which case
    /// [`SimClock::advance_micros`] falls back to its additive behaviour.
    static ITEM_LANE: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Captures `micros` of simulated request latency into the current thread's
/// item lane, if one is active. Called by [`SimClock::advance_micros`];
/// returns `false` when the calling thread is not producing an item for an
/// I/O-aware helper, in which case the clock advances globally as usual.
pub(crate) fn capture_deferred_latency(micros: u64) -> bool {
    ITEM_LANE.with(|lane| match lane.get() {
        Some(spent) => {
            lane.set(Some(spent + micros));
            true
        }
        None => false,
    })
}

/// Simulated latency (microseconds) captured so far into the current
/// thread's active item lane — `None` when the thread is not producing an
/// item for an I/O-aware helper. While a lane is active the clock itself
/// does not move for this thread's requests, so callers that time their
/// own operations against the clock (the search executor's probe-duration
/// EWMA) add the lane delta to the clock delta to recover the true
/// simulated elapsed time.
pub fn captured_lane_micros() -> Option<u64> {
    ITEM_LANE.with(|lane| lane.get())
}

/// Runs `f` with an active item lane and returns its result alongside the
/// simulated latency the item's store requests accumulated. Saves and
/// restores any enclosing lane, so nested I/O-aware helpers charge their
/// (overlapped) critical path into the outer item — pool workers and
/// callers running units inside other units stay deterministic.
fn with_item_lane<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let prev = ITEM_LANE.with(|lane| lane.replace(Some(0)));
    let out = f();
    let spent = ITEM_LANE.with(|lane| lane.replace(prev)).unwrap_or(0);
    (out, spent)
}

/// Deterministic greedy placement of per-item latencies onto virtual
/// connection lanes (see the module docs). The clock is advanced whenever
/// the critical path — the maximum lane end — grows, so callers observing
/// the clock mid-schedule (timeout checks in a pipeline consumer) see
/// monotonically increasing simulated time.
struct LaneSchedule<'a> {
    clock: Option<&'a SimClock>,
    ends: Vec<u64>,
    peak: u64,
}

impl<'a> LaneSchedule<'a> {
    fn new(clock: Option<&'a SimClock>, lanes: usize) -> Self {
        Self {
            clock,
            ends: vec![0; lanes.max(1)],
            peak: 0,
        }
    }

    fn active(&self) -> bool {
        self.clock.is_some()
    }

    /// Places the next item's captured latency on the earliest-finishing
    /// lane and charges any critical-path growth to the clock.
    fn charge(&mut self, spent: u64) {
        let Some(clock) = self.clock else { return };
        if spent == 0 {
            return;
        }
        let lane = self
            .ends
            .iter()
            .enumerate()
            .min_by_key(|(_, end)| **end)
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.ends[lane] += spent;
        if self.ends[lane] > self.peak {
            clock.advance_micros(self.ends[lane] - self.peak);
            self.peak = self.ends[lane];
        }
    }
}

/// Result sink shared by the map batch's executors: results keyed by
/// input index (sorted at the end), plus the first caught panic payload.
struct MapSink<R> {
    results: Vec<(usize, R, u64)>,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Pool batch for the ordered maps: an atomic claim cursor over `items`
/// (the batch's stealable deque) feeding one shared sink.
struct MapBatch<'a, T, R, F> {
    items: &'a [T],
    f: &'a F,
    cursor: AtomicUsize,
    /// Capture each unit's simulated latency into its own lane (the
    /// I/O-aware variant); plain maps leave the clock additive.
    capture: bool,
    sink: Mutex<MapSink<R>>,
}

impl<T, R, F> BatchRun for MapBatch<'_, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    fn has_work(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) < self.items.len()
    }

    fn run_one(&self) -> RunOne {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        let Some(item) = self.items.get(i) else {
            return RunOne::Drained;
        };
        let produce = || {
            if self.capture {
                with_item_lane(|| (self.f)(i, item))
            } else {
                ((self.f)(i, item), 0)
            }
        };
        match panic::catch_unwind(AssertUnwindSafe(produce)) {
            Ok((out, spent)) => {
                let mut sink = self.sink.lock().expect("parallel map lock");
                sink.results.push((i, out, spent));
            }
            Err(payload) => {
                let mut sink = self.sink.lock().expect("parallel map lock");
                if sink.panic.is_none() {
                    sink.panic = Some(payload);
                }
            }
        }
        RunOne::Ran
    }
}

/// Fans `items` over the shared pool (caller participating), waits for
/// quiescence, and returns `(index, result, captured_micros)` sorted by
/// input index. Panics from `f` resume on the caller after all claimed
/// units finished — the same point the scoped-thread executor surfaced
/// them.
fn pool_map<T, R, F>(parallelism: usize, capture: bool, items: &[T], f: &F) -> Vec<(usize, R, u64)>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let batch = MapBatch {
        items,
        f,
        cursor: AtomicUsize::new(0),
        capture,
        sink: Mutex::new(MapSink {
            results: Vec::with_capacity(items.len()),
            panic: None,
        }),
    };
    let helper_cap = parallelism.min(items.len()).saturating_sub(1);
    {
        let reg = WorkerPool::global().register(&batch, helper_cap);
        // Caller steals its own tasks: never blocks on pool capacity.
        while batch.run_one() == RunOne::Ran {}
        drop(reg); // unregister + wait for attached workers
    }
    let sink = batch.sink.into_inner().expect("parallel map lock");
    if let Some(payload) = sink.panic {
        panic::resume_unwind(payload);
    }
    let mut results = sink.results;
    results.sort_by_key(|(i, _, _)| *i);
    results
}

/// Applies `f` to every item of `items` with at most `parallelism`-wide
/// concurrency on the shared [`WorkerPool`], returning results **in input
/// order**.
///
/// Work is claimed dynamically (an atomic cursor, not pre-chunked) so one
/// slow item does not idle the other workers. With `parallelism <= 1` or
/// at most [`SMALL_BATCH_INLINE`] items the closure runs inline on the
/// caller's thread — the pool is never touched. A panicking closure
/// propagates the panic to the caller. Because the closures are applied
/// to the same items in a deterministic order-preserving merge, output is
/// identical at every `parallelism` setting and pool size.
pub fn ordered_parallel_map<T, R, F>(parallelism: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    ordered_parallel_map_threshold(parallelism, SMALL_BATCH_INLINE, items, f)
}

/// [`ordered_parallel_map`] with an explicit inline threshold: batches of
/// at most `inline_up_to` items (minimum 1) run on the caller's thread
/// without registering with the pool. Exists so benches can compare the
/// inline fast path against forced pool dispatch; production code uses
/// the [`SMALL_BATCH_INLINE`] default.
pub fn ordered_parallel_map_threshold<T, R, F>(
    parallelism: usize,
    inline_up_to: usize,
    items: &[T],
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if parallelism <= 1 || items.len() <= inline_up_to.max(1) {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    pool_map(parallelism, false, items, &f)
        .into_iter()
        .map(|(_, r, _)| r)
        .collect()
}

/// [`ordered_parallel_map`] for closures that issue store requests: each
/// item's simulated request latency is captured while it is produced, and
/// once all items are in, the clock is charged with the critical path of
/// the greedy lane schedule (see the module docs) instead of the additive
/// sum. Results are identical to [`ordered_parallel_map`] at every
/// `parallelism`; only the simulated elapsed time differs. With
/// `parallelism <= 1`, fewer than two items, or no clock, the behaviour
/// (including timing) is exactly the plain map's. Small batches may still
/// execute inline on the caller, but always under lane capture, so the
/// simulated schedule is the same wherever the units ran.
pub fn ordered_parallel_map_io<T, R, F>(
    parallelism: usize,
    clock: Option<&SimClock>,
    items: &[T],
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if parallelism <= 1 || items.len() <= 1 || clock.is_none() {
        return ordered_parallel_map(parallelism, items, f);
    }
    let lanes = parallelism.min(items.len());
    let results = if items.len() <= SMALL_BATCH_INLINE {
        // Inline execution under capture: the lane schedule below charges
        // the identical overlapped time a pooled run would.
        items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let (out, spent) = with_item_lane(|| f(i, t));
                (i, out, spent)
            })
            .collect()
    } else {
        pool_map(parallelism, true, items, &f)
    };
    let mut schedule = LaneSchedule::new(clock, lanes);
    for (_, _, spent) in &results {
        schedule.charge(*spent);
    }
    results.into_iter().map(|(_, r, _)| r).collect()
}

/// State shared between pipeline producers and the in-order consumer. Each
/// slot carries the item's result plus the simulated latency it captured
/// (0 when no clock was supplied).
struct PipelineState<R, E> {
    /// Produced-but-not-yet-consumed results, keyed by item index.
    slots: Vec<Option<(Result<R, E>, u64)>>,
    /// First panic caught in a producer, for the consumer to resume.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Pool batch for the pipeline: claims are bounded by `limit` (the
/// consumer's cursor plus the in-flight window), so producers can never
/// run arbitrarily far ahead. A full window reports [`RunOne::Stalled`];
/// the consumer re-wakes the pool after advancing.
struct PipeBatch<'a, T, R, E, P> {
    items: &'a [T],
    produce: &'a P,
    cursor: AtomicUsize,
    /// Claims allowed strictly below this index.
    limit: AtomicUsize,
    stop: AtomicBool,
    overlap: bool,
    state: &'a Mutex<PipelineState<R, E>>,
    ready: &'a Condvar,
}

impl<T, R, E, P> BatchRun for PipeBatch<'_, T, R, E, P>
where
    T: Sync,
    R: Send,
    E: Send,
    P: Fn(usize, &T) -> Result<R, E> + Sync,
{
    fn has_work(&self) -> bool {
        if self.stop.load(Ordering::Acquire) {
            return false;
        }
        let c = self.cursor.load(Ordering::Relaxed);
        c < self.items.len() && c < self.limit.load(Ordering::Relaxed)
    }

    fn run_one(&self) -> RunOne {
        if self.stop.load(Ordering::Acquire) {
            return RunOne::Drained;
        }
        let i = loop {
            let c = self.cursor.load(Ordering::Relaxed);
            if c >= self.items.len() {
                return RunOne::Drained;
            }
            if c >= self.limit.load(Ordering::Acquire) {
                return RunOne::Stalled;
            }
            if self
                .cursor
                .compare_exchange_weak(c, c + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                break c;
            }
        };
        let produce = || {
            if self.overlap {
                with_item_lane(|| (self.produce)(i, &self.items[i]))
            } else {
                ((self.produce)(i, &self.items[i]), 0)
            }
        };
        let produced = panic::catch_unwind(AssertUnwindSafe(produce));
        let mut guard = self.state.lock().expect("pipeline lock");
        match produced {
            Ok(slot) => guard.slots[i] = Some(slot),
            Err(payload) => {
                if guard.panic.is_none() {
                    guard.panic = Some(payload);
                }
            }
        }
        drop(guard);
        self.ready.notify_all();
        RunOne::Ran
    }
}

/// Streams `items` through `produce` on the shared pool while the caller's
/// thread `consume`s results strictly **in input order**.
///
/// At most `2 * parallelism` items are in flight past the consumer's
/// cursor, bounding memory to a small window regardless of input length
/// (the claim cursor itself is bounded, so even an idle pool cannot run
/// ahead). The first error in *input order* wins — exactly the error a
/// serial loop would have returned — and aborts outstanding production;
/// workers may have speculatively produced later items, but their results
/// are discarded, never consumed. While the consumer waits for the next
/// in-order item it claims and produces units itself (caller-runs), so
/// the pipeline makes progress even with every pool worker busy. With
/// `parallelism <= 1` or fewer than two items everything runs inline on
/// the caller's thread, which is the serial loop this function is proven
/// equivalent to.
///
/// When `clock` is supplied, each item's simulated request latency is
/// captured while it is produced and charged to the clock via the greedy
/// lane schedule (see the module docs) just before the item is consumed —
/// so consumers that read the clock (e.g. timeout checks) observe the
/// overlapped, monotonically increasing simulated time a pool of
/// `parallelism` connections would produce.
pub fn ordered_pipeline<T, R, E, P, C>(
    parallelism: usize,
    clock: Option<&SimClock>,
    items: &[T],
    produce: P,
    mut consume: C,
) -> Result<(), E>
where
    T: Sync,
    R: Send,
    E: Send,
    P: Fn(usize, &T) -> Result<R, E> + Sync,
    C: FnMut(usize, R) -> Result<(), E>,
{
    if parallelism <= 1 || items.len() <= 1 {
        for (i, item) in items.iter().enumerate() {
            consume(i, produce(i, item)?)?;
        }
        return Ok(());
    }

    let workers = parallelism.min(items.len());
    let window = parallelism * 2;
    let mut schedule = LaneSchedule::new(clock, workers);
    let overlap = schedule.active();
    let state = Mutex::new(PipelineState::<R, E> {
        slots: (0..items.len()).map(|_| None).collect(),
        panic: None,
    });
    let ready = Condvar::new();
    let batch = PipeBatch {
        items,
        produce: &produce,
        cursor: AtomicUsize::new(0),
        limit: AtomicUsize::new(window.min(items.len())),
        stop: AtomicBool::new(false),
        overlap,
        state: &state,
        ready: &ready,
    };

    let pool = WorkerPool::global();
    let mut result: Result<(), E> = Ok(());
    let mut panicked = false;
    {
        let reg = pool.register(&batch, workers - 1);
        for i in 0..items.len() {
            // Wait for slot `i`, helping produce while it is not ready.
            let slot = loop {
                {
                    let mut guard = state.lock().expect("pipeline lock");
                    if guard.panic.is_some() {
                        break None;
                    }
                    if let Some(slot) = guard.slots[i].take() {
                        break Some(slot);
                    }
                }
                match batch.run_one() {
                    RunOne::Ran => {}
                    RunOne::Stalled | RunOne::Drained => {
                        // Every claimable unit is claimed: slot `i` is in
                        // flight on a worker (or already filled). Park
                        // until production progresses.
                        let mut guard = state.lock().expect("pipeline lock");
                        while guard.slots[i].is_none() && guard.panic.is_none() {
                            guard = ready.wait(guard).expect("pipeline lock");
                        }
                    }
                }
            };
            let Some((produced, spent)) = slot else {
                panicked = true;
                break;
            };
            // A serial loop would have paid this item's request latency
            // before acting on its result, so charge it up front — even
            // for items that produced an error.
            schedule.charge(spent);
            match produced.and_then(|r| consume(i, r)) {
                Ok(()) => {
                    let old_limit = batch.limit.load(Ordering::Relaxed);
                    batch.limit.store(i + 1 + window, Ordering::Release);
                    // Only re-wake the pool if the old window could have
                    // stalled a worker.
                    if batch.cursor.load(Ordering::Relaxed) >= old_limit {
                        pool.notify_workers();
                    }
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        // Stop outstanding production (speculative results are discarded)
        // and quiesce before the batch leaves scope.
        batch.stop.store(true, Ordering::Release);
        drop(reg);
    }
    if panicked {
        let payload = state
            .into_inner()
            .expect("pipeline lock")
            .panic
            .expect("pipeline panic payload");
        panic::resume_unwind(payload);
    }
    result
}

/// Splits `0..len` into at most `pieces` contiguous, in-order ranges of
/// near-equal size, each at least `min_chunk` long (except possibly the
/// last). Used to chunk order-preserving derivations (BWT rows, symbol
/// counts) so concatenating the per-chunk outputs reproduces the serial
/// result exactly.
pub fn chunk_ranges(len: usize, pieces: usize, min_chunk: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let pieces = pieces.max(1);
    let chunk = len.div_ceil(pieces).max(min_chunk.max(1));
    (0..len)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(len))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order_at_any_parallelism() {
        let items: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 7).collect();
        for parallelism in [1, 2, 3, 8, 64] {
            let got = ordered_parallel_map(parallelism, &items, |_, &x| x * 7);
            assert_eq!(got, expect, "parallelism {parallelism}");
        }
    }

    #[test]
    fn map_passes_the_input_index() {
        let items = ["a", "b", "c", "d", "e"];
        let got = ordered_parallel_map(4, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn map_empty_and_singleton_inputs_run_inline() {
        let none: Vec<u8> = Vec::new();
        assert!(ordered_parallel_map(8, &none, |_, &x| x).is_empty());
        assert_eq!(ordered_parallel_map(8, &[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn map_runs_small_batches_on_the_caller() {
        let caller = std::thread::current().id();
        let items = [1u8, 2, 3];
        assert_eq!(items.len(), SMALL_BATCH_INLINE);
        let threads = ordered_parallel_map(8, &items, |_, _| std::thread::current().id());
        assert!(
            threads.iter().all(|id| *id == caller),
            "a batch of {} items must run inline",
            SMALL_BATCH_INLINE
        );
    }

    #[test]
    fn map_threshold_zero_still_matches_inline_results() {
        let items: Vec<u64> = (0..3).collect();
        let inline = ordered_parallel_map(8, &items, |i, &x| x * 10 + i as u64);
        let pooled = ordered_parallel_map_threshold(8, 0, &items, |i, &x| x * 10 + i as u64);
        assert_eq!(inline, pooled);
    }

    #[test]
    fn map_propagates_worker_panics() {
        let items: Vec<u64> = (0..64).collect();
        let err = panic::catch_unwind(|| {
            ordered_parallel_map(8, &items, |_, &x| {
                if x == 13 {
                    panic!("unit failed");
                }
                x
            })
        })
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "unit failed");
    }

    #[test]
    fn nested_maps_make_progress_on_a_saturated_pool() {
        // Far more concurrent fan-outs than pool workers, each nesting two
        // more fan-out levels: caller-runs semantics must drain them all.
        let threads: Vec<_> = (0..16)
            .map(|t| {
                std::thread::spawn(move || {
                    let outer: Vec<u64> = (0..8).collect();
                    let sums = ordered_parallel_map(8, &outer, |_, &o| {
                        let inner: Vec<u64> = (0..8).collect();
                        ordered_parallel_map(8, &inner, |_, &i| {
                            let leaf: Vec<u64> = (0..6).collect();
                            ordered_parallel_map(4, &leaf, |_, &l| o + i + l)
                                .into_iter()
                                .sum::<u64>()
                        })
                        .into_iter()
                        .sum::<u64>()
                    });
                    (t, sums.into_iter().sum::<u64>())
                })
            })
            .collect();
        for t in threads {
            let (tid, sum) = t.join().expect("nested fan-out thread");
            // sum over o,i of 6*(o+i) + 15 = 64*15 + 6*(sum_o 8o + sum_i 8i)
            assert_eq!(sum, 64 * 15 + 6 * (8 * 28 + 8 * 28), "thread {tid}");
        }
    }

    #[test]
    fn pipeline_consumes_in_order_at_any_parallelism() {
        let items: Vec<usize> = (0..100).collect();
        for parallelism in [1, 2, 4, 16] {
            let mut seen = Vec::new();
            ordered_pipeline(
                parallelism,
                None,
                &items,
                |i, &x| Ok::<_, ()>(i * 1000 + x),
                |i, r| {
                    assert_eq!(r, i * 1000 + i);
                    seen.push(i);
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(seen, items, "parallelism {parallelism}");
        }
    }

    #[test]
    fn pipeline_surfaces_first_error_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        for parallelism in [1, 3, 8] {
            let mut consumed = Vec::new();
            let err = ordered_pipeline(
                parallelism,
                None,
                &items,
                |_, &x| if x >= 10 { Err(x) } else { Ok(x) },
                |_, r| {
                    consumed.push(r);
                    Ok(())
                },
            )
            .unwrap_err();
            // Items 11.. may fail first on a worker thread, but the error
            // surfaced is the one a serial loop would hit.
            assert_eq!(err, 10, "parallelism {parallelism}");
            assert_eq!(consumed, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pipeline_consumer_error_stops_production() {
        let items: Vec<usize> = (0..1000).collect();
        let produced = AtomicUsize::new(0);
        let err = ordered_pipeline(
            8,
            None,
            &items,
            |_, &x| {
                produced.fetch_add(1, Ordering::Relaxed);
                Ok::<_, usize>(x)
            },
            |_, r| if r == 5 { Err(r) } else { Ok(()) },
        )
        .unwrap_err();
        assert_eq!(err, 5);
        // Production halts within the in-flight window of the failure.
        assert!(produced.load(Ordering::Relaxed) < items.len());
    }

    #[test]
    fn pipeline_propagates_producer_panics() {
        let items: Vec<usize> = (0..64).collect();
        let err = panic::catch_unwind(|| {
            ordered_pipeline(
                8,
                None,
                &items,
                |_, &x| {
                    if x == 7 {
                        panic!("producer failed");
                    }
                    Ok::<_, ()>(x)
                },
                |_, _| Ok(()),
            )
        })
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "producer failed");
    }

    #[test]
    fn chunk_ranges_cover_exactly_once_in_order() {
        for (len, pieces, min) in [(0, 4, 1), (1, 4, 1), (100, 4, 1), (10, 4, 64), (7, 16, 2)] {
            let ranges = chunk_ranges(len, pieces, min);
            let flat: Vec<usize> = ranges.iter().flat_map(|r| r.clone()).collect();
            assert_eq!(flat, (0..len).collect::<Vec<_>>(), "{len}/{pieces}/{min}");
        }
    }

    #[test]
    fn default_parallelism_is_bounded() {
        assert!((1..=8).contains(&default_parallelism()));
    }

    #[test]
    fn io_map_overlaps_simulated_latency_deterministically() {
        // 8 items of 100us over 4 lanes: critical path = ceil(8/4) * 100.
        let clock = SimClock::new();
        let items: Vec<u64> = (0..8).collect();
        let got = ordered_parallel_map_io(4, Some(&clock), &items, |_, &x| {
            clock.advance_micros(100);
            x
        });
        assert_eq!(got, items);
        assert_eq!(clock.now_micros(), 200);

        // The serial path keeps the additive behaviour.
        let serial = SimClock::new();
        ordered_parallel_map_io(1, Some(&serial), &items, |_, _| serial.advance_micros(100));
        assert_eq!(serial.now_micros(), 800);
    }

    #[test]
    fn io_map_greedy_placement_tracks_unequal_items() {
        // Spents [300, 100, 100, 100] over 2 lanes: lane0 takes the 300,
        // lane1 absorbs the three 100s — critical path 300, not 600.
        let clock = SimClock::new();
        let spent = [300u64, 100, 100, 100];
        ordered_parallel_map_io(2, Some(&clock), &spent, |_, &us| clock.advance_micros(us));
        assert_eq!(clock.now_micros(), 300);
    }

    #[test]
    fn io_map_small_batches_overlap_identically_inline() {
        // 3 items fit the inline threshold, yet the charged schedule must
        // be the overlapped one (2 lanes → critical path 200, not 300).
        let clock = SimClock::new();
        let items = [1u8, 2, 3];
        ordered_parallel_map_io(2, Some(&clock), &items, |_, _| clock.advance_micros(100));
        assert_eq!(clock.now_micros(), 200);
    }

    #[test]
    fn nested_io_map_charges_the_outer_lane() {
        // An io-map inside an io-map item: the inner critical path must be
        // captured into the outer item's lane, not the global clock, and
        // the outer schedule charges it once — exactly 2 sequential steps
        // of 100us on the inner's 2 lanes, on a single outer item.
        let clock = SimClock::new();
        let outer = [0u8];
        // Single outer item runs inline (len<=1) — use 2 to force capture.
        let outer2 = [0u8, 1];
        let _ = outer;
        ordered_parallel_map_io(2, Some(&clock), &outer2, |_, _| {
            let inner = [0u8, 1, 2, 3];
            ordered_parallel_map_io(2, Some(&clock), &inner, |_, _| clock.advance_micros(100));
        });
        // Each outer item captured an inner critical path of 200us; two
        // such items overlap on 2 outer lanes → total 200us.
        assert_eq!(clock.now_micros(), 200);
    }

    #[test]
    fn pipeline_overlaps_latency_and_charges_before_consume() {
        let clock = SimClock::new();
        let items: Vec<u64> = (0..8).collect();
        let mut observed = Vec::new();
        ordered_pipeline(
            4,
            Some(&clock),
            &items,
            |_, &x| {
                clock.advance_micros(100);
                Ok::<_, ()>(x)
            },
            |_, _| {
                observed.push(clock.now_micros());
                Ok(())
            },
        )
        .unwrap();
        // Critical path of 8 x 100us over 4 lanes.
        assert_eq!(clock.now_micros(), 200);
        // The consumer saw time move monotonically and had the first item's
        // latency charged before it ran — a serial loop's ordering.
        assert!(observed.windows(2).all(|w| w[0] <= w[1]), "{observed:?}");
        assert!(observed[0] >= 100, "{observed:?}");
    }

    #[test]
    fn pipeline_without_clock_leaves_timing_additive() {
        let clock = SimClock::new();
        let items: Vec<u64> = (0..4).collect();
        ordered_pipeline(
            4,
            None,
            &items,
            |_, &x| {
                clock.advance_micros(50);
                Ok::<_, ()>(x)
            },
            |_, _| Ok(()),
        )
        .unwrap();
        assert_eq!(clock.now_micros(), 200);
    }
}
