//! Deterministic parallel primitives shared by the read and write paths.
//!
//! Both the search executor and the ingest pipeline follow the same
//! contract: fan independent work over a bounded pool of scoped threads,
//! then merge the results **in input order**, so the parallel outcome is
//! byte-for-byte identical to running the same closures sequentially.
//! The helpers here are built on `std::thread::scope`, so crates lower in
//! the dependency graph (format, fm) can parallelize deterministic CPU
//! work — page compression, wavelet-matrix construction, BWT derivation —
//! without pulling in a threading dependency.
//!
//! Two shapes are provided:
//!
//! * [`ordered_parallel_map`] — map a slice, collect all results, return
//!   them in input order. The right shape for CPU-bound batch work where
//!   the whole result set is needed anyway (encoding pages, building
//!   wavelet blocks, training PQ subspaces).
//! * [`ordered_pipeline`] — a bounded producer/consumer: workers produce
//!   item results out of order, a single consumer (the caller's thread)
//!   receives them strictly in input order with at most a small window of
//!   items in flight. The right shape for streaming ingest, where decoded
//!   files must feed a stateful builder in order and buffering every
//!   decoded file at once would blow memory.
//!
//! # Simulated-latency overlap
//!
//! The [`SimClock`] normally charges every store request's modeled latency
//! additively, which is correct for a serial caller but would bill a
//! fanned-out download as if its requests ran back to back. The I/O-aware
//! helpers ([`ordered_parallel_map_io`], and [`ordered_pipeline`] when
//! given a clock) instead *capture* each item's request latency in a
//! thread-local while the item is produced, then charge the clock with the
//! critical path of a deterministic greedy placement of the items onto
//! `parallelism` virtual connections — item `i` lands on the
//! earliest-finishing lane, lowest index on ties, exactly the schedule a
//! work-conserving pool draining an in-order queue produces. Simulated
//! time therefore reflects overlapped I/O, yet depends only on the items'
//! (deterministic) latencies, never on host core count or real thread
//! scheduling.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::SimClock;

/// Default bound for build-side parallelism: the machine's available
/// parallelism, capped at 8 (the same cap the search executor uses) so a
/// large host does not fan a single ingest over dozens of threads.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(8)
}

thread_local! {
    /// Simulated latency captured for the item the current worker thread is
    /// producing. `None` outside the I/O-aware helpers, in which case
    /// [`SimClock::advance_micros`] falls back to its additive behaviour.
    static ITEM_LANE: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Captures `micros` of simulated request latency into the current thread's
/// item lane, if one is active. Called by [`SimClock::advance_micros`];
/// returns `false` when the calling thread is not producing an item for an
/// I/O-aware helper, in which case the clock advances globally as usual.
pub(crate) fn capture_deferred_latency(micros: u64) -> bool {
    ITEM_LANE.with(|lane| match lane.get() {
        Some(spent) => {
            lane.set(Some(spent + micros));
            true
        }
        None => false,
    })
}

/// Runs `f` with an active item lane and returns its result alongside the
/// simulated latency the item's store requests accumulated.
fn with_item_lane<R>(f: impl FnOnce() -> R) -> (R, u64) {
    ITEM_LANE.with(|lane| lane.set(Some(0)));
    let out = f();
    let spent = ITEM_LANE.with(|lane| lane.replace(None)).unwrap_or(0);
    (out, spent)
}

/// Deterministic greedy placement of per-item latencies onto virtual
/// connection lanes (see the module docs). The clock is advanced whenever
/// the critical path — the maximum lane end — grows, so callers observing
/// the clock mid-schedule (timeout checks in a pipeline consumer) see
/// monotonically increasing simulated time.
struct LaneSchedule<'a> {
    clock: Option<&'a SimClock>,
    ends: Vec<u64>,
    peak: u64,
}

impl<'a> LaneSchedule<'a> {
    fn new(clock: Option<&'a SimClock>, lanes: usize) -> Self {
        Self {
            clock,
            ends: vec![0; lanes.max(1)],
            peak: 0,
        }
    }

    fn active(&self) -> bool {
        self.clock.is_some()
    }

    /// Places the next item's captured latency on the earliest-finishing
    /// lane and charges any critical-path growth to the clock.
    fn charge(&mut self, spent: u64) {
        let Some(clock) = self.clock else { return };
        if spent == 0 {
            return;
        }
        let lane = self
            .ends
            .iter()
            .enumerate()
            .min_by_key(|(_, end)| **end)
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.ends[lane] += spent;
        if self.ends[lane] > self.peak {
            clock.advance_micros(self.ends[lane] - self.peak);
            self.peak = self.ends[lane];
        }
    }
}

/// Applies `f` to every item of `items` over at most `parallelism` scoped
/// threads, returning results **in input order**.
///
/// Work is claimed dynamically (an atomic cursor, not pre-chunked) so one
/// slow item does not idle the other workers. With `parallelism <= 1` or
/// fewer than two items the closure runs inline on the caller's thread —
/// no threads are spawned. A panicking closure propagates the panic to
/// the caller. Because the closures are applied to the same items in a
/// deterministic order-preserving merge, output is identical at every
/// `parallelism` setting.
pub fn ordered_parallel_map<T, R, F>(parallelism: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if parallelism <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = parallelism.min(items.len());
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(i, item);
                collected.lock().expect("parallel map lock").push((i, out));
            });
        }
    });

    let mut results = collected.into_inner().expect("parallel map lock");
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, r)| r).collect()
}

/// [`ordered_parallel_map`] for closures that issue store requests: each
/// item's simulated request latency is captured while it is produced, and
/// once all items are in, the clock is charged with the critical path of
/// the greedy lane schedule (see the module docs) instead of the additive
/// sum. Results are identical to [`ordered_parallel_map`] at every
/// `parallelism`; only the simulated elapsed time differs. With
/// `parallelism <= 1`, fewer than two items, or no clock, the behaviour
/// (including timing) is exactly the plain map's.
pub fn ordered_parallel_map_io<T, R, F>(
    parallelism: usize,
    clock: Option<&SimClock>,
    items: &[T],
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if parallelism <= 1 || items.len() <= 1 || clock.is_none() {
        return ordered_parallel_map(parallelism, items, f);
    }
    let workers = parallelism.min(items.len());
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R, u64)>> = Mutex::new(Vec::with_capacity(items.len()));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let (out, spent) = with_item_lane(|| f(i, item));
                collected
                    .lock()
                    .expect("parallel map lock")
                    .push((i, out, spent));
            });
        }
    });

    let mut results = collected.into_inner().expect("parallel map lock");
    results.sort_by_key(|(i, _, _)| *i);
    let mut schedule = LaneSchedule::new(clock, workers);
    for (_, _, spent) in &results {
        schedule.charge(*spent);
    }
    results.into_iter().map(|(_, r, _)| r).collect()
}

/// State shared between pipeline producers and the in-order consumer. Each
/// slot carries the item's result plus the simulated latency it captured
/// (0 when no clock was supplied).
struct PipelineState<R, E> {
    /// Produced-but-not-yet-consumed results, keyed by item index.
    slots: Vec<Option<(Result<R, E>, u64)>>,
    /// Index of the next item the consumer will take.
    next_consume: usize,
}

/// Streams `items` through `produce` on a bounded pool while the caller's
/// thread `consume`s results strictly **in input order**.
///
/// At most `2 * parallelism` items are in flight past the consumer's
/// cursor, bounding memory to a small window regardless of input length.
/// The first error in *input order* wins — exactly the error a serial
/// loop would have returned — and aborts outstanding production; workers
/// may have speculatively produced later items, but their results are
/// discarded, never consumed. With `parallelism <= 1` or fewer than two
/// items everything runs inline on the caller's thread, which is the
/// serial loop this function is proven equivalent to.
///
/// When `clock` is supplied, each item's simulated request latency is
/// captured while it is produced and charged to the clock via the greedy
/// lane schedule (see the module docs) just before the item is consumed —
/// so consumers that read the clock (e.g. timeout checks) observe the
/// overlapped, monotonically increasing simulated time a pool of
/// `parallelism` connections would produce.
pub fn ordered_pipeline<T, R, E, P, C>(
    parallelism: usize,
    clock: Option<&SimClock>,
    items: &[T],
    produce: P,
    mut consume: C,
) -> Result<(), E>
where
    T: Sync,
    R: Send,
    E: Send,
    P: Fn(usize, &T) -> Result<R, E> + Sync,
    C: FnMut(usize, R) -> Result<(), E>,
{
    if parallelism <= 1 || items.len() <= 1 {
        for (i, item) in items.iter().enumerate() {
            consume(i, produce(i, item)?)?;
        }
        return Ok(());
    }

    let workers = parallelism.min(items.len());
    let window = parallelism * 2;
    let mut schedule = LaneSchedule::new(clock, workers);
    let overlap = schedule.active();
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let state = Mutex::new(PipelineState::<R, E> {
        slots: (0..items.len()).map(|_| None).collect(),
        next_consume: 0,
    });
    let ready = Condvar::new();
    let space = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // Respect the in-flight window so producers cannot run
                // arbitrarily far ahead of the consumer.
                {
                    let mut guard = state.lock().expect("pipeline lock");
                    while i >= guard.next_consume + window && !stop.load(Ordering::Acquire) {
                        guard = space.wait(guard).expect("pipeline lock");
                    }
                }
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let out = if overlap {
                    let (out, spent) = with_item_lane(|| produce(i, &items[i]));
                    (out, spent)
                } else {
                    (produce(i, &items[i]), 0)
                };
                let mut guard = state.lock().expect("pipeline lock");
                guard.slots[i] = Some(out);
                ready.notify_all();
            });
        }

        // The caller's thread is the single in-order consumer.
        let mut result: Result<(), E> = Ok(());
        for i in 0..items.len() {
            let (produced, spent) = {
                let mut guard = state.lock().expect("pipeline lock");
                loop {
                    if let Some(r) = guard.slots[i].take() {
                        break r;
                    }
                    guard = ready.wait(guard).expect("pipeline lock");
                }
            };
            // A serial loop would have paid this item's request latency
            // before acting on its result, so charge it up front — even
            // for items that produced an error.
            schedule.charge(spent);
            match produced.and_then(|r| consume(i, r)) {
                Ok(()) => {
                    let mut guard = state.lock().expect("pipeline lock");
                    guard.next_consume = i + 1;
                    drop(guard);
                    space.notify_all();
                }
                Err(e) => {
                    result = Err(e);
                    stop.store(true, Ordering::Release);
                    space.notify_all();
                    break;
                }
            }
        }
        // Wake any producer still parked on the window before the scope
        // joins the workers.
        stop.store(true, Ordering::Release);
        space.notify_all();
        result
    })
}

/// Splits `0..len` into at most `pieces` contiguous, in-order ranges of
/// near-equal size, each at least `min_chunk` long (except possibly the
/// last). Used to chunk order-preserving derivations (BWT rows, symbol
/// counts) so concatenating the per-chunk outputs reproduces the serial
/// result exactly.
pub fn chunk_ranges(len: usize, pieces: usize, min_chunk: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let pieces = pieces.max(1);
    let chunk = len.div_ceil(pieces).max(min_chunk.max(1));
    (0..len)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(len))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order_at_any_parallelism() {
        let items: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 7).collect();
        for parallelism in [1, 2, 3, 8, 64] {
            let got = ordered_parallel_map(parallelism, &items, |_, &x| x * 7);
            assert_eq!(got, expect, "parallelism {parallelism}");
        }
    }

    #[test]
    fn map_passes_the_input_index() {
        let items = ["a", "b", "c"];
        let got = ordered_parallel_map(4, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn map_empty_and_singleton_inputs_run_inline() {
        let none: Vec<u8> = Vec::new();
        assert!(ordered_parallel_map(8, &none, |_, &x| x).is_empty());
        assert_eq!(ordered_parallel_map(8, &[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn pipeline_consumes_in_order_at_any_parallelism() {
        let items: Vec<usize> = (0..100).collect();
        for parallelism in [1, 2, 4, 16] {
            let mut seen = Vec::new();
            ordered_pipeline(
                parallelism,
                None,
                &items,
                |i, &x| Ok::<_, ()>(i * 1000 + x),
                |i, r| {
                    assert_eq!(r, i * 1000 + i);
                    seen.push(i);
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(seen, items, "parallelism {parallelism}");
        }
    }

    #[test]
    fn pipeline_surfaces_first_error_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        for parallelism in [1, 3, 8] {
            let mut consumed = Vec::new();
            let err = ordered_pipeline(
                parallelism,
                None,
                &items,
                |_, &x| if x >= 10 { Err(x) } else { Ok(x) },
                |_, r| {
                    consumed.push(r);
                    Ok(())
                },
            )
            .unwrap_err();
            // Items 11.. may fail first on a worker thread, but the error
            // surfaced is the one a serial loop would hit.
            assert_eq!(err, 10, "parallelism {parallelism}");
            assert_eq!(consumed, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pipeline_consumer_error_stops_production() {
        let items: Vec<usize> = (0..1000).collect();
        let produced = AtomicUsize::new(0);
        let err = ordered_pipeline(
            8,
            None,
            &items,
            |_, &x| {
                produced.fetch_add(1, Ordering::Relaxed);
                Ok::<_, usize>(x)
            },
            |_, r| if r == 5 { Err(r) } else { Ok(()) },
        )
        .unwrap_err();
        assert_eq!(err, 5);
        // Production halts within the in-flight window of the failure.
        assert!(produced.load(Ordering::Relaxed) < items.len());
    }

    #[test]
    fn chunk_ranges_cover_exactly_once_in_order() {
        for (len, pieces, min) in [(0, 4, 1), (1, 4, 1), (100, 4, 1), (10, 4, 64), (7, 16, 2)] {
            let ranges = chunk_ranges(len, pieces, min);
            let flat: Vec<usize> = ranges.iter().flat_map(|r| r.clone()).collect();
            assert_eq!(flat, (0..len).collect::<Vec<_>>(), "{len}/{pieces}/{min}");
        }
    }

    #[test]
    fn default_parallelism_is_bounded() {
        assert!((1..=8).contains(&default_parallelism()));
    }

    #[test]
    fn io_map_overlaps_simulated_latency_deterministically() {
        // 8 items of 100us over 4 lanes: critical path = ceil(8/4) * 100.
        let clock = SimClock::new();
        let items: Vec<u64> = (0..8).collect();
        let got = ordered_parallel_map_io(4, Some(&clock), &items, |_, &x| {
            clock.advance_micros(100);
            x
        });
        assert_eq!(got, items);
        assert_eq!(clock.now_micros(), 200);

        // The serial path keeps the additive behaviour.
        let serial = SimClock::new();
        ordered_parallel_map_io(1, Some(&serial), &items, |_, _| serial.advance_micros(100));
        assert_eq!(serial.now_micros(), 800);
    }

    #[test]
    fn io_map_greedy_placement_tracks_unequal_items() {
        // Spents [300, 100, 100, 100] over 2 lanes: lane0 takes the 300,
        // lane1 absorbs the three 100s — critical path 300, not 600.
        let clock = SimClock::new();
        let spent = [300u64, 100, 100, 100];
        ordered_parallel_map_io(2, Some(&clock), &spent, |_, &us| clock.advance_micros(us));
        assert_eq!(clock.now_micros(), 300);
    }

    #[test]
    fn pipeline_overlaps_latency_and_charges_before_consume() {
        let clock = SimClock::new();
        let items: Vec<u64> = (0..8).collect();
        let mut observed = Vec::new();
        ordered_pipeline(
            4,
            Some(&clock),
            &items,
            |_, &x| {
                clock.advance_micros(100);
                Ok::<_, ()>(x)
            },
            |_, _| {
                observed.push(clock.now_micros());
                Ok(())
            },
        )
        .unwrap();
        // Critical path of 8 x 100us over 4 lanes.
        assert_eq!(clock.now_micros(), 200);
        // The consumer saw time move monotonically and had the first item's
        // latency charged before it ran — a serial loop's ordering.
        assert!(observed.windows(2).all(|w| w[0] <= w[1]), "{observed:?}");
        assert!(observed[0] >= 100, "{observed:?}");
    }

    #[test]
    fn pipeline_without_clock_leaves_timing_additive() {
        let clock = SimClock::new();
        let items: Vec<u64> = (0..4).collect();
        ordered_pipeline(
            4,
            None,
            &items,
            |_, &x| {
                clock.advance_micros(50);
                Ok::<_, ()>(x)
            },
            |_, _| Ok(()),
        )
        .unwrap();
        assert_eq!(clock.now_micros(), 200);
    }
}
