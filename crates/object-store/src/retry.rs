//! A retrying [`ObjectStore`] decorator: capped exponential backoff with
//! full jitter, driven by the store's [`SimClock`] when it has one.
//!
//! Production S3 clients wrap every request in jittered exponential backoff
//! because the service throttles (`503 SlowDown`, §VII-D3) and fails
//! transiently as a matter of course. [`RetryStore`] reproduces that layer:
//!
//! * Only [retryable](StoreError::is_retryable) errors are retried —
//!   [`StoreError::Injected`] crash faults and deterministic outcomes
//!   (`NotFound`, `AlreadyExists`, `InvalidRange`, `Io`) surface untouched.
//! * Backoff *advances the simulated clock* instead of sleeping, so tests
//!   stay deterministic and retry storms show up as simulated latency.
//! * [`StoreError::Throttled`] waits at least the server-suggested
//!   `retry_after_ms` (the jittered backoff only lengthens it).
//! * The one genuinely ambiguous case — a `put_if_absent` whose earlier
//!   attempt *may* have landed before the ack was lost — is resolved by
//!   reading the winning object back and comparing payloads, so a caller is
//!   never told "conflict" when it actually won the race.
//! * Optional torn-read verification (`verify_short_reads`) detects range
//!   responses shorter than they should be and retries them; a `HEAD`
//!   distinguishes real tearing from S3's legitimate truncation of ranges
//!   running past the end of the object.
//!
//! The decorator is also the enforcement point of the store-health
//! subsystem ([`crate::health`]):
//!
//! * Every operation is admitted against its failure domain's circuit
//!   breaker first — an open breaker fails fast with a typed
//!   [`StoreError::BreakerOpen`] that never touches the backend.
//! * Each retry spends a token from the shared retry budget; when the
//!   bucket is empty (a correlated outage drains it), retrying stops
//!   fleet-wide and the original fault surfaces with op/key provenance
//!   ([`StoreError::Context`]).
//! * A caller-scoped deadline ([`push_deadline`]) stops the loop with a
//!   typed [`StoreError::DeadlineExceeded`] once the next backoff wait
//!   cannot finish before the deadline — retries never silently burn
//!   time past the query budget.
//! * Operation outcomes (success / terminal retryable failure) feed the
//!   tracker, so breakers trip on *exhausted operations*, not individual
//!   attempt hiccups — independent per-attempt chaos that retries absorb
//!   never opens a breaker, a correlated outage opens it within a
//!   handful of operations.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use crate::health::{Admit, BreakerState, HealthTracker};
use crate::{ObjectMeta, ObjectStore, RangeRequest, Result, SimClock, StatsSnapshot, StoreError};

thread_local! {
    static DEADLINE_MS: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Installs an absolute store-clock deadline (milliseconds) for retry
/// loops on the current thread; restores the previous deadline on drop.
///
/// Thread-locals do not cross into pool workers — fan-out closures must
/// re-install the deadline on the worker (the same discipline as the
/// parallel helpers' lane state).
#[must_use = "the deadline is uninstalled when the guard drops"]
pub struct DeadlineGuard {
    prev: Option<u64>,
}

/// Scopes `deadline_ms` as the current thread's retry deadline.
pub fn push_deadline(deadline_ms: Option<u64>) -> DeadlineGuard {
    let prev = DEADLINE_MS.with(|d| d.replace(deadline_ms));
    DeadlineGuard { prev }
}

/// The retry deadline currently in scope on this thread, if any.
pub fn current_deadline_ms() -> Option<u64> {
    DEADLINE_MS.with(|d| d.get())
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        DEADLINE_MS.with(|d| d.set(prev));
    }
}

/// Retry/backoff parameters for a [`RetryStore`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff ceiling before jitter for attempt `n` is
    /// `min(max_backoff_ms, base_backoff_ms << n)`.
    pub base_backoff_ms: u64,
    /// Upper bound on a single backoff wait, in milliseconds.
    pub max_backoff_ms: u64,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Verify that range GETs return as many bytes as the object allows,
    /// retrying short (torn) responses. Costs a HEAD per short response, so
    /// it is off by default — speculative over-long reads (a common
    /// footer-fetch idiom) would otherwise pay it on every legitimate
    /// truncation.
    pub verify_short_reads: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_backoff_ms: 25,
            max_backoff_ms: 2_000,
            jitter_seed: 0x9E37_79B9,
            verify_short_reads: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — the decorator becomes a transparent
    /// pass-through (seed behaviour).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Whether this policy ever retries.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// The pre-jitter backoff ceiling for retry number `attempt` (0-based).
    pub fn backoff_ceiling_ms(&self, attempt: u32) -> u64 {
        let shifted = self.base_backoff_ms.saturating_mul(1u64 << attempt.min(20));
        shifted.min(self.max_backoff_ms)
    }
}

/// An [`ObjectStore`] decorator that retries transient failures with capped
/// exponential backoff and full jitter.
///
/// Wraps any store, including `&dyn ObjectStore`. Retry activity is
/// reported to the inner store via
/// [`record_retry`](ObjectStore::record_retry) so it lands in the shared
/// [`stats()`](ObjectStore::stats).
#[derive(Debug)]
pub struct RetryStore<S> {
    inner: S,
    policy: RetryPolicy,
    rng: AtomicU64,
    health: Arc<HealthTracker>,
}

impl<S: ObjectStore> RetryStore<S> {
    /// Wraps `inner` with the given retry policy and a fresh
    /// default-tuned [`HealthTracker`].
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        Self::with_health(inner, policy, HealthTracker::shared())
    }

    /// Wraps `inner` sharing an existing health tracker — decorator
    /// stacks (hedge lanes, the serve layer) share one tracker so every
    /// layer sees the same breakers and retry budget.
    pub fn with_health(inner: S, policy: RetryPolicy, health: Arc<HealthTracker>) -> Self {
        let rng = AtomicU64::new(policy.jitter_seed ^ 0xA076_1D64_78BD_642F);
        Self {
            inner,
            policy,
            rng,
            health,
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The policy in effect.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The health tracker this decorator feeds and enforces.
    pub fn health(&self) -> &Arc<HealthTracker> {
        &self.health
    }

    fn next_unit(&self) -> f64 {
        let s = self
            .rng
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Full-jitter wait for retry `attempt`, honouring a server-provided
    /// `retry_after_ms` as a floor.
    fn wait_ms(&self, attempt: u32, err: &StoreError) -> u64 {
        let ceiling = self.policy.backoff_ceiling_ms(attempt);
        let mut wait = (ceiling as f64 * self.next_unit()) as u64 + 1;
        if let StoreError::Throttled { retry_after_ms } = err {
            wait = wait.max(*retry_after_ms);
        }
        wait
    }

    /// Waits `ms` of *simulated* time when the store has a clock; falls
    /// back to a (bounded) wall-clock sleep for real backends.
    fn sleep(&self, ms: u64) {
        match self.inner.clock() {
            Some(clock) => clock.advance_ms(ms),
            None => std::thread::sleep(std::time::Duration::from_millis(ms.min(100))),
        }
    }

    fn report(&self, retries: u64, waited_ms: u64) {
        if retries > 0 {
            self.inner.record_retry(retries, waited_ms);
        }
    }

    /// Checks the breaker for `key`'s failure domain; `Ok(true)` means
    /// this operation holds a half-open probe slot the caller must
    /// balance with a `record_success` / `record_failure` /
    /// `release_probe` on the tracker.
    fn admit_key(&self, key: &str) -> Result<bool> {
        match self.health.admit(key, self.inner.now_ms()) {
            Admit::Allow => Ok(false),
            Admit::Probe => Ok(true),
            Admit::Reject { retry_after_ms } => {
                self.inner.record_health(1, 0);
                Err(StoreError::BreakerOpen {
                    domain: HealthTracker::domain_of(key).to_string(),
                    retry_after_ms,
                })
            }
        }
    }

    /// Terminal failure of a retryable fault: report stats, feed the
    /// breaker one operation-level failure, attach provenance.
    fn fail_op<T>(
        &self,
        op: &'static str,
        key: &str,
        e: StoreError,
        retries: u64,
        waited_ms: u64,
    ) -> Result<T> {
        self.report(retries, waited_ms);
        self.health.record_failure(key, self.inner.now_ms());
        Err(e.with_context(op, key))
    }

    /// Terminal non-retryable outcome: semantic errors count as backend
    /// health (the store answered authoritatively); crash-model and
    /// cancellation faults are neutral and only release a held probe.
    fn settle_terminal(&self, key: &str, e: &StoreError, probe: bool) {
        match e.root() {
            StoreError::NotFound(_)
            | StoreError::AlreadyExists(_)
            | StoreError::InvalidRange { .. } => {
                self.health.record_success(key, self.inner.now_ms());
            }
            _ => {
                if probe {
                    self.health.release_probe(key);
                }
            }
        }
    }

    /// Runs `call` under the retry loop for operation `op` on `key`.
    fn run_op<T>(
        &self,
        op: &'static str,
        key: &str,
        mut call: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        let probe = self.admit_key(key)?;
        let budget = self.policy.max_attempts.max(1);
        let mut retries = 0u64;
        let mut waited_ms = 0u64;
        for attempt in 0..budget {
            match call() {
                Ok(v) => {
                    self.report(retries, waited_ms);
                    self.health.record_success(key, self.inner.now_ms());
                    return Ok(v);
                }
                Err(e) if e.is_retryable() && !crate::cancel::is_cancelled(&e) => {
                    if attempt + 1 >= budget {
                        return self.fail_op(op, key, e, retries, waited_ms);
                    }
                    let now = self.inner.now_ms();
                    // A breaker that opened mid-operation (correlated
                    // collapse observed by sibling ops) stops this loop
                    // too — keep hammering an outage helps nobody.
                    if self.health.state(HealthTracker::domain_of(key), now) == BreakerState::Open {
                        return self.fail_op(op, key, e, retries, waited_ms);
                    }
                    let wait = self.wait_ms(attempt, &e);
                    if let Some(deadline_ms) = current_deadline_ms() {
                        if now.saturating_add(wait) > deadline_ms {
                            self.report(retries, waited_ms);
                            self.health.record_failure(key, now);
                            return Err(StoreError::DeadlineExceeded {
                                deadline_ms,
                                now_ms: now,
                            });
                        }
                    }
                    if !self.health.try_spend_retry_token() {
                        self.inner.record_health(0, 1);
                        return self.fail_op(op, key, e, retries, waited_ms);
                    }
                    self.sleep(wait);
                    waited_ms += wait;
                    retries += 1;
                }
                Err(e) => {
                    self.report(retries, waited_ms);
                    self.settle_terminal(key, &e, probe);
                    return Err(e);
                }
            }
        }
        unreachable!("retry loop returns on its final attempt");
    }

    /// Checks a range response for tearing: fewer bytes than the object
    /// could have served for this range. Needs a HEAD to tell a torn
    /// response from S3's legitimate truncation of over-long ranges.
    fn verify_range(&self, key: &str, range: &Range<u64>, data: &Bytes) -> Result<()> {
        if !self.policy.verify_short_reads {
            return Ok(());
        }
        let requested = range.end.saturating_sub(range.start);
        if data.len() as u64 >= requested {
            return Ok(());
        }
        let size = self.inner.head(key)?.size;
        let expected = range.end.min(size).saturating_sub(range.start);
        if (data.len() as u64) < expected {
            return Err(StoreError::Transient("torn range read"));
        }
        Ok(())
    }
}

impl<S: ObjectStore> ObjectStore for RetryStore<S> {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        // Unconditional PUT is idempotent: an ack-lost write that landed is
        // indistinguishable from the retry landing, so plain retry is safe.
        self.run_op("put", key, || self.inner.put(key, data.clone()))
    }

    fn put_if_absent(&self, key: &str, data: Bytes) -> Result<()> {
        let probe = self.admit_key(key)?;
        let budget = self.policy.max_attempts.max(1);
        let mut retries = 0u64;
        let mut waited_ms = 0u64;
        // Set once any attempt fails transiently: from then on the write
        // may have landed without us knowing.
        let mut ambiguous = false;
        for attempt in 0..budget {
            match self.inner.put_if_absent(key, data.clone()) {
                Ok(()) => {
                    self.report(retries, waited_ms);
                    self.health.record_success(key, self.inner.now_ms());
                    return Ok(());
                }
                Err(StoreError::AlreadyExists(k)) if ambiguous => {
                    // Did *our* earlier attempt win before its ack was
                    // lost? Read the winner back and compare payloads —
                    // reporting "conflict" for our own write would make the
                    // caller re-commit the same operation under a new key.
                    self.report(retries, waited_ms);
                    self.health.record_success(key, self.inner.now_ms());
                    return match self.run_op("get", key, || self.inner.get(key)) {
                        Ok(winner) if winner == data => Ok(()),
                        Ok(_) => Err(StoreError::AlreadyExists(k)),
                        Err(e) => Err(e),
                    };
                }
                Err(e) if e.is_retryable() && !crate::cancel::is_cancelled(&e) => {
                    if attempt + 1 >= budget {
                        return self.fail_op("put_if_absent", key, e, retries, waited_ms);
                    }
                    let now = self.inner.now_ms();
                    if self.health.state(HealthTracker::domain_of(key), now) == BreakerState::Open {
                        return self.fail_op("put_if_absent", key, e, retries, waited_ms);
                    }
                    let wait = self.wait_ms(attempt, &e);
                    if let Some(deadline_ms) = current_deadline_ms() {
                        if now.saturating_add(wait) > deadline_ms {
                            self.report(retries, waited_ms);
                            self.health.record_failure(key, now);
                            return Err(StoreError::DeadlineExceeded {
                                deadline_ms,
                                now_ms: now,
                            });
                        }
                    }
                    if !self.health.try_spend_retry_token() {
                        self.inner.record_health(0, 1);
                        return self.fail_op("put_if_absent", key, e, retries, waited_ms);
                    }
                    ambiguous = true;
                    self.sleep(wait);
                    waited_ms += wait;
                    retries += 1;
                }
                Err(e) => {
                    self.report(retries, waited_ms);
                    self.settle_terminal(key, &e, probe);
                    return Err(e);
                }
            }
        }
        unreachable!("retry loop returns on its final attempt");
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.run_op("get", key, || self.inner.get(key))
    }

    fn get_range(&self, key: &str, range: Range<u64>) -> Result<Bytes> {
        self.run_op("get_range", key, || {
            let data = self.inner.get_range(key, range.clone())?;
            self.verify_range(key, &range, &data)?;
            Ok(data)
        })
    }

    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<Vec<Bytes>> {
        // The batch models N *parallel* GETs, and the inner API is
        // all-or-nothing — retrying the whole batch would make a large batch
        // under a per-request fault rate practically unfinishable (every
        // attempt re-rolls every sub-request). Like a real S3 client, issue
        // the batch once and retry only the affected entries individually.
        let Some(first) = requests.first() else {
            return self.inner.get_ranges(requests);
        };
        let probe = self.admit_key(&first.key)?;
        match self.inner.get_ranges(requests) {
            Ok(mut out) => {
                self.health.record_success(&first.key, self.inner.now_ms());
                if self.policy.verify_short_reads {
                    for (i, req) in requests.iter().enumerate() {
                        if self.verify_range(&req.key, &req.range, &out[i]).is_err() {
                            out[i] = self.get_range(&req.key, req.range.clone())?;
                        }
                    }
                }
                Ok(out)
            }
            Err(e)
                if e.is_retryable()
                    && !crate::cancel::is_cancelled(&e)
                    && self.policy.enabled() =>
            {
                // The per-entry re-issues below do their own breaker
                // admission and budget spends; the batch itself resolves
                // neutrally.
                if probe {
                    self.health.release_probe(&first.key);
                }
                self.inner.record_retry(1, 0);
                requests
                    .iter()
                    .map(|req| self.get_range(&req.key, req.range.clone()))
                    .collect()
            }
            Err(e) if e.is_retryable() && !crate::cancel::is_cancelled(&e) => {
                self.health.record_failure(&first.key, self.inner.now_ms());
                Err(e.with_context("get_ranges", &first.key))
            }
            Err(e) => {
                self.settle_terminal(&first.key, &e, probe);
                Err(e)
            }
        }
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.run_op("head", key, || self.inner.head(key))
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.run_op("list", prefix, || self.inner.list(prefix))
    }

    fn delete(&self, key: &str) -> Result<()> {
        // DELETE is idempotent (deleting a missing key succeeds).
        self.run_op("delete", key, || self.inner.delete(key))
    }

    fn now_ms(&self) -> u64 {
        self.inner.now_ms()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn clock(&self) -> Option<&SimClock> {
        self.inner.clock()
    }

    fn record_retry(&self, retries: u64, backoff_ms: u64) {
        self.inner.record_retry(retries, backoff_ms);
    }

    fn coalesce_gap(&self) -> Option<u64> {
        self.inner.coalesce_gap()
    }

    fn store_id(&self) -> u64 {
        self.inner.store_id()
    }

    fn record_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.inner.record_cache(hits, misses, bytes_saved);
    }

    fn record_coalesced(&self, n: u64) {
        self.inner.record_coalesced(n);
    }

    fn record_page_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.inner.record_page_cache(hits, misses, bytes_saved);
    }

    fn record_page_cache_bypass(&self, n: u64) {
        self.inner.record_page_cache_bypass(n);
    }

    fn record_dedup(&self, n: u64) {
        self.inner.record_dedup(n);
    }

    fn record_health(&self, breaker_rejections: u64, retry_tokens_denied: u64) {
        self.inner
            .record_health(breaker_rejections, retry_tokens_denied);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::{ChaosConfig, FaultKind, LatencyModel, MemoryStore};

    fn wrap(store: &Arc<MemoryStore>) -> RetryStore<&MemoryStore> {
        RetryStore::new(store.as_ref(), RetryPolicy::default())
    }

    #[test]
    fn transient_get_is_retried_to_success() {
        let store = MemoryStore::unmetered();
        store.put("a/k", Bytes::from_static(b"v")).unwrap();
        store
            .faults()
            .arm(FaultKind::TransientGetMatching("a/k".into()));
        let retry = wrap(&store);
        assert_eq!(retry.get("a/k").unwrap(), Bytes::from_static(b"v"));
        let stats = store.stats();
        assert_eq!(stats.retries, 1);
        assert!(stats.backoff_ms > 0);
        assert_eq!(stats.faults_injected, 1);
        assert!(store.clock().unwrap().now_ms() >= stats.backoff_ms);
    }

    #[test]
    fn exhausted_budget_surfaces_the_transient_error() {
        let store = MemoryStore::unmetered();
        store.put("a/k", Bytes::from_static(b"v")).unwrap();
        store.faults().set_chaos(Some(ChaosConfig {
            get_fail_p: 1.0,
            ..ChaosConfig::uniform(1, 0.0)
        }));
        let retry = RetryStore::new(
            store.as_ref(),
            RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
        );
        let err = retry.get("a/k").unwrap_err();
        assert!(err.is_retryable(), "the original error surfaces: {err}");
        assert_eq!(
            store.stats().retries,
            2,
            "two retries after the first attempt"
        );
    }

    #[test]
    fn injected_crash_faults_are_not_retried() {
        let store = MemoryStore::unmetered();
        store.put("a/k", Bytes::from_static(b"v")).unwrap();
        let before = store.stats();
        store.faults().arm(FaultKind::FailGetMatching("a/k".into()));
        let retry = wrap(&store);
        assert!(matches!(retry.get("a/k"), Err(StoreError::Injected(_))));
        let delta = store.stats().since(&before);
        assert_eq!(delta.retries, 0);
        assert_eq!(
            delta.gets, 0,
            "the crash fault fired before the request was issued"
        );
    }

    #[test]
    fn deterministic_errors_pass_through() {
        let store = MemoryStore::unmetered();
        let retry = wrap(&store);
        assert!(matches!(retry.get("missing"), Err(StoreError::NotFound(_))));
        retry.put_if_absent("k", Bytes::from_static(b"a")).unwrap();
        assert!(matches!(
            retry.put_if_absent("k", Bytes::from_static(b"b")),
            Err(StoreError::AlreadyExists(_))
        ));
        assert_eq!(store.stats().retries, 0);
    }

    #[test]
    fn ack_lost_put_if_absent_is_not_misreported_as_conflict() {
        let store = MemoryStore::unmetered();
        store
            .faults()
            .arm(FaultKind::AckLostPutMatching("commit".into()));
        let retry = wrap(&store);
        // First attempt lands but reports Transient; the retry sees
        // AlreadyExists, reads the winner back, and recognises its own
        // payload.
        retry
            .put_if_absent("log/commit-7", Bytes::from_static(b"mine"))
            .unwrap();
        assert_eq!(
            store.get("log/commit-7").unwrap(),
            Bytes::from_static(b"mine")
        );
        // A genuine conflict afterwards still reports AlreadyExists.
        assert!(matches!(
            retry.put_if_absent("log/commit-7", Bytes::from_static(b"other")),
            Err(StoreError::AlreadyExists(_))
        ));
    }

    #[test]
    fn lost_race_after_transient_failure_is_a_real_conflict() {
        let store = MemoryStore::unmetered();
        store.put("log/v1", Bytes::from_static(b"theirs")).unwrap();
        // Our first attempt fails transiently *without* landing; the retry
        // sees AlreadyExists and must verify the winner is someone else.
        store
            .faults()
            .arm(FaultKind::TransientPutMatching("log/v1".into()));
        let retry = wrap(&store);
        assert!(matches!(
            retry.put_if_absent("log/v1", Bytes::from_static(b"mine")),
            Err(StoreError::AlreadyExists(_))
        ));
        assert_eq!(store.get("log/v1").unwrap(), Bytes::from_static(b"theirs"));
    }

    #[test]
    fn throttled_get_waits_at_least_retry_after() {
        let store = MemoryStore::with_rejecting_throttle(LatencyModel::zero(), 2);
        store.put("p/k", Bytes::from_static(b"v")).unwrap();
        let retry = wrap(&store);
        retry.get("p/k").unwrap();
        retry.get("p/k").unwrap();
        // Third GET is rejected; the retry must outwait the window.
        let t0 = store.clock().unwrap().now_ms();
        retry.get("p/k").unwrap();
        let waited = store.clock().unwrap().now_ms() - t0;
        assert!(waited >= 1000, "waited only {waited}ms for a 1s window");
        let stats = store.stats();
        assert!(stats.throttle_rejections >= 1);
        assert!(stats.retries >= 1);
    }

    /// Delegates to a [`MemoryStore`] but tears the first range read —
    /// deterministic torn-read coverage without probabilistic chaos.
    struct TornOnce {
        inner: Arc<MemoryStore>,
        torn: std::sync::atomic::AtomicBool,
    }

    impl ObjectStore for TornOnce {
        fn put(&self, key: &str, data: Bytes) -> Result<()> {
            self.inner.put(key, data)
        }
        fn put_if_absent(&self, key: &str, data: Bytes) -> Result<()> {
            self.inner.put_if_absent(key, data)
        }
        fn get(&self, key: &str) -> Result<Bytes> {
            self.inner.get(key)
        }
        fn get_range(&self, key: &str, range: Range<u64>) -> Result<Bytes> {
            let data = self.inner.get_range(key, range)?;
            if !self.torn.swap(true, Ordering::SeqCst) && data.len() > 1 {
                return Ok(data.slice(..data.len() / 2));
            }
            Ok(data)
        }
        fn head(&self, key: &str) -> Result<ObjectMeta> {
            self.inner.head(key)
        }
        fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
            self.inner.list(prefix)
        }
        fn delete(&self, key: &str) -> Result<()> {
            self.inner.delete(key)
        }
        fn now_ms(&self) -> u64 {
            self.inner.now_ms()
        }
        fn stats(&self) -> StatsSnapshot {
            self.inner.stats()
        }
        fn clock(&self) -> Option<&SimClock> {
            self.inner.clock()
        }
    }

    #[test]
    fn torn_range_read_is_detected_and_retried() {
        let inner = MemoryStore::unmetered();
        inner.put("t/obj", Bytes::from(vec![9u8; 1000])).unwrap();
        let torn = TornOnce {
            inner,
            torn: std::sync::atomic::AtomicBool::new(false),
        };
        let retry = RetryStore::new(
            torn,
            RetryPolicy {
                verify_short_reads: true,
                ..RetryPolicy::default()
            },
        );
        let data = retry.get_range("t/obj", 0..1000).unwrap();
        assert_eq!(
            data.len(),
            1000,
            "the torn response was retried to a full one"
        );
    }

    #[test]
    fn legitimate_eof_truncation_is_not_flagged_as_torn() {
        let store = MemoryStore::unmetered();
        store.put("t/obj", Bytes::from(vec![9u8; 100])).unwrap();
        let retry = RetryStore::new(
            store.as_ref(),
            RetryPolicy {
                verify_short_reads: true,
                ..RetryPolicy::default()
            },
        );
        // S3 truncates over-long ranges; the verifier must accept this.
        let data = retry.get_range("t/obj", 50..4096).unwrap();
        assert_eq!(data.len(), 50);
        assert_eq!(store.stats().retries, 0);
    }

    #[test]
    fn failed_batch_get_retries_entries_individually() {
        let store = MemoryStore::unmetered();
        store.put("b/x", Bytes::from(vec![1u8; 64])).unwrap();
        store.put("b/y", Bytes::from(vec![2u8; 64])).unwrap();
        // The all-or-nothing batch fails on one bad entry; the decorator
        // must not re-roll the whole batch, only re-issue the entries.
        store
            .faults()
            .arm(FaultKind::TransientGetMatching("b/x".into()));
        let retry = wrap(&store);
        let out = retry
            .get_ranges(&[
                RangeRequest {
                    key: "b/x".into(),
                    range: 0..64,
                },
                RangeRequest {
                    key: "b/y".into(),
                    range: 0..64,
                },
            ])
            .unwrap();
        assert_eq!(out[0], Bytes::from(vec![1u8; 64]));
        assert_eq!(out[1], Bytes::from(vec![2u8; 64]));
        let stats = store.stats();
        assert_eq!(stats.faults_injected, 1);
        assert!(stats.retries >= 1, "the batch re-issue counts as a retry");
    }

    #[test]
    fn wrapping_a_dyn_store_compiles_and_works() {
        let store = MemoryStore::unmetered();
        let dynamic: &dyn ObjectStore = store.as_ref();
        let retry = RetryStore::new(dynamic, RetryPolicy::default());
        retry.put("k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(retry.get("k").unwrap(), Bytes::from_static(b"v"));
        assert_eq!(retry.list("").unwrap().len(), 1);
    }

    #[test]
    fn correlated_failures_open_the_breaker_and_fail_fast() {
        let store = MemoryStore::unmetered();
        store.put("idx/k", Bytes::from_static(b"v")).unwrap();
        store.faults().set_chaos(Some(ChaosConfig {
            get_fail_p: 1.0,
            ..ChaosConfig::uniform(1, 0.0)
        }));
        let health = Arc::new(HealthTracker::new(crate::HealthConfig {
            consecutive_failures: 3,
            cooldown_ms: 10_000,
            ..crate::HealthConfig::default()
        }));
        let retry = RetryStore::with_health(
            store.as_ref(),
            RetryPolicy {
                max_attempts: 2,
                base_backoff_ms: 1,
                max_backoff_ms: 2,
                ..RetryPolicy::default()
            },
            health.clone(),
        );

        // Three exhausted operations trip the breaker for the `idx` domain.
        for _ in 0..3 {
            assert!(retry.get("idx/k").is_err());
        }
        assert_eq!(
            health.state("idx", store.now_ms()),
            BreakerState::Open,
            "terminal failures opened the breaker"
        );

        // The fourth call is rejected at admission: typed, zero backend
        // traffic, counted in the store's health stats.
        let before = store.stats();
        let err = retry.get("idx/k").unwrap_err();
        assert!(
            matches!(err.root(), StoreError::BreakerOpen { domain, .. } if domain == "idx"),
            "typed breaker rejection, got {err:?}"
        );
        let delta = store.stats().since(&before);
        assert_eq!(delta.gets, 0, "open breaker never touches the backend");
        assert_eq!(delta.breaker_rejections, 1);

        // An unrelated domain is unaffected by idx's open breaker.
        store.faults().set_chaos(None);
        store.put("tbl/k", Bytes::from_static(b"t")).unwrap();
        assert_eq!(retry.get("tbl/k").unwrap(), Bytes::from_static(b"t"));
    }

    #[test]
    fn deadline_that_cannot_fit_a_backoff_fails_typed() {
        let store = MemoryStore::unmetered();
        store.put("idx/k", Bytes::from_static(b"v")).unwrap();
        store.faults().set_chaos(Some(ChaosConfig {
            get_fail_p: 1.0,
            ..ChaosConfig::uniform(7, 0.0)
        }));
        let retry = RetryStore::new(
            store.as_ref(),
            RetryPolicy {
                max_attempts: 10,
                base_backoff_ms: 50,
                max_backoff_ms: 100,
                ..RetryPolicy::default()
            },
        );

        // The caller's absolute deadline is 1ms away — no 50ms backoff can
        // fit, so the first failure surfaces as DeadlineExceeded instead of
        // a swallowed sleep.
        let _guard = push_deadline(Some(store.now_ms() + 1));
        let err = retry.get("idx/k").unwrap_err();
        assert!(
            matches!(err.root(), StoreError::DeadlineExceeded { .. }),
            "typed deadline error, got {err:?}"
        );
        assert_eq!(store.stats().retries, 0, "no retry was attempted");
    }

    #[test]
    fn exhausted_retry_budget_denies_retries_with_provenance() {
        let store = MemoryStore::unmetered();
        store.put("idx/k", Bytes::from_static(b"v")).unwrap();
        store.faults().set_chaos(Some(ChaosConfig {
            get_fail_p: 1.0,
            ..ChaosConfig::uniform(3, 0.0)
        }));
        // One retry token, never refilled (every op fails), and a breaker
        // that cannot interfere.
        let health = Arc::new(HealthTracker::new(crate::HealthConfig {
            consecutive_failures: u32::MAX,
            error_rate_permille: 1001,
            retry_budget_tokens: 1,
            retry_refill_millitokens: 0,
            ..crate::HealthConfig::default()
        }));
        let retry = RetryStore::with_health(
            store.as_ref(),
            RetryPolicy {
                max_attempts: 4,
                base_backoff_ms: 1,
                max_backoff_ms: 2,
                ..RetryPolicy::default()
            },
            health,
        );

        let err = retry.get("idx/k").unwrap_err();
        assert!(
            matches!(err, StoreError::Context { op: "get", ref key, .. } if key == "idx/k"),
            "provenance names the failing op and key, got {err:?}"
        );
        assert!(err.root().is_retryable(), "the root cause is preserved");
        let stats = store.stats();
        assert_eq!(stats.retries, 1, "only the budgeted retry ran");
        assert!(
            stats.retry_tokens_denied >= 1,
            "the denied retry is counted, got {stats:?}"
        );
    }
}
