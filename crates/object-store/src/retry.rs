//! A retrying [`ObjectStore`] decorator: capped exponential backoff with
//! full jitter, driven by the store's [`SimClock`] when it has one.
//!
//! Production S3 clients wrap every request in jittered exponential backoff
//! because the service throttles (`503 SlowDown`, §VII-D3) and fails
//! transiently as a matter of course. [`RetryStore`] reproduces that layer:
//!
//! * Only [retryable](StoreError::is_retryable) errors are retried —
//!   [`StoreError::Injected`] crash faults and deterministic outcomes
//!   (`NotFound`, `AlreadyExists`, `InvalidRange`, `Io`) surface untouched.
//! * Backoff *advances the simulated clock* instead of sleeping, so tests
//!   stay deterministic and retry storms show up as simulated latency.
//! * [`StoreError::Throttled`] waits at least the server-suggested
//!   `retry_after_ms` (the jittered backoff only lengthens it).
//! * The one genuinely ambiguous case — a `put_if_absent` whose earlier
//!   attempt *may* have landed before the ack was lost — is resolved by
//!   reading the winning object back and comparing payloads, so a caller is
//!   never told "conflict" when it actually won the race.
//! * Optional torn-read verification (`verify_short_reads`) detects range
//!   responses shorter than they should be and retries them; a `HEAD`
//!   distinguishes real tearing from S3's legitimate truncation of ranges
//!   running past the end of the object.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;

use crate::{ObjectMeta, ObjectStore, RangeRequest, Result, SimClock, StatsSnapshot, StoreError};

/// Retry/backoff parameters for a [`RetryStore`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff ceiling before jitter for attempt `n` is
    /// `min(max_backoff_ms, base_backoff_ms << n)`.
    pub base_backoff_ms: u64,
    /// Upper bound on a single backoff wait, in milliseconds.
    pub max_backoff_ms: u64,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Verify that range GETs return as many bytes as the object allows,
    /// retrying short (torn) responses. Costs a HEAD per short response, so
    /// it is off by default — speculative over-long reads (a common
    /// footer-fetch idiom) would otherwise pay it on every legitimate
    /// truncation.
    pub verify_short_reads: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_backoff_ms: 25,
            max_backoff_ms: 2_000,
            jitter_seed: 0x9E37_79B9,
            verify_short_reads: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — the decorator becomes a transparent
    /// pass-through (seed behaviour).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Whether this policy ever retries.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// The pre-jitter backoff ceiling for retry number `attempt` (0-based).
    pub fn backoff_ceiling_ms(&self, attempt: u32) -> u64 {
        let shifted = self.base_backoff_ms.saturating_mul(1u64 << attempt.min(20));
        shifted.min(self.max_backoff_ms)
    }
}

/// An [`ObjectStore`] decorator that retries transient failures with capped
/// exponential backoff and full jitter.
///
/// Wraps any store, including `&dyn ObjectStore`. Retry activity is
/// reported to the inner store via
/// [`record_retry`](ObjectStore::record_retry) so it lands in the shared
/// [`stats()`](ObjectStore::stats).
#[derive(Debug)]
pub struct RetryStore<S> {
    inner: S,
    policy: RetryPolicy,
    rng: AtomicU64,
}

impl<S: ObjectStore> RetryStore<S> {
    /// Wraps `inner` with the given retry policy.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        let rng = AtomicU64::new(policy.jitter_seed ^ 0xA076_1D64_78BD_642F);
        Self { inner, policy, rng }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The policy in effect.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn next_unit(&self) -> f64 {
        let s = self
            .rng
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Full-jitter wait for retry `attempt`, honouring a server-provided
    /// `retry_after_ms` as a floor.
    fn wait_ms(&self, attempt: u32, err: &StoreError) -> u64 {
        let ceiling = self.policy.backoff_ceiling_ms(attempt);
        let mut wait = (ceiling as f64 * self.next_unit()) as u64 + 1;
        if let StoreError::Throttled { retry_after_ms } = err {
            wait = wait.max(*retry_after_ms);
        }
        wait
    }

    /// Waits `ms` of *simulated* time when the store has a clock; falls
    /// back to a (bounded) wall-clock sleep for real backends.
    fn sleep(&self, ms: u64) {
        match self.inner.clock() {
            Some(clock) => clock.advance_ms(ms),
            None => std::thread::sleep(std::time::Duration::from_millis(ms.min(100))),
        }
    }

    fn report(&self, retries: u64, waited_ms: u64) {
        if retries > 0 {
            self.inner.record_retry(retries, waited_ms);
        }
    }

    /// Runs `op` under the retry loop.
    fn run<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let budget = self.policy.max_attempts.max(1);
        let mut retries = 0u64;
        let mut waited_ms = 0u64;
        for attempt in 0..budget {
            match op() {
                Ok(v) => {
                    self.report(retries, waited_ms);
                    return Ok(v);
                }
                Err(e) if e.is_retryable() && attempt + 1 < budget => {
                    let wait = self.wait_ms(attempt, &e);
                    self.sleep(wait);
                    waited_ms += wait;
                    retries += 1;
                }
                Err(e) => {
                    self.report(retries, waited_ms);
                    return Err(e);
                }
            }
        }
        unreachable!("retry loop returns on its final attempt");
    }

    /// Checks a range response for tearing: fewer bytes than the object
    /// could have served for this range. Needs a HEAD to tell a torn
    /// response from S3's legitimate truncation of over-long ranges.
    fn verify_range(&self, key: &str, range: &Range<u64>, data: &Bytes) -> Result<()> {
        if !self.policy.verify_short_reads {
            return Ok(());
        }
        let requested = range.end.saturating_sub(range.start);
        if data.len() as u64 >= requested {
            return Ok(());
        }
        let size = self.inner.head(key)?.size;
        let expected = range.end.min(size).saturating_sub(range.start);
        if (data.len() as u64) < expected {
            return Err(StoreError::Transient("torn range read"));
        }
        Ok(())
    }
}

impl<S: ObjectStore> ObjectStore for RetryStore<S> {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        // Unconditional PUT is idempotent: an ack-lost write that landed is
        // indistinguishable from the retry landing, so plain retry is safe.
        self.run(|| self.inner.put(key, data.clone()))
    }

    fn put_if_absent(&self, key: &str, data: Bytes) -> Result<()> {
        let budget = self.policy.max_attempts.max(1);
        let mut retries = 0u64;
        let mut waited_ms = 0u64;
        // Set once any attempt fails transiently: from then on the write
        // may have landed without us knowing.
        let mut ambiguous = false;
        for attempt in 0..budget {
            match self.inner.put_if_absent(key, data.clone()) {
                Ok(()) => {
                    self.report(retries, waited_ms);
                    return Ok(());
                }
                Err(StoreError::AlreadyExists(k)) if ambiguous => {
                    // Did *our* earlier attempt win before its ack was
                    // lost? Read the winner back and compare payloads —
                    // reporting "conflict" for our own write would make the
                    // caller re-commit the same operation under a new key.
                    self.report(retries, waited_ms);
                    return match self.run(|| self.inner.get(key)) {
                        Ok(winner) if winner == data => Ok(()),
                        Ok(_) => Err(StoreError::AlreadyExists(k)),
                        Err(e) => Err(e),
                    };
                }
                Err(e) if e.is_retryable() && attempt + 1 < budget => {
                    ambiguous = true;
                    let wait = self.wait_ms(attempt, &e);
                    self.sleep(wait);
                    waited_ms += wait;
                    retries += 1;
                }
                Err(e) => {
                    self.report(retries, waited_ms);
                    return Err(e);
                }
            }
        }
        unreachable!("retry loop returns on its final attempt");
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.run(|| self.inner.get(key))
    }

    fn get_range(&self, key: &str, range: Range<u64>) -> Result<Bytes> {
        self.run(|| {
            let data = self.inner.get_range(key, range.clone())?;
            self.verify_range(key, &range, &data)?;
            Ok(data)
        })
    }

    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<Vec<Bytes>> {
        // The batch models N *parallel* GETs, and the inner API is
        // all-or-nothing — retrying the whole batch would make a large batch
        // under a per-request fault rate practically unfinishable (every
        // attempt re-rolls every sub-request). Like a real S3 client, issue
        // the batch once and retry only the affected entries individually.
        match self.inner.get_ranges(requests) {
            Ok(mut out) => {
                if self.policy.verify_short_reads {
                    for (i, req) in requests.iter().enumerate() {
                        if self.verify_range(&req.key, &req.range, &out[i]).is_err() {
                            out[i] = self.get_range(&req.key, req.range.clone())?;
                        }
                    }
                }
                Ok(out)
            }
            Err(e) if e.is_retryable() && self.policy.enabled() => {
                self.inner.record_retry(1, 0);
                requests
                    .iter()
                    .map(|req| self.get_range(&req.key, req.range.clone()))
                    .collect()
            }
            Err(e) => Err(e),
        }
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.run(|| self.inner.head(key))
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.run(|| self.inner.list(prefix))
    }

    fn delete(&self, key: &str) -> Result<()> {
        // DELETE is idempotent (deleting a missing key succeeds).
        self.run(|| self.inner.delete(key))
    }

    fn now_ms(&self) -> u64 {
        self.inner.now_ms()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn clock(&self) -> Option<&SimClock> {
        self.inner.clock()
    }

    fn record_retry(&self, retries: u64, backoff_ms: u64) {
        self.inner.record_retry(retries, backoff_ms);
    }

    fn coalesce_gap(&self) -> Option<u64> {
        self.inner.coalesce_gap()
    }

    fn store_id(&self) -> u64 {
        self.inner.store_id()
    }

    fn record_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.inner.record_cache(hits, misses, bytes_saved);
    }

    fn record_coalesced(&self, n: u64) {
        self.inner.record_coalesced(n);
    }

    fn record_page_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.inner.record_page_cache(hits, misses, bytes_saved);
    }

    fn record_page_cache_bypass(&self, n: u64) {
        self.inner.record_page_cache_bypass(n);
    }

    fn record_dedup(&self, n: u64) {
        self.inner.record_dedup(n);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::{ChaosConfig, FaultKind, LatencyModel, MemoryStore};

    fn wrap(store: &Arc<MemoryStore>) -> RetryStore<&MemoryStore> {
        RetryStore::new(store.as_ref(), RetryPolicy::default())
    }

    #[test]
    fn transient_get_is_retried_to_success() {
        let store = MemoryStore::unmetered();
        store.put("a/k", Bytes::from_static(b"v")).unwrap();
        store
            .faults()
            .arm(FaultKind::TransientGetMatching("a/k".into()));
        let retry = wrap(&store);
        assert_eq!(retry.get("a/k").unwrap(), Bytes::from_static(b"v"));
        let stats = store.stats();
        assert_eq!(stats.retries, 1);
        assert!(stats.backoff_ms > 0);
        assert_eq!(stats.faults_injected, 1);
        assert!(store.clock().unwrap().now_ms() >= stats.backoff_ms);
    }

    #[test]
    fn exhausted_budget_surfaces_the_transient_error() {
        let store = MemoryStore::unmetered();
        store.put("a/k", Bytes::from_static(b"v")).unwrap();
        store.faults().set_chaos(Some(ChaosConfig {
            get_fail_p: 1.0,
            ..ChaosConfig::uniform(1, 0.0)
        }));
        let retry = RetryStore::new(
            store.as_ref(),
            RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
        );
        let err = retry.get("a/k").unwrap_err();
        assert!(err.is_retryable(), "the original error surfaces: {err}");
        assert_eq!(
            store.stats().retries,
            2,
            "two retries after the first attempt"
        );
    }

    #[test]
    fn injected_crash_faults_are_not_retried() {
        let store = MemoryStore::unmetered();
        store.put("a/k", Bytes::from_static(b"v")).unwrap();
        let before = store.stats();
        store.faults().arm(FaultKind::FailGetMatching("a/k".into()));
        let retry = wrap(&store);
        assert!(matches!(retry.get("a/k"), Err(StoreError::Injected(_))));
        let delta = store.stats().since(&before);
        assert_eq!(delta.retries, 0);
        assert_eq!(
            delta.gets, 0,
            "the crash fault fired before the request was issued"
        );
    }

    #[test]
    fn deterministic_errors_pass_through() {
        let store = MemoryStore::unmetered();
        let retry = wrap(&store);
        assert!(matches!(retry.get("missing"), Err(StoreError::NotFound(_))));
        retry.put_if_absent("k", Bytes::from_static(b"a")).unwrap();
        assert!(matches!(
            retry.put_if_absent("k", Bytes::from_static(b"b")),
            Err(StoreError::AlreadyExists(_))
        ));
        assert_eq!(store.stats().retries, 0);
    }

    #[test]
    fn ack_lost_put_if_absent_is_not_misreported_as_conflict() {
        let store = MemoryStore::unmetered();
        store
            .faults()
            .arm(FaultKind::AckLostPutMatching("commit".into()));
        let retry = wrap(&store);
        // First attempt lands but reports Transient; the retry sees
        // AlreadyExists, reads the winner back, and recognises its own
        // payload.
        retry
            .put_if_absent("log/commit-7", Bytes::from_static(b"mine"))
            .unwrap();
        assert_eq!(
            store.get("log/commit-7").unwrap(),
            Bytes::from_static(b"mine")
        );
        // A genuine conflict afterwards still reports AlreadyExists.
        assert!(matches!(
            retry.put_if_absent("log/commit-7", Bytes::from_static(b"other")),
            Err(StoreError::AlreadyExists(_))
        ));
    }

    #[test]
    fn lost_race_after_transient_failure_is_a_real_conflict() {
        let store = MemoryStore::unmetered();
        store.put("log/v1", Bytes::from_static(b"theirs")).unwrap();
        // Our first attempt fails transiently *without* landing; the retry
        // sees AlreadyExists and must verify the winner is someone else.
        store
            .faults()
            .arm(FaultKind::TransientPutMatching("log/v1".into()));
        let retry = wrap(&store);
        assert!(matches!(
            retry.put_if_absent("log/v1", Bytes::from_static(b"mine")),
            Err(StoreError::AlreadyExists(_))
        ));
        assert_eq!(store.get("log/v1").unwrap(), Bytes::from_static(b"theirs"));
    }

    #[test]
    fn throttled_get_waits_at_least_retry_after() {
        let store = MemoryStore::with_rejecting_throttle(LatencyModel::zero(), 2);
        store.put("p/k", Bytes::from_static(b"v")).unwrap();
        let retry = wrap(&store);
        retry.get("p/k").unwrap();
        retry.get("p/k").unwrap();
        // Third GET is rejected; the retry must outwait the window.
        let t0 = store.clock().unwrap().now_ms();
        retry.get("p/k").unwrap();
        let waited = store.clock().unwrap().now_ms() - t0;
        assert!(waited >= 1000, "waited only {waited}ms for a 1s window");
        let stats = store.stats();
        assert!(stats.throttle_rejections >= 1);
        assert!(stats.retries >= 1);
    }

    /// Delegates to a [`MemoryStore`] but tears the first range read —
    /// deterministic torn-read coverage without probabilistic chaos.
    struct TornOnce {
        inner: Arc<MemoryStore>,
        torn: std::sync::atomic::AtomicBool,
    }

    impl ObjectStore for TornOnce {
        fn put(&self, key: &str, data: Bytes) -> Result<()> {
            self.inner.put(key, data)
        }
        fn put_if_absent(&self, key: &str, data: Bytes) -> Result<()> {
            self.inner.put_if_absent(key, data)
        }
        fn get(&self, key: &str) -> Result<Bytes> {
            self.inner.get(key)
        }
        fn get_range(&self, key: &str, range: Range<u64>) -> Result<Bytes> {
            let data = self.inner.get_range(key, range)?;
            if !self.torn.swap(true, Ordering::SeqCst) && data.len() > 1 {
                return Ok(data.slice(..data.len() / 2));
            }
            Ok(data)
        }
        fn head(&self, key: &str) -> Result<ObjectMeta> {
            self.inner.head(key)
        }
        fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
            self.inner.list(prefix)
        }
        fn delete(&self, key: &str) -> Result<()> {
            self.inner.delete(key)
        }
        fn now_ms(&self) -> u64 {
            self.inner.now_ms()
        }
        fn stats(&self) -> StatsSnapshot {
            self.inner.stats()
        }
        fn clock(&self) -> Option<&SimClock> {
            self.inner.clock()
        }
    }

    #[test]
    fn torn_range_read_is_detected_and_retried() {
        let inner = MemoryStore::unmetered();
        inner.put("t/obj", Bytes::from(vec![9u8; 1000])).unwrap();
        let torn = TornOnce {
            inner,
            torn: std::sync::atomic::AtomicBool::new(false),
        };
        let retry = RetryStore::new(
            torn,
            RetryPolicy {
                verify_short_reads: true,
                ..RetryPolicy::default()
            },
        );
        let data = retry.get_range("t/obj", 0..1000).unwrap();
        assert_eq!(
            data.len(),
            1000,
            "the torn response was retried to a full one"
        );
    }

    #[test]
    fn legitimate_eof_truncation_is_not_flagged_as_torn() {
        let store = MemoryStore::unmetered();
        store.put("t/obj", Bytes::from(vec![9u8; 100])).unwrap();
        let retry = RetryStore::new(
            store.as_ref(),
            RetryPolicy {
                verify_short_reads: true,
                ..RetryPolicy::default()
            },
        );
        // S3 truncates over-long ranges; the verifier must accept this.
        let data = retry.get_range("t/obj", 50..4096).unwrap();
        assert_eq!(data.len(), 50);
        assert_eq!(store.stats().retries, 0);
    }

    #[test]
    fn failed_batch_get_retries_entries_individually() {
        let store = MemoryStore::unmetered();
        store.put("b/x", Bytes::from(vec![1u8; 64])).unwrap();
        store.put("b/y", Bytes::from(vec![2u8; 64])).unwrap();
        // The all-or-nothing batch fails on one bad entry; the decorator
        // must not re-roll the whole batch, only re-issue the entries.
        store
            .faults()
            .arm(FaultKind::TransientGetMatching("b/x".into()));
        let retry = wrap(&store);
        let out = retry
            .get_ranges(&[
                RangeRequest {
                    key: "b/x".into(),
                    range: 0..64,
                },
                RangeRequest {
                    key: "b/y".into(),
                    range: 0..64,
                },
            ])
            .unwrap();
        assert_eq!(out[0], Bytes::from(vec![1u8; 64]));
        assert_eq!(out[1], Bytes::from(vec![2u8; 64]));
        let stats = store.stats();
        assert_eq!(stats.faults_injected, 1);
        assert!(stats.retries >= 1, "the batch re-issue counts as a retry");
    }

    #[test]
    fn wrapping_a_dyn_store_compiles_and_works() {
        let store = MemoryStore::unmetered();
        let dynamic: &dyn ObjectStore = store.as_ref();
        let retry = RetryStore::new(dynamic, RetryPolicy::default());
        retry.put("k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(retry.get("k").unwrap(), Bytes::from_static(b"v"));
        assert_eq!(retry.list("").unwrap().len(), 1);
    }
}
