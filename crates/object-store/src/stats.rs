//! Request statistics feeding the TCO cost model.
//!
//! Every store counts requests by kind and bytes moved. The TCO crate turns
//! a [`StatsSnapshot`] delta into dollars (S3 charges per request and the
//! paper's `cpq` terms derive from request latency × instance cost).

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic request counters owned by a store.
#[derive(Debug, Default)]
pub struct RequestStats {
    gets: AtomicU64,
    puts: AtomicU64,
    lists: AtomicU64,
    deletes: AtomicU64,
    heads: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    faults_injected: AtomicU64,
    throttle_rejections: AtomicU64,
    retries: AtomicU64,
    backoff_ms: AtomicU64,
    coalesced_gets: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_bytes_saved: AtomicU64,
    page_cache_hits: AtomicU64,
    page_cache_misses: AtomicU64,
    page_cache_bytes_saved: AtomicU64,
    page_cache_bypassed: AtomicU64,
    dedup_hits: AtomicU64,
    breaker_rejections: AtomicU64,
    retry_tokens_denied: AtomicU64,
}

impl RequestStats {
    /// Records a GET of `bytes`.
    pub fn record_get(&self, bytes: u64) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `n` GETs totalling `bytes` (for batch requests).
    pub fn record_gets(&self, n: u64, bytes: u64) {
        self.gets.fetch_add(n, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a PUT of `bytes`.
    pub fn record_put(&self, bytes: u64) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a LIST.
    pub fn record_list(&self) {
        self.lists.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a DELETE.
    pub fn record_delete(&self) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a HEAD.
    pub fn record_head(&self) {
        self.heads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fault injected by chaos mode or a one-shot pattern.
    pub fn record_fault(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request rejected by a rate limit (`503 SlowDown`).
    pub fn record_throttle_rejection(&self) {
        self.throttle_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records retry activity reported by a wrapping `RetryStore`.
    pub fn record_retry(&self, retries: u64, backoff_ms: u64) {
        self.retries.fetch_add(retries, Ordering::Relaxed);
        self.backoff_ms.fetch_add(backoff_ms, Ordering::Relaxed);
    }

    /// Records `n` range requests absorbed into a neighbour's merged GET
    /// by range coalescing.
    pub fn record_coalesced(&self, n: u64) {
        self.coalesced_gets.fetch_add(n, Ordering::Relaxed);
    }

    /// Records component-cache activity reported by a caching reader:
    /// `bytes_saved` counts GET bytes the cache avoided transferring.
    pub fn record_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
        self.cache_bytes_saved
            .fetch_add(bytes_saved, Ordering::Relaxed);
    }

    /// Records page-cache activity reported by a caching page reader:
    /// `bytes_saved` counts GET bytes the cache avoided transferring.
    pub fn record_page_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.page_cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.page_cache_misses.fetch_add(misses, Ordering::Relaxed);
        self.page_cache_bytes_saved
            .fetch_add(bytes_saved, Ordering::Relaxed);
    }

    /// Records `n` one-shot page reads that bypassed page-cache admission
    /// (index-builder downloads, brute-force scans).
    pub fn record_page_cache_bypass(&self, n: u64) {
        self.page_cache_bypassed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` reads served by joining another caller's identical
    /// in-flight request (single-flight deduplication) instead of issuing
    /// their own GETs.
    pub fn record_dedup(&self, n: u64) {
        self.dedup_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records health-subsystem activity reported by a wrapping
    /// `RetryStore`: requests rejected by an open circuit breaker and
    /// retries denied by an empty retry budget.
    pub fn record_health(&self, breaker_rejections: u64, retry_tokens_denied: u64) {
        self.breaker_rejections
            .fetch_add(breaker_rejections, Ordering::Relaxed);
        self.retry_tokens_denied
            .fetch_add(retry_tokens_denied, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            lists: self.lists.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            heads: self.heads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            throttle_rejections: self.throttle_rejections.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            backoff_ms: self.backoff_ms.load(Ordering::Relaxed),
            coalesced_gets: self.coalesced_gets.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_bytes_saved: self.cache_bytes_saved.load(Ordering::Relaxed),
            page_cache_hits: self.page_cache_hits.load(Ordering::Relaxed),
            page_cache_misses: self.page_cache_misses.load(Ordering::Relaxed),
            page_cache_bytes_saved: self.page_cache_bytes_saved.load(Ordering::Relaxed),
            page_cache_bypassed: self.page_cache_bypassed.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            breaker_rejections: self.breaker_rejections.load(Ordering::Relaxed),
            retry_tokens_denied: self.retry_tokens_denied.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Number of GET requests (range or whole-object).
    pub gets: u64,
    /// Number of PUT requests (including conditional).
    pub puts: u64,
    /// Number of LIST requests.
    pub lists: u64,
    /// Number of DELETE requests.
    pub deletes: u64,
    /// Number of HEAD requests.
    pub heads: u64,
    /// Total bytes returned by GETs.
    pub bytes_read: u64,
    /// Total bytes accepted by PUTs.
    pub bytes_written: u64,
    /// Faults injected by chaos mode or one-shot patterns.
    pub faults_injected: u64,
    /// Requests rejected with [`Throttled`](crate::StoreError::Throttled).
    pub throttle_rejections: u64,
    /// Retried requests reported by a wrapping `RetryStore`. Each retry is
    /// also counted under its request kind (a GET retried twice is 3 GETs).
    pub retries: u64,
    /// Total backoff wait reported by a wrapping `RetryStore`, in
    /// milliseconds of simulated time.
    pub backoff_ms: u64,
    /// Range requests absorbed into a neighbour's merged GET by range
    /// coalescing; each one is a round trip the caller did not pay.
    pub coalesced_gets: u64,
    /// Component-cache hits reported by caching readers.
    pub cache_hits: u64,
    /// Component-cache misses reported by caching readers.
    pub cache_misses: u64,
    /// GET bytes the component cache avoided transferring.
    pub cache_bytes_saved: u64,
    /// Page-cache hits reported by caching page readers.
    pub page_cache_hits: u64,
    /// Page-cache misses reported by caching page readers.
    pub page_cache_misses: u64,
    /// GET bytes the page cache avoided transferring.
    pub page_cache_bytes_saved: u64,
    /// One-shot page reads (index-builder downloads, brute-force scans)
    /// that deliberately bypassed page-cache admission.
    pub page_cache_bypassed: u64,
    /// Reads served by joining another caller's identical in-flight
    /// request (single-flight deduplication); each is a GET nobody paid.
    pub dedup_hits: u64,
    /// Requests rejected fast by an open circuit breaker — each is a
    /// request the backend never saw.
    pub breaker_rejections: u64,
    /// Retries the shared retry budget refused to fund (the bucket was
    /// empty — a correlated-failure signature).
    pub retry_tokens_denied: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier`; used to attribute requests
    /// to a single operation.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            gets: self.gets - earlier.gets,
            puts: self.puts - earlier.puts,
            lists: self.lists - earlier.lists,
            deletes: self.deletes - earlier.deletes,
            heads: self.heads - earlier.heads,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            faults_injected: self.faults_injected - earlier.faults_injected,
            throttle_rejections: self.throttle_rejections - earlier.throttle_rejections,
            retries: self.retries - earlier.retries,
            backoff_ms: self.backoff_ms - earlier.backoff_ms,
            coalesced_gets: self.coalesced_gets - earlier.coalesced_gets,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_bytes_saved: self.cache_bytes_saved - earlier.cache_bytes_saved,
            page_cache_hits: self.page_cache_hits - earlier.page_cache_hits,
            page_cache_misses: self.page_cache_misses - earlier.page_cache_misses,
            page_cache_bytes_saved: self.page_cache_bytes_saved - earlier.page_cache_bytes_saved,
            page_cache_bypassed: self.page_cache_bypassed - earlier.page_cache_bypassed,
            dedup_hits: self.dedup_hits - earlier.dedup_hits,
            breaker_rejections: self.breaker_rejections - earlier.breaker_rejections,
            retry_tokens_denied: self.retry_tokens_denied - earlier.retry_tokens_denied,
        }
    }

    /// Total request count across kinds.
    pub fn total_requests(&self) -> u64 {
        self.gets + self.puts + self.lists + self.deletes + self.heads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let stats = RequestStats::default();
        stats.record_get(100);
        stats.record_gets(3, 300);
        stats.record_put(50);
        stats.record_list();
        stats.record_delete();
        stats.record_head();
        let snap = stats.snapshot();
        assert_eq!(snap.gets, 4);
        assert_eq!(snap.bytes_read, 400);
        assert_eq!(snap.puts, 1);
        assert_eq!(snap.bytes_written, 50);
        assert_eq!(snap.total_requests(), 8);

        stats.record_get(1);
        let later = stats.snapshot();
        let delta = later.since(&snap);
        assert_eq!(delta.gets, 1);
        assert_eq!(delta.bytes_read, 1);
        assert_eq!(delta.puts, 0);
    }

    #[test]
    fn resilience_counters_accumulate_and_diff() {
        let stats = RequestStats::default();
        stats.record_fault();
        stats.record_fault();
        stats.record_throttle_rejection();
        stats.record_retry(3, 250);
        let snap = stats.snapshot();
        assert_eq!(snap.faults_injected, 2);
        assert_eq!(snap.throttle_rejections, 1);
        assert_eq!(snap.retries, 3);
        assert_eq!(snap.backoff_ms, 250);
        // Resilience counters are bookkeeping, not billable requests.
        assert_eq!(snap.total_requests(), 0);

        stats.record_retry(1, 50);
        let delta = stats.snapshot().since(&snap);
        assert_eq!(delta.retries, 1);
        assert_eq!(delta.backoff_ms, 50);
        assert_eq!(delta.faults_injected, 0);
    }

    #[test]
    fn health_counters_accumulate_and_diff() {
        let stats = RequestStats::default();
        stats.record_health(2, 0);
        stats.record_health(1, 3);
        let snap = stats.snapshot();
        assert_eq!(snap.breaker_rejections, 3);
        assert_eq!(snap.retry_tokens_denied, 3);
        // Rejected requests never reached the backend — not billable.
        assert_eq!(snap.total_requests(), 0);

        stats.record_health(0, 1);
        let delta = stats.snapshot().since(&snap);
        assert_eq!(delta.breaker_rejections, 0);
        assert_eq!(delta.retry_tokens_denied, 1);
    }

    #[test]
    fn cache_and_coalescing_counters_accumulate_and_diff() {
        let stats = RequestStats::default();
        stats.record_coalesced(3);
        stats.record_cache(5, 2, 4096);
        stats.record_page_cache(4, 1, 2048);
        stats.record_page_cache_bypass(6);
        let snap = stats.snapshot();
        assert_eq!(snap.coalesced_gets, 3);
        assert_eq!(snap.cache_hits, 5);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.cache_bytes_saved, 4096);
        assert_eq!(snap.page_cache_hits, 4);
        assert_eq!(snap.page_cache_misses, 1);
        assert_eq!(snap.page_cache_bytes_saved, 2048);
        assert_eq!(snap.page_cache_bypassed, 6);
        // Like retries, these annotate requests rather than add to them.
        assert_eq!(snap.total_requests(), 0);

        stats.record_cache(1, 0, 100);
        stats.record_page_cache(0, 2, 0);
        let delta = stats.snapshot().since(&snap);
        assert_eq!(delta.cache_hits, 1);
        assert_eq!(delta.cache_bytes_saved, 100);
        assert_eq!(delta.coalesced_gets, 0);
        assert_eq!(delta.page_cache_hits, 0);
        assert_eq!(delta.page_cache_misses, 2);
    }
}
