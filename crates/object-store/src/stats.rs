//! Request statistics feeding the TCO cost model.
//!
//! Every store counts requests by kind and bytes moved. The TCO crate turns
//! a [`StatsSnapshot`] delta into dollars (S3 charges per request and the
//! paper's `cpq` terms derive from request latency × instance cost).

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic request counters owned by a store.
#[derive(Debug, Default)]
pub struct RequestStats {
    gets: AtomicU64,
    puts: AtomicU64,
    lists: AtomicU64,
    deletes: AtomicU64,
    heads: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl RequestStats {
    /// Records a GET of `bytes`.
    pub fn record_get(&self, bytes: u64) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `n` GETs totalling `bytes` (for batch requests).
    pub fn record_gets(&self, n: u64, bytes: u64) {
        self.gets.fetch_add(n, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a PUT of `bytes`.
    pub fn record_put(&self, bytes: u64) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a LIST.
    pub fn record_list(&self) {
        self.lists.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a DELETE.
    pub fn record_delete(&self) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a HEAD.
    pub fn record_head(&self) {
        self.heads.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            lists: self.lists.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            heads: self.heads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Number of GET requests (range or whole-object).
    pub gets: u64,
    /// Number of PUT requests (including conditional).
    pub puts: u64,
    /// Number of LIST requests.
    pub lists: u64,
    /// Number of DELETE requests.
    pub deletes: u64,
    /// Number of HEAD requests.
    pub heads: u64,
    /// Total bytes returned by GETs.
    pub bytes_read: u64,
    /// Total bytes accepted by PUTs.
    pub bytes_written: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier`; used to attribute requests
    /// to a single operation.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            gets: self.gets - earlier.gets,
            puts: self.puts - earlier.puts,
            lists: self.lists - earlier.lists,
            deletes: self.deletes - earlier.deletes,
            heads: self.heads - earlier.heads,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
        }
    }

    /// Total request count across kinds.
    pub fn total_requests(&self) -> u64 {
        self.gets + self.puts + self.lists + self.deletes + self.heads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let stats = RequestStats::default();
        stats.record_get(100);
        stats.record_gets(3, 300);
        stats.record_put(50);
        stats.record_list();
        stats.record_delete();
        stats.record_head();
        let snap = stats.snapshot();
        assert_eq!(snap.gets, 4);
        assert_eq!(snap.bytes_read, 400);
        assert_eq!(snap.puts, 1);
        assert_eq!(snap.bytes_written, 50);
        assert_eq!(snap.total_requests(), 8);

        stats.record_get(1);
        let later = stats.snapshot();
        let delta = later.since(&snap);
        assert_eq!(delta.gets, 1);
        assert_eq!(delta.bytes_read, 1);
        assert_eq!(delta.puts, 0);
    }
}
