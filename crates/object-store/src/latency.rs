//! The deterministic latency model and the per-prefix request throttle.
//!
//! Calibrated to the paper's Figure 10a: "byte-range read request latency to
//! S3 is stable in terms of read granularity until around 1MB, at which point
//! it increases linearly with the read size", independent of concurrency from
//! 1 to 512 parallel reads. We model a request on `n` bytes as
//!
//! ```text
//! latency = first_byte + max(0, n - knee) / bandwidth
//! ```
//!
//! which is flat below the knee and linear above it. PUTs and LISTs carry
//! their own overheads. The throttle reproduces S3's documented limit of
//! 5,500 GET requests/second per prefix (§VII-D3), which caps Rottnest's QPS
//! and produces the non-linear LIST behaviour of Figure 13b.

/// Latency parameters for the simulated object store.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// First-byte latency of any GET, in microseconds. Paper-calibrated
    /// default: 30 ms.
    pub get_first_byte_us: u64,
    /// Sustained per-request bandwidth in bytes per microsecond (B/µs ==
    /// MB/s). Default 100 MB/s: a 16 MiB read takes ~190 ms.
    pub bandwidth_bytes_per_us: f64,
    /// Read size below which latency is flat (the Figure 10a knee). Default
    /// 1 MiB.
    pub knee_bytes: u64,
    /// Fixed overhead of a PUT, in microseconds.
    pub put_overhead_us: u64,
    /// Fixed overhead of a LIST call plus marginal cost per returned key.
    pub list_overhead_us: u64,
    /// Marginal LIST cost per 1000 keys (one continuation page).
    pub list_page_us: u64,
    /// Fixed overhead of a HEAD or DELETE.
    pub small_op_us: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            get_first_byte_us: 30_000,
            bandwidth_bytes_per_us: 100.0,
            knee_bytes: 1 << 20,
            put_overhead_us: 45_000,
            list_overhead_us: 80_000,
            list_page_us: 60_000,
            small_op_us: 15_000,
        }
    }
}

impl LatencyModel {
    /// A zero-latency model, for tests that only care about semantics.
    pub fn zero() -> Self {
        Self {
            get_first_byte_us: 0,
            bandwidth_bytes_per_us: f64::INFINITY,
            knee_bytes: u64::MAX,
            put_overhead_us: 0,
            list_overhead_us: 0,
            list_page_us: 0,
            small_op_us: 0,
        }
    }

    /// Latency of a GET of `bytes`, in microseconds.
    pub fn get_us(&self, bytes: u64) -> u64 {
        let over = bytes.saturating_sub(self.knee_bytes);
        let transfer = if over == 0 {
            0
        } else {
            (over as f64 / self.bandwidth_bytes_per_us) as u64
        };
        self.get_first_byte_us + transfer
    }

    /// Latency of a PUT of `bytes`.
    pub fn put_us(&self, bytes: u64) -> u64 {
        let transfer = if self.bandwidth_bytes_per_us.is_finite() {
            (bytes as f64 / self.bandwidth_bytes_per_us) as u64
        } else {
            0
        };
        self.put_overhead_us + transfer
    }

    /// Latency of a LIST returning `keys` keys.
    pub fn list_us(&self, keys: u64) -> u64 {
        self.list_overhead_us + (keys / 1000) * self.list_page_us
    }
}

/// What a [`PrefixThrottle`] does to requests past the rate limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThrottleMode {
    /// Model client-side pacing: excess requests succeed but incur queuing
    /// delay (the seed behaviour, kept as the default).
    #[default]
    Delay,
    /// Model S3 itself: excess requests fail with
    /// [`Throttled`](crate::StoreError::Throttled) and the client is
    /// expected to back off and retry.
    Reject,
}

/// Sliding-window rate limiter keyed by key prefix.
///
/// In [`ThrottleMode::Delay`], requests beyond `limit_per_sec` within the
/// current one-second window incur queuing delay of one window per
/// `limit_per_sec` excess requests — deterministic and order-independent for
/// batch accounting. In [`ThrottleMode::Reject`], they fail with a
/// `503`-style error carrying the time until the window rolls over.
#[derive(Debug)]
pub struct PrefixThrottle {
    limit_per_sec: u64,
    mode: ThrottleMode,
    windows: parking_lot::Mutex<super::FxHashMap<String, Window>>,
}

#[derive(Debug, Clone, Copy)]
struct Window {
    start_ms: u64,
    count: u64,
}

impl PrefixThrottle {
    /// Creates a throttle with the given per-prefix request rate limit.
    /// S3's documented limit is 5,500 GET/s per prefix.
    pub fn new(limit_per_sec: u64) -> Self {
        Self {
            limit_per_sec,
            mode: ThrottleMode::Delay,
            windows: parking_lot::Mutex::new(super::FxHashMap::default()),
        }
    }

    /// Creates a throttle that *rejects* excess requests with
    /// [`Throttled`](crate::StoreError::Throttled) instead of delaying them.
    pub fn rejecting(limit_per_sec: u64) -> Self {
        Self {
            limit_per_sec,
            mode: ThrottleMode::Reject,
            windows: parking_lot::Mutex::new(super::FxHashMap::default()),
        }
    }

    /// The throttle's behaviour past the limit.
    pub fn mode(&self) -> ThrottleMode {
        self.mode
    }

    /// Extracts the throttling prefix of a key (everything up to the last
    /// `/`, matching how S3 partitions by prefix).
    pub fn prefix_of(key: &str) -> &str {
        key.rfind('/').map_or("", |i| &key[..i])
    }

    /// Records `n` requests against `key`'s prefix at time `now_ms` and
    /// returns the queuing delay in microseconds those requests incur.
    /// Always admits the requests, regardless of [`ThrottleMode`].
    pub fn charge(&self, key: &str, n: u64, now_ms: u64) -> u64 {
        if self.limit_per_sec == 0 {
            return 0;
        }
        let mut windows = self.windows.lock();
        let w = Self::window(&mut windows, key, now_ms);
        w.count += n;
        let excess = w.count.saturating_sub(self.limit_per_sec);
        if excess == 0 {
            0
        } else {
            // Each excess request waits one slot of 1/limit seconds.
            excess * 1_000_000 / self.limit_per_sec
        }
    }

    /// Like [`charge`](Self::charge), but in [`ThrottleMode::Reject`] a batch
    /// that would overflow the window is refused: none of its requests are
    /// admitted and `Err(retry_after_ms)` reports the time until the window
    /// rolls over. In [`ThrottleMode::Delay`] this never fails.
    pub fn try_charge(&self, key: &str, n: u64, now_ms: u64) -> Result<u64, u64> {
        if self.mode == ThrottleMode::Delay || self.limit_per_sec == 0 {
            return Ok(self.charge(key, n, now_ms));
        }
        let mut windows = self.windows.lock();
        let w = Self::window(&mut windows, key, now_ms);
        if w.count + n > self.limit_per_sec {
            let retry_after_ms = (w.start_ms + 1000).saturating_sub(now_ms).max(1);
            return Err(retry_after_ms);
        }
        w.count += n;
        Ok(0)
    }

    /// Returns `n` previously charged requests to `key`'s window — for
    /// callers whose charged operation is refused downstream before doing
    /// any work, so a refusal does not also burn budget. A refund landing
    /// after the window rolled over is a no-op: the rollover already
    /// forgot the charge.
    pub fn refund(&self, key: &str, n: u64, now_ms: u64) {
        if self.limit_per_sec == 0 {
            return;
        }
        let mut windows = self.windows.lock();
        let w = Self::window(&mut windows, key, now_ms);
        w.count = w.count.saturating_sub(n);
    }

    fn window<'a>(
        windows: &'a mut super::FxHashMap<String, Window>,
        key: &str,
        now_ms: u64,
    ) -> &'a mut Window {
        let prefix = Self::prefix_of(key);
        let w = windows.entry(prefix.to_string()).or_insert(Window {
            start_ms: now_ms,
            count: 0,
        });
        if now_ms.saturating_sub(w.start_ms) >= 1000 {
            w.start_ms = now_ms;
            w.count = 0;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_flat_below_knee_linear_above() {
        let m = LatencyModel::default();
        let l300k = m.get_us(300 * 1024);
        let l1m = m.get_us(1 << 20);
        assert_eq!(l300k, l1m, "reads below the knee cost the same");
        let l2m = m.get_us(2 << 20);
        let l4m = m.get_us(4 << 20);
        // Above the knee, doubling the excess roughly doubles the transfer
        // component.
        let t2 = l2m - l1m;
        let t4 = l4m - l1m;
        assert!(
            (t4 as f64 / t2 as f64 - 3.0).abs() < 0.05,
            "t2={t2} t4={t4}"
        );
    }

    #[test]
    fn zero_model_is_free() {
        let m = LatencyModel::zero();
        assert_eq!(m.get_us(u64::MAX / 2), 0);
        assert_eq!(m.put_us(1 << 30), 0);
        assert_eq!(m.list_us(1_000_000), 0);
    }

    #[test]
    fn list_cost_grows_with_keys() {
        let m = LatencyModel::default();
        assert!(m.list_us(50_000) > m.list_us(500));
    }

    #[test]
    fn throttle_free_under_limit() {
        let t = PrefixThrottle::new(100);
        assert_eq!(t.charge("bucket/a/x.bin", 50, 0), 0);
        assert_eq!(t.charge("bucket/a/y.bin", 50, 10), 0);
        // 101st request in the window pays one slot.
        assert_eq!(t.charge("bucket/a/z.bin", 1, 20), 10_000);
    }

    #[test]
    fn throttle_window_resets() {
        let t = PrefixThrottle::new(10);
        assert!(t.charge("p/k", 100, 0) > 0);
        assert_eq!(t.charge("p/k", 5, 1500), 0, "new window clears the count");
    }

    #[test]
    fn throttle_prefixes_are_independent() {
        let t = PrefixThrottle::new(10);
        assert!(t.charge("a/k", 100, 0) > 0);
        assert_eq!(t.charge("b/k", 5, 0), 0);
    }

    #[test]
    fn prefix_extraction() {
        assert_eq!(PrefixThrottle::prefix_of("a/b/c.bin"), "a/b");
        assert_eq!(PrefixThrottle::prefix_of("top.bin"), "");
    }

    #[test]
    fn disabled_throttle_never_delays() {
        let t = PrefixThrottle::new(0);
        assert_eq!(t.charge("a/k", u64::MAX / 2, 0), 0);
    }

    #[test]
    fn rejecting_throttle_refuses_excess_with_retry_after() {
        let t = PrefixThrottle::rejecting(10);
        assert_eq!(t.mode(), ThrottleMode::Reject);
        assert_eq!(t.try_charge("p/k", 10, 200), Ok(0));
        // Window started at 200; full until 1200.
        assert_eq!(t.try_charge("p/k", 1, 700), Err(500));
        // Rejected requests were not admitted: the window rolls over cleanly.
        assert_eq!(t.try_charge("p/k", 10, 1300), Ok(0));
    }

    #[test]
    fn delay_mode_try_charge_never_fails() {
        let t = PrefixThrottle::new(10);
        assert_eq!(t.try_charge("p/k", 50, 0), Ok(4_000_000));
    }

    #[test]
    fn refund_returns_budget_within_the_window() {
        let t = PrefixThrottle::rejecting(2);
        assert_eq!(t.try_charge("p/k", 2, 0), Ok(0));
        assert!(t.try_charge("p/k", 1, 10).is_err());
        t.refund("p/k", 1, 20);
        assert_eq!(t.try_charge("p/k", 1, 30), Ok(0));
        // A refund past the rollover is a no-op, not an underflow credit.
        t.refund("p/k", 2, 1500);
        assert_eq!(t.try_charge("p/k", 2, 1500), Ok(0));
        assert!(t.try_charge("p/k", 1, 1500).is_err());
    }
}
