//! A sharded, byte-budgeted LRU — the cache machinery shared by the
//! process-wide caches in this workspace.
//!
//! Two caches sit on the probe path: the component cache (decompressed
//! index components, `rottnest-component`) and the page cache (raw data
//! pages, `rottnest-format`). Both need the same structure — a byte-capped
//! LRU sharded so parallel search workers don't serialize on one lock —
//! but each needs its **own budget**, so hot index structure can never be
//! evicted by a burst of data pages or vice versa. This module provides
//! the shared implementation; each cache instantiates it with its own
//! capacity and key type.
//!
//! Eviction is least-recently-used per shard, tracked by a global logical
//! tick. Entries larger than a whole shard are not cached at all (they
//! would evict everything else for a single-use payload).

use std::hash::{BuildHasher, BuildHasherDefault, Hash};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::fxhash::{FxHashMap, FxHasher};

/// Default shard count: enough that an 8-way parallel searcher rarely
/// contends, small enough that per-shard budgets stay meaningful.
pub const DEFAULT_SHARDS: usize = 16;

struct Entry<V> {
    value: V,
    charge: usize,
    tick: u64,
}

struct Shard<K, V> {
    map: FxHashMap<K, Entry<V>>,
    bytes: usize,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Self {
            map: FxHashMap::default(),
            bytes: 0,
        }
    }
}

impl<K: Eq + Hash + Clone, V> Shard<K, V> {
    fn evict_to(&mut self, cap: usize) {
        while self.bytes > cap && !self.map.is_empty() {
            let coldest = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            if let Some(e) = self.map.remove(&coldest) {
                self.bytes -= e.charge;
            }
        }
    }
}

/// Sharded, byte-capped LRU keyed by any hashable key.
pub struct ByteLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    shard_cap: usize,
    tick: AtomicU64,
    build: BuildHasherDefault<FxHasher>,
}

impl<K: Eq + Hash + Clone, V: Clone> ByteLru<K, V> {
    /// Creates a cache bounded by `capacity` total bytes across
    /// [`DEFAULT_SHARDS`] shards.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit shard count (tests use 1 so LRU
    /// order is the only variable).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: capacity.div_ceil(shards),
            tick: AtomicU64::new(0),
            build: BuildHasherDefault::default(),
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let h = self.build.hash_one(key);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, marking it most-recently-used.
    pub fn get(&self, key: &K) -> Option<V> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(key).lock();
        let entry = shard.map.get_mut(key)?;
        entry.tick = tick;
        Some(entry.value.clone())
    }

    /// Inserts `value` under `key`, charged `charge` bytes against the
    /// budget. Entries larger than a whole shard are silently skipped.
    pub fn insert(&self, key: K, value: V, charge: usize) {
        if charge > self.shard_cap {
            return;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(&key).lock();
        if let Some(old) = shard.map.insert(
            key,
            Entry {
                value,
                charge,
                tick,
            },
        ) {
            shard.bytes -= old.charge;
        }
        shard.bytes += charge;
        let cap = self.shard_cap;
        shard.evict_to(cap);
    }

    /// Removes `key` if present.
    pub fn remove(&self, key: &K) {
        let mut shard = self.shard_of(key).lock();
        if let Some(e) = shard.map.remove(key) {
            shard.bytes -= e.charge;
        }
    }

    /// Drops every entry whose key fails `keep` — the invalidation-hint
    /// primitive (vacuumed or compacted files release their bytes at once
    /// instead of waiting to age out).
    pub fn retain(&self, keep: impl Fn(&K) -> bool) {
        for shard in &self.shards {
            let mut s = shard.lock();
            let mut freed = 0usize;
            s.map.retain(|k, e| {
                if keep(k) {
                    true
                } else {
                    freed += e.charge;
                    false
                }
            });
            s.bytes -= freed;
        }
    }

    /// Counts entries matching `pred` (used by invalidation tests).
    pub fn count_matching(&self, pred: impl Fn(&K) -> bool) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map.keys().filter(|k| pred(k)).count())
            .sum()
    }

    /// Empties the cache.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.map.clear();
            s.bytes = 0;
        }
    }

    /// Number of cached entries (all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total charged bytes (all shards).
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_respects_byte_cap() {
        let lru: ByteLru<u32, Vec<u8>> = ByteLru::with_capacity(16 * 1024);
        for i in 0..200 {
            lru.insert(i, vec![i as u8; 1024], 1024);
        }
        assert!(lru.bytes() <= 16 * 1024, "holds {} bytes", lru.bytes());
        assert!(lru.len() < 200);
    }

    #[test]
    fn lru_keeps_recently_touched_entries() {
        let lru: ByteLru<u32, ()> = ByteLru::with_shards(4 * 1024, 1);
        for i in 0..4 {
            lru.insert(i, (), 1024);
        }
        assert!(lru.get(&0).is_some()); // 0 is now warmer than 1
        lru.insert(4, (), 1024); // must evict exactly the coldest: 1
        assert!(lru.get(&0).is_some());
        assert!(lru.get(&1).is_none());
        assert!(lru.get(&4).is_some());
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let lru: ByteLru<u32, ()> = ByteLru::with_shards(DEFAULT_SHARDS * 1024, DEFAULT_SHARDS);
        lru.insert(0, (), 2048);
        assert!(lru.get(&0).is_none());
        assert_eq!(lru.bytes(), 0);
    }

    #[test]
    fn retain_releases_bytes() {
        let lru: ByteLru<(u32, u32), ()> = ByteLru::with_capacity(1 << 20);
        for i in 0..10 {
            lru.insert((i % 2, i), (), 100);
        }
        assert_eq!(lru.bytes(), 1000);
        lru.retain(|k| k.0 != 0);
        assert_eq!(lru.count_matching(|k| k.0 == 0), 0);
        assert_eq!(lru.len(), 5);
        assert_eq!(lru.bytes(), 500);
    }

    #[test]
    fn remove_and_clear() {
        let lru: ByteLru<u8, u8> = ByteLru::with_capacity(1 << 20);
        lru.insert(1, 10, 5);
        lru.insert(2, 20, 5);
        lru.remove(&1);
        assert!(lru.get(&1).is_none());
        assert_eq!(lru.get(&2), Some(20));
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.bytes(), 0);
    }
}
