//! Fault injection used to exercise the protocol's correctness invariants.
//!
//! Two families of faults, with deliberately different error types:
//!
//! * **Crash faults** (the seed behaviour). The Rottnest proofs (§IV-D)
//!   reason about processes dying in `before_upload`, `before_commit`, and
//!   `during_delete` states. Tests drive those states by arming one-shot
//!   pattern faults: matching operations fail with
//!   [`crate::StoreError::Injected`], which upper layers treat as a process
//!   crash at that point. These are **not retryable** — a retry layer must
//!   let them surface so crash-recovery tests observe them exactly once.
//!
//! * **Transient faults**. Real object stores also fail at the request
//!   level — throttling, timeouts, dropped connections — and production S3
//!   clients wrap every request in jittered backoff. One-shot
//!   `Transient*Matching` patterns and the seeded probabilistic **chaos
//!   mode** ([`ChaosConfig`]) produce [`crate::StoreError::Transient`]
//!   failures, ack-lost PUTs (the write lands but the response is lost),
//!   torn range reads (short responses), and latency spikes. These *are*
//!   retryable and are what [`crate::RetryStore`] exists to absorb.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::StoreError;

/// Kinds of faults the injector can arm.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// Fail the next PUT (conditional or not) whose key contains the pattern.
    FailPutMatching(String),
    /// Fail every PUT after `n` more successful PUTs.
    FailPutsAfter(u64),
    /// Fail the next GET whose key contains the pattern (e.g. simulating a
    /// Parquet file garbage-collected mid-index, §IV-A step 2).
    FailGetMatching(String),
    /// Fail the next DELETE whose key contains the pattern.
    FailDeleteMatching(String),
    /// Fail the next PUT whose key contains the pattern with a *retryable*
    /// [`crate::StoreError::Transient`]; the write does not take effect.
    TransientPutMatching(String),
    /// Fail the next GET whose key contains the pattern with a retryable
    /// transient error.
    TransientGetMatching(String),
    /// Fail the next DELETE whose key contains the pattern with a retryable
    /// transient error.
    TransientDeleteMatching(String),
    /// The next PUT whose key contains the pattern **succeeds on the store
    /// but reports a transient failure** (the ack is lost in flight). This
    /// is the ambiguous non-idempotent case a retrying `put_if_absent` must
    /// resolve by inspecting the winning object.
    AckLostPutMatching(String),
}

/// Per-operation failure probabilities for seeded chaos mode.
///
/// All probabilities are in `[0, 1]` and evaluated independently per
/// request from a deterministic splitmix64 stream, so a given seed produces
/// the same fault schedule on every run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability that a PUT fails transiently (no effect).
    pub put_fail_p: f64,
    /// Probability that a surviving PUT lands but its ack is lost
    /// (reported as [`crate::StoreError::Transient`]).
    pub ack_lost_p: f64,
    /// Probability that a GET / HEAD fails transiently.
    pub get_fail_p: f64,
    /// Probability that a surviving range GET is torn: a prefix of the
    /// requested bytes is returned.
    pub torn_read_p: f64,
    /// Probability that a DELETE fails transiently.
    pub delete_fail_p: f64,
    /// Probability that a request is hit by a latency spike.
    pub latency_spike_p: f64,
    /// Extra latency charged on a spike, in milliseconds.
    pub latency_spike_ms: u64,
}

impl ChaosConfig {
    /// Uniform chaos: every failure mode fires with probability `p`
    /// (ack-loss at `p / 2`, since it only applies to surviving PUTs),
    /// with 250 ms latency spikes.
    pub fn uniform(seed: u64, p: f64) -> Self {
        Self {
            seed,
            put_fail_p: p,
            ack_lost_p: p / 2.0,
            get_fail_p: p,
            torn_read_p: p,
            delete_fail_p: p,
            latency_spike_p: p,
            latency_spike_ms: 250,
        }
    }
}

/// Chaos verdict for a single PUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutChaos {
    /// The request proceeds normally.
    None,
    /// The request fails transiently; the write has no effect.
    Fail,
    /// The write takes effect but the ack is lost: the store applies the
    /// mutation and *then* returns [`crate::StoreError::Transient`].
    AckLost,
}

/// Chaos verdict for a single GET (whole-object or range).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GetChaos {
    /// The request fails transiently.
    pub fail: bool,
    /// A surviving range read is torn: return only `keep_fraction` of the
    /// requested bytes (ignored for whole-object GETs, which are atomic).
    pub torn: bool,
    /// Fraction of the requested bytes a torn read keeps, in `[0, 1)`.
    pub keep_fraction: f64,
}

struct Chaos {
    config: ChaosConfig,
    rng: u64,
}

impl Chaos {
    fn next_unit(&mut self) -> f64 {
        // splitmix64: tiny, seedable, and good enough for fault schedules.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn roll(&mut self, p: f64) -> bool {
        // Consume a draw even when p == 0 so enabling one failure mode
        // does not reshuffle the schedule of the others.
        self.next_unit() < p
    }
}

impl std::fmt::Debug for Chaos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chaos")
            .field("config", &self.config)
            .finish()
    }
}

/// Shared fault-injection state attached to a [`crate::MemoryStore`].
#[derive(Debug, Default)]
pub struct FaultInjector {
    puts_until_fail: AtomicU64,
    puts_after_armed: std::sync::atomic::AtomicBool,
    patterns: Mutex<Vec<FaultKind>>,
    chaos: Mutex<Option<Chaos>>,
}

impl FaultInjector {
    /// Creates an injector with no armed faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a fault. Pattern faults fire once and disarm; `FailPutsAfter`
    /// stays armed until [`FaultInjector::disarm_all`].
    pub fn arm(&self, kind: FaultKind) {
        if let FaultKind::FailPutsAfter(n) = kind {
            self.puts_until_fail.store(n, Ordering::SeqCst);
            self.puts_after_armed.store(true, Ordering::SeqCst);
            return;
        }
        self.patterns.lock().push(kind);
    }

    /// Clears every armed fault and disables chaos mode.
    pub fn disarm_all(&self) {
        self.patterns.lock().clear();
        self.puts_after_armed.store(false, Ordering::SeqCst);
        *self.chaos.lock() = None;
    }

    /// Enables (`Some`) or disables (`None`) seeded probabilistic chaos.
    pub fn set_chaos(&self, config: Option<ChaosConfig>) {
        *self.chaos.lock() = config.map(|config| Chaos {
            rng: config.seed ^ 0x5DEE_CE66,
            config,
        });
    }

    /// Whether chaos mode is currently enabled.
    pub fn chaos_enabled(&self) -> bool {
        self.chaos.lock().is_some()
    }

    /// Checks whether a PUT of `key` should fail, consuming one-shot faults.
    pub fn check_put(&self, key: &str) -> Result<(), StoreError> {
        if self.puts_after_armed.load(Ordering::SeqCst) {
            let prev = self
                .puts_until_fail
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                    Some(v.saturating_sub(1))
                });
            if prev == Ok(0) {
                return Err(StoreError::Injected("put budget exhausted"));
            }
        }
        if self
            .take_matching(
                |k| matches!(k, FaultKind::FailPutMatching(p) if key.contains(p.as_str())),
            )
            .is_some()
        {
            return Err(StoreError::Injected("put fault"));
        }
        if self
            .take_matching(
                |k| matches!(k, FaultKind::TransientPutMatching(p) if key.contains(p.as_str())),
            )
            .is_some()
        {
            return Err(StoreError::Transient("put dropped"));
        }
        Ok(())
    }

    /// Whether the next PUT of `key` should land but report a lost ack.
    /// Consumes a one-shot [`FaultKind::AckLostPutMatching`] if armed.
    pub fn take_ack_lost_put(&self, key: &str) -> bool {
        self.take_matching(
            |k| matches!(k, FaultKind::AckLostPutMatching(p) if key.contains(p.as_str())),
        )
        .is_some()
    }

    /// Checks whether a GET of `key` should fail.
    pub fn check_get(&self, key: &str) -> Result<(), StoreError> {
        if self
            .take_matching(
                |k| matches!(k, FaultKind::FailGetMatching(p) if key.contains(p.as_str())),
            )
            .is_some()
        {
            return Err(StoreError::Injected("get fault"));
        }
        if self
            .take_matching(
                |k| matches!(k, FaultKind::TransientGetMatching(p) if key.contains(p.as_str())),
            )
            .is_some()
        {
            return Err(StoreError::Transient("get timed out"));
        }
        Ok(())
    }

    /// Checks whether a DELETE of `key` should fail.
    pub fn check_delete(&self, key: &str) -> Result<(), StoreError> {
        if self
            .take_matching(
                |k| matches!(k, FaultKind::FailDeleteMatching(p) if key.contains(p.as_str())),
            )
            .is_some()
        {
            return Err(StoreError::Injected("delete fault"));
        }
        if self
            .take_matching(
                |k| matches!(k, FaultKind::TransientDeleteMatching(p) if key.contains(p.as_str())),
            )
            .is_some()
        {
            return Err(StoreError::Transient("delete timed out"));
        }
        Ok(())
    }

    /// Rolls the chaos dice for a PUT. [`PutChaos::None`] when chaos is off.
    pub fn chaos_put(&self) -> PutChaos {
        let mut guard = self.chaos.lock();
        let Some(chaos) = guard.as_mut() else {
            return PutChaos::None;
        };
        let (fail_p, ack_p) = (chaos.config.put_fail_p, chaos.config.ack_lost_p);
        if chaos.roll(fail_p) {
            PutChaos::Fail
        } else if chaos.roll(ack_p) {
            PutChaos::AckLost
        } else {
            PutChaos::None
        }
    }

    /// Rolls the chaos dice for a GET or HEAD.
    pub fn chaos_get(&self) -> GetChaos {
        let mut guard = self.chaos.lock();
        let Some(chaos) = guard.as_mut() else {
            return GetChaos {
                fail: false,
                torn: false,
                keep_fraction: 0.0,
            };
        };
        let (fail_p, torn_p) = (chaos.config.get_fail_p, chaos.config.torn_read_p);
        let fail = chaos.roll(fail_p);
        let torn = !fail && chaos.roll(torn_p);
        let keep_fraction = if torn { chaos.next_unit() } else { 0.0 };
        GetChaos {
            fail,
            torn,
            keep_fraction,
        }
    }

    /// Rolls the chaos dice for a DELETE. `true` means fail transiently.
    pub fn chaos_delete(&self) -> bool {
        let mut guard = self.chaos.lock();
        let Some(chaos) = guard.as_mut() else {
            return false;
        };
        let p = chaos.config.delete_fail_p;
        chaos.roll(p)
    }

    /// Rolls the chaos dice for a latency spike; returns the extra latency
    /// in microseconds (0 when no spike).
    pub fn chaos_spike_us(&self) -> u64 {
        let mut guard = self.chaos.lock();
        let Some(chaos) = guard.as_mut() else {
            return 0;
        };
        let (p, ms) = (chaos.config.latency_spike_p, chaos.config.latency_spike_ms);
        if chaos.roll(p) {
            ms * 1000
        } else {
            0
        }
    }

    fn take_matching(&self, pred: impl Fn(&FaultKind) -> bool) -> Option<FaultKind> {
        let mut patterns = self.patterns.lock();
        let idx = patterns.iter().position(pred)?;
        Some(patterns.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_faults_fire_once() {
        let inj = FaultInjector::new();
        inj.arm(FaultKind::FailPutMatching("index".into()));
        assert!(inj.check_put("data/a.parquet").is_ok());
        assert_eq!(
            inj.check_put("idx/ac02.index"),
            Err(StoreError::Injected("put fault"))
        );
        assert!(inj.check_put("idx/ac02.index").is_ok(), "one-shot");
    }

    #[test]
    fn puts_after_budget() {
        let inj = FaultInjector::new();
        inj.arm(FaultKind::FailPutsAfter(2));
        assert!(inj.check_put("a").is_ok());
        assert!(inj.check_put("b").is_ok());
        assert!(inj.check_put("c").is_err());
        assert!(inj.check_put("d").is_err(), "stays failed until disarm");
        inj.disarm_all();
        assert!(inj.check_put("e").is_ok());
    }

    #[test]
    fn get_and_delete_faults() {
        let inj = FaultInjector::new();
        inj.arm(FaultKind::FailGetMatching("b.parquet".into()));
        inj.arm(FaultKind::FailDeleteMatching(".index".into()));
        assert!(inj.check_get("t/a.parquet").is_ok());
        assert!(inj.check_get("t/b.parquet").is_err());
        assert!(inj.check_delete("idx/x.index").is_err());
        assert!(inj.check_delete("idx/x.index").is_ok());
    }

    #[test]
    fn transient_faults_are_retryable_crash_faults_are_not() {
        let inj = FaultInjector::new();
        inj.arm(FaultKind::TransientGetMatching("x".into()));
        inj.arm(FaultKind::FailGetMatching("y".into()));
        let transient = inj.check_get("t/x").unwrap_err();
        let crash = inj.check_get("t/y").unwrap_err();
        assert!(transient.is_retryable());
        assert!(!crash.is_retryable());
    }

    #[test]
    fn ack_lost_is_a_separate_channel() {
        let inj = FaultInjector::new();
        inj.arm(FaultKind::AckLostPutMatching("commit".into()));
        // check_put does not consume ack-lost faults...
        assert!(inj.check_put("log/commit-00001").is_ok());
        // ...take_ack_lost_put does, once.
        assert!(inj.take_ack_lost_put("log/commit-00001"));
        assert!(!inj.take_ack_lost_put("log/commit-00001"));
    }

    #[test]
    fn chaos_stream_is_deterministic() {
        let a = FaultInjector::new();
        let b = FaultInjector::new();
        a.set_chaos(Some(ChaosConfig::uniform(42, 0.3)));
        b.set_chaos(Some(ChaosConfig::uniform(42, 0.3)));
        for _ in 0..200 {
            assert_eq!(a.chaos_put(), b.chaos_put());
            assert_eq!(a.chaos_get(), b.chaos_get());
            assert_eq!(a.chaos_delete(), b.chaos_delete());
            assert_eq!(a.chaos_spike_us(), b.chaos_spike_us());
        }
    }

    #[test]
    fn chaos_fires_at_roughly_the_configured_rate() {
        let inj = FaultInjector::new();
        inj.set_chaos(Some(ChaosConfig::uniform(7, 0.2)));
        let fails = (0..2000).filter(|_| inj.chaos_delete()).count();
        assert!(
            (300..500).contains(&fails),
            "expected ~400 fails, got {fails}"
        );
    }

    #[test]
    fn chaos_off_is_quiet() {
        let inj = FaultInjector::new();
        assert_eq!(inj.chaos_put(), PutChaos::None);
        assert!(!inj.chaos_get().fail);
        assert!(!inj.chaos_delete());
        assert_eq!(inj.chaos_spike_us(), 0);
        inj.set_chaos(Some(ChaosConfig::uniform(1, 1.0)));
        assert_eq!(inj.chaos_put(), PutChaos::Fail);
        inj.disarm_all();
        assert_eq!(inj.chaos_put(), PutChaos::None, "disarm_all clears chaos");
    }
}
