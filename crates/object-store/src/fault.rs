//! Fault injection used to exercise the protocol's correctness invariants.
//!
//! The Rottnest proofs (§IV-D) reason about processes dying in
//! `before_upload`, `before_commit`, and `during_delete` states. Tests drive
//! those states by arming an injector: operations matching an armed fault
//! fail with [`crate::StoreError::Injected`], which upper layers treat as a
//! process crash at that point.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Kinds of faults the injector can arm.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// Fail the next PUT (conditional or not) whose key contains the pattern.
    FailPutMatching(String),
    /// Fail every PUT after `n` more successful PUTs.
    FailPutsAfter(u64),
    /// Fail the next GET whose key contains the pattern (e.g. simulating a
    /// Parquet file garbage-collected mid-index, §IV-A step 2).
    FailGetMatching(String),
    /// Fail the next DELETE whose key contains the pattern.
    FailDeleteMatching(String),
}

/// Shared fault-injection state attached to a [`crate::MemoryStore`].
#[derive(Debug, Default)]
pub struct FaultInjector {
    puts_until_fail: AtomicU64,
    puts_after_armed: std::sync::atomic::AtomicBool,
    patterns: Mutex<Vec<FaultKind>>,
}

impl FaultInjector {
    /// Creates an injector with no armed faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a fault. Pattern faults fire once and disarm; `FailPutsAfter`
    /// stays armed until [`FaultInjector::disarm_all`].
    pub fn arm(&self, kind: FaultKind) {
        if let FaultKind::FailPutsAfter(n) = kind {
            self.puts_until_fail.store(n, Ordering::SeqCst);
            self.puts_after_armed.store(true, Ordering::SeqCst);
            return;
        }
        self.patterns.lock().push(kind);
    }

    /// Clears every armed fault.
    pub fn disarm_all(&self) {
        self.patterns.lock().clear();
        self.puts_after_armed.store(false, Ordering::SeqCst);
    }

    /// Checks whether a PUT of `key` should fail, consuming one-shot faults.
    pub fn check_put(&self, key: &str) -> Result<(), &'static str> {
        if self.puts_after_armed.load(Ordering::SeqCst) {
            let prev = self.puts_until_fail.fetch_update(
                Ordering::SeqCst,
                Ordering::SeqCst,
                |v| Some(v.saturating_sub(1)),
            );
            if prev == Ok(0) {
                return Err("put budget exhausted");
            }
        }
        self.take_matching(key, |k| matches!(k, FaultKind::FailPutMatching(p) if key.contains(p.as_str())))
            .map_or(Ok(()), |_| Err("put fault"))
    }

    /// Checks whether a GET of `key` should fail.
    pub fn check_get(&self, key: &str) -> Result<(), &'static str> {
        self.take_matching(key, |k| matches!(k, FaultKind::FailGetMatching(p) if key.contains(p.as_str())))
            .map_or(Ok(()), |_| Err("get fault"))
    }

    /// Checks whether a DELETE of `key` should fail.
    pub fn check_delete(&self, key: &str) -> Result<(), &'static str> {
        self.take_matching(key, |k| matches!(k, FaultKind::FailDeleteMatching(p) if key.contains(p.as_str())))
            .map_or(Ok(()), |_| Err("delete fault"))
    }

    fn take_matching(
        &self,
        _key: &str,
        pred: impl Fn(&FaultKind) -> bool,
    ) -> Option<FaultKind> {
        let mut patterns = self.patterns.lock();
        let idx = patterns.iter().position(pred)?;
        Some(patterns.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_faults_fire_once() {
        let inj = FaultInjector::new();
        inj.arm(FaultKind::FailPutMatching("index".into()));
        assert!(inj.check_put("data/a.parquet").is_ok());
        assert!(inj.check_put("idx/ac02.index").is_err());
        assert!(inj.check_put("idx/ac02.index").is_ok(), "one-shot");
    }

    #[test]
    fn puts_after_budget() {
        let inj = FaultInjector::new();
        inj.arm(FaultKind::FailPutsAfter(2));
        assert!(inj.check_put("a").is_ok());
        assert!(inj.check_put("b").is_ok());
        assert!(inj.check_put("c").is_err());
        assert!(inj.check_put("d").is_err(), "stays failed until disarm");
        inj.disarm_all();
        assert!(inj.check_put("e").is_ok());
    }

    #[test]
    fn get_and_delete_faults() {
        let inj = FaultInjector::new();
        inj.arm(FaultKind::FailGetMatching("b.parquet".into()));
        inj.arm(FaultKind::FailDeleteMatching(".index".into()));
        assert!(inj.check_get("t/a.parquet").is_ok());
        assert!(inj.check_get("t/b.parquet").is_err());
        assert!(inj.check_delete("idx/x.index").is_err());
        assert!(inj.check_delete("idx/x.index").is_ok());
    }
}
