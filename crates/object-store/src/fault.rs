//! Fault injection used to exercise the protocol's correctness invariants.
//!
//! Two families of faults, with deliberately different error types:
//!
//! * **Crash faults** (the seed behaviour). The Rottnest proofs (§IV-D)
//!   reason about processes dying in `before_upload`, `before_commit`, and
//!   `during_delete` states. Tests drive those states by arming one-shot
//!   pattern faults: matching operations fail with
//!   [`crate::StoreError::Injected`], which upper layers treat as a process
//!   crash at that point. These are **not retryable** — a retry layer must
//!   let them surface so crash-recovery tests observe them exactly once.
//!
//! * **Transient faults**. Real object stores also fail at the request
//!   level — throttling, timeouts, dropped connections — and production S3
//!   clients wrap every request in jittered backoff. One-shot
//!   `Transient*Matching` patterns and the seeded probabilistic **chaos
//!   mode** ([`ChaosConfig`]) produce [`crate::StoreError::Transient`]
//!   failures, ack-lost PUTs (the write lands but the response is lost),
//!   torn range reads (short responses), and latency spikes. These *are*
//!   retryable and are what [`crate::RetryStore`] exists to absorb.
//!
//! * **Correlated faults** ([`OutageWindow`]). Chaos rolls each request
//!   independently, but production object stores fail *correlated*: a
//!   regional brownout or throttling storm takes out every request — or
//!   every request under one key prefix — for a span of time. Scheduled
//!   outage windows model exactly that on the store's sim clock:
//!   [`OutageKind::FailAll`] fails every matching op with a retryable
//!   transient error, [`OutageKind::Stall`] additionally charges a hang
//!   before failing (a connect timeout), and
//!   [`OutageKind::LatencyStorm`] only inflates latency. Windows compose
//!   with one-shot patterns and per-op chaos — the deterministic chaos
//!   schedule is unaffected because windows never consume chaos draws.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::StoreError;

/// Kinds of faults the injector can arm.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// Fail the next PUT (conditional or not) whose key contains the pattern.
    FailPutMatching(String),
    /// Fail every PUT after `n` more successful PUTs.
    FailPutsAfter(u64),
    /// Fail the next GET whose key contains the pattern (e.g. simulating a
    /// Parquet file garbage-collected mid-index, §IV-A step 2).
    FailGetMatching(String),
    /// Fail the next DELETE whose key contains the pattern.
    FailDeleteMatching(String),
    /// Fail the next PUT whose key contains the pattern with a *retryable*
    /// [`crate::StoreError::Transient`]; the write does not take effect.
    TransientPutMatching(String),
    /// Fail the next GET whose key contains the pattern with a retryable
    /// transient error.
    TransientGetMatching(String),
    /// Fail the next DELETE whose key contains the pattern with a retryable
    /// transient error.
    TransientDeleteMatching(String),
    /// The next PUT whose key contains the pattern **succeeds on the store
    /// but reports a transient failure** (the ack is lost in flight). This
    /// is the ambiguous non-idempotent case a retrying `put_if_absent` must
    /// resolve by inspecting the winning object.
    AckLostPutMatching(String),
}

/// What a scheduled [`OutageWindow`] does to matching operations.
#[derive(Debug, Clone, PartialEq)]
pub enum OutageKind {
    /// Every matching operation fails with a retryable
    /// [`crate::StoreError::Transient`] — a full outage of the domain.
    FailAll,
    /// Matching operations hang for `extra_ms` (charged to the sim
    /// clock) and *then* fail transiently — a connect/request timeout.
    Stall {
        /// Hang charged before the failure, in milliseconds.
        extra_ms: u64,
    },
    /// Matching operations succeed but are slowed by `extra_ms` — a
    /// latency storm (backend degraded, not down).
    LatencyStorm {
        /// Extra latency charged per operation, in milliseconds.
        extra_ms: u64,
    },
}

/// A correlated-failure window on the store's sim clock.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageWindow {
    /// Window start (inclusive), in sim-clock milliseconds.
    pub start_ms: u64,
    /// Window end (exclusive), in sim-clock milliseconds.
    pub end_ms: u64,
    /// Restrict the outage to keys starting with this prefix (a failure
    /// domain such as `"idx/"`); `None` hits every key.
    pub prefix: Option<String>,
    /// What happens to matching operations inside the window.
    pub kind: OutageKind,
}

impl OutageWindow {
    /// A full outage: every operation on every key fails transiently
    /// during `start_ms..end_ms`.
    pub fn full(start_ms: u64, end_ms: u64) -> Self {
        Self {
            start_ms,
            end_ms,
            prefix: None,
            kind: OutageKind::FailAll,
        }
    }

    /// A per-domain outage restricted to keys under `prefix`.
    pub fn domain(prefix: impl Into<String>, start_ms: u64, end_ms: u64) -> Self {
        Self {
            start_ms,
            end_ms,
            prefix: Some(prefix.into()),
            kind: OutageKind::FailAll,
        }
    }

    /// A latency storm adding `extra_ms` to every matching operation.
    pub fn storm(start_ms: u64, end_ms: u64, extra_ms: u64) -> Self {
        Self {
            start_ms,
            end_ms,
            prefix: None,
            kind: OutageKind::LatencyStorm { extra_ms },
        }
    }

    fn matches(&self, key: &str, now_ms: u64) -> bool {
        now_ms >= self.start_ms
            && now_ms < self.end_ms
            && self.prefix.as_deref().is_none_or(|p| key.starts_with(p))
    }
}

/// Combined outage effect on one operation: charge `extra_us` of
/// latency, then fail transiently if `fail` is set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutageVerdict {
    /// The operation fails with a retryable transient error.
    pub fail: bool,
    /// Extra latency to charge, in microseconds.
    pub extra_us: u64,
}

impl OutageVerdict {
    /// Whether any outage effect applies at all.
    pub fn applies(&self) -> bool {
        self.fail || self.extra_us > 0
    }
}

/// Per-operation failure probabilities for seeded chaos mode.
///
/// All probabilities are in `[0, 1]` and evaluated independently per
/// request from a deterministic splitmix64 stream, so a given seed produces
/// the same fault schedule on every run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability that a PUT fails transiently (no effect).
    pub put_fail_p: f64,
    /// Probability that a surviving PUT lands but its ack is lost
    /// (reported as [`crate::StoreError::Transient`]).
    pub ack_lost_p: f64,
    /// Probability that a GET / HEAD fails transiently.
    pub get_fail_p: f64,
    /// Probability that a surviving range GET is torn: a prefix of the
    /// requested bytes is returned.
    pub torn_read_p: f64,
    /// Probability that a DELETE fails transiently.
    pub delete_fail_p: f64,
    /// Probability that a request is hit by a latency spike.
    pub latency_spike_p: f64,
    /// Extra latency charged on a spike, in milliseconds.
    pub latency_spike_ms: u64,
}

impl ChaosConfig {
    /// Uniform chaos: every failure mode fires with probability `p`
    /// (ack-loss at `p / 2`, since it only applies to surviving PUTs),
    /// with 250 ms latency spikes.
    pub fn uniform(seed: u64, p: f64) -> Self {
        Self {
            seed,
            put_fail_p: p,
            ack_lost_p: p / 2.0,
            get_fail_p: p,
            torn_read_p: p,
            delete_fail_p: p,
            latency_spike_p: p,
            latency_spike_ms: 250,
        }
    }
}

/// Chaos verdict for a single PUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutChaos {
    /// The request proceeds normally.
    None,
    /// The request fails transiently; the write has no effect.
    Fail,
    /// The write takes effect but the ack is lost: the store applies the
    /// mutation and *then* returns [`crate::StoreError::Transient`].
    AckLost,
}

/// Chaos verdict for a single GET (whole-object or range).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GetChaos {
    /// The request fails transiently.
    pub fail: bool,
    /// A surviving range read is torn: return only `keep_fraction` of the
    /// requested bytes (ignored for whole-object GETs, which are atomic).
    pub torn: bool,
    /// Fraction of the requested bytes a torn read keeps, in `[0, 1)`.
    pub keep_fraction: f64,
}

struct Chaos {
    config: ChaosConfig,
    rng: u64,
}

impl Chaos {
    fn next_unit(&mut self) -> f64 {
        // splitmix64: tiny, seedable, and good enough for fault schedules.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn roll(&mut self, p: f64) -> bool {
        // Consume a draw even when p == 0 so enabling one failure mode
        // does not reshuffle the schedule of the others.
        self.next_unit() < p
    }
}

impl std::fmt::Debug for Chaos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chaos")
            .field("config", &self.config)
            .finish()
    }
}

/// Shared fault-injection state attached to a [`crate::MemoryStore`].
#[derive(Debug, Default)]
pub struct FaultInjector {
    puts_until_fail: AtomicU64,
    puts_after_armed: std::sync::atomic::AtomicBool,
    patterns: Mutex<Vec<FaultKind>>,
    chaos: Mutex<Option<Chaos>>,
    outages: Mutex<Vec<OutageWindow>>,
    /// Lock-free fast path: `outage_verdict` is on every hot op path and
    /// must cost nothing when no windows are scheduled (the usual case).
    has_outages: std::sync::atomic::AtomicBool,
}

impl FaultInjector {
    /// Creates an injector with no armed faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a fault. Pattern faults fire once and disarm; `FailPutsAfter`
    /// stays armed until [`FaultInjector::disarm_all`].
    pub fn arm(&self, kind: FaultKind) {
        if let FaultKind::FailPutsAfter(n) = kind {
            self.puts_until_fail.store(n, Ordering::SeqCst);
            self.puts_after_armed.store(true, Ordering::SeqCst);
            return;
        }
        self.patterns.lock().push(kind);
    }

    /// Clears every armed fault, disables chaos mode, and cancels all
    /// scheduled outage windows.
    pub fn disarm_all(&self) {
        self.patterns.lock().clear();
        self.puts_after_armed.store(false, Ordering::SeqCst);
        *self.chaos.lock() = None;
        self.outages.lock().clear();
        self.has_outages.store(false, Ordering::SeqCst);
    }

    /// Schedules a correlated-failure window. Windows stay scheduled
    /// until [`FaultInjector::disarm_all`] or
    /// [`FaultInjector::clear_outages`]; past windows are inert.
    pub fn schedule_outage(&self, window: OutageWindow) {
        self.outages.lock().push(window);
        self.has_outages.store(true, Ordering::SeqCst);
    }

    /// Cancels all scheduled outage windows, leaving patterns and chaos
    /// armed.
    pub fn clear_outages(&self) {
        self.outages.lock().clear();
        self.has_outages.store(false, Ordering::SeqCst);
    }

    /// Whether any outage window is scheduled to be active at `now_ms`
    /// (for any key).
    pub fn outage_active(&self, now_ms: u64) -> bool {
        if !self.has_outages.load(Ordering::Relaxed) {
            return false;
        }
        self.outages
            .lock()
            .iter()
            .any(|w| now_ms >= w.start_ms && now_ms < w.end_ms)
    }

    /// Evaluates all scheduled outage windows against one operation.
    /// Latency effects accumulate across overlapping windows; any
    /// matching `FailAll`/`Stall` window makes the operation fail.
    pub fn outage_verdict(&self, key: &str, now_ms: u64) -> OutageVerdict {
        if !self.has_outages.load(Ordering::Relaxed) {
            return OutageVerdict::default();
        }
        let outages = self.outages.lock();
        let mut verdict = OutageVerdict::default();
        for w in outages.iter() {
            if !w.matches(key, now_ms) {
                continue;
            }
            match &w.kind {
                OutageKind::FailAll => verdict.fail = true,
                OutageKind::Stall { extra_ms } => {
                    verdict.fail = true;
                    verdict.extra_us += extra_ms * 1000;
                }
                OutageKind::LatencyStorm { extra_ms } => {
                    verdict.extra_us += extra_ms * 1000;
                }
            }
        }
        verdict
    }

    /// Enables (`Some`) or disables (`None`) seeded probabilistic chaos.
    pub fn set_chaos(&self, config: Option<ChaosConfig>) {
        *self.chaos.lock() = config.map(|config| Chaos {
            rng: config.seed ^ 0x5DEE_CE66,
            config,
        });
    }

    /// Whether chaos mode is currently enabled.
    pub fn chaos_enabled(&self) -> bool {
        self.chaos.lock().is_some()
    }

    /// Checks whether a PUT of `key` should fail, consuming one-shot faults.
    pub fn check_put(&self, key: &str) -> Result<(), StoreError> {
        if self.puts_after_armed.load(Ordering::SeqCst) {
            let prev = self
                .puts_until_fail
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                    Some(v.saturating_sub(1))
                });
            if prev == Ok(0) {
                return Err(StoreError::Injected("put budget exhausted"));
            }
        }
        if self
            .take_matching(
                |k| matches!(k, FaultKind::FailPutMatching(p) if key.contains(p.as_str())),
            )
            .is_some()
        {
            return Err(StoreError::Injected("put fault"));
        }
        if self
            .take_matching(
                |k| matches!(k, FaultKind::TransientPutMatching(p) if key.contains(p.as_str())),
            )
            .is_some()
        {
            return Err(StoreError::Transient("put dropped"));
        }
        Ok(())
    }

    /// Whether the next PUT of `key` should land but report a lost ack.
    /// Consumes a one-shot [`FaultKind::AckLostPutMatching`] if armed.
    pub fn take_ack_lost_put(&self, key: &str) -> bool {
        self.take_matching(
            |k| matches!(k, FaultKind::AckLostPutMatching(p) if key.contains(p.as_str())),
        )
        .is_some()
    }

    /// Checks whether a GET of `key` should fail.
    pub fn check_get(&self, key: &str) -> Result<(), StoreError> {
        if self
            .take_matching(
                |k| matches!(k, FaultKind::FailGetMatching(p) if key.contains(p.as_str())),
            )
            .is_some()
        {
            return Err(StoreError::Injected("get fault"));
        }
        if self
            .take_matching(
                |k| matches!(k, FaultKind::TransientGetMatching(p) if key.contains(p.as_str())),
            )
            .is_some()
        {
            return Err(StoreError::Transient("get timed out"));
        }
        Ok(())
    }

    /// Checks whether a DELETE of `key` should fail.
    pub fn check_delete(&self, key: &str) -> Result<(), StoreError> {
        if self
            .take_matching(
                |k| matches!(k, FaultKind::FailDeleteMatching(p) if key.contains(p.as_str())),
            )
            .is_some()
        {
            return Err(StoreError::Injected("delete fault"));
        }
        if self
            .take_matching(
                |k| matches!(k, FaultKind::TransientDeleteMatching(p) if key.contains(p.as_str())),
            )
            .is_some()
        {
            return Err(StoreError::Transient("delete timed out"));
        }
        Ok(())
    }

    /// Rolls the chaos dice for a PUT. [`PutChaos::None`] when chaos is off.
    pub fn chaos_put(&self) -> PutChaos {
        let mut guard = self.chaos.lock();
        let Some(chaos) = guard.as_mut() else {
            return PutChaos::None;
        };
        let (fail_p, ack_p) = (chaos.config.put_fail_p, chaos.config.ack_lost_p);
        if chaos.roll(fail_p) {
            PutChaos::Fail
        } else if chaos.roll(ack_p) {
            PutChaos::AckLost
        } else {
            PutChaos::None
        }
    }

    /// Rolls the chaos dice for a GET or HEAD.
    pub fn chaos_get(&self) -> GetChaos {
        let mut guard = self.chaos.lock();
        let Some(chaos) = guard.as_mut() else {
            return GetChaos {
                fail: false,
                torn: false,
                keep_fraction: 0.0,
            };
        };
        let (fail_p, torn_p) = (chaos.config.get_fail_p, chaos.config.torn_read_p);
        let fail = chaos.roll(fail_p);
        let torn = !fail && chaos.roll(torn_p);
        let keep_fraction = if torn { chaos.next_unit() } else { 0.0 };
        GetChaos {
            fail,
            torn,
            keep_fraction,
        }
    }

    /// Rolls the chaos dice for a DELETE. `true` means fail transiently.
    pub fn chaos_delete(&self) -> bool {
        let mut guard = self.chaos.lock();
        let Some(chaos) = guard.as_mut() else {
            return false;
        };
        let p = chaos.config.delete_fail_p;
        chaos.roll(p)
    }

    /// Rolls the chaos dice for a latency spike; returns the extra latency
    /// in microseconds (0 when no spike).
    pub fn chaos_spike_us(&self) -> u64 {
        let mut guard = self.chaos.lock();
        let Some(chaos) = guard.as_mut() else {
            return 0;
        };
        let (p, ms) = (chaos.config.latency_spike_p, chaos.config.latency_spike_ms);
        if chaos.roll(p) {
            ms * 1000
        } else {
            0
        }
    }

    fn take_matching(&self, pred: impl Fn(&FaultKind) -> bool) -> Option<FaultKind> {
        let mut patterns = self.patterns.lock();
        let idx = patterns.iter().position(pred)?;
        Some(patterns.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_faults_fire_once() {
        let inj = FaultInjector::new();
        inj.arm(FaultKind::FailPutMatching("index".into()));
        assert!(inj.check_put("data/a.parquet").is_ok());
        assert_eq!(
            inj.check_put("idx/ac02.index"),
            Err(StoreError::Injected("put fault"))
        );
        assert!(inj.check_put("idx/ac02.index").is_ok(), "one-shot");
    }

    #[test]
    fn puts_after_budget() {
        let inj = FaultInjector::new();
        inj.arm(FaultKind::FailPutsAfter(2));
        assert!(inj.check_put("a").is_ok());
        assert!(inj.check_put("b").is_ok());
        assert!(inj.check_put("c").is_err());
        assert!(inj.check_put("d").is_err(), "stays failed until disarm");
        inj.disarm_all();
        assert!(inj.check_put("e").is_ok());
    }

    #[test]
    fn get_and_delete_faults() {
        let inj = FaultInjector::new();
        inj.arm(FaultKind::FailGetMatching("b.parquet".into()));
        inj.arm(FaultKind::FailDeleteMatching(".index".into()));
        assert!(inj.check_get("t/a.parquet").is_ok());
        assert!(inj.check_get("t/b.parquet").is_err());
        assert!(inj.check_delete("idx/x.index").is_err());
        assert!(inj.check_delete("idx/x.index").is_ok());
    }

    #[test]
    fn transient_faults_are_retryable_crash_faults_are_not() {
        let inj = FaultInjector::new();
        inj.arm(FaultKind::TransientGetMatching("x".into()));
        inj.arm(FaultKind::FailGetMatching("y".into()));
        let transient = inj.check_get("t/x").unwrap_err();
        let crash = inj.check_get("t/y").unwrap_err();
        assert!(transient.is_retryable());
        assert!(!crash.is_retryable());
    }

    #[test]
    fn ack_lost_is_a_separate_channel() {
        let inj = FaultInjector::new();
        inj.arm(FaultKind::AckLostPutMatching("commit".into()));
        // check_put does not consume ack-lost faults...
        assert!(inj.check_put("log/commit-00001").is_ok());
        // ...take_ack_lost_put does, once.
        assert!(inj.take_ack_lost_put("log/commit-00001"));
        assert!(!inj.take_ack_lost_put("log/commit-00001"));
    }

    #[test]
    fn chaos_stream_is_deterministic() {
        let a = FaultInjector::new();
        let b = FaultInjector::new();
        a.set_chaos(Some(ChaosConfig::uniform(42, 0.3)));
        b.set_chaos(Some(ChaosConfig::uniform(42, 0.3)));
        for _ in 0..200 {
            assert_eq!(a.chaos_put(), b.chaos_put());
            assert_eq!(a.chaos_get(), b.chaos_get());
            assert_eq!(a.chaos_delete(), b.chaos_delete());
            assert_eq!(a.chaos_spike_us(), b.chaos_spike_us());
        }
    }

    #[test]
    fn chaos_fires_at_roughly_the_configured_rate() {
        let inj = FaultInjector::new();
        inj.set_chaos(Some(ChaosConfig::uniform(7, 0.2)));
        let fails = (0..2000).filter(|_| inj.chaos_delete()).count();
        assert!(
            (300..500).contains(&fails),
            "expected ~400 fails, got {fails}"
        );
    }

    #[test]
    fn outage_windows_fire_inside_their_span_only() {
        let inj = FaultInjector::new();
        inj.schedule_outage(OutageWindow::full(100, 200));
        assert!(!inj.outage_verdict("tbl/a", 99).fail);
        assert!(inj.outage_verdict("tbl/a", 100).fail);
        assert!(inj.outage_verdict("idx/meta", 199).fail);
        assert!(!inj.outage_verdict("tbl/a", 200).fail, "end is exclusive");
        assert!(inj.outage_active(150));
        assert!(!inj.outage_active(250));
    }

    #[test]
    fn domain_outages_respect_the_prefix() {
        let inj = FaultInjector::new();
        inj.schedule_outage(OutageWindow::domain("idx/", 0, 100));
        assert!(inj.outage_verdict("idx/meta/0", 50).fail);
        assert!(!inj.outage_verdict("tbl/part-0", 50).fail);
    }

    #[test]
    fn stalls_and_storms_charge_latency() {
        let inj = FaultInjector::new();
        inj.schedule_outage(OutageWindow {
            start_ms: 0,
            end_ms: 100,
            prefix: None,
            kind: OutageKind::Stall { extra_ms: 30 },
        });
        inj.schedule_outage(OutageWindow::storm(0, 100, 5));
        let v = inj.outage_verdict("tbl/a", 10);
        assert!(v.fail, "the stall window fails the op");
        assert_eq!(v.extra_us, 35_000, "stall + storm latency accumulate");
        // A storm alone slows but does not fail.
        inj.clear_outages();
        inj.schedule_outage(OutageWindow::storm(0, 100, 5));
        let v = inj.outage_verdict("tbl/a", 10);
        assert!(!v.fail);
        assert_eq!(v.extra_us, 5_000);
        assert!(v.applies());
    }

    #[test]
    fn outages_do_not_perturb_the_chaos_schedule() {
        let with = FaultInjector::new();
        let without = FaultInjector::new();
        with.set_chaos(Some(ChaosConfig::uniform(42, 0.3)));
        without.set_chaos(Some(ChaosConfig::uniform(42, 0.3)));
        with.schedule_outage(OutageWindow::full(0, 1_000_000));
        for _ in 0..100 {
            let _ = with.outage_verdict("k", 50);
            assert_eq!(with.chaos_get(), without.chaos_get());
            assert_eq!(with.chaos_put(), without.chaos_put());
        }
    }

    #[test]
    fn disarm_all_cancels_outages() {
        let inj = FaultInjector::new();
        inj.schedule_outage(OutageWindow::full(0, 1000));
        assert!(inj.outage_verdict("k", 5).fail);
        inj.disarm_all();
        assert!(!inj.outage_verdict("k", 5).applies());
    }

    #[test]
    fn chaos_off_is_quiet() {
        let inj = FaultInjector::new();
        assert_eq!(inj.chaos_put(), PutChaos::None);
        assert!(!inj.chaos_get().fail);
        assert!(!inj.chaos_delete());
        assert_eq!(inj.chaos_spike_us(), 0);
        inj.set_chaos(Some(ChaosConfig::uniform(1, 1.0)));
        assert_eq!(inj.chaos_put(), PutChaos::Fail);
        inj.disarm_all();
        assert_eq!(inj.chaos_put(), PutChaos::None, "disarm_all clears chaos");
    }
}
