//! Store-health tracking: per-domain circuit breakers plus a
//! process-wide retry budget.
//!
//! A production object store fails *correlated*: a throttling storm or a
//! regional brownout fails every request at once. Independent per-op
//! retries then multiply offered load by the retry budget exactly when
//! the backend can least afford it — the classic metastable-failure
//! shape. This module gives the decorator stack two levers against that:
//!
//! 1. **Circuit breakers per failure domain.** A failure domain is the
//!    first path segment of the object key (`idx/...` vs `tbl/...`), so
//!    an index-prefix outage can trip independently of the data prefix.
//!    Each domain keeps an error-rate EWMA and a consecutive-failure
//!    count; either crossing its threshold opens the breaker. An open
//!    breaker rejects requests instantly (`Admit::Reject`) until a
//!    sim-clock cooldown elapses, then admits a bounded number of
//!    half-open probes (`Admit::Probe`). Probe successes close the
//!    breaker; any probe failure re-opens it with a fresh cooldown.
//! 2. **A retry budget.** A token bucket shared by every operation going
//!    through the owning [`RetryStore`](crate::RetryStore) stack: each
//!    retry (not the first attempt) spends one token, each successful
//!    request refills `retry_refill_millitokens`. During a full outage
//!    nothing succeeds, the bucket drains, and retries stop fleet-wide —
//!    total sent ops stay within `admitted_ops + bucket_capacity`, a
//!    provable amplification bound independent of per-op `max_attempts`
//!    and of the refill rate (no successes, no refills).
//!
//! All timestamps are caller-supplied milliseconds (the store sim
//! clock), so breaker cooldowns compose with simulated time in tests and
//! benches exactly like retry backoff does.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Breaker state for one failure domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all traffic admitted.
    Closed,
    /// Tripped: all traffic rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: a bounded number of probe requests are admitted
    /// to test the backend; everything else is still rejected.
    HalfOpen,
}

/// Admission verdict for one request against a domain's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Breaker closed — proceed normally.
    Allow,
    /// Breaker half-open — proceed, but this request is one of the
    /// bounded probe slots; its outcome decides the breaker's fate.
    Probe,
    /// Breaker open (or all probe slots taken) — fail fast without
    /// touching the backend.
    Reject {
        /// Hint for how long the caller should wait before trying again.
        retry_after_ms: u64,
    },
}

/// Tuning for [`HealthTracker`].
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive failures in one domain that open its breaker.
    pub consecutive_failures: u32,
    /// Error-rate EWMA (per mille) that opens the breaker once at least
    /// `min_samples` outcomes have been observed.
    pub error_rate_permille: u32,
    /// Minimum observations before the EWMA threshold can trip.
    pub min_samples: u32,
    /// Sim-clock cooldown an open breaker waits before going half-open.
    pub cooldown_ms: u64,
    /// Concurrent probe requests admitted while half-open.
    pub half_open_probes: u32,
    /// Probe successes required to close a half-open breaker.
    pub half_open_successes: u32,
    /// Retry-budget bucket capacity, in whole tokens (1 token = 1 retry).
    pub retry_budget_tokens: u32,
    /// Millitokens refilled into the retry budget per successful request
    /// (1000 = one full retry earned back per success).
    pub retry_refill_millitokens: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            consecutive_failures: 5,
            error_rate_permille: 500,
            min_samples: 10,
            cooldown_ms: 1_000,
            half_open_probes: 2,
            half_open_successes: 3,
            retry_budget_tokens: 32,
            retry_refill_millitokens: 1000,
        }
    }
}

/// EWMA weight: new sample gets 1/8, history keeps 7/8. Integer
/// arithmetic in per-mille space keeps the tracker allocation-free on
/// the hot path.
const EWMA_SHIFT: u32 = 3;

#[derive(Debug, Default)]
struct DomainHealth {
    state_open: bool,
    half_open: bool,
    /// Failure-rate EWMA in per mille (0..=1000).
    err_permille: u32,
    /// Outcomes observed since the breaker last closed.
    samples: u32,
    consecutive: u32,
    open_until_ms: u64,
    probes_in_flight: u32,
    probe_successes: u32,
}

impl DomainHealth {
    fn state(&self, now_ms: u64) -> BreakerState {
        if self.half_open {
            BreakerState::HalfOpen
        } else if self.state_open {
            if now_ms >= self.open_until_ms {
                BreakerState::HalfOpen
            } else {
                BreakerState::Open
            }
        } else {
            BreakerState::Closed
        }
    }

    fn trip(&mut self, now_ms: u64, cooldown_ms: u64) {
        self.state_open = true;
        self.half_open = false;
        self.open_until_ms = now_ms + cooldown_ms;
        self.probes_in_flight = 0;
        self.probe_successes = 0;
        self.consecutive = 0;
    }

    fn close(&mut self) {
        self.state_open = false;
        self.half_open = false;
        self.err_permille = 0;
        self.samples = 0;
        self.consecutive = 0;
        self.probes_in_flight = 0;
        self.probe_successes = 0;
    }

    fn observe(&mut self, failed: bool) {
        let sample = if failed { 1000 } else { 0 };
        // err = (err * 7 + sample) / 8, in integer per-mille space.
        self.err_permille =
            (self.err_permille - (self.err_permille >> EWMA_SHIFT)) + (sample >> EWMA_SHIFT);
        self.samples = self.samples.saturating_add(1);
        if failed {
            self.consecutive = self.consecutive.saturating_add(1);
        } else {
            self.consecutive = 0;
        }
    }
}

/// Shared health state for one decorator stack: per-domain circuit
/// breakers plus the process-wide retry budget.
///
/// One tracker is shared (via `Arc`) between the `RetryStore`, the
/// search executor, and the serve layer, so breaker trips observed at
/// the store level drive brownout decisions at the query level.
#[derive(Debug)]
pub struct HealthTracker {
    cfg: HealthConfig,
    domains: Mutex<HashMap<String, DomainHealth>>,
    /// Retry budget in millitokens (1 retry = 1000 millitokens).
    retry_millitokens: AtomicU64,
    breaker_opens: AtomicU64,
}

impl HealthTracker {
    /// Build a tracker with the given tuning; the retry bucket starts
    /// full.
    pub fn new(cfg: HealthConfig) -> Self {
        let full = u64::from(cfg.retry_budget_tokens) * 1000;
        HealthTracker {
            cfg,
            domains: Mutex::new(HashMap::new()),
            retry_millitokens: AtomicU64::new(full),
            breaker_opens: AtomicU64::new(0),
        }
    }

    /// Default-tuned tracker wrapped for sharing across decorator layers.
    pub fn shared() -> Arc<Self> {
        Arc::new(HealthTracker::new(HealthConfig::default()))
    }

    /// The failure domain of a key: its first path segment (`idx/meta/x`
    /// → `idx`). Keys with no separator are their own domain.
    pub fn domain_of(key: &str) -> &str {
        key.split('/').next().unwrap_or(key)
    }

    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Admission check for a request touching `key` at sim-time
    /// `now_ms`. A `Probe` verdict reserves one half-open probe slot;
    /// the caller **must** balance it with `record_success` or
    /// `record_failure` for the same key.
    pub fn admit(&self, key: &str, now_ms: u64) -> Admit {
        self.admit_domain(Self::domain_of(key), now_ms)
    }

    /// [`admit`](Self::admit) against an explicit domain name.
    pub fn admit_domain(&self, domain: &str, now_ms: u64) -> Admit {
        let mut map = self.domains.lock().unwrap();
        let Some(d) = map.get_mut(domain) else {
            return Admit::Allow;
        };
        match d.state(now_ms) {
            BreakerState::Closed => Admit::Allow,
            BreakerState::Open => Admit::Reject {
                retry_after_ms: d.open_until_ms.saturating_sub(now_ms).max(1),
            },
            BreakerState::HalfOpen => {
                d.half_open = true;
                if d.probes_in_flight < self.cfg.half_open_probes {
                    d.probes_in_flight += 1;
                    Admit::Probe
                } else {
                    Admit::Reject {
                        retry_after_ms: (self.cfg.cooldown_ms / 4).max(1),
                    }
                }
            }
        }
    }

    /// Record a successful (or semantically-resolved) request on `key`.
    /// Refills the retry budget and feeds the domain breaker.
    pub fn record_success(&self, key: &str, now_ms: u64) {
        self.refill(u64::from(self.cfg.retry_refill_millitokens));
        let mut map = self.domains.lock().unwrap();
        let Some(d) = map.get_mut(Self::domain_of(key)) else {
            return;
        };
        let _ = now_ms;
        if d.half_open {
            d.probes_in_flight = d.probes_in_flight.saturating_sub(1);
            d.probe_successes += 1;
            if d.probe_successes >= self.cfg.half_open_successes {
                d.close();
            }
        } else {
            d.observe(false);
        }
    }

    /// Record a failed attempt on `key` (retryable, non-cancelled
    /// faults only — crash-model and semantic errors must not feed the
    /// breaker). May trip the domain breaker.
    pub fn record_failure(&self, key: &str, now_ms: u64) {
        let mut map = self.domains.lock().unwrap();
        let d = map.entry(Self::domain_of(key).to_string()).or_default();
        if d.half_open {
            // Any probe failure re-opens immediately.
            self.breaker_opens.fetch_add(1, Ordering::Relaxed);
            d.trip(now_ms, self.cfg.cooldown_ms);
            return;
        }
        if d.state_open {
            // Already open (failure raced the cooldown); extend nothing.
            return;
        }
        d.observe(true);
        let rate_trip =
            d.samples >= self.cfg.min_samples && d.err_permille >= self.cfg.error_rate_permille;
        if d.consecutive >= self.cfg.consecutive_failures || rate_trip {
            self.breaker_opens.fetch_add(1, Ordering::Relaxed);
            d.trip(now_ms, self.cfg.cooldown_ms);
        }
    }

    /// Releases a probe slot reserved by an [`Admit::Probe`] verdict
    /// whose operation ended with a *neutral* outcome — cancelled
    /// speculative lanes and crash-model faults are neither evidence of
    /// recovery nor of backend failure, but the slot must not leak.
    pub fn release_probe(&self, key: &str) {
        let mut map = self.domains.lock().unwrap();
        if let Some(d) = map.get_mut(Self::domain_of(key)) {
            if d.half_open {
                d.probes_in_flight = d.probes_in_flight.saturating_sub(1);
            }
        }
    }

    /// Non-mutating breaker state for a domain — safe for introspection
    /// (serve-mode decisions) because it never reserves a probe slot.
    pub fn state(&self, domain: &str, now_ms: u64) -> BreakerState {
        let map = self.domains.lock().unwrap();
        map.get(domain)
            .map(|d| d.state(now_ms))
            .unwrap_or(BreakerState::Closed)
    }

    /// Spend one retry token. Returns `false` (and spends nothing) when
    /// the bucket is empty — the caller must stop retrying.
    pub fn try_spend_retry_token(&self) -> bool {
        let mut cur = self.retry_millitokens.load(Ordering::Relaxed);
        loop {
            if cur < 1000 {
                return false;
            }
            match self.retry_millitokens.compare_exchange_weak(
                cur,
                cur - 1000,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    fn refill(&self, millitokens: u64) {
        let cap = u64::from(self.cfg.retry_budget_tokens) * 1000;
        let mut cur = self.retry_millitokens.load(Ordering::Relaxed);
        loop {
            if cur >= cap {
                return;
            }
            let next = (cur + millitokens).min(cap);
            match self.retry_millitokens.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Remaining retry budget in whole tokens (floor).
    pub fn retry_tokens(&self) -> u64 {
        self.retry_millitokens.load(Ordering::Relaxed) / 1000
    }

    /// Times any domain breaker transitioned to Open.
    pub fn breaker_opens(&self) -> u64 {
        self.breaker_opens.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            consecutive_failures: 3,
            error_rate_permille: 500,
            min_samples: 8,
            cooldown_ms: 100,
            half_open_probes: 2,
            half_open_successes: 2,
            retry_budget_tokens: 4,
            retry_refill_millitokens: 500,
        }
    }

    #[test]
    fn domains_are_first_path_segment() {
        assert_eq!(HealthTracker::domain_of("idx/meta/0"), "idx");
        assert_eq!(HealthTracker::domain_of("tbl/part-1.lance"), "tbl");
        assert_eq!(HealthTracker::domain_of("rootfile"), "rootfile");
    }

    #[test]
    fn consecutive_failures_open_the_breaker() {
        let h = HealthTracker::new(cfg());
        assert_eq!(h.admit("idx/a", 0), Admit::Allow);
        for _ in 0..2 {
            h.record_failure("idx/a", 0);
            assert_eq!(h.admit("idx/a", 0), Admit::Allow);
        }
        h.record_failure("idx/a", 0);
        assert!(matches!(h.admit("idx/b", 0), Admit::Reject { .. }));
        assert_eq!(h.breaker_opens(), 1);
        // Other domains unaffected.
        assert_eq!(h.admit("tbl/x", 0), Admit::Allow);
    }

    #[test]
    fn error_rate_ewma_opens_with_min_samples() {
        let mut c = cfg();
        c.consecutive_failures = u32::MAX; // isolate the rate path
        let h = HealthTracker::new(c);
        // Alternate success/failure: consecutive never exceeds 1, but the
        // EWMA climbs toward 50%+ as failures dominate later samples.
        for i in 0..40 {
            if i % 3 == 0 {
                h.record_success("idx/a", 0);
            } else {
                h.record_failure("idx/a", 0);
            }
        }
        assert!(
            matches!(h.admit("idx/a", 0), Admit::Reject { .. }),
            "EWMA at 2/3 failure rate should trip the 50% threshold"
        );
    }

    #[test]
    fn cooldown_then_half_open_probes_bounded() {
        let h = HealthTracker::new(cfg());
        for _ in 0..3 {
            h.record_failure("idx/a", 0);
        }
        assert!(matches!(h.admit("idx/a", 50), Admit::Reject { .. }));
        // Cooldown elapsed: exactly `half_open_probes` probe slots.
        assert_eq!(h.admit("idx/a", 100), Admit::Probe);
        assert_eq!(h.admit("idx/a", 100), Admit::Probe);
        assert!(matches!(h.admit("idx/a", 100), Admit::Reject { .. }));
        assert_eq!(h.state("idx", 100), BreakerState::HalfOpen);
    }

    #[test]
    fn probe_successes_close_probe_failure_reopens() {
        let h = HealthTracker::new(cfg());
        for _ in 0..3 {
            h.record_failure("idx/a", 0);
        }
        // First recovery attempt: probe fails → re-open with new cooldown.
        assert_eq!(h.admit("idx/a", 100), Admit::Probe);
        h.record_failure("idx/a", 100);
        assert_eq!(h.state("idx", 150), BreakerState::Open);
        assert!(matches!(h.admit("idx/a", 150), Admit::Reject { .. }));
        // Second attempt after the fresh cooldown: two successes close.
        assert_eq!(h.admit("idx/a", 200), Admit::Probe);
        h.record_success("idx/a", 200);
        assert_eq!(h.admit("idx/a", 200), Admit::Probe);
        h.record_success("idx/a", 200);
        assert_eq!(h.state("idx", 200), BreakerState::Closed);
        assert_eq!(h.admit("idx/a", 200), Admit::Allow);
    }

    #[test]
    fn closing_resets_history() {
        let h = HealthTracker::new(cfg());
        for _ in 0..3 {
            h.record_failure("idx/a", 0);
        }
        assert_eq!(h.admit("idx/a", 100), Admit::Probe);
        h.record_success("idx/a", 100);
        assert_eq!(h.admit("idx/a", 100), Admit::Probe);
        h.record_success("idx/a", 100);
        // One failure after closing must not instantly re-open on stale
        // EWMA history.
        h.record_failure("idx/a", 200);
        assert_eq!(h.admit("idx/a", 200), Admit::Allow);
    }

    #[test]
    fn retry_budget_drains_and_refills() {
        let h = HealthTracker::new(cfg()); // 4 tokens, 0.5/success refill
        for _ in 0..4 {
            assert!(h.try_spend_retry_token());
        }
        assert!(!h.try_spend_retry_token(), "bucket empty");
        assert_eq!(h.retry_tokens(), 0);
        // Two successes refill one whole token.
        h.record_success("tbl/x", 0);
        assert!(!h.try_spend_retry_token());
        h.record_success("tbl/x", 0);
        assert!(h.try_spend_retry_token());
        assert!(!h.try_spend_retry_token());
    }

    #[test]
    fn refill_is_capped_at_bucket_size() {
        let h = HealthTracker::new(cfg());
        for _ in 0..100 {
            h.record_success("tbl/x", 0);
        }
        assert_eq!(h.retry_tokens(), 4);
    }

    #[test]
    fn amplification_bound_under_full_outage() {
        // With N admitted ops each failing, total sent ops is bounded by
        // N (first attempts) + bucket capacity (retries): amplification
        // ≤ 1 + capacity/N regardless of per-op max_attempts.
        let mut c = cfg();
        c.consecutive_failures = u32::MAX;
        c.error_rate_permille = 1001; // never trips: isolate the budget
        let h = HealthTracker::new(c);
        let admitted = 16u64;
        let mut sent = 0u64;
        for _ in 0..admitted {
            sent += 1; // first attempt
            for _ in 0..8 {
                if !h.try_spend_retry_token() {
                    break;
                }
                sent += 1;
                h.record_failure("tbl/x", 0);
            }
        }
        assert!(sent <= admitted + 4, "sent {sent} > {} bound", admitted + 4);
    }

    #[test]
    fn unknown_domain_state_is_closed() {
        let h = HealthTracker::new(cfg());
        assert_eq!(h.state("nope", 0), BreakerState::Closed);
        assert_eq!(h.admit("nope/x", 0), Admit::Allow);
    }
}
