//! Cooperative cancellation for speculative store work.
//!
//! [`CancelStore`] wraps any [`ObjectStore`] and checks a shared flag
//! before every request: once the flag is raised, every subsequent
//! operation fails immediately with a typed
//! [`StoreError::Transient`]`(`[`CANCELLED`]`)` instead of reaching the
//! backend. That turns every store round trip into a cancellation point —
//! exactly what a hedged (duplicate) probe needs to stop its losing lane
//! promptly without threads, signals, or poisoned state: the loser aborts
//! at its next request boundary, and because caches and single-flight
//! layers only admit fully verified payloads, an abandoned lane leaves
//! nothing behind.
//!
//! Accounting methods (`stats`, `record_*`, `clock`, `now_ms`) delegate
//! unconditionally — cancellation stops *requests*, not bookkeeping.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

use bytes::Bytes;

use crate::stats::StatsSnapshot;
use crate::{ObjectMeta, ObjectStore, RangeRequest, Result, SimClock, StoreError};

/// Message carried by the typed cancellation error. Comparing against
/// this constant identifies a failure as "lane cancelled" rather than a
/// real backend fault.
pub const CANCELLED: &str = "cancelled speculative lane";

/// Returns the typed error every cancelled operation fails with.
pub fn cancelled_error() -> StoreError {
    StoreError::Transient(CANCELLED)
}

/// Whether `e` is the cancellation error raised by a [`CancelStore`],
/// drilling through any provenance [`StoreError::Context`] wrappers a
/// retry layer may have added.
pub fn is_cancelled(e: &StoreError) -> bool {
    matches!(e.root(), StoreError::Transient(m) if *m == CANCELLED)
}

/// An [`ObjectStore`] decorator that fails every request once `flag` is
/// raised. See the module docs.
pub struct CancelStore<'a> {
    inner: &'a dyn ObjectStore,
    flag: &'a AtomicBool,
}

impl<'a> CancelStore<'a> {
    /// Wraps `inner`; operations fail with [`cancelled_error`] once
    /// `flag` reads `true`.
    pub fn new(inner: &'a dyn ObjectStore, flag: &'a AtomicBool) -> Self {
        Self { inner, flag }
    }

    fn check(&self) -> Result<()> {
        if self.flag.load(Ordering::Acquire) {
            return Err(cancelled_error());
        }
        Ok(())
    }
}

impl ObjectStore for CancelStore<'_> {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        self.check()?;
        self.inner.put(key, data)
    }

    fn put_if_absent(&self, key: &str, data: Bytes) -> Result<()> {
        self.check()?;
        self.inner.put_if_absent(key, data)
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.check()?;
        self.inner.get(key)
    }

    fn get_range(&self, key: &str, range: Range<u64>) -> Result<Bytes> {
        self.check()?;
        self.inner.get_range(key, range)
    }

    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<Vec<Bytes>> {
        self.check()?;
        self.inner.get_ranges(requests)
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.check()?;
        self.inner.head(key)
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.check()?;
        self.inner.list(prefix)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.check()?;
        self.inner.delete(key)
    }

    fn now_ms(&self) -> u64 {
        self.inner.now_ms()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn clock(&self) -> Option<&SimClock> {
        self.inner.clock()
    }

    fn record_retry(&self, retries: u64, backoff_ms: u64) {
        self.inner.record_retry(retries, backoff_ms);
    }

    fn coalesce_gap(&self) -> Option<u64> {
        self.inner.coalesce_gap()
    }

    fn store_id(&self) -> u64 {
        // Same identity as the wrapped store: page/component caches and
        // single-flight keys must agree between a hedged lane and the
        // direct path, or the lanes could not share warmed state.
        self.inner.store_id()
    }

    fn record_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.inner.record_cache(hits, misses, bytes_saved);
    }

    fn record_coalesced(&self, n: u64) {
        self.inner.record_coalesced(n);
    }

    fn record_page_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.inner.record_page_cache(hits, misses, bytes_saved);
    }

    fn record_page_cache_bypass(&self, n: u64) {
        self.inner.record_page_cache_bypass(n);
    }

    fn record_dedup(&self, n: u64) {
        self.inner.record_dedup(n);
    }

    fn record_health(&self, breaker_rejections: u64, retry_tokens_denied: u64) {
        self.inner
            .record_health(breaker_rejections, retry_tokens_denied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;

    #[test]
    fn passes_through_until_cancelled_then_fails_typed() {
        let store = MemoryStore::new();
        store.put("k", Bytes::from_static(b"hello")).unwrap();
        let flag = AtomicBool::new(false);
        let cs = CancelStore::new(store.as_ref(), &flag);
        assert_eq!(cs.get("k").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(cs.store_id(), store.store_id());

        flag.store(true, Ordering::Release);
        let err = cs.get("k").unwrap_err();
        assert!(is_cancelled(&err), "typed cancellation, got {err:?}");
        assert!(
            is_cancelled(&cs.head("k").unwrap_err()),
            "every request kind is a cancellation point"
        );
        // The wrapped store is untouched — cancellation never reaches it.
        assert_eq!(store.get("k").unwrap(), Bytes::from_static(b"hello"));
    }

    #[test]
    fn cancellation_error_is_distinguishable() {
        assert!(is_cancelled(&cancelled_error()));
        assert!(!is_cancelled(&StoreError::Transient("other")));
        assert!(!is_cancelled(&StoreError::NotFound("k".into())));
        // Provenance wrappers added by a retry layer don't hide it.
        assert!(is_cancelled(
            &cancelled_error().with_context("get", "idx/meta/0")
        ));
        assert!(!is_cancelled(
            &StoreError::Transient("timeout").with_context("get", "idx/meta/0")
        ));
    }
}
