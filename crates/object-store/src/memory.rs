//! In-memory object store with latency accounting — the backend used by all
//! tests and benchmarks.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;

use crate::coalesce::{CoalescePlan, DEFAULT_COALESCE_GAP};
use crate::fault::PutChaos;
use crate::latency::{LatencyModel, PrefixThrottle};
use crate::stats::{RequestStats, StatsSnapshot};
use crate::{
    next_store_id, FaultInjector, ObjectMeta, ObjectStore, RangeRequest, Result, SimClock,
    StoreError,
};

/// Sentinel for "coalescing disabled" in the atomic gap knob (a real gap
/// this large would merge everything anyway, so nothing is lost).
const COALESCE_DISABLED: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct StoredObject {
    data: Bytes,
    created_ms: u64,
}

/// An in-memory [`ObjectStore`] with strong read-after-write consistency,
/// a simulated latency model, per-prefix GET throttling, request statistics
/// and fault injection.
///
/// The store is cheap to clone-share via `Arc`. All timestamps come from the
/// shared [`SimClock`], which doubles as the "object store's clock" the
/// vacuum protocol requires.
pub struct MemoryStore {
    objects: RwLock<BTreeMap<String, StoredObject>>,
    clock: Arc<SimClock>,
    latency: LatencyModel,
    throttle: Option<PrefixThrottle>,
    stats: RequestStats,
    faults: FaultInjector,
    id: u64,
    coalesce_gap: AtomicU64,
}

impl MemoryStore {
    /// Creates a store with the paper-calibrated default latency model and
    /// S3's 5,500 GET/s per-prefix limit.
    pub fn new() -> Arc<Self> {
        Self::with_model(LatencyModel::default())
    }

    /// Creates a store with zero latency, for semantics-only tests.
    pub fn unmetered() -> Arc<Self> {
        Self::with_model(LatencyModel::zero())
    }

    /// Creates a store with a custom latency model.
    pub fn with_model(latency: LatencyModel) -> Arc<Self> {
        Arc::new(Self {
            objects: RwLock::new(BTreeMap::new()),
            clock: SimClock::new(),
            latency,
            throttle: Some(PrefixThrottle::new(5_500)),
            stats: RequestStats::default(),
            faults: FaultInjector::new(),
            id: next_store_id(),
            coalesce_gap: AtomicU64::new(DEFAULT_COALESCE_GAP),
        })
    }

    /// Creates a store with a custom latency model and per-prefix GET limit
    /// (0 disables throttling).
    pub fn with_model_and_limit(latency: LatencyModel, limit_per_sec: u64) -> Arc<Self> {
        Arc::new(Self {
            objects: RwLock::new(BTreeMap::new()),
            clock: SimClock::new(),
            latency,
            throttle: (limit_per_sec > 0).then(|| PrefixThrottle::new(limit_per_sec)),
            stats: RequestStats::default(),
            faults: FaultInjector::new(),
            id: next_store_id(),
            coalesce_gap: AtomicU64::new(DEFAULT_COALESCE_GAP),
        })
    }

    /// Creates a store whose throttle *rejects* over-limit GETs with
    /// [`StoreError::Throttled`] — real S3's `503 SlowDown` — instead of
    /// modeling client-side queuing delay. Pair with a [`crate::RetryStore`].
    pub fn with_rejecting_throttle(latency: LatencyModel, limit_per_sec: u64) -> Arc<Self> {
        Arc::new(Self {
            objects: RwLock::new(BTreeMap::new()),
            clock: SimClock::new(),
            latency,
            throttle: (limit_per_sec > 0).then(|| PrefixThrottle::rejecting(limit_per_sec)),
            stats: RequestStats::default(),
            faults: FaultInjector::new(),
            id: next_store_id(),
            coalesce_gap: AtomicU64::new(DEFAULT_COALESCE_GAP),
        })
    }

    /// The fault injector for this store.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Sets the range-coalescing gap for [`ObjectStore::get_ranges`]
    /// (`None` disables coalescing; benchmarks that sweep raw request
    /// concurrency need every range to stay its own GET).
    pub fn set_coalesce_gap(&self, gap: Option<u64>) {
        self.coalesce_gap
            .store(gap.unwrap_or(COALESCE_DISABLED), Ordering::Relaxed);
    }

    /// The latency model in effect.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Number of objects currently stored.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }

    /// Total bytes across all stored objects (the storage-cost input of the
    /// TCO model).
    pub fn total_bytes(&self) -> u64 {
        self.objects
            .read()
            .values()
            .map(|o| o.data.len() as u64)
            .sum()
    }

    /// Total bytes across objects under a prefix.
    pub fn bytes_under(&self, prefix: &str) -> u64 {
        self.objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, o)| o.data.len() as u64)
            .sum()
    }

    fn charge_get(&self, key: &str, n_requests: u64, max_request_bytes: u64) -> Result<()> {
        let mut us = self.latency.get_us(max_request_bytes);
        if let Some(t) = &self.throttle {
            match t.try_charge(key, n_requests, self.clock.now_ms()) {
                Ok(delay_us) => us += delay_us,
                Err(retry_after_ms) => {
                    // A 503 still costs a round trip and still counts as
                    // issued requests for the TCO model.
                    self.clock.advance_micros(self.latency.get_first_byte_us);
                    self.stats.record_gets(n_requests, 0);
                    self.stats.record_throttle_rejection();
                    return Err(StoreError::Throttled { retry_after_ms });
                }
            }
        }
        self.clock.advance_micros(us);
        Ok(())
    }

    /// Bumps the injected-fault counter on the way out of a fault check.
    fn faulted(&self, e: StoreError) -> StoreError {
        self.stats.record_fault();
        e
    }

    /// Evaluates scheduled outage windows for an operation on `key`:
    /// charges storm/stall latency to the clock and reports whether the
    /// operation must fail. Runs *after* the chaos rolls so scheduling an
    /// outage never perturbs the deterministic chaos stream.
    fn outage_fails(&self, key: &str) -> bool {
        let v = self.faults.outage_verdict(key, self.clock.now_ms());
        if v.extra_us > 0 {
            self.clock.advance_micros(v.extra_us);
        }
        v.fail
    }

    fn apply_put(&self, key: &str, data: Bytes) {
        self.clock
            .advance_micros(self.latency.put_us(data.len() as u64));
        self.stats.record_put(data.len() as u64);
        let created_ms = self.clock.now_ms();
        self.objects
            .write()
            .insert(key.to_string(), StoredObject { data, created_ms });
    }

    fn apply_put_if_absent(&self, key: &str, data: Bytes) -> Result<()> {
        self.clock
            .advance_micros(self.latency.put_us(data.len() as u64));
        self.stats.record_put(data.len() as u64);
        let created_ms = self.clock.now_ms();
        let mut objects = self.objects.write();
        if objects.contains_key(key) {
            return Err(StoreError::AlreadyExists(key.to_string()));
        }
        objects.insert(key.to_string(), StoredObject { data, created_ms });
        Ok(())
    }
}

impl ObjectStore for MemoryStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        self.faults.check_put(key).map_err(|e| self.faulted(e))?;
        self.clock.advance_micros(self.faults.chaos_spike_us());
        match self.faults.chaos_put() {
            PutChaos::Fail => {
                self.clock
                    .advance_micros(self.latency.put_us(data.len() as u64));
                self.stats.record_put(data.len() as u64);
                return Err(self.faulted(StoreError::Transient("chaos: put dropped")));
            }
            PutChaos::AckLost => {
                self.apply_put(key, data);
                return Err(self.faulted(StoreError::Transient("chaos: put ack lost")));
            }
            PutChaos::None => {}
        }
        if self.faults.take_ack_lost_put(key) {
            self.apply_put(key, data);
            return Err(self.faulted(StoreError::Transient("put ack lost")));
        }
        if self.outage_fails(key) {
            self.clock
                .advance_micros(self.latency.put_us(data.len() as u64));
            self.stats.record_put(data.len() as u64);
            return Err(self.faulted(StoreError::Transient("outage: put failed")));
        }
        self.apply_put(key, data);
        Ok(())
    }

    fn put_if_absent(&self, key: &str, data: Bytes) -> Result<()> {
        self.faults.check_put(key).map_err(|e| self.faulted(e))?;
        self.clock.advance_micros(self.faults.chaos_spike_us());
        match self.faults.chaos_put() {
            PutChaos::Fail => {
                self.clock
                    .advance_micros(self.latency.put_us(data.len() as u64));
                self.stats.record_put(data.len() as u64);
                return Err(self.faulted(StoreError::Transient("chaos: put dropped")));
            }
            PutChaos::AckLost => {
                // The conditional write resolves on the store (it lands iff
                // the key was absent), but the caller only sees a transient
                // failure — the ambiguity RetryStore must untangle.
                let _ = self.apply_put_if_absent(key, data);
                return Err(self.faulted(StoreError::Transient("chaos: put ack lost")));
            }
            PutChaos::None => {}
        }
        if self.faults.take_ack_lost_put(key) {
            let _ = self.apply_put_if_absent(key, data);
            return Err(self.faulted(StoreError::Transient("put ack lost")));
        }
        if self.outage_fails(key) {
            self.clock
                .advance_micros(self.latency.put_us(data.len() as u64));
            self.stats.record_put(data.len() as u64);
            return Err(self.faulted(StoreError::Transient("outage: put failed")));
        }
        self.apply_put_if_absent(key, data)
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.faults.check_get(key).map_err(|e| self.faulted(e))?;
        self.clock.advance_micros(self.faults.chaos_spike_us());
        if self.faults.chaos_get().fail {
            self.clock.advance_micros(self.latency.get_first_byte_us);
            self.stats.record_get(0);
            return Err(self.faulted(StoreError::Transient("chaos: get timed out")));
        }
        if self.outage_fails(key) {
            self.clock.advance_micros(self.latency.get_first_byte_us);
            self.stats.record_get(0);
            return Err(self.faulted(StoreError::Transient("outage: get failed")));
        }
        let data = {
            let objects = self.objects.read();
            objects
                .get(key)
                .ok_or_else(|| StoreError::NotFound(key.to_string()))?
                .data
                .clone()
        };
        self.charge_get(key, 1, data.len() as u64)?;
        self.stats.record_get(data.len() as u64);
        Ok(data)
    }

    fn get_range(&self, key: &str, range: Range<u64>) -> Result<Bytes> {
        self.faults.check_get(key).map_err(|e| self.faulted(e))?;
        self.clock.advance_micros(self.faults.chaos_spike_us());
        let chaos = self.faults.chaos_get();
        if chaos.fail {
            self.clock.advance_micros(self.latency.get_first_byte_us);
            self.stats.record_get(0);
            return Err(self.faulted(StoreError::Transient("chaos: get timed out")));
        }
        if self.outage_fails(key) {
            self.clock.advance_micros(self.latency.get_first_byte_us);
            self.stats.record_get(0);
            return Err(self.faulted(StoreError::Transient("outage: get failed")));
        }
        let mut data = {
            let objects = self.objects.read();
            let obj = objects
                .get(key)
                .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
            slice_range(key, &obj.data, &range)?
        };
        if chaos.torn && data.len() > 1 {
            // A torn response: the connection dropped mid-body and only a
            // prefix arrived. No error — detecting this is the client's job.
            let keep =
                ((data.len() as f64 * chaos.keep_fraction) as usize).clamp(1, data.len() - 1);
            data = data.slice(..keep);
            self.stats.record_fault();
        }
        self.charge_get(key, 1, data.len() as u64)?;
        self.stats.record_get(data.len() as u64);
        Ok(data)
    }

    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<Vec<Bytes>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        // The merge plan decides what actually goes over the wire; faults,
        // tearing and slicing stay per-original-request below, because a
        // merged GET is a transport optimisation and must not change what
        // each caller-visible range read can observe.
        let plan = match ObjectStore::coalesce_gap(self) {
            Some(gap) => CoalescePlan::build(requests, gap),
            None => CoalescePlan::identity(requests),
        };
        let issued = plan.merged().len() as u64;
        let mut out = Vec::with_capacity(requests.len());
        let mut max_bytes = 0u64;
        let mut total_bytes = 0u64;
        {
            let objects = self.objects.read();
            for req in requests {
                self.faults
                    .check_get(&req.key)
                    .map_err(|e| self.faulted(e))?;
                let chaos = self.faults.chaos_get();
                if chaos.fail {
                    self.clock.advance_micros(self.latency.get_first_byte_us);
                    self.stats.record_gets(issued, 0);
                    return Err(self.faulted(StoreError::Transient("chaos: get timed out")));
                }
                if self.outage_fails(&req.key) {
                    self.clock.advance_micros(self.latency.get_first_byte_us);
                    self.stats.record_gets(issued, 0);
                    return Err(self.faulted(StoreError::Transient("outage: get failed")));
                }
                let obj = objects
                    .get(&req.key)
                    .ok_or_else(|| StoreError::NotFound(req.key.clone()))?;
                let mut data = slice_range(&req.key, &obj.data, &req.range)?;
                if chaos.torn && data.len() > 1 {
                    let keep = ((data.len() as f64 * chaos.keep_fraction) as usize)
                        .clamp(1, data.len() - 1);
                    data = data.slice(..keep);
                    self.stats.record_fault();
                }
                out.push(data);
            }
            // Latency and request accounting happen at merged granularity:
            // each merged GET transfers its full (truncated) span, gap
            // bytes included.
            for m in plan.merged() {
                let len = objects.get(&m.key).map_or(0, |o| o.data.len() as u64);
                let span = m.range.end.min(len).saturating_sub(m.range.start.min(len));
                max_bytes = max_bytes.max(span);
                total_bytes += span;
            }
        }
        // One parallel round trip: the batch costs its slowest member, plus
        // any throttle delay from issuing `issued` requests at once.
        self.clock.advance_micros(self.faults.chaos_spike_us());
        self.charge_get(&requests[0].key, issued, max_bytes)?;
        self.stats.record_gets(issued, total_bytes);
        self.stats.record_coalesced(plan.saved());
        Ok(out)
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.clock.advance_micros(self.latency.small_op_us);
        self.stats.record_head();
        if self.faults.chaos_get().fail {
            return Err(self.faulted(StoreError::Transient("chaos: head timed out")));
        }
        if self.outage_fails(key) {
            return Err(self.faulted(StoreError::Transient("outage: head failed")));
        }
        let objects = self.objects.read();
        let obj = objects
            .get(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        Ok(ObjectMeta {
            key: key.to_string(),
            size: obj.data.len() as u64,
            created_ms: obj.created_ms,
        })
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.stats.record_list();
        if self.outage_fails(prefix) {
            self.clock.advance_micros(self.latency.small_op_us);
            return Err(self.faulted(StoreError::Transient("outage: list failed")));
        }
        let objects = self.objects.read();
        let metas: Vec<ObjectMeta> = objects
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, o)| ObjectMeta {
                key: k.clone(),
                size: o.data.len() as u64,
                created_ms: o.created_ms,
            })
            .collect();
        self.clock
            .advance_micros(self.latency.list_us(metas.len() as u64));
        Ok(metas)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.faults.check_delete(key).map_err(|e| self.faulted(e))?;
        self.clock.advance_micros(self.faults.chaos_spike_us());
        self.clock.advance_micros(self.latency.small_op_us);
        self.stats.record_delete();
        if self.faults.chaos_delete() {
            return Err(self.faulted(StoreError::Transient("chaos: delete timed out")));
        }
        if self.outage_fails(key) {
            return Err(self.faulted(StoreError::Transient("outage: delete failed")));
        }
        self.objects.write().remove(key);
        Ok(())
    }

    fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn clock(&self) -> Option<&SimClock> {
        Some(&self.clock)
    }

    fn record_retry(&self, retries: u64, backoff_ms: u64) {
        self.stats.record_retry(retries, backoff_ms);
    }

    fn record_health(&self, breaker_rejections: u64, retry_tokens_denied: u64) {
        self.stats
            .record_health(breaker_rejections, retry_tokens_denied);
    }

    fn coalesce_gap(&self) -> Option<u64> {
        let gap = self.coalesce_gap.load(Ordering::Relaxed);
        (gap != COALESCE_DISABLED).then_some(gap)
    }

    fn store_id(&self) -> u64 {
        self.id
    }

    fn record_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.stats.record_cache(hits, misses, bytes_saved);
    }

    fn record_coalesced(&self, n: u64) {
        self.stats.record_coalesced(n);
    }

    fn record_page_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.stats.record_page_cache(hits, misses, bytes_saved);
    }

    fn record_page_cache_bypass(&self, n: u64) {
        self.stats.record_page_cache_bypass(n);
    }

    fn record_dedup(&self, n: u64) {
        self.stats.record_dedup(n);
    }
}

fn slice_range(key: &str, data: &Bytes, range: &Range<u64>) -> Result<Bytes> {
    let len = data.len() as u64;
    // S3 tolerates ranges running past the end of the object; it truncates.
    let end = range.end.min(len);
    if range.start > end {
        return Err(StoreError::InvalidRange {
            key: key.to_string(),
            len,
            start: range.start,
            end: range.end,
        });
    }
    Ok(data.slice(range.start as usize..end as usize))
}

impl std::fmt::Debug for MemoryStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryStore")
            .field("objects", &self.len())
            .field("total_bytes", &self.total_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;

    fn store() -> Arc<MemoryStore> {
        MemoryStore::unmetered()
    }

    #[test]
    fn put_get_round_trip() {
        let s = store();
        s.put("a/b.bin", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(s.get("a/b.bin").unwrap(), Bytes::from_static(b"hello"));
        assert!(matches!(s.get("missing"), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn read_after_write_consistency() {
        // A put is immediately visible to get/head/list from another thread.
        let s = store();
        crossbeam::scope(|scope| {
            scope.spawn(|_| {
                s.put("k", Bytes::from_static(b"v")).unwrap();
            });
        })
        .unwrap();
        assert_eq!(s.get("k").unwrap(), Bytes::from_static(b"v"));
        assert_eq!(s.head("k").unwrap().size, 1);
        assert_eq!(s.list("").unwrap().len(), 1);
    }

    #[test]
    fn put_if_absent_is_exclusive() {
        let s = store();
        s.put_if_absent("log/001", Bytes::from_static(b"x"))
            .unwrap();
        assert!(matches!(
            s.put_if_absent("log/001", Bytes::from_static(b"y")),
            Err(StoreError::AlreadyExists(_))
        ));
        // The original payload survives.
        assert_eq!(s.get("log/001").unwrap(), Bytes::from_static(b"x"));
    }

    #[test]
    fn put_if_absent_race_has_single_winner() {
        let s = store();
        let wins = std::sync::atomic::AtomicU64::new(0);
        crossbeam::scope(|scope| {
            for i in 0..8 {
                let s = &s;
                let wins = &wins;
                scope.spawn(move |_| {
                    let payload = Bytes::from(vec![i as u8]);
                    if s.put_if_absent("commit/42", payload).is_ok() {
                        wins.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(wins.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn range_reads() {
        let s = store();
        s.put("k", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(s.get_range("k", 2..5).unwrap(), Bytes::from_static(b"234"));
        // Over-long ranges truncate like S3.
        assert_eq!(s.get_range("k", 8..100).unwrap(), Bytes::from_static(b"89"));
        assert!(s.get_range("k", 11..12).is_err());
    }

    #[test]
    fn list_is_sorted_and_prefix_scoped() {
        let s = store();
        for key in ["t/b", "t/a", "u/c", "t/ab"] {
            s.put(key, Bytes::new()).unwrap();
        }
        let keys: Vec<String> = s.list("t/").unwrap().into_iter().map(|m| m.key).collect();
        assert_eq!(keys, vec!["t/a", "t/ab", "t/b"]);
    }

    #[test]
    fn delete_missing_is_ok() {
        let s = store();
        s.delete("nope").unwrap();
    }

    #[test]
    fn timestamps_come_from_store_clock() {
        let s = MemoryStore::new();
        s.put("a", Bytes::from_static(b"x")).unwrap();
        let t1 = s.head("a").unwrap().created_ms;
        s.clock().unwrap().advance_ms(60_000);
        s.put("b", Bytes::from_static(b"y")).unwrap();
        let t2 = s.head("b").unwrap().created_ms;
        assert!(t2 >= t1 + 60_000);
    }

    #[test]
    fn batch_get_costs_one_round_trip() {
        let s = MemoryStore::with_model_and_limit(LatencyModel::default(), 0);
        let payload = Bytes::from(vec![0u8; 300 * 1024]);
        for i in 0..16 {
            s.put(&format!("f/{i}"), payload.clone()).unwrap();
        }
        let clock = s.clock().unwrap();

        let reqs: Vec<RangeRequest> = (0..16)
            .map(|i| RangeRequest::new(format!("f/{i}"), 0..300 * 1024))
            .collect();
        let (_, batch_us) = clock.time(|| s.get_ranges(&reqs).unwrap());

        let (_, seq_us) = clock.time(|| {
            for i in 0..16 {
                s.get_range(&format!("f/{i}"), 0..300 * 1024).unwrap();
            }
        });
        assert!(
            seq_us > batch_us * 10,
            "sequential ({seq_us}us) should dwarf batched ({batch_us}us)"
        );
    }

    #[test]
    fn stats_track_requests() {
        let s = store();
        s.put("a", Bytes::from_static(b"abc")).unwrap();
        s.get("a").unwrap();
        s.list("").unwrap();
        let snap = s.stats();
        assert_eq!(snap.puts, 1);
        assert_eq!(snap.gets, 1);
        assert_eq!(snap.lists, 1);
        assert_eq!(snap.bytes_written, 3);
        assert_eq!(snap.bytes_read, 3);
    }

    #[test]
    fn injected_put_fault_surfaces() {
        let s = store();
        s.faults().arm(FaultKind::FailPutMatching("boom".into()));
        assert!(matches!(
            s.put("x/boom.bin", Bytes::new()),
            Err(StoreError::Injected(_))
        ));
        s.put("x/ok.bin", Bytes::new()).unwrap();
    }

    #[test]
    fn ack_lost_put_lands_but_reports_transient() {
        let s = store();
        s.faults()
            .arm(FaultKind::AckLostPutMatching("commit".into()));
        let err = s
            .put_if_absent("log/commit-1", Bytes::from_static(b"v"))
            .unwrap_err();
        assert!(err.is_retryable());
        // The write took effect despite the error.
        assert_eq!(s.get("log/commit-1").unwrap(), Bytes::from_static(b"v"));
        assert_eq!(s.stats().faults_injected, 1);
    }

    #[test]
    fn chaos_tears_range_reads_but_never_whole_gets() {
        let s = store();
        let payload = Bytes::from(vec![7u8; 4096]);
        s.put("t/obj", payload.clone()).unwrap();
        s.faults().set_chaos(Some(crate::ChaosConfig {
            torn_read_p: 1.0,
            ..crate::ChaosConfig::uniform(3, 0.0)
        }));
        let torn = s.get_range("t/obj", 0..4096).unwrap();
        assert!(torn.len() < 4096 && !torn.is_empty(), "len {}", torn.len());
        assert_eq!(torn[..], payload[..torn.len()], "a prefix, not garbage");
        assert_eq!(s.get("t/obj").unwrap().len(), 4096, "whole GETs are atomic");
        s.faults().disarm_all();
        assert_eq!(s.get_range("t/obj", 0..4096).unwrap().len(), 4096);
    }

    #[test]
    fn rejecting_throttle_returns_throttled() {
        let s = MemoryStore::with_rejecting_throttle(LatencyModel::zero(), 2);
        s.put("p/a", Bytes::from_static(b"x")).unwrap();
        s.get("p/a").unwrap();
        s.get("p/a").unwrap();
        let err = s.get("p/a").unwrap_err();
        assert!(matches!(err, StoreError::Throttled { retry_after_ms } if retry_after_ms > 0));
        assert!(err.is_retryable());
        assert_eq!(s.stats().throttle_rejections, 1);
        // After the window rolls over the prefix serves again.
        s.clock().unwrap().advance_ms(1100);
        s.get("p/a").unwrap();
    }

    #[test]
    fn chaos_failures_are_counted_and_retryable() {
        let s = store();
        s.put("d/x", Bytes::from_static(b"v")).unwrap();
        s.faults()
            .set_chaos(Some(crate::ChaosConfig::uniform(11, 1.0)));
        assert!(s.get("d/x").unwrap_err().is_retryable());
        assert!(s.put("d/y", Bytes::new()).unwrap_err().is_retryable());
        assert!(s.delete("d/x").unwrap_err().is_retryable());
        assert!(s.stats().faults_injected >= 3);
        s.faults().set_chaos(None);
        s.get("d/x").unwrap();
    }

    #[test]
    fn coalescing_merges_near_ranges_but_returns_identical_bytes() {
        let s = store();
        let payload: Vec<u8> = (0..10_000u32).map(|v| (v % 251) as u8).collect();
        s.put("k", Bytes::from(payload)).unwrap();
        s.put("other", Bytes::from(vec![9u8; 64])).unwrap();

        let reqs = [
            RangeRequest::new("k", 0..100),
            RangeRequest::new("k", 200..300),
            RangeRequest::new("k", 9_000..9_100),
            RangeRequest::new("other", 0..50),
        ];
        let before = s.stats();
        let batch = s.get_ranges(&reqs).unwrap();
        let delta = s.stats().since(&before);
        // The three "k" ranges sit well inside the default gap and merge
        // into one GET; "other" stays separate.
        assert_eq!(delta.gets, 2);
        assert_eq!(delta.coalesced_gets, 2);
        // Transferred bytes cover the merged span 0..9100, gaps included.
        assert_eq!(delta.bytes_read, 9_100 + 50);

        for (req, got) in reqs.iter().zip(&batch) {
            let direct = s.get_range(&req.key, req.range.clone()).unwrap();
            assert_eq!(got, &direct, "slice-back must match a direct GET");
        }
    }

    #[test]
    fn coalescing_can_be_disabled() {
        let s = store();
        s.put("k", Bytes::from(vec![1u8; 1024])).unwrap();
        s.set_coalesce_gap(None);
        let reqs = [
            RangeRequest::new("k", 0..10),
            RangeRequest::new("k", 10..20),
        ];
        let before = s.stats();
        s.get_ranges(&reqs).unwrap();
        let delta = s.stats().since(&before);
        assert_eq!(delta.gets, 2, "disabled coalescing issues one GET each");
        assert_eq!(delta.coalesced_gets, 0);
        assert_eq!(delta.bytes_read, 20);
    }

    #[test]
    fn coalesced_out_of_bounds_member_errors_like_a_direct_get() {
        let s = store();
        s.put("k", Bytes::from(vec![5u8; 100])).unwrap();
        let reqs = [
            RangeRequest::new("k", 90..100),
            RangeRequest::new("k", 120..130),
        ];
        let err = s.get_ranges(&reqs).unwrap_err();
        let direct = s.get_range("k", 120..130).unwrap_err();
        assert_eq!(err, direct);
    }

    #[test]
    fn total_bytes_and_bytes_under() {
        let s = store();
        s.put("a/x", Bytes::from(vec![0u8; 10])).unwrap();
        s.put("a/y", Bytes::from(vec![0u8; 20])).unwrap();
        s.put("b/z", Bytes::from(vec![0u8; 40])).unwrap();
        assert_eq!(s.total_bytes(), 70);
        assert_eq!(s.bytes_under("a/"), 30);
    }

    #[test]
    fn outage_window_fails_every_op_kind_inside_its_span() {
        let s = store();
        s.put("idx/a", Bytes::from_static(b"v")).unwrap();
        s.faults()
            .schedule_outage(crate::OutageWindow::full(10, 20));

        // Before the window opens every op still works.
        assert!(s.get("idx/a").is_ok());

        let clock = ObjectStore::clock(s.as_ref()).unwrap();
        clock.advance_ms(10);
        let msg = |e: StoreError| e.to_string();
        assert!(msg(s.get("idx/a").unwrap_err()).contains("outage"));
        assert!(msg(s.head("idx/a").unwrap_err()).contains("outage"));
        assert!(msg(s.list("idx/").unwrap_err()).contains("outage"));
        assert!(msg(s.delete("idx/a").unwrap_err()).contains("outage"));
        assert!(msg(s.put("idx/b", Bytes::from_static(b"w")).unwrap_err()).contains("outage"));
        assert!(msg(s
            .get_ranges(&[RangeRequest::new("idx/a", 0..1)])
            .unwrap_err())
        .contains("outage"));

        // The window end is exclusive: at 20ms service resumes, and the
        // failed delete/put left no partial state behind.
        clock.advance_ms(10);
        assert_eq!(s.get("idx/a").unwrap(), Bytes::from_static(b"v"));
        assert!(matches!(s.get("idx/b"), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn domain_outage_only_fails_the_matching_prefix() {
        let s = store();
        s.put("idx/a", Bytes::from_static(b"i")).unwrap();
        s.put("tbl/b", Bytes::from_static(b"t")).unwrap();
        s.faults()
            .schedule_outage(crate::OutageWindow::domain("idx/", 0, 1_000));

        assert!(s.get("idx/a").unwrap_err().to_string().contains("outage"));
        assert!(s.list("idx/").is_err());
        // The table domain rides through untouched.
        assert_eq!(s.get("tbl/b").unwrap(), Bytes::from_static(b"t"));
        assert!(s.list("tbl/").is_ok());

        // clear_outages cancels the schedule immediately.
        s.faults().clear_outages();
        assert_eq!(s.get("idx/a").unwrap(), Bytes::from_static(b"i"));
    }

    #[test]
    fn latency_storm_slows_ops_without_failing_them() {
        let s = store();
        s.put("idx/a", Bytes::from_static(b"v")).unwrap();
        let clock = ObjectStore::clock(s.as_ref()).unwrap();
        let start = clock.now_micros();
        s.faults()
            .schedule_outage(crate::OutageWindow::storm(0, 1_000, 5));

        assert_eq!(s.get("idx/a").unwrap(), Bytes::from_static(b"v"));
        assert!(
            clock.now_micros() - start >= 5_000,
            "storm charges its extra latency"
        );
    }
}
