//! Process-wide bounded work-stealing executor pool.
//!
//! Before this module existed, every search, build, and hedged lane fanned
//! out over its own freshly spawned `std::thread::scope` workers, so a
//! serving process ran up to `max_concurrent × parallelism` OS threads and
//! cross-query CPU sharing was zero. The pool decouples *concurrency* (how
//! many fan-outs are in flight) from *OS threads* (a small fixed worker
//! set): callers register a **batch** of claimable work units, idle workers
//! steal units from any registered batch, and the caller itself always
//! keeps claiming units from its own batch — so a fan-out makes progress
//! even when every worker is busy, and nested fan-out (a query's brute
//! scan fanning out inside an admitted slot) can never deadlock on pool
//! exhaustion.
//!
//! # Structure
//!
//! * A global **injector**: the FIFO list of currently registered batches.
//!   Each batch owns an atomic claim cursor, which acts as its stealable
//!   deque of remaining units — any worker (or the registering caller) can
//!   pop the next unit with one `fetch_add`.
//! * **Workers**: [`WorkerPool::workers`] OS threads, spawned once, parked
//!   on a condvar when no batch has claimable units. A worker attaches to
//!   the oldest batch with spare helper capacity, drains units until the
//!   batch reports `RunOne::Drained` or `RunOne::Stalled`, detaches,
//!   and rescans.
//! * **Caller-runs**: registering a batch never blocks the caller on pool
//!   capacity. The caller claims units from its own cursor in a loop
//!   ("caller steals its own tasks"), so with zero free workers execution
//!   degrades to exactly the serial loop — which is also why
//!   `parallelism <= 1` callers skip the pool entirely.
//!
//! # Determinism
//!
//! The pool adds **no** ordering decisions of its own: which thread runs a
//! unit is as racy as the scoped-thread executor it replaced, and every
//! deterministic guarantee (in-order merge, stats sums, first-error-in-
//! input-order, simulated-latency overlap) lives in the batch adapters in
//! [`crate::parallel`], which key results by input index exactly as
//! before. Results are therefore bit-identical at any pool size, including
//! zero free workers.
//!
//! # Quiescence safety
//!
//! Batches borrow the caller's stack (items, closure, result sink), so the
//! registration handle's drop **unregisters the batch and then blocks
//! until every attached worker has detached**. A worker only takes a batch
//! pointer it attached to under the injector lock, and detaches (with a
//! drop guard, so panics cannot skip it) before rescanning — after
//! `Registration::drop` returns, no worker can observe the batch.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Condvar, Mutex};

/// What one claim attempt against a batch produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RunOne {
    /// A unit was claimed and executed to completion; more may remain.
    Ran,
    /// Nothing is claimable and nothing ever will be: all units claimed.
    Drained,
    /// Nothing is claimable *right now* (a pipeline window is full); more
    /// units appear after external progress, which the batch owner signals
    /// with [`WorkerPool::notify_workers`].
    Stalled,
}

/// A batch of independently claimable work units.
///
/// Implementations own their claim cursor and result sink; the pool only
/// drives [`BatchRun::run_one`] from idle workers and never inspects
/// results. Units must complete within `run_one` (no unit survives the
/// call), and implementations must catch panics from user closures and
/// stash them for the registering caller — the workers defensively
/// swallow an unwinding `run_one` and keep serving other batches, so a
/// panic that escaped the adapter would otherwise be lost.
pub(crate) trait BatchRun: Sync {
    /// Cheap hint: could [`BatchRun::run_one`] claim a unit right now?
    /// Called under the injector lock, so it must not block.
    fn has_work(&self) -> bool;
    /// Claims and executes one unit.
    fn run_one(&self) -> RunOne;
}

/// Per-registration quiescence state: how many workers are attached to
/// the batch, plus the condvar the unregistering caller waits on. Kept in
/// an `Arc` separate from the batch itself so a detaching worker touches
/// only memory that outlives the batch.
#[derive(Default)]
struct Quiesce {
    attached: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

/// One registered batch in the injector.
struct Entry {
    id: u64,
    /// Lifetime-erased pointer to the caller-owned batch. Valid while the
    /// entry is queued, and — for workers that attached under the injector
    /// lock — until they detach (see module docs on quiescence).
    batch: *const (dyn BatchRun + 'static),
    quiesce: Arc<Quiesce>,
    /// Most workers allowed to help this batch at once (the caller's own
    /// participation is not counted).
    helper_cap: usize,
}

// SAFETY: `batch` crosses threads inside the injector. The registration
// protocol (unregister, then wait for `attached == 0`) guarantees no
// worker dereferences it after the caller-side borrow ends.
unsafe impl Send for Entry {}

struct Shared {
    injector: Mutex<Vec<Entry>>,
    /// Workers park here when no batch has claimable units.
    work: Condvar,
    workers: usize,
    stop: AtomicBool,
    next_id: AtomicU64,
}

/// Decrements the attach count and wakes the unregistering caller even if
/// `run_one` unwinds.
struct DetachGuard<'a>(&'a Quiesce);

impl Drop for DetachGuard<'_> {
    fn drop(&mut self) {
        self.0.attached.fetch_sub(1, Ordering::AcqRel);
        let _held = self.0.lock.lock();
        self.0.cv.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut injector = shared.injector.lock();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let picked = injector
            .iter()
            .find(|e| {
                e.quiesce.attached.load(Ordering::Relaxed) < e.helper_cap
                    // SAFETY: the entry is queued, so the batch is live
                    // (see `Entry::batch`); `has_work` is non-blocking.
                    && unsafe { (*e.batch).has_work() }
            })
            .map(|e| (e.batch, Arc::clone(&e.quiesce)));
        match picked {
            Some((batch, quiesce)) => {
                quiesce.attached.fetch_add(1, Ordering::AcqRel);
                drop(injector);
                {
                    let _detach = DetachGuard(&quiesce);
                    // SAFETY: attached was incremented under the injector
                    // lock while the entry was queued, so the unregistering
                    // caller waits for this worker to detach.
                    let batch = unsafe { &*batch };
                    // Adapters catch user panics; this is a backstop so a
                    // defective adapter cannot kill a pool worker.
                    let _ = panic::catch_unwind(AssertUnwindSafe(|| {
                        while batch.run_one() == RunOne::Ran {}
                    }));
                }
                injector = shared.injector.lock();
            }
            None => shared.work.wait(&mut injector),
        }
    }
}

/// A bounded pool of worker threads that steal claimable units from
/// registered batches. See the module docs for the execution model; the
/// high-level entry points are the deterministic primitives in
/// [`crate::parallel`], which run on the [`WorkerPool::global`] pool.
pub struct WorkerPool {
    shared: Arc<Shared>,
}

impl WorkerPool {
    /// Creates a private pool with exactly `workers` threads (at least 1).
    /// Intended for tests that need a pool of a specific size; production
    /// code shares [`WorkerPool::global`]. Worker threads exit when the
    /// pool is dropped and every in-flight unit has finished.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(Vec::new()),
            work: Condvar::new(),
            workers,
            stop: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rottnest-pool-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
        }
        WorkerPool { shared }
    }

    /// The process-wide pool every fan-out shares. Sized by the
    /// `ROTTNEST_POOL_WORKERS` environment variable when set (read once,
    /// at first use), else the machine's available parallelism clamped to
    /// `2..=16`. Workers are spawned on first use and live for the
    /// process; total executor threads never exceed this size.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = std::env::var("ROTTNEST_POOL_WORKERS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 16))
                });
            WorkerPool::new(workers)
        })
    }

    /// Number of worker threads in this pool.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Registers `batch` so idle workers steal units from it, with at
    /// most `helper_cap` workers attached at once (`0` skips the injector
    /// entirely — the caller will run every unit itself). Never blocks on
    /// pool capacity. The returned guard **must** be dropped (not leaked)
    /// before `batch`'s borrow ends: its drop unregisters the batch and
    /// blocks until every attached worker has detached.
    pub(crate) fn register<'p, 'b>(
        &'p self,
        batch: &'b (dyn BatchRun + 'b),
        helper_cap: usize,
    ) -> Registration<'p, 'b> {
        // SAFETY: lifetime erasure for the injector. `Registration` both
        // carries the `'b` borrow (so it cannot outlive the batch) and
        // unregisters + quiesces in drop, so no worker can observe the
        // batch after the borrow ends (see module docs).
        let erased: *const (dyn BatchRun + 'static) =
            unsafe { std::mem::transmute(batch as *const (dyn BatchRun + 'b)) };
        Registration {
            _raw: self.register_erased(erased, helper_cap),
            _batch: std::marker::PhantomData,
        }
    }

    /// Injector-side half of [`WorkerPool::register`], shared with
    /// [`WorkerPool::offer`] (whose batch is heap-pinned, not borrowed).
    fn register_erased(
        &self,
        batch: *const (dyn BatchRun + 'static),
        helper_cap: usize,
    ) -> RawRegistration<'_> {
        let quiesce = Arc::new(Quiesce::default());
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        if helper_cap > 0 {
            let mut injector = self.shared.injector.lock();
            injector.push(Entry {
                id,
                batch,
                quiesce: Arc::clone(&quiesce),
                helper_cap,
            });
            drop(injector);
            self.shared.work.notify_all();
        }
        RawRegistration {
            pool: self,
            id,
            quiesce,
        }
    }

    /// Wakes parked workers so they rescan the injector. Batch owners call
    /// this after external progress turns a [`RunOne::Stalled`] batch
    /// claimable again (e.g. a pipeline consumer advancing its window).
    pub(crate) fn notify_workers(&self) {
        let _held = self.shared.injector.lock();
        self.shared.work.notify_all();
    }

    /// Offers `f` to the pool as a single stealable unit (the hedged
    /// second lane). The closure runs on the first worker with a free
    /// slot; the caller continues immediately and later either collects
    /// the result or revokes the still-unclaimed offer via
    /// [`Offer::join`]. Never blocks, never spawns a thread.
    pub fn offer<'env, R, F>(&self, f: F) -> Offer<'_, 'env, R>
    where
        R: Send + 'env,
        F: FnOnce() -> R + Send + 'env,
    {
        let cell: Box<OfferCell<'env, R>> = Box::new(OfferCell {
            state: Mutex::new(OfferState::Pending(Box::new(Some(f)))),
        });
        let erased: *const (dyn BatchRun + 'env) = &*cell;
        // SAFETY: `cell` is heap-pinned inside the returned `Offer`, whose
        // join/drop unregisters and quiesces before the cell is freed, and
        // `Offer` carries `'env` so captured borrows outlive the offer.
        let erased: *const (dyn BatchRun + 'static) = unsafe { std::mem::transmute(erased) };
        let reg = self.register_erased(erased, 1);
        Offer {
            cell,
            reg: Some(reg),
            _env: std::marker::PhantomData,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        let _held = self.shared.injector.lock();
        self.shared.work.notify_all();
    }
}

/// Injector entry + quiescence handle. Dropping it unregisters the batch
/// and waits for every attached worker to detach.
struct RawRegistration<'p> {
    pool: &'p WorkerPool,
    id: u64,
    quiesce: Arc<Quiesce>,
}

impl Drop for RawRegistration<'_> {
    fn drop(&mut self) {
        {
            let mut injector = self.pool.shared.injector.lock();
            if let Some(pos) = injector.iter().position(|e| e.id == self.id) {
                injector.remove(pos);
            }
        }
        let mut held = self.quiesce.lock.lock();
        while self.quiesce.attached.load(Ordering::Acquire) > 0 {
            self.quiesce.cv.wait(&mut held);
        }
    }
}

/// Guard tying a registered batch to the pool; see [`WorkerPool::register`].
pub(crate) struct Registration<'p, 'b> {
    /// Held only for its drop (unregister + quiesce).
    _raw: RawRegistration<'p>,
    _batch: std::marker::PhantomData<&'b ()>,
}

enum OfferState<'env, R> {
    /// Not yet claimed; holds the closure.
    Pending(Box<dyn OfferOnce<R> + Send + 'env>),
    /// A worker took the closure and is running it.
    Running,
    /// Finished; holds the result.
    Done(R),
    /// The closure panicked; holds the payload for the joiner.
    Panicked(Box<dyn std::any::Any + Send>),
    /// Revoked before any worker claimed it; the closure never ran.
    Revoked,
    /// Terminal state after `join` extracted the outcome.
    Taken,
}

impl<R> OfferState<'_, R> {
    fn is_pending(&self) -> bool {
        matches!(self, OfferState::Pending(_))
    }
}

/// Object-safe `FnOnce`: `call` consumes the inner closure on first use.
trait OfferOnce<R> {
    fn call(&mut self) -> R;
}

impl<R, F: FnOnce() -> R> OfferOnce<R> for Option<F> {
    fn call(&mut self) -> R {
        (self.take().expect("offer closure already consumed"))()
    }
}

/// The single-unit batch behind [`WorkerPool::offer`].
struct OfferCell<'env, R> {
    state: Mutex<OfferState<'env, R>>,
}

impl<R: Send> BatchRun for OfferCell<'_, R> {
    fn has_work(&self) -> bool {
        self.state.lock().is_pending()
    }

    fn run_one(&self) -> RunOne {
        let mut f = {
            let mut state = self.state.lock();
            match std::mem::replace(&mut *state, OfferState::Running) {
                OfferState::Pending(f) => f,
                other => {
                    *state = other;
                    return RunOne::Drained;
                }
            }
        };
        let out = panic::catch_unwind(AssertUnwindSafe(|| f.call()));
        let mut state = self.state.lock();
        *state = match out {
            Ok(r) => OfferState::Done(r),
            Err(p) => OfferState::Panicked(p),
        };
        RunOne::Ran
    }
}

/// Handle to an offered unit (see [`WorkerPool::offer`]).
pub struct Offer<'p, 'env, R> {
    cell: Box<OfferCell<'env, R>>,
    reg: Option<RawRegistration<'p>>,
    _env: std::marker::PhantomData<&'env ()>,
}

impl<R: Send> Offer<'_, '_, R> {
    /// Collects the offer: revokes it if no worker claimed it yet
    /// (returning `None` — the closure never ran), otherwise waits for
    /// the claiming worker to finish and returns its result. A panic in
    /// the closure resumes on this thread.
    pub fn join(mut self) -> Option<R> {
        self.revoke_if_pending();
        self.reg = None; // unregister + quiesce: the state is now final
        let mut state = self.cell.state.lock();
        match std::mem::replace(&mut *state, OfferState::Taken) {
            OfferState::Done(r) => Some(r),
            OfferState::Revoked => None,
            OfferState::Panicked(p) => {
                drop(state);
                panic::resume_unwind(p)
            }
            _ => unreachable!("offer quiesced in a non-final state"),
        }
    }

    /// Whether a worker has already taken (or finished) the closure.
    /// Advisory — a pending offer may be claimed immediately after.
    pub fn claimed(&self) -> bool {
        !self.cell.state.lock().is_pending()
    }

    fn revoke_if_pending(&self) {
        let mut state = self.cell.state.lock();
        if state.is_pending() {
            *state = OfferState::Revoked;
        }
    }
}

impl<R> Drop for Offer<'_, '_, R> {
    fn drop(&mut self) {
        if self.reg.is_some() {
            {
                let mut state = self.cell.state.lock();
                if state.is_pending() {
                    *state = OfferState::Revoked;
                }
            }
            self.reg = None; // unregister + quiesce before the cell drops
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    /// Minimal map-shaped batch for driving the pool directly.
    struct CountBatch {
        cursor: AtomicUsize,
        len: usize,
        ran: AtomicUsize,
    }

    impl BatchRun for CountBatch {
        fn has_work(&self) -> bool {
            self.cursor.load(Ordering::Relaxed) < self.len
        }
        fn run_one(&self) -> RunOne {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                return RunOne::Drained;
            }
            self.ran.fetch_add(1, Ordering::Relaxed);
            RunOne::Ran
        }
    }

    fn count_batch(len: usize) -> CountBatch {
        CountBatch {
            cursor: AtomicUsize::new(0),
            len,
            ran: AtomicUsize::new(0),
        }
    }

    #[test]
    fn workers_drain_a_registered_batch() {
        let pool = WorkerPool::new(2);
        let batch = count_batch(64);
        let reg = pool.register(&batch, 2);
        // Caller-runs: drain alongside the workers.
        while batch.run_one() == RunOne::Ran {}
        drop(reg);
        assert_eq!(batch.ran.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn caller_drains_alone_when_pool_is_saturated() {
        let pool = WorkerPool::new(1);
        let gate = Barrier::new(2);
        // Occupy the only worker.
        let blocker = pool.offer(|| {
            gate.wait();
        });
        while !blocker.claimed() {
            std::thread::yield_now();
        }
        let batch = count_batch(32);
        let reg = pool.register(&batch, 1);
        while batch.run_one() == RunOne::Ran {}
        drop(reg);
        assert_eq!(batch.ran.load(Ordering::Relaxed), 32);
        gate.wait();
        assert_eq!(blocker.join(), Some(()));
    }

    #[test]
    fn unclaimed_offer_is_revoked_not_run() {
        let pool = WorkerPool::new(1);
        let gate = Barrier::new(2);
        let blocker = pool.offer(|| {
            gate.wait();
        });
        while !blocker.claimed() {
            std::thread::yield_now();
        }
        // The only worker is busy: this offer can never be claimed.
        let ran = AtomicBool::new(false);
        let starved = pool.offer(|| ran.store(true, Ordering::Relaxed));
        assert_eq!(starved.join(), None, "unclaimed offer must revoke");
        assert!(!ran.load(Ordering::Relaxed), "revoked offer must not run");
        gate.wait();
        assert_eq!(blocker.join(), Some(()));
    }

    #[test]
    fn claimed_offer_returns_its_result() {
        let pool = WorkerPool::new(2);
        let offer = pool.offer(|| 6 * 7);
        // Wait until a worker claims it, so join exercises the wait path.
        while !offer.claimed() {
            std::thread::yield_now();
        }
        assert_eq!(offer.join(), Some(42));
    }

    #[test]
    fn offer_panic_resumes_on_joiner_and_worker_survives() {
        let pool = WorkerPool::new(1);
        let offer = pool.offer(|| panic!("lane failed"));
        while !offer.claimed() {
            std::thread::yield_now();
        }
        let err = panic::catch_unwind(AssertUnwindSafe(|| offer.join())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "lane failed");
        // The worker that ran the panicking offer must still serve.
        let next = pool.offer(|| 1);
        while !next.claimed() {
            std::thread::yield_now();
        }
        assert_eq!(next.join(), Some(1));
    }

    #[test]
    fn helper_cap_zero_never_enqueues() {
        let pool = WorkerPool::new(2);
        let batch = count_batch(8);
        let reg = pool.register(&batch, 0);
        while batch.run_one() == RunOne::Ran {}
        drop(reg);
        assert_eq!(batch.ran.load(Ordering::Relaxed), 8);
        assert!(pool.shared.injector.lock().is_empty());
    }
}
