//! Single-flight deduplication of identical in-flight calls.
//!
//! When many concurrent queries need the same remote bytes — the same index
//! component, the same data page — only the first caller (the **leader**)
//! should pay the GET; everyone else (the **followers**) waits and shares
//! the leader's result. A thousand concurrent queries for one hot UUID then
//! cost one underlying request instead of a thousand-way stampede.
//!
//! Semantics, chosen for correctness under chaos:
//!
//! * **Dedup only on success.** A leader's `Ok` is cloned to every follower
//!   of that flight (cheap: values are [`bytes::Bytes`]-like cheaply
//!   clonable payloads).
//! * **Followers never inherit failure.** If the leader's call fails, its
//!   followers *retry*: each loops back and races to become the next
//!   leader, running its own closure. A transient fault on one request can
//!   therefore never fan out into N failures — exactly one caller observes
//!   each failed attempt (its own).
//! * **Panic-safe.** A leader that panics mid-call marks the flight failed
//!   on unwind, so followers wake and retry instead of blocking forever.
//! * **No effect without concurrency.** A call that overlaps no identical
//!   call runs its closure directly; single-threaded request counts are
//!   bit-identical to a build without single-flight.
//!
//! [`SingleFlight::run_partial`] extends the contract to *partial*
//! sharing: a caller that needs many keys at once claims the subset
//! nobody is fetching (leading them in one batched call) and joins the
//! in-flight fetches for the rest — so two different queries whose page
//! sets merely *overlap* still share the overlapping fetches, rather
//! than deduplicating only when their whole key lists are identical.

use std::hash::Hash;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::FxHashMap;

/// State of one in-flight call, shared between its leader and followers.
enum FlightState<V> {
    /// The leader is still running.
    Pending,
    /// The leader succeeded; followers clone the value.
    Done(V),
    /// The leader failed (error or panic); followers retry.
    Failed,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

/// Keyed single-flight call deduplicator. See the module docs for the
/// leader/follower contract.
pub struct SingleFlight<K, V> {
    inflight: Mutex<FxHashMap<K, Arc<Flight<V>>>>,
}

impl<K, V> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self {
            inflight: Mutex::new(FxHashMap::default()),
        }
    }
}

impl<K, V> SingleFlight<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    /// Creates an empty deduplicator.
    pub fn new() -> Self {
        Self {
            inflight: Mutex::new(FxHashMap::default()),
        }
    }

    /// Number of calls currently in flight (tests only).
    pub fn inflight_len(&self) -> usize {
        self.inflight.lock().len()
    }

    /// Runs `f` under `key`, deduplicating against concurrent identical
    /// calls. Returns the result plus whether it was served from another
    /// caller's flight (`true` = this caller paid no underlying call).
    ///
    /// Each caller's closure runs **at most once**; a follower that must
    /// retry after a leader failure becomes a leader itself and runs its
    /// own closure, never the failed leader's.
    pub fn run<E>(&self, key: &K, f: impl FnOnce() -> Result<V, E>) -> (Result<V, E>, bool) {
        let mut f = Some(f);
        loop {
            let existing = {
                let mut map = self.inflight.lock();
                match map.get(key) {
                    Some(flight) => Some(flight.clone()),
                    None => {
                        let flight = Arc::new(Flight {
                            state: Mutex::new(FlightState::Pending),
                            cv: Condvar::new(),
                        });
                        map.insert(key.clone(), flight);
                        None
                    }
                }
            };
            let Some(flight) = existing else {
                // Leader: run the closure outside every lock, then publish.
                // The guard marks the flight failed if the closure panics,
                // so followers retry instead of waiting forever.
                let guard = LeaderGuard {
                    owner: self,
                    key,
                    done: false,
                };
                let result = (f.take().expect("leader runs at most once"))();
                guard.finish(result.as_ref().ok().cloned());
                return (result, false);
            };
            // Follower: wait for the leader to publish.
            let mut state = flight.state.lock();
            while matches!(*state, FlightState::Pending) {
                flight.cv.wait(&mut state);
            }
            match &*state {
                FlightState::Done(v) => return (Ok(v.clone()), true),
                // Leader failed: loop and race to become the next leader.
                FlightState::Failed => continue,
                FlightState::Pending => unreachable!("woken only on publish"),
            }
        }
    }

    /// Fetches many keys at once with partial cross-caller sharing.
    ///
    /// The caller becomes the leader for every key with no flight in
    /// progress — `fetch` runs **once per round** over the claimed slot
    /// indices (into `keys`), so the owned subset costs one batched
    /// call — and joins the in-flight fetch for every other key, even
    /// when that flight belongs to a caller with a different (merely
    /// overlapping) key set. Per-key results are published individually,
    /// so followers of any subset are served.
    ///
    /// Returns the values aligned with `keys`, plus how many slots were
    /// served by joining another caller's flight (`0` when solo — a call
    /// that overlaps nothing makes exactly one `fetch` over all keys,
    /// keeping sequential request counts bit-identical).
    ///
    /// Failure semantics match [`Self::run`]: a `fetch` error fails only
    /// this caller (its owned flights publish `Failed`, and joiners of
    /// those keys retry as their own leaders); a joined flight that
    /// fails is retried here by claiming the key and fetching it
    /// directly next round.
    pub fn run_partial<E>(
        &self,
        keys: &[K],
        mut fetch: impl FnMut(&[usize]) -> Result<Vec<V>, E>,
    ) -> (Result<Vec<V>, E>, u64) {
        let mut values: Vec<Option<V>> = (0..keys.len()).map(|_| None).collect();
        let mut joined_served: u64 = 0;
        let mut pending: Vec<usize> = (0..keys.len()).collect();
        while !pending.is_empty() {
            // Claim leadership of every pending key without a flight;
            // remember the flights to join for the rest.
            let mut owned: Vec<usize> = Vec::new();
            let mut joins: Vec<(usize, Arc<Flight<V>>)> = Vec::new();
            {
                let mut map = self.inflight.lock();
                for &i in &pending {
                    match map.get(&keys[i]) {
                        Some(flight) => joins.push((i, flight.clone())),
                        None => {
                            let flight = Arc::new(Flight {
                                state: Mutex::new(FlightState::Pending),
                                cv: Condvar::new(),
                            });
                            map.insert(keys[i].clone(), flight);
                            owned.push(i);
                        }
                    }
                }
            }
            // Lead the owned subset *before* waiting on joins: every
            // caller publishes its own fetch first, so two callers
            // joining each other's flights can never deadlock.
            if !owned.is_empty() {
                // Publishes `Failed` for every still-unpublished owned
                // key on unwind or error, so a fetch that dies wakes its
                // followers into their own retries.
                let mut guard = PartialGuard {
                    owner: self,
                    keys,
                    owned: &owned,
                    published: 0,
                };
                match fetch(&owned) {
                    Ok(vals) => {
                        debug_assert_eq!(vals.len(), owned.len(), "fetch must fill every slot");
                        for (&slot, v) in owned.iter().zip(vals) {
                            self.publish_one(&keys[slot], Some(v.clone()));
                            guard.published += 1;
                            values[slot] = Some(v);
                        }
                    }
                    Err(e) => {
                        drop(guard);
                        return (Err(e), joined_served);
                    }
                }
                std::mem::forget(guard);
            }
            // Join the rest; a failed flight's key is retried next round
            // (claimed above as our own lead).
            let mut retry: Vec<usize> = Vec::new();
            for (i, flight) in joins {
                let mut state = flight.state.lock();
                while matches!(*state, FlightState::Pending) {
                    flight.cv.wait(&mut state);
                }
                match &*state {
                    FlightState::Done(v) => {
                        values[i] = Some(v.clone());
                        joined_served += 1;
                    }
                    FlightState::Failed => retry.push(i),
                    FlightState::Pending => unreachable!("woken only on publish"),
                }
            }
            pending = retry;
        }
        let values = values
            .into_iter()
            .map(|v| v.expect("every slot filled"))
            .collect();
        (Ok(values), joined_served)
    }

    /// Publishes one key's outcome: removes the flight from the map
    /// (retriers must find the slot free), then wakes its followers.
    fn publish_one(&self, key: &K, value: Option<V>) {
        let flight = self.inflight.lock().remove(key);
        let Some(flight) = flight else { return };
        let mut state = flight.state.lock();
        *state = match value {
            Some(v) => FlightState::Done(v),
            None => FlightState::Failed,
        };
        flight.cv.notify_all();
    }
}

/// Fails a partial leader's still-unpublished owned flights on error or
/// unwind, so followers retry instead of blocking forever.
struct PartialGuard<'a, K: Eq + Hash + Clone, V: Clone> {
    owner: &'a SingleFlight<K, V>,
    keys: &'a [K],
    owned: &'a [usize],
    /// Owned slots already published `Done` (a prefix of `owned`).
    published: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for PartialGuard<'_, K, V> {
    fn drop(&mut self) {
        for &slot in &self.owned[self.published..] {
            self.owner.publish_one(&self.keys[slot], None);
        }
    }
}

/// Publishes a leader's outcome on drop, covering both the normal path
/// (via [`LeaderGuard::finish`]) and unwinds from a panicking closure.
struct LeaderGuard<'a, K: Eq + Hash + Clone, V: Clone> {
    owner: &'a SingleFlight<K, V>,
    key: &'a K,
    done: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> LeaderGuard<'_, K, V> {
    fn finish(mut self, value: Option<V>) {
        self.publish(value);
        self.done = true;
    }

    fn publish(&self, value: Option<V>) {
        // Remove from the in-flight map *before* waking followers: a
        // follower that retries must find the slot free (or freshly
        // claimed by another retrier), never the dead flight again.
        let flight = self.owner.inflight.lock().remove(self.key);
        let Some(flight) = flight else { return };
        let mut state = flight.state.lock();
        *state = match value {
            Some(v) => FlightState::Done(v),
            None => FlightState::Failed,
        };
        flight.cv.notify_all();
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for LeaderGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.done {
            self.publish(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn solo_call_runs_directly_and_clears_state() {
        let sf: SingleFlight<u32, u32> = SingleFlight::new();
        let (got, deduped) = sf.run(&7, || Ok::<_, ()>(42));
        assert_eq!(got, Ok(42));
        assert!(!deduped, "a call with no concurrent twin is never deduped");
        assert_eq!(sf.inflight_len(), 0);
    }

    #[test]
    fn solo_error_is_returned_and_clears_state() {
        let sf: SingleFlight<u32, u32> = SingleFlight::new();
        let (got, deduped) = sf.run(&7, || Err::<u32, _>("boom"));
        assert_eq!(got, Err("boom"));
        assert!(!deduped);
        assert_eq!(sf.inflight_len(), 0);
    }

    #[test]
    fn concurrent_callers_share_one_execution() {
        const N: usize = 16;
        let sf: SingleFlight<u32, u32> = SingleFlight::new();
        let runs = AtomicUsize::new(0);
        let arrived = AtomicUsize::new(0);
        let released = std::sync::atomic::AtomicBool::new(false);
        let start = Barrier::new(N + 1);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..N {
                handles.push(s.spawn(|| {
                    start.wait();
                    arrived.fetch_add(1, Ordering::SeqCst);
                    sf.run(&1, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open until the main thread has
                        // seen every caller arrive (plus a settle window),
                        // so the other N-1 all join as followers.
                        while !released.load(Ordering::SeqCst) {
                            std::thread::yield_now();
                        }
                        Ok::<_, ()>(99)
                    })
                }));
            }
            start.wait();
            while arrived.load(Ordering::SeqCst) < N {
                std::thread::yield_now();
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
            released.store(true, Ordering::SeqCst);
            let mut dedup_hits = 0;
            for h in handles {
                let (got, deduped) = h.join().unwrap();
                assert_eq!(got, Ok(99));
                if deduped {
                    dedup_hits += 1;
                }
            }
            let executions = runs.load(Ordering::SeqCst);
            assert_eq!(
                executions + dedup_hits,
                N,
                "every caller either ran or was deduped"
            );
            assert_eq!(executions, 1, "one execution serves all {N} callers");
        });
        assert_eq!(sf.inflight_len(), 0);
    }

    /// The leader-failure contract: the first closure to run fails; every
    /// follower retries with its own closure rather than inheriting the
    /// error. Regardless of interleaving, exactly the caller whose closure
    /// ran first observes the error — everyone else ends up `Ok`.
    #[test]
    fn followers_retry_after_leader_failure_instead_of_inheriting_it() {
        const N: usize = 8;
        for _round in 0..50 {
            let sf: SingleFlight<u32, u32> = SingleFlight::new();
            let runs = AtomicUsize::new(0);
            let start = Barrier::new(N);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..N)
                    .map(|_| {
                        s.spawn(|| {
                            start.wait();
                            sf.run(&1, || {
                                // The first closure to execute fails.
                                if runs.fetch_add(1, Ordering::SeqCst) == 0 {
                                    Err("first attempt fails")
                                } else {
                                    Ok(7)
                                }
                            })
                        })
                    })
                    .collect();
                let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
                let errs = outcomes.iter().filter(|(r, _)| r.is_err()).count();
                assert_eq!(
                    errs, 1,
                    "exactly the caller whose own closure failed sees the error"
                );
                for (r, _) in &outcomes {
                    if let Ok(v) = r {
                        assert_eq!(*v, 7);
                    }
                }
                assert!(
                    runs.load(Ordering::SeqCst) >= 2,
                    "failure must trigger at least one retry execution"
                );
            });
            assert_eq!(sf.inflight_len(), 0);
        }
    }

    #[test]
    fn panicking_leader_unblocks_followers() {
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let entered = Arc::new(Barrier::new(2));
        let leader = {
            let sf = sf.clone();
            let entered = entered.clone();
            std::thread::spawn(move || {
                let _ = sf.run(&1, || -> Result<u32, ()> {
                    entered.wait();
                    // Give the follower a moment to join the flight.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    panic!("leader dies");
                });
            })
        };
        entered.wait();
        // Either a follower of the doomed flight (retries after the panic
        // publishes Failed) or a late arrival (runs directly) — both Ok.
        let (got, _) = sf.run(&1, || Ok::<_, ()>(5));
        assert_eq!(got, Ok(5));
        assert!(leader.join().is_err(), "leader thread panicked");
        assert_eq!(sf.inflight_len(), 0);
    }

    #[test]
    fn distinct_keys_do_not_interfere() {
        let sf: SingleFlight<u32, u32> = SingleFlight::new();
        let (a, _) = sf.run(&1, || Ok::<_, ()>(10));
        let (b, _) = sf.run(&2, || Ok::<_, ()>(20));
        assert_eq!((a, b), (Ok(10), Ok(20)));
    }

    #[test]
    fn partial_solo_fetches_everything_in_one_call() {
        let sf: SingleFlight<u32, u32> = SingleFlight::new();
        let calls = AtomicUsize::new(0);
        let (got, joined) = sf.run_partial(&[3, 1, 4], |idxs| {
            calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!(idxs, [0, 1, 2], "solo caller owns every slot");
            Ok::<_, ()>(idxs.iter().map(|&i| i as u32 * 10).collect())
        });
        assert_eq!(got, Ok(vec![0, 10, 20]));
        assert_eq!(joined, 0, "nothing to join when alone");
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one batched call");
        assert_eq!(sf.inflight_len(), 0);
    }

    #[test]
    fn overlapping_partial_fetches_share_the_overlap() {
        // A needs {1,2,3}, B needs {2,3,4}: each key must be fetched by
        // exactly one of them, and whoever arrives second for {2,3}
        // joins the first's in-flight fetch.
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let fetched = Arc::new(Mutex::new(Vec::<u32>::new()));
        let hold = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let a = {
            let (sf, fetched, hold) = (sf.clone(), fetched.clone(), hold.clone());
            std::thread::spawn(move || {
                let keys = [1u32, 2, 3];
                sf.run_partial(&keys, |idxs| {
                    fetched.lock().extend(idxs.iter().map(|&i| keys[i]));
                    // Hold the flight open so B provably overlaps.
                    while hold.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    Ok::<_, ()>(idxs.iter().map(|&i| keys[i] * 100).collect())
                })
            })
        };
        // Wait until A owns all three flights, then overlap B.
        while sf.inflight_len() < 3 {
            std::thread::yield_now();
        }
        let b = {
            let (sf, fetched) = (sf.clone(), fetched.clone());
            std::thread::spawn(move || {
                let keys = [2u32, 3, 4];
                sf.run_partial(&keys, |idxs| {
                    fetched.lock().extend(idxs.iter().map(|&i| keys[i]));
                    Ok::<_, ()>(idxs.iter().map(|&i| keys[i] * 100).collect())
                })
            })
        };
        // B can only have claimed {4}; release A once B's own fetch ran
        // (B is then parked joining A's {2,3} flights).
        while !fetched.lock().contains(&4) {
            std::thread::yield_now();
        }
        hold.store(false, Ordering::SeqCst);
        let (got_a, joined_a) = a.join().unwrap();
        let (got_b, joined_b) = b.join().unwrap();
        assert_eq!(got_a, Ok(vec![100, 200, 300]));
        assert_eq!(got_b, Ok(vec![200, 300, 400]));
        assert_eq!(joined_a, 0);
        assert_eq!(joined_b, 2, "B joined A's in-flight {{2,3}}");
        let mut log = fetched.lock().clone();
        log.sort_unstable();
        assert_eq!(log, vec![1, 2, 3, 4], "each key fetched exactly once");
        assert_eq!(sf.inflight_len(), 0);
    }

    #[test]
    fn partial_leader_failure_fails_only_itself_and_joiners_retry() {
        // A claims {1,2} and fails; B overlaps on {2}. B must not
        // inherit A's error — it retries {2} as its own leader.
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let entered = Arc::new(Barrier::new(2));
        let hold = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let a = {
            let (sf, entered, hold) = (sf.clone(), entered.clone(), hold.clone());
            std::thread::spawn(move || {
                sf.run_partial(&[1u32, 2], |_| {
                    entered.wait();
                    while hold.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    Err::<Vec<u32>, _>("lead fetch died")
                })
            })
        };
        entered.wait();
        let b = {
            let sf = sf.clone();
            std::thread::spawn(move || {
                sf.run_partial(&[2u32], |idxs| {
                    assert_eq!(idxs.len(), 1);
                    Ok::<_, &'static str>(vec![222])
                })
            })
        };
        // B is either already waiting on A's flight for key 2 or will
        // retry after the failure — both paths must end Ok.
        std::thread::sleep(std::time::Duration::from_millis(20));
        hold.store(false, Ordering::SeqCst);
        let (got_a, _) = a.join().unwrap();
        let (got_b, _) = b.join().unwrap();
        assert_eq!(got_a, Err("lead fetch died"));
        assert_eq!(got_b, Ok(vec![222]), "joiner retried as its own leader");
        assert_eq!(sf.inflight_len(), 0);
    }
}
