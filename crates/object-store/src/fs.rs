//! Filesystem-backed object store used by the runnable examples.
//!
//! Keys map to files under a root directory. Semantics mirror
//! [`crate::MemoryStore`] (strong read-after-write consistency comes for free
//! from the local filesystem; `put_if_absent` uses `O_EXCL` create-new).
//! No latency model is attached — examples run at native speed — but request
//! statistics are still collected so the examples can print cost summaries.

use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use bytes::Bytes;

use crate::stats::{RequestStats, StatsSnapshot};
use crate::{next_store_id, ObjectMeta, ObjectStore, Result, StoreError};

/// An [`ObjectStore`] over a local directory.
pub struct FsStore {
    root: PathBuf,
    stats: RequestStats,
    id: u64,
}

impl FsStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Arc<Self>> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(io_err)?;
        Ok(Arc::new(Self {
            root,
            stats: RequestStats::default(),
            id: next_store_id(),
        }))
    }

    fn path_of(&self, key: &str) -> PathBuf {
        self.root.join(key)
    }

    fn meta_of(&self, key: &str, path: &Path) -> Result<ObjectMeta> {
        let meta = fs::metadata(path).map_err(|_| StoreError::NotFound(key.to_string()))?;
        let created_ms = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
            .map_or(0, |d| d.as_millis() as u64);
        Ok(ObjectMeta {
            key: key.to_string(),
            size: meta.len(),
            created_ms,
        })
    }

    fn collect_keys(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                Self::collect_keys(&path, root, out)?;
            } else if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

impl ObjectStore for FsStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        self.stats.record_put(data.len() as u64);
        let path = self.path_of(key);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(io_err)?;
        }
        // Write-then-rename so concurrent readers never observe a partial
        // object (read-after-write consistency).
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, &data).map_err(io_err)?;
        fs::rename(&tmp, &path).map_err(io_err)?;
        Ok(())
    }

    fn put_if_absent(&self, key: &str, data: Bytes) -> Result<()> {
        self.stats.record_put(data.len() as u64);
        let path = self.path_of(key);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(io_err)?;
        }
        let mut file = match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                return Err(StoreError::AlreadyExists(key.to_string()))
            }
            Err(e) => return Err(io_err(e)),
        };
        file.write_all(&data).map_err(io_err)?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let path = self.path_of(key);
        let data = fs::read(&path).map_err(|_| StoreError::NotFound(key.to_string()))?;
        self.stats.record_get(data.len() as u64);
        Ok(Bytes::from(data))
    }

    fn get_range(&self, key: &str, range: Range<u64>) -> Result<Bytes> {
        let path = self.path_of(key);
        let mut file = fs::File::open(&path).map_err(|_| StoreError::NotFound(key.to_string()))?;
        let len = file.metadata().map_err(io_err)?.len();
        let end = range.end.min(len);
        if range.start > end {
            return Err(StoreError::InvalidRange {
                key: key.to_string(),
                len,
                start: range.start,
                end: range.end,
            });
        }
        file.seek(SeekFrom::Start(range.start)).map_err(io_err)?;
        let mut buf = vec![0u8; (end - range.start) as usize];
        file.read_exact(&mut buf).map_err(io_err)?;
        self.stats.record_get(buf.len() as u64);
        Ok(Bytes::from(buf))
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.stats.record_head();
        self.meta_of(key, &self.path_of(key))
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.stats.record_list();
        let mut keys = Vec::new();
        if self.root.exists() {
            Self::collect_keys(&self.root, &self.root, &mut keys).map_err(io_err)?;
        }
        keys.retain(|k| k.starts_with(prefix) && !k.contains(".tmp."));
        keys.sort_unstable();
        keys.iter()
            .map(|k| self.meta_of(k, &self.path_of(k)))
            .collect()
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.stats.record_delete();
        match fs::remove_file(self.path_of(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(e)),
        }
    }

    fn now_ms(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn record_retry(&self, retries: u64, backoff_ms: u64) {
        self.stats.record_retry(retries, backoff_ms);
    }

    fn store_id(&self) -> u64 {
        self.id
    }

    fn record_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.stats.record_cache(hits, misses, bytes_saved);
    }

    fn record_coalesced(&self, n: u64) {
        self.stats.record_coalesced(n);
    }

    fn record_page_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.stats.record_page_cache(hits, misses, bytes_saved);
    }

    fn record_page_cache_bypass(&self, n: u64) {
        self.stats.record_page_cache_bypass(n);
    }

    fn record_dedup(&self, n: u64) {
        self.stats.record_dedup(n);
    }
}

impl std::fmt::Debug for FsStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FsStore").field("root", &self.root).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Arc<FsStore> {
        let dir =
            std::env::temp_dir().join(format!("rottnest-fs-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        FsStore::open(dir).unwrap()
    }

    #[test]
    fn put_get_list_delete() {
        let s = temp_store("basic");
        s.put("tbl/data/a.parquet", Bytes::from_static(b"AAA"))
            .unwrap();
        s.put("tbl/data/b.parquet", Bytes::from_static(b"BB"))
            .unwrap();
        s.put("tbl/_log/001.log", Bytes::from_static(b"L")).unwrap();

        assert_eq!(s.get("tbl/data/a.parquet").unwrap().as_ref(), b"AAA");
        assert_eq!(
            s.get_range("tbl/data/a.parquet", 1..3).unwrap().as_ref(),
            b"AA"
        );

        let data_keys: Vec<String> = s
            .list("tbl/data/")
            .unwrap()
            .into_iter()
            .map(|m| m.key)
            .collect();
        assert_eq!(data_keys, vec!["tbl/data/a.parquet", "tbl/data/b.parquet"]);

        s.delete("tbl/data/a.parquet").unwrap();
        assert!(s.get("tbl/data/a.parquet").is_err());
        s.delete("tbl/data/a.parquet").unwrap(); // idempotent
    }

    #[test]
    fn put_if_absent_contends() {
        let s = temp_store("cas");
        s.put_if_absent("log/1", Bytes::from_static(b"first"))
            .unwrap();
        assert!(matches!(
            s.put_if_absent("log/1", Bytes::from_static(b"second")),
            Err(StoreError::AlreadyExists(_))
        ));
        assert_eq!(s.get("log/1").unwrap().as_ref(), b"first");
    }

    #[test]
    fn head_reports_size() {
        let s = temp_store("head");
        s.put("k", Bytes::from(vec![7u8; 1234])).unwrap();
        assert_eq!(s.head("k").unwrap().size, 1234);
    }

    #[test]
    fn missing_key_errors_are_not_found() {
        let s = temp_store("missing");
        assert!(matches!(s.get("no/such/key"), Err(StoreError::NotFound(k)) if k == "no/such/key"));
        assert!(matches!(
            s.get_range("nope", 0..10),
            Err(StoreError::NotFound(_))
        ));
        assert!(matches!(s.head("nope"), Err(StoreError::NotFound(_))));
        // None of these are retryable — the object simply isn't there.
        assert!(!s.get("nope").unwrap_err().is_retryable());
    }

    #[test]
    fn invalid_range_reports_object_length() {
        let s = temp_store("range");
        s.put("obj", Bytes::from_static(b"0123456789")).unwrap();
        // Over-long ranges truncate like S3...
        assert_eq!(s.get_range("obj", 8..100).unwrap().as_ref(), b"89");
        // ...but a start past EOF is an error carrying the real length.
        match s.get_range("obj", 11..12) {
            Err(StoreError::InvalidRange {
                key,
                len,
                start,
                end,
            }) => {
                assert_eq!((key.as_str(), len, start, end), ("obj", 10, 11, 12));
            }
            other => panic!("expected InvalidRange, got {other:?}"),
        }
    }

    #[test]
    fn io_failures_map_to_io_errors() {
        let s = temp_store("io");
        // A key whose parent path is occupied by a *file* cannot be
        // created: the OS error must surface as StoreError::Io, not panic.
        s.put("blocker", Bytes::from_static(b"x")).unwrap();
        let err = s
            .put("blocker/child", Bytes::from_static(b"y"))
            .unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "got {err:?}");
        assert!(!err.is_retryable());
    }

    #[test]
    fn record_retry_lands_in_stats() {
        let s = temp_store("retry-stats");
        s.record_retry(2, 75);
        let snap = s.stats();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.backoff_ms, 75);
    }
}
