//! The componentized IVF-PQ index: build, search (nprobe / refine), merge.

use bytes::Bytes;
use rottnest_component::{ComponentFile, ComponentWriter, Posting};
use rottnest_compress::{bitpack, varint};
use rottnest_object_store::{chunk_ranges, ordered_parallel_map, ObjectStore};

use crate::kmeans::{kmeans, nearest};
use crate::pq::ProductQuantizer;
use crate::{l2_sq, IvfError, Result};

/// A vector posting: page posting plus the row within the page, so exact
/// reranking can pull the full-precision vector from the data page in situ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VecPosting {
    /// Which file/page the vector lives in.
    pub posting: Posting,
    /// Row index within the page.
    pub row: u32,
}

impl VecPosting {
    /// Convenience constructor.
    pub fn new(file: u32, page: u32, row: u32) -> Self {
        Self {
            posting: Posting::new(file, page),
            row,
        }
    }
}

/// Build-time parameters.
#[derive(Debug, Clone)]
pub struct IvfPqParams {
    /// Number of inverted lists (coarse centroids).
    pub nlist: usize,
    /// PQ subspaces (bytes per code); must divide the dimension.
    pub m: usize,
    /// K-means iterations for both quantizers.
    pub train_iters: usize,
    /// RNG seed (training is deterministic given the seed).
    pub seed: u64,
}

impl Default for IvfPqParams {
    fn default() -> Self {
        Self {
            nlist: 64,
            m: 8,
            train_iters: 8,
            seed: 42,
        }
    }
}

/// Query-time parameters — the two knobs of §V-C3 / §VII-B2.
#[derive(Debug, Clone, Copy)]
pub struct SearchParams {
    /// Results to return.
    pub k: usize,
    /// Inverted lists to probe.
    pub nprobe: usize,
    /// Candidates reranked with exact vectors fetched in situ
    /// (0 = trust ADC scores, no fetch).
    pub refine: usize,
}

/// Callback supplying exact vectors for refine candidates.
pub type FetchExact<'f> = dyn Fn(&[VecPosting]) -> Result<Vec<Vec<f32>>> + 'f;

/// Accumulates vectors and serializes the index file.
pub struct IvfPqBuilder {
    dim: usize,
    params: IvfPqParams,
    parallelism: usize,
    postings: Vec<VecPosting>,
    data: Vec<f32>,
}

impl IvfPqBuilder {
    /// Creates a builder for `dim`-dimensional vectors.
    pub fn new(dim: usize, params: IvfPqParams) -> Result<Self> {
        if dim == 0 || params.m == 0 || !dim.is_multiple_of(params.m) {
            return Err(IvfError::BadInput(format!(
                "dim {dim} not divisible into {} subspaces",
                params.m
            )));
        }
        Ok(Self {
            dim,
            params,
            parallelism: 1,
            postings: Vec::new(),
            data: Vec::new(),
        })
    }

    /// Sets the worker-thread bound for `finish`'s CPU-heavy stages (PQ
    /// codebook training, vector encoding). Training stays deterministic
    /// (per-subspace seeds), so the produced bytes are identical at every
    /// setting; only wall-clock changes.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Adds one vector.
    pub fn add(&mut self, posting: VecPosting, vector: &[f32]) -> Result<()> {
        if vector.len() != self.dim {
            return Err(IvfError::BadInput(format!(
                "vector of dim {} in index of dim {}",
                vector.len(),
                self.dim
            )));
        }
        self.postings.push(posting);
        self.data.extend_from_slice(vector);
        Ok(())
    }

    /// Number of vectors added.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// Whether no vectors were added.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Trains quantizers, assigns lists and serializes the file image.
    pub fn finish(self) -> Result<Bytes> {
        let n = self.postings.len();
        let nlist = self.params.nlist.min(n.max(1));
        let centroids = kmeans(
            &self.data,
            self.dim,
            nlist,
            self.params.train_iters,
            self.params.seed,
        );

        // Assign vectors and compute residuals for PQ training.
        let mut assignment = vec![0u32; n];
        crate::kmeans::assign(&self.data, self.dim, &centroids, &mut assignment);
        let mut residuals = vec![0.0f32; self.data.len()];
        for i in 0..n {
            let c = assignment[i] as usize;
            for (d, r) in residuals[i * self.dim..(i + 1) * self.dim]
                .iter_mut()
                .enumerate()
            {
                *r = self.data[i * self.dim + d] - centroids[c * self.dim + d];
            }
        }
        let pq = ProductQuantizer::train_with_parallelism(
            &residuals,
            self.dim,
            self.params.m,
            self.params.train_iters,
            self.params.seed ^ 0x5151,
            self.parallelism,
        )?;

        // Encode in parallel (each code depends only on its own residual),
        // then bucket per list in input order so list contents match the
        // serial loop exactly.
        let ranges = chunk_ranges(n, self.parallelism.max(1) * 4, 256);
        let encoded = ordered_parallel_map(self.parallelism, &ranges, |_, range| {
            range
                .clone()
                .map(|i| pq.encode(&residuals[i * self.dim..(i + 1) * self.dim]))
                .collect::<Vec<_>>()
        });
        let mut lists: Vec<Vec<(VecPosting, Vec<u8>)>> = vec![Vec::new(); nlist];
        for (i, code) in encoded.into_iter().flatten().enumerate() {
            lists[assignment[i] as usize].push((self.postings[i], code));
        }

        Ok(write_file(self.dim, n, &centroids, &pq, &lists))
    }

    /// Serializes and uploads; returns the file size.
    pub fn finish_into(self, store: &dyn ObjectStore, key: &str) -> Result<u64> {
        let bytes = self.finish()?;
        let len = bytes.len() as u64;
        store.put(key, bytes)?;
        Ok(len)
    }
}

fn write_file(
    dim: usize,
    n: usize,
    centroids: &[f32],
    pq: &ProductQuantizer,
    lists: &[Vec<(VecPosting, Vec<u8>)>],
) -> Bytes {
    let mut writer = ComponentWriter::new();
    let mut root = Vec::new();
    root.push(1u8);
    varint::write_usize(&mut root, dim);
    varint::write_usize(&mut root, lists.len());
    varint::write_usize(&mut root, n);
    for &c in centroids {
        root.extend_from_slice(&c.to_le_bytes());
    }
    pq.encode_into(&mut root);
    writer.add(root);

    for list in lists {
        let mut buf = Vec::new();
        varint::write_usize(&mut buf, list.len());
        bitpack::pack(
            &mut buf,
            &list
                .iter()
                .map(|(p, _)| u64::from(p.posting.file))
                .collect::<Vec<_>>(),
        );
        bitpack::pack(
            &mut buf,
            &list
                .iter()
                .map(|(p, _)| u64::from(p.posting.page))
                .collect::<Vec<_>>(),
        );
        bitpack::pack(
            &mut buf,
            &list
                .iter()
                .map(|(p, _)| u64::from(p.row))
                .collect::<Vec<_>>(),
        );
        for (_, code) in list {
            buf.extend_from_slice(code);
        }
        writer.add(buf);
    }
    writer.finish()
}

/// Read handle over an IVF-PQ index file.
pub struct IvfPqIndex<'a> {
    file: ComponentFile<'a>,
    dim: usize,
    nlist: usize,
    n_vectors: usize,
    centroids: Vec<f32>,
    pq: ProductQuantizer,
}

impl<'a> IvfPqIndex<'a> {
    /// Opens an index written by [`IvfPqBuilder`] or [`merge_ivf`].
    pub fn open(store: &'a dyn ObjectStore, key: &str) -> Result<Self> {
        let file = ComponentFile::open(store, key)?;
        let root = file.component(0)?;
        if root.first() != Some(&1u8) {
            return Err(IvfError::Corrupt("unsupported ivfpq layout version".into()));
        }
        let mut pos = 1usize;
        let dim = varint::read_usize(&root, &mut pos)?;
        let nlist = varint::read_usize(&root, &mut pos)?;
        let n_vectors = varint::read_usize(&root, &mut pos)?;
        let floats = nlist * dim;
        let end = pos + floats * 4;
        if end > root.len() {
            return Err(IvfError::Corrupt("centroids truncated".into()));
        }
        let centroids: Vec<f32> = root[pos..end]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        pos = end;
        let pq = ProductQuantizer::decode_from(&root, &mut pos)?;
        Ok(Self {
            file,
            dim,
            nlist,
            n_vectors,
            centroids,
            pq,
        })
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.nlist
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.n_vectors
    }

    /// Whether the index holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.n_vectors == 0
    }

    fn read_list(&self, list: usize) -> Result<Vec<(VecPosting, Vec<u8>)>> {
        let buf = self.file.component(list + 1)?;
        let mut pos = 0usize;
        let n = varint::read_usize(&buf, &mut pos)?;
        let files = bitpack::unpack(&buf, &mut pos)?;
        let pages = bitpack::unpack(&buf, &mut pos)?;
        let rows = bitpack::unpack(&buf, &mut pos)?;
        if files.len() != n || pages.len() != n || rows.len() != n {
            return Err(IvfError::Corrupt("list arrays disagree".into()));
        }
        let m = self.pq.m();
        if pos + n * m > buf.len() {
            return Err(IvfError::Corrupt("list codes truncated".into()));
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let code = buf[pos + i * m..pos + (i + 1) * m].to_vec();
            out.push((
                VecPosting::new(files[i] as u32, pages[i] as u32, rows[i] as u32),
                code,
            ));
        }
        Ok(out)
    }

    /// ANN search. `fetch_exact` receives refine candidates and returns
    /// their full-precision vectors (Rottnest core fetches them from the
    /// data pages in situ; tests return them from memory). Results are
    /// `(posting, squared distance)` ascending, length ≤ `k`.
    pub fn search(
        &self,
        query: &[f32],
        params: SearchParams,
        fetch_exact: &FetchExact<'_>,
    ) -> Result<Vec<(VecPosting, f32)>> {
        if query.len() != self.dim {
            return Err(IvfError::BadInput(format!(
                "query of dim {} in index of dim {}",
                query.len(),
                self.dim
            )));
        }
        if self.n_vectors == 0 || params.k == 0 {
            return Ok(Vec::new());
        }
        // Rank centroids.
        let mut order: Vec<(usize, f32)> = (0..self.nlist)
            .map(|c| {
                (
                    c,
                    l2_sq(query, &self.centroids[c * self.dim..(c + 1) * self.dim]),
                )
            })
            .collect();
        order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let probed: Vec<usize> = order
            .iter()
            .take(params.nprobe.max(1))
            .map(|&(c, _)| c)
            .collect();

        // One parallel round trip for all probed lists.
        let comp_ids: Vec<usize> = probed.iter().map(|&c| c + 1).collect();
        self.file.components(&comp_ids)?;

        // ADC scan with per-list residual tables.
        let mut candidates: Vec<(VecPosting, f32)> = Vec::new();
        for &c in &probed {
            let centroid = &self.centroids[c * self.dim..(c + 1) * self.dim];
            let residual_query: Vec<f32> = query.iter().zip(centroid).map(|(q, c)| q - c).collect();
            let table = self.pq.adc_table(&residual_query);
            for (posting, code) in self.read_list(c)? {
                candidates.push((posting, self.pq.adc_distance(&table, &code)));
            }
        }
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

        if params.refine == 0 {
            candidates.truncate(params.k);
            return Ok(candidates);
        }

        // Exact rerank of the top `refine` candidates via in-situ fetch.
        candidates.truncate(params.refine.max(params.k));
        let ids: Vec<VecPosting> = candidates.iter().map(|&(p, _)| p).collect();
        let exact = fetch_exact(&ids)?;
        if exact.len() != ids.len() {
            return Err(IvfError::BadInput(
                "fetch_exact returned wrong count".into(),
            ));
        }
        let mut reranked: Vec<(VecPosting, f32)> = ids
            .into_iter()
            .zip(exact)
            .map(|(p, v)| (p, l2_sq(query, &v)))
            .collect();
        reranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        reranked.truncate(params.k);
        Ok(reranked)
    }

    /// Materializes all entries as (posting, approximate vector) pairs —
    /// feeds merges.
    pub fn reconstruct_all(&self) -> Result<Vec<(VecPosting, Vec<f32>)>> {
        let ids: Vec<usize> = (1..=self.nlist).collect();
        self.file.components(&ids)?;
        let mut out = Vec::with_capacity(self.n_vectors);
        for c in 0..self.nlist {
            let centroid = &self.centroids[c * self.dim..(c + 1) * self.dim];
            for (posting, code) in self.read_list(c)? {
                let mut v = self.pq.decode(&code);
                for (x, c) in v.iter_mut().zip(centroid) {
                    *x += c;
                }
                out.push((posting, v));
            }
        }
        Ok(out)
    }
}

/// Merges IVF-PQ indexes (§IV-C): the largest source's quantizers become
/// the target; other sources' vectors are reconstructed from their codes and
/// re-encoded under the target. `sources` pair each index with a file-id
/// offset applied to its postings.
pub fn merge_ivf(
    store: &dyn ObjectStore,
    sources: &[(&IvfPqIndex<'_>, u32)],
    out_key: &str,
) -> Result<u64> {
    let (&(target, _), _) = sources
        .split_first()
        .ok_or_else(|| IvfError::BadInput("nothing to merge".into()))?;
    let target = sources
        .iter()
        .map(|&(s, _)| s)
        .max_by_key(|s| s.len())
        .unwrap_or(target);
    let dim = target.dim;
    for (s, _) in sources {
        if s.dim != dim {
            return Err(IvfError::BadInput(
                "merging indexes of different dims".into(),
            ));
        }
    }

    let mut lists: Vec<Vec<(VecPosting, Vec<u8>)>> = vec![Vec::new(); target.nlist];
    let mut total = 0usize;
    for &(src, offset) in sources {
        for (posting, vector) in src.reconstruct_all()? {
            let remapped = VecPosting::new(
                posting.posting.file + offset,
                posting.posting.page,
                posting.row,
            );
            let (c, _) = nearest(&vector, &target.centroids, dim);
            let centroid = &target.centroids[c as usize * dim..(c as usize + 1) * dim];
            let residual: Vec<f32> = vector.iter().zip(centroid).map(|(v, c)| v - c).collect();
            lists[c as usize].push((remapped, target.pq.encode(&residual)));
            total += 1;
        }
    }
    let bytes = write_file(dim, total, &target.centroids, &target.pq, &lists);
    let len = bytes.len() as u64;
    store.put(out_key, bytes)?;
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::{flat_search, recall_at_k};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rottnest_object_store::MemoryStore;

    const DIM: usize = 16;

    /// Gaussian-mixture vectors (SIFT stand-in).
    fn dataset(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..8)
            .map(|_| (0..DIM).map(|_| rng.gen_range(-4.0..4.0)).collect())
            .collect();
        let mut data = Vec::with_capacity(n * DIM);
        for _ in 0..n {
            let c = &centers[rng.gen_range(0..centers.len())];
            for &cd in c.iter() {
                data.push(cd + rng.gen_range(-0.7..0.7f32));
            }
        }
        data
    }

    fn build(store: &dyn ObjectStore, key: &str, data: &[f32], file_id: u32) {
        let mut b = IvfPqBuilder::new(
            DIM,
            IvfPqParams {
                nlist: 32,
                m: 4,
                train_iters: 6,
                seed: 11,
            },
        )
        .unwrap();
        let n = data.len() / DIM;
        for i in 0..n {
            b.add(
                VecPosting::new(file_id, (i / 100) as u32, (i % 100) as u32),
                &data[i * DIM..(i + 1) * DIM],
            )
            .unwrap();
        }
        b.finish_into(store, key).unwrap();
    }

    fn exact_fetcher(data: &[f32]) -> impl Fn(&[VecPosting]) -> Result<Vec<Vec<f32>>> + '_ {
        move |ids| {
            Ok(ids
                .iter()
                .map(|p| {
                    let i = p.posting.page as usize * 100 + p.row as usize;
                    data[i * DIM..(i + 1) * DIM].to_vec()
                })
                .collect())
        }
    }

    fn truth_ids(data: &[f32], query: &[f32], k: usize) -> Vec<VecPosting> {
        flat_search(data, DIM, query, k)
            .into_iter()
            .map(|(i, _)| VecPosting::new(0, (i / 100) as u32, (i % 100) as u32))
            .collect()
    }

    #[test]
    fn recall_improves_with_nprobe_and_refine() {
        let store = MemoryStore::unmetered();
        let data = dataset(4000, 1);
        build(store.as_ref(), "v.idx", &data, 0);
        let idx = IvfPqIndex::open(store.as_ref(), "v.idx").unwrap();
        assert_eq!(idx.len(), 4000);

        let fetch = exact_fetcher(&data);
        let mut rng = StdRng::seed_from_u64(2);
        let mut recall_low = 0.0;
        let mut recall_high = 0.0;
        let queries = 20;
        for _ in 0..queries {
            let qi = rng.gen_range(0..4000usize);
            let query = &data[qi * DIM..(qi + 1) * DIM];
            let truth = truth_ids(&data, query, 10);

            let low = idx
                .search(
                    query,
                    SearchParams {
                        k: 10,
                        nprobe: 1,
                        refine: 0,
                    },
                    &fetch,
                )
                .unwrap();
            let high = idx
                .search(
                    query,
                    SearchParams {
                        k: 10,
                        nprobe: 16,
                        refine: 100,
                    },
                    &fetch,
                )
                .unwrap();
            let low_ids: Vec<VecPosting> = low.iter().map(|&(p, _)| p).collect();
            let high_ids: Vec<VecPosting> = high.iter().map(|&(p, _)| p).collect();
            recall_low += recall_at_k(&low_ids, &truth);
            recall_high += recall_at_k(&high_ids, &truth);
        }
        recall_low /= queries as f64;
        recall_high /= queries as f64;
        assert!(
            recall_high > recall_low,
            "high {recall_high} vs low {recall_low}"
        );
        assert!(recall_high > 0.9, "high-effort recall {recall_high}");
    }

    #[test]
    fn refined_distances_are_exact() {
        let store = MemoryStore::unmetered();
        let data = dataset(1000, 3);
        build(store.as_ref(), "v.idx", &data, 0);
        let idx = IvfPqIndex::open(store.as_ref(), "v.idx").unwrap();
        let fetch = exact_fetcher(&data);

        let query = &data[123 * DIM..124 * DIM];
        let hits = idx
            .search(
                query,
                SearchParams {
                    k: 1,
                    nprobe: 8,
                    refine: 50,
                },
                &fetch,
            )
            .unwrap();
        // The query IS a database vector; exact rerank must find distance 0.
        assert_eq!(hits[0].1, 0.0);
        assert_eq!(hits[0].0, VecPosting::new(0, 1, 23));
    }

    #[test]
    fn probe_cost_is_two_round_trips() {
        let store = MemoryStore::unmetered();
        let data = dataset(3000, 4);
        build(store.as_ref(), "v.idx", &data, 0);

        let before = store.stats();
        let idx = IvfPqIndex::open(store.as_ref(), "v.idx").unwrap();
        let open_gets = store.stats().since(&before).gets;
        assert!(open_gets <= 2, "open took {open_gets} GETs");

        let fetch = exact_fetcher(&data);
        let before = store.stats();
        idx.search(
            &data[0..DIM],
            SearchParams {
                k: 5,
                nprobe: 8,
                refine: 0,
            },
            &fetch,
        )
        .unwrap();
        let delta = store.stats().since(&before);
        assert!(
            delta.gets <= 8,
            "probe took {} GETs for 8 lists",
            delta.gets
        );
    }

    #[test]
    fn merge_preserves_search_quality() {
        let store = MemoryStore::unmetered();
        let data_a = dataset(1500, 5);
        let data_b = dataset(1500, 6);
        build(store.as_ref(), "a.idx", &data_a, 0);
        build(store.as_ref(), "b.idx", &data_b, 0);
        let ia = IvfPqIndex::open(store.as_ref(), "a.idx").unwrap();
        let ib = IvfPqIndex::open(store.as_ref(), "b.idx").unwrap();
        merge_ivf(store.as_ref(), &[(&ia, 0), (&ib, 1)], "m.idx").unwrap();

        let merged = IvfPqIndex::open(store.as_ref(), "m.idx").unwrap();
        assert_eq!(merged.len(), 3000);

        // Search for a vector from B; its remapped posting must surface.
        let all: Vec<f32> = data_a.iter().chain(&data_b).copied().collect();
        let fetch = |ids: &[VecPosting]| -> Result<Vec<Vec<f32>>> {
            Ok(ids
                .iter()
                .map(|p| {
                    let i = p.posting.page as usize * 100
                        + p.row as usize
                        + p.posting.file as usize * 1500;
                    all[i * DIM..(i + 1) * DIM].to_vec()
                })
                .collect())
        };
        let query = &data_b[700 * DIM..701 * DIM];
        let hits = merged
            .search(
                query,
                SearchParams {
                    k: 1,
                    nprobe: 16,
                    refine: 80,
                },
                &fetch,
            )
            .unwrap();
        assert_eq!(hits[0].0, VecPosting::new(1, 7, 0));
        assert_eq!(hits[0].1, 0.0);
    }

    #[test]
    fn dimension_mismatches_rejected() {
        let store = MemoryStore::unmetered();
        let data = dataset(500, 7);
        build(store.as_ref(), "v.idx", &data, 0);
        let idx = IvfPqIndex::open(store.as_ref(), "v.idx").unwrap();
        let fetch = exact_fetcher(&data);
        assert!(idx
            .search(
                &[0.0; 3],
                SearchParams {
                    k: 1,
                    nprobe: 1,
                    refine: 0
                },
                &fetch
            )
            .is_err());
        let mut b = IvfPqBuilder::new(DIM, IvfPqParams::default()).unwrap();
        assert!(b.add(VecPosting::new(0, 0, 0), &[0.0; 3]).is_err());
        assert!(IvfPqBuilder::new(
            10,
            IvfPqParams {
                m: 3,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn empty_index_searches_cleanly() {
        let store = MemoryStore::unmetered();
        let b = IvfPqBuilder::new(
            DIM,
            IvfPqParams {
                nlist: 4,
                m: 4,
                ..Default::default()
            },
        )
        .unwrap();
        b.finish_into(store.as_ref(), "e.idx").unwrap();
        let idx = IvfPqIndex::open(store.as_ref(), "e.idx").unwrap();
        let fetch = |_: &[VecPosting]| -> Result<Vec<Vec<f32>>> { Ok(Vec::new()) };
        let hits = idx
            .search(
                &[0.0; DIM],
                SearchParams {
                    k: 5,
                    nprobe: 2,
                    refine: 10,
                },
                &fetch,
            )
            .unwrap();
        assert!(hits.is_empty());
    }
}
