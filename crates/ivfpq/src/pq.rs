//! Product quantization: compress vectors to `m` bytes with per-subspace
//! codebooks, and score candidates with asymmetric distance computation
//! (ADC) lookup tables.

use rottnest_compress::varint;
use rottnest_object_store::ordered_parallel_map;

use crate::kmeans::kmeans;
use crate::{l2_sq, IvfError, Result};

/// Codewords per subspace (one byte per code).
pub const KSUB: usize = 256;

/// A trained product quantizer.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductQuantizer {
    dim: usize,
    m: usize,
    dsub: usize,
    /// `m × KSUB × dsub` codebook entries.
    codebooks: Vec<f32>,
}

impl ProductQuantizer {
    /// Trains on `data` (`n × dim`): `m` subspaces, `iters` k-means rounds.
    /// `dim` must be divisible by `m`.
    pub fn train(data: &[f32], dim: usize, m: usize, iters: usize, seed: u64) -> Result<Self> {
        Self::train_with_parallelism(data, dim, m, iters, seed, 1)
    }

    /// [`train`](Self::train) with subspace codebooks trained over
    /// `parallelism` threads. Each subspace's k-means is seeded
    /// independently (`seed + s`) and the codebooks concatenate in subspace
    /// order, so the trained quantizer is identical at every setting.
    pub fn train_with_parallelism(
        data: &[f32],
        dim: usize,
        m: usize,
        iters: usize,
        seed: u64,
        parallelism: usize,
    ) -> Result<Self> {
        if m == 0 || !dim.is_multiple_of(m) {
            return Err(IvfError::BadInput(format!(
                "dim {dim} not divisible into {m} subspaces"
            )));
        }
        let dsub = dim / m;
        let n = data.len() / dim;
        let subspaces: Vec<usize> = (0..m).collect();
        let per_subspace = ordered_parallel_map(parallelism, &subspaces, |_, &s| {
            // Gather the subvectors of subspace s.
            let mut sub = Vec::with_capacity(n * dsub);
            for i in 0..n {
                let base = i * dim + s * dsub;
                sub.extend_from_slice(&data[base..base + dsub]);
            }
            kmeans(&sub, dsub, KSUB, iters, seed.wrapping_add(s as u64))
        });
        let mut codebooks = Vec::with_capacity(m * KSUB * dsub);
        for cb in per_subspace {
            codebooks.extend(cb);
        }
        Ok(Self {
            dim,
            m,
            dsub,
            codebooks,
        })
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of subspaces (bytes per code).
    pub fn m(&self) -> usize {
        self.m
    }

    #[inline]
    fn codeword(&self, s: usize, k: usize) -> &[f32] {
        let base = (s * KSUB + k) * self.dsub;
        &self.codebooks[base..base + self.dsub]
    }

    /// Encodes `v` to `m` bytes.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        debug_assert_eq!(v.len(), self.dim);
        (0..self.m)
            .map(|s| {
                let sub = &v[s * self.dsub..(s + 1) * self.dsub];
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for k in 0..KSUB {
                    let d = l2_sq(sub, self.codeword(s, k));
                    if d < best_d {
                        best_d = d;
                        best = k;
                    }
                }
                best as u8
            })
            .collect()
    }

    /// Decodes a code back to its (approximate) vector.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        debug_assert_eq!(code.len(), self.m);
        let mut out = Vec::with_capacity(self.dim);
        for (s, &k) in code.iter().enumerate() {
            out.extend_from_slice(self.codeword(s, k as usize));
        }
        out
    }

    /// Builds the ADC table for `query`: `m × KSUB` partial squared
    /// distances. One table scores any number of codes at `m` lookups each.
    pub fn adc_table(&self, query: &[f32]) -> Vec<f32> {
        debug_assert_eq!(query.len(), self.dim);
        let mut table = Vec::with_capacity(self.m * KSUB);
        for s in 0..self.m {
            let sub = &query[s * self.dsub..(s + 1) * self.dsub];
            for k in 0..KSUB {
                table.push(l2_sq(sub, self.codeword(s, k)));
            }
        }
        table
    }

    /// Approximate squared distance of a code given a query's ADC table.
    #[inline]
    pub fn adc_distance(&self, table: &[f32], code: &[u8]) -> f32 {
        code.iter()
            .enumerate()
            .map(|(s, &k)| table[s * KSUB + k as usize])
            .sum()
    }

    /// Serializes the quantizer.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        varint::write_usize(out, self.dim);
        varint::write_usize(out, self.m);
        for &v in &self.codebooks {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Decodes a quantizer written by [`ProductQuantizer::encode_into`].
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let dim = varint::read_usize(buf, pos)?;
        let m = varint::read_usize(buf, pos)?;
        if m == 0 || dim % m != 0 {
            return Err(IvfError::Corrupt("bad pq dimensions".into()));
        }
        let dsub = dim / m;
        let n_floats = m * KSUB * dsub;
        let end = pos
            .checked_add(n_floats * 4)
            .ok_or_else(|| IvfError::Corrupt("pq size overflow".into()))?;
        if end > buf.len() {
            return Err(IvfError::Corrupt("pq codebooks truncated".into()));
        }
        let codebooks = buf[*pos..end]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        *pos = end;
        Ok(Self {
            dim,
            m,
            dsub,
            codebooks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn encode_decode_reduces_error_vs_random() {
        let dim = 16;
        let data = random_vectors(2000, dim, 1);
        let pq = ProductQuantizer::train(&data, dim, 4, 6, 42).unwrap();

        let mut err = 0.0f64;
        let mut base = 0.0f64;
        for i in (0..2000).step_by(17) {
            let v = &data[i * dim..(i + 1) * dim];
            let approx = pq.decode(&pq.encode(v));
            err += l2_sq(v, &approx) as f64;
            base += v.iter().map(|&x| (x * x) as f64).sum::<f64>();
        }
        assert!(
            err < base * 0.25,
            "quantization error {err} vs energy {base}"
        );
    }

    #[test]
    fn adc_matches_decoded_distance() {
        let dim = 8;
        let data = random_vectors(1000, dim, 2);
        let pq = ProductQuantizer::train(&data, dim, 4, 5, 7).unwrap();
        let query: Vec<f32> = random_vectors(1, dim, 3);
        let table = pq.adc_table(&query);
        for i in (0..1000).step_by(83) {
            let v = &data[i * dim..(i + 1) * dim];
            let code = pq.encode(v);
            let adc = pq.adc_distance(&table, &code);
            let exact_to_decoded = l2_sq(&query, &pq.decode(&code));
            assert!(
                (adc - exact_to_decoded).abs() < 1e-3,
                "adc {adc} vs decoded {exact_to_decoded}"
            );
        }
    }

    #[test]
    fn serialization_round_trip() {
        let data = random_vectors(500, 8, 4);
        let pq = ProductQuantizer::train(&data, 8, 2, 4, 9).unwrap();
        let mut buf = Vec::new();
        pq.encode_into(&mut buf);
        let mut pos = 0;
        let back = ProductQuantizer::decode_from(&buf, &mut pos).unwrap();
        assert_eq!(back, pq);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn invalid_subspace_split_rejected() {
        let data = random_vectors(10, 6, 5);
        assert!(ProductQuantizer::train(&data, 6, 4, 2, 1).is_err());
        assert!(ProductQuantizer::train(&data, 6, 0, 2, 1).is_err());
    }
}
