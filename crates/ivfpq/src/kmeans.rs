//! K-means with k-means++ seeding, used for the IVF coarse quantizer and
//! each PQ sub-codebook.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::l2_sq;

/// Minimum points per spawned thread; below this, assignment runs inline.
const PAR_CHUNK: usize = 16 * 1024;

/// Trains `k` centroids over `data` (`n × dim`, row-major) with `iters`
/// Lloyd iterations. Deterministic for a given `seed`. Returns `k × dim`
/// centroids (fewer never happens: empty clusters are re-seeded from the
/// farthest points).
pub fn kmeans(data: &[f32], dim: usize, k: usize, iters: usize, seed: u64) -> Vec<f32> {
    assert!(
        dim > 0 && data.len().is_multiple_of(dim),
        "data must be n*dim"
    );
    let n = data.len() / dim;
    assert!(k > 0, "k must be positive");
    let mut rng = StdRng::seed_from_u64(seed);

    if n == 0 {
        // Degenerate: no data — return zero centroids so callers can still
        // build an (empty) index.
        return vec![0.0; k * dim];
    }

    let row = |i: usize| &data[i * dim..(i + 1) * dim];

    // k-means++ seeding.
    let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(row(first));
    let mut dist2: Vec<f32> = (0..n).map(|i| l2_sq(row(i), row(first))).collect();
    while centroids.len() < k * dim {
        let total: f64 = dist2.iter().map(|&d| d as f64).sum();
        let choice = if total <= f64::EPSILON {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &d) in dist2.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centroids.extend_from_slice(row(choice));
        let c = centroids.len() / dim - 1;
        let new_c = centroids[c * dim..(c + 1) * dim].to_vec();
        for (i, d) in dist2.iter_mut().enumerate() {
            *d = d.min(l2_sq(row(i), &new_c));
        }
    }

    // Lloyd iterations.
    let mut assignments = vec![0u32; n];
    for _ in 0..iters {
        assign(data, dim, &centroids, &mut assignments);

        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0u64; k];
        for (i, &a) in assignments.iter().enumerate() {
            counts[a as usize] += 1;
            let base = a as usize * dim;
            for (s, &v) in sums[base..base + dim].iter_mut().zip(row(i)) {
                *s += v as f64;
            }
        }
        // Re-seed empty clusters from the point farthest from its centroid.
        for c in 0..k {
            if counts[c] == 0 {
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = l2_sq(row(a), centroid(&centroids, dim, assignments[a]));
                        let db = l2_sq(row(b), centroid(&centroids, dim, assignments[b]));
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0);
                centroids[c * dim..(c + 1) * dim].copy_from_slice(row(far));
            } else {
                for d in 0..dim {
                    centroids[c * dim + d] = (sums[c * dim + d] / counts[c] as f64) as f32;
                }
            }
        }
    }
    centroids
}

#[inline]
fn centroid(centroids: &[f32], dim: usize, c: u32) -> &[f32] {
    &centroids[c as usize * dim..(c as usize + 1) * dim]
}

/// Assigns each row of `data` to its nearest centroid (parallel when large).
pub fn assign(data: &[f32], dim: usize, centroids: &[f32], out: &mut [u32]) {
    let n = data.len() / dim;
    debug_assert_eq!(out.len(), n);
    let k = centroids.len() / dim;
    let work = |rows: std::ops::Range<usize>, out: &mut [u32]| {
        for (slot, i) in out.iter_mut().zip(rows) {
            let v = &data[i * dim..(i + 1) * dim];
            let mut best = 0u32;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let d = l2_sq(v, &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            *slot = best;
        }
    };

    if n < PAR_CHUNK * 2 {
        work(0..n, out);
        return;
    }
    let threads = std::thread::available_parallelism()
        .map_or(4, |p| p.get())
        .min(16);
    let chunk = n.div_ceil(threads);
    crossbeam::scope(|scope| {
        for (t, slice) in out.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            let end = (start + slice.len()).min(n);
            scope.spawn(move |_| work(start..end, slice));
        }
    })
    .expect("assignment threads");
}

/// Index of the nearest centroid to `v`, with its distance.
pub fn nearest(v: &[f32], centroids: &[f32], dim: usize) -> (u32, f32) {
    let k = centroids.len() / dim;
    let mut best = 0u32;
    let mut best_d = f32::INFINITY;
    for c in 0..k {
        let d = l2_sq(v, &centroids[c * dim..(c + 1) * dim]);
        if d < best_d {
            best_d = d;
            best = c as u32;
        }
    }
    (best, best_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered_data(n_per: usize, centers: &[[f32; 2]], spread: f32, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for c in centers {
            for _ in 0..n_per {
                data.push(c[0] + rng.gen_range(-spread..spread));
                data.push(c[1] + rng.gen_range(-spread..spread));
            }
        }
        data
    }

    #[test]
    fn recovers_separated_clusters() {
        let centers = [[0.0f32, 0.0], [10.0, 10.0], [-10.0, 10.0], [10.0, -10.0]];
        let data = clustered_data(200, &centers, 0.5, 1);
        let centroids = kmeans(&data, 2, 4, 10, 42);
        // Every true center must have a learned centroid within 1.0.
        for c in &centers {
            let (_, d) = nearest(c, &centroids, 2);
            assert!(d < 1.0, "center {c:?} unmatched, d={d}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = clustered_data(100, &[[0.0, 0.0], [5.0, 5.0]], 1.0, 2);
        let a = kmeans(&data, 2, 2, 5, 7);
        let b = kmeans(&data, 2, 2, 5, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn more_clusters_than_points_is_handled() {
        let data = vec![1.0f32, 1.0, 2.0, 2.0]; // 2 points, dim 2
        let centroids = kmeans(&data, 2, 8, 3, 3);
        assert_eq!(centroids.len(), 16);
        let mut asg = vec![0u32; 2];
        assign(&data, 2, &centroids, &mut asg);
        // Each point maps to a centroid at distance 0.
        for (i, &a) in asg.iter().enumerate() {
            let d = l2_sq(
                &data[i * 2..i * 2 + 2],
                &centroids[a as usize * 2..a as usize * 2 + 2],
            );
            assert!(d < 1e-9);
        }
    }

    #[test]
    fn assignment_matches_nearest() {
        let data = clustered_data(500, &[[0.0, 0.0], [8.0, 0.0], [0.0, 8.0]], 1.0, 4);
        let centroids = kmeans(&data, 2, 3, 8, 5);
        let n = data.len() / 2;
        let mut asg = vec![0u32; n];
        assign(&data, 2, &centroids, &mut asg);
        for i in (0..n).step_by(37) {
            let (want, _) = nearest(&data[i * 2..i * 2 + 2], &centroids, 2);
            assert_eq!(asg[i], want);
        }
    }

    #[test]
    fn empty_data_returns_zero_centroids() {
        let centroids = kmeans(&[], 4, 3, 5, 1);
        assert_eq!(centroids, vec![0.0; 12]);
    }

    #[test]
    fn parallel_assignment_matches_serial() {
        // Above 2×PAR_CHUNK points the scoped-thread path kicks in; its
        // output must be identical to the inline path.
        let n = PAR_CHUNK * 2 + 123;
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<f32> = (0..n * 2).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let centroids: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut par = vec![0u32; n];
        assign(&data, 2, &centroids, &mut par);
        for i in (0..n).step_by(997) {
            let (want, _) = nearest(&data[i * 2..i * 2 + 2], &centroids, 2);
            assert_eq!(par[i], want, "row {i}");
        }
    }
}
