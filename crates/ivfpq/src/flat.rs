//! Exact brute-force search and recall metrics.
//!
//! Used three ways: ground truth for recall targets (§VII-B2), the
//! brute-force baseline's per-chunk scan kernel, and exact reranking of
//! refined candidates.

use crate::l2_sq;

/// Exact top-`k` nearest rows of `data` (`n × dim`) to `query`, as
/// `(row, squared distance)` sorted ascending by distance.
pub fn flat_search(data: &[f32], dim: usize, query: &[f32], k: usize) -> Vec<(usize, f32)> {
    assert_eq!(query.len(), dim);
    let n = data.len() / dim;
    let mut heap: Vec<(usize, f32)> = Vec::with_capacity(k + 1);
    for i in 0..n {
        let d = l2_sq(query, &data[i * dim..(i + 1) * dim]);
        if heap.len() < k {
            heap.push((i, d));
            heap.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        } else if let Some(last) = heap.last() {
            if d < last.1 {
                heap.pop();
                let at = heap.partition_point(|e| e.1 <= d);
                heap.insert(at, (i, d));
            }
        }
    }
    heap
}

/// Fraction of `truth`'s ids found in `found` (recall@k with `k =
/// truth.len()`).
pub fn recall_at_k<T: PartialEq>(found: &[T], truth: &[T]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let hits = truth.iter().filter(|t| found.contains(t)).count();
    hits as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_neighbors_sorted() {
        // Points on a line: query at 0 → nearest are 0, 1, 2.
        let data: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let hits = flat_search(&data, 1, &[0.2], 3);
        let ids: Vec<usize> = hits.iter().map(|h| h.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(hits[0].1 <= hits[1].1 && hits[1].1 <= hits[2].1);
    }

    #[test]
    fn k_larger_than_n() {
        let data = vec![0.0f32, 1.0, 2.0];
        let hits = flat_search(&data, 1, &[5.0], 10);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].0, 2);
    }

    #[test]
    fn recall_math() {
        assert_eq!(recall_at_k(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(recall_at_k(&[1, 9, 8], &[1, 2, 3]), 1.0 / 3.0);
        assert_eq!(recall_at_k::<u32>(&[], &[]), 1.0);
        assert_eq!(recall_at_k(&[7], &[1, 2]), 0.0);
    }
}
