//! IVF-PQ approximate nearest neighbor index — §V-C3 of the paper.
//!
//! Rottnest deliberately chooses a **centroid-based** index over graph
//! structures (HNSW/Vamana): graphs need long chains of dependent reads,
//! which is exactly what object storage punishes; IVF-PQ needs two — root
//! (centroids + codebooks), then the probed lists in one parallel round
//! trip.
//!
//! * [`kmeans`] — k-means++ seeded Lloyd iterations (coarse quantizer and
//!   codebook training), parallelized with scoped threads;
//! * [`pq`] — product quantization over residuals with asymmetric distance
//!   computation (ADC) tables;
//! * [`index`] — the componentized index: root carries centroids and
//!   codebooks, each inverted list is one component; `nprobe` controls how
//!   many lists are scanned and `refine` how many candidates are reranked
//!   with **exact vectors fetched in situ from the Parquet pages**;
//! * [`flat`] — exact brute-force search (ground truth + recall metrics).

pub mod flat;
pub mod index;
pub mod kmeans;
pub mod pq;

pub use flat::{flat_search, recall_at_k};
pub use index::{IvfPqBuilder, IvfPqIndex, IvfPqParams, SearchParams, VecPosting};
pub use rottnest_component::Posting;

/// Errors raised by vector index operations.
#[derive(Debug)]
pub enum IvfError {
    /// Invalid parameters or vector dimensions.
    BadInput(String),
    /// Malformed serialized index.
    Corrupt(String),
    /// Component-layer failure.
    Component(rottnest_component::ComponentError),
}

impl std::fmt::Display for IvfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IvfError::BadInput(m) => write!(f, "bad input: {m}"),
            IvfError::Corrupt(m) => write!(f, "corrupt ivfpq index: {m}"),
            IvfError::Component(e) => write!(f, "component: {e}"),
        }
    }
}

impl std::error::Error for IvfError {}

impl From<rottnest_component::ComponentError> for IvfError {
    fn from(e: rottnest_component::ComponentError) -> Self {
        IvfError::Component(e)
    }
}

impl From<rottnest_compress::CompressError> for IvfError {
    fn from(e: rottnest_compress::CompressError) -> Self {
        IvfError::Corrupt(format!("varint: {e}"))
    }
}

impl From<rottnest_object_store::StoreError> for IvfError {
    fn from(e: rottnest_object_store::StoreError) -> Self {
        IvfError::Component(rottnest_component::ComponentError::Store(e))
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, IvfError>;

/// Squared Euclidean distance between equal-length vectors.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_basics() {
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[1.0], &[1.0]), 0.0);
    }
}
