//! The versioned transactional commit log.
//!
//! Commits are numbered objects `_log/<version padded to 20 digits>.log`
//! written with `put_if_absent`: exactly one writer wins each version, which
//! is all the atomicity the lake (and Rottnest's metadata table) needs —
//! no atomic rename, matching the paper's compatibility goal (§IV, §IV-D).
//!
//! [`TxLog`] is payload-agnostic: the lake stores [`crate::Action`] lists
//! and Rottnest's metadata table stores its own record type on the same
//! machinery ("the Rottnest metadata table ... is implemented as a Delta
//! Lake table itself resident on object storage").

use bytes::Bytes;
use rottnest_object_store::{ObjectStore, StoreError};

use crate::{LakeError, Result};

/// One committed entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Commit version, starting at 0.
    pub version: u64,
    /// Opaque committed payload.
    pub payload: Bytes,
    /// Commit timestamp on the store's clock (ms).
    pub timestamp_ms: u64,
}

/// A transactional, append-only log at `<root>/_log/` on an object store.
pub struct TxLog<'a> {
    store: &'a dyn ObjectStore,
    root: String,
}

const PAD: usize = 20;

impl<'a> TxLog<'a> {
    /// Opens (lazily) the log under `root` (no trailing slash).
    pub fn new(store: &'a dyn ObjectStore, root: impl Into<String>) -> Self {
        Self {
            store,
            root: root.into(),
        }
    }

    fn key_of(&self, version: u64) -> String {
        format!("{}/_log/{:0PAD$}.log", self.root, version)
    }

    fn version_of(&self, key: &str) -> Option<u64> {
        let name = key.strip_prefix(&format!("{}/_log/", self.root))?;
        let digits = name.strip_suffix(".log")?;
        digits.parse().ok()
    }

    /// Latest committed version, or `None` for an empty log.
    pub fn latest_version(&self) -> Result<Option<u64>> {
        let entries = self.store.list(&format!("{}/_log/", self.root))?;
        Ok(entries.iter().filter_map(|m| self.version_of(&m.key)).max())
    }

    /// Reads the entry at `version`.
    pub fn read(&self, version: u64) -> Result<LogEntry> {
        let key = self.key_of(version);
        let meta = self
            .store
            .head(&key)
            .map_err(|_| LakeError::NoSuchVersion(version))?;
        let payload = self.store.get(&key)?;
        Ok(LogEntry {
            version,
            payload,
            timestamp_ms: meta.created_ms,
        })
    }

    fn ckpt_key_of(&self, version: u64) -> String {
        format!("{}/_log/{:0PAD$}.ckpt", self.root, version)
    }

    fn ckpt_version_of(&self, key: &str) -> Option<u64> {
        let name = key.strip_prefix(&format!("{}/_log/", self.root))?;
        let digits = name.strip_suffix(".ckpt")?;
        digits.parse().ok()
    }

    /// Reads all entries `0..=version` in order — one LIST plus **one
    /// parallel round trip** of GETs (log objects are independent, so a
    /// reader fetches them with full access width, §V-B). When a checkpoint
    /// at version `c ≤ version` exists, only the checkpoint plus the tail
    /// `c+1..=version` are fetched.
    pub fn read_until(&self, version: u64) -> Result<Vec<LogEntry>> {
        let listing = self.store.list(&format!("{}/_log/", self.root))?;

        // Latest usable checkpoint.
        let checkpoint = listing
            .iter()
            .filter_map(|m| self.ckpt_version_of(&m.key).map(|v| (v, m.clone())))
            .filter(|(v, _)| *v <= version)
            .max_by_key(|(v, _)| *v);
        let from = checkpoint.as_ref().map_or(0, |(v, _)| v + 1);

        let mut metas: Vec<(u64, rottnest_object_store::ObjectMeta)> = listing
            .into_iter()
            .filter_map(|m| self.version_of(&m.key).map(|v| (v, m)))
            .filter(|(v, _)| (from..=version).contains(v))
            .collect();
        metas.sort_by_key(|(v, _)| *v);
        let expected = (version + 1).saturating_sub(from);
        if metas.len() as u64 != expected {
            let missing = (from..=version)
                .find(|v| !metas.iter().any(|(mv, _)| mv == v))
                .unwrap_or(version);
            return Err(LakeError::NoSuchVersion(missing));
        }

        let mut entries = Vec::with_capacity(metas.len() + 64);
        if let Some((_, meta)) = checkpoint {
            let bytes = self.store.get(&meta.key)?;
            entries.extend(decode_checkpoint(&bytes)?);
        }
        if !metas.is_empty() {
            let requests: Vec<rottnest_object_store::RangeRequest> = metas
                .iter()
                .map(|(_, m)| rottnest_object_store::RangeRequest::new(m.key.clone(), 0..m.size))
                .collect();
            let payloads = self.store.get_ranges(&requests)?;
            entries.extend(
                metas
                    .into_iter()
                    .zip(payloads)
                    .map(|((v, m), payload)| LogEntry {
                        version: v,
                        payload,
                        timestamp_ms: m.created_ms,
                    }),
            );
        }
        Ok(entries)
    }

    /// Writes a checkpoint object covering entries `0..=version` (one GET
    /// replaces `version + 1` on later reads — Delta Lake's checkpoint
    /// mechanism). Idempotent; checkpoints are immutable and never required
    /// for correctness.
    pub fn write_checkpoint(&self, version: u64) -> Result<()> {
        let entries = self.read_until(version)?;
        let mut buf = Vec::new();
        rottnest_compress::varint::write_usize(&mut buf, entries.len());
        for e in &entries {
            rottnest_compress::varint::write_u64(&mut buf, e.version);
            rottnest_compress::varint::write_u64(&mut buf, e.timestamp_ms);
            rottnest_compress::varint::write_bytes(&mut buf, &e.payload);
        }
        match self
            .store
            .put_if_absent(&self.ckpt_key_of(version), Bytes::from(buf))
        {
            Ok(()) => Ok(()),
            Err(StoreError::AlreadyExists(_)) => Ok(()), // someone else won
            Err(e) => Err(e.into()),
        }
    }

    /// Latest checkpoint version, if any.
    pub fn latest_checkpoint(&self) -> Result<Option<u64>> {
        let listing = self.store.list(&format!("{}/_log/", self.root))?;
        Ok(listing
            .iter()
            .filter_map(|m| self.ckpt_version_of(&m.key))
            .max())
    }

    /// Attempts to commit `payload` at exactly `expected_version`.
    ///
    /// Returns `Conflict` if another writer got there first — callers rebase
    /// and retry.
    pub fn try_commit_at(&self, expected_version: u64, payload: Bytes) -> Result<()> {
        match self
            .store
            .put_if_absent(&self.key_of(expected_version), payload)
        {
            Ok(()) => Ok(()),
            Err(StoreError::AlreadyExists(_)) => Err(LakeError::Conflict(format!(
                "version {expected_version} already committed"
            ))),
            Err(e) => Err(e.into()),
        }
    }

    /// Commits `payload` at the next available version, retrying version
    /// races up to `max_retries` times. Returns the committed version.
    ///
    /// Note: this resolves only *version-number* races. Callers with
    /// logical conflict rules (e.g. the table rejecting double-removes)
    /// should use [`TxLog::try_commit_at`] and re-validate between attempts.
    pub fn commit(&self, payload: Bytes, max_retries: u32) -> Result<u64> {
        let mut version = self.latest_version()?.map_or(0, |v| v + 1);
        for _ in 0..=max_retries {
            match self.try_commit_at(version, payload.clone()) {
                Ok(()) => return Ok(version),
                Err(LakeError::Conflict(_)) => version += 1,
                Err(e) => return Err(e),
            }
        }
        Err(LakeError::Conflict(format!(
            "gave up after {max_retries} retries at version {version}"
        )))
    }
}

fn decode_checkpoint(buf: &[u8]) -> Result<Vec<LogEntry>> {
    use rottnest_compress::varint;
    let mut pos = 0usize;
    let n = varint::read_usize(buf, &mut pos)?;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let version = varint::read_u64(buf, &mut pos)?;
        let timestamp_ms = varint::read_u64(buf, &mut pos)?;
        let payload = Bytes::copy_from_slice(varint::read_bytes(buf, &mut pos)?);
        out.push(LogEntry {
            version,
            payload,
            timestamp_ms,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rottnest_object_store::MemoryStore;

    #[test]
    fn commits_are_sequential() {
        let store = MemoryStore::unmetered();
        let log = TxLog::new(store.as_ref(), "tbl");
        assert_eq!(log.latest_version().unwrap(), None);
        assert_eq!(log.commit(Bytes::from_static(b"a"), 3).unwrap(), 0);
        assert_eq!(log.commit(Bytes::from_static(b"b"), 3).unwrap(), 1);
        assert_eq!(log.latest_version().unwrap(), Some(1));
        assert_eq!(log.read(0).unwrap().payload.as_ref(), b"a");
        assert_eq!(log.read(1).unwrap().payload.as_ref(), b"b");
        assert!(matches!(log.read(2), Err(LakeError::NoSuchVersion(2))));
    }

    #[test]
    fn read_until_replays_in_order() {
        let store = MemoryStore::unmetered();
        let log = TxLog::new(store.as_ref(), "tbl");
        for i in 0u8..5 {
            log.commit(Bytes::from(vec![i]), 0).unwrap();
        }
        let entries = log.read_until(4).unwrap();
        assert_eq!(entries.len(), 5);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.version, i as u64);
            assert_eq!(e.payload.as_ref(), &[i as u8]);
        }
    }

    #[test]
    fn explicit_version_conflict() {
        let store = MemoryStore::unmetered();
        let log = TxLog::new(store.as_ref(), "tbl");
        log.try_commit_at(0, Bytes::from_static(b"x")).unwrap();
        assert!(matches!(
            log.try_commit_at(0, Bytes::from_static(b"y")),
            Err(LakeError::Conflict(_))
        ));
    }

    #[test]
    fn concurrent_committers_all_succeed_with_distinct_versions() {
        let store = MemoryStore::unmetered();
        let versions = parking_lot::Mutex::new(Vec::new());
        crossbeam::scope(|scope| {
            for i in 0..8u8 {
                let store = &store;
                let versions = &versions;
                scope.spawn(move |_| {
                    let log = TxLog::new(store.as_ref(), "tbl");
                    let v = log.commit(Bytes::from(vec![i]), 32).unwrap();
                    versions.lock().push(v);
                });
            }
        })
        .unwrap();
        let mut got = versions.into_inner();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn logs_under_different_roots_are_isolated() {
        let store = MemoryStore::unmetered();
        let a = TxLog::new(store.as_ref(), "a");
        let b = TxLog::new(store.as_ref(), "b");
        a.commit(Bytes::from_static(b"1"), 0).unwrap();
        assert_eq!(b.latest_version().unwrap(), None);
    }

    #[test]
    fn checkpoint_replaces_prefix_reads() {
        let store = MemoryStore::unmetered();
        let log = TxLog::new(store.as_ref(), "tbl");
        for i in 0u8..10 {
            log.commit(Bytes::from(vec![i]), 0).unwrap();
        }
        log.write_checkpoint(6).unwrap();
        assert_eq!(log.latest_checkpoint().unwrap(), Some(6));

        // Full replay is identical with and without the checkpoint.
        let entries = log.read_until(9).unwrap();
        assert_eq!(entries.len(), 10);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.version, i as u64);
            assert_eq!(e.payload.as_ref(), &[i as u8]);
        }

        // Reading past the checkpoint costs 1 LIST + checkpoint GET + tail
        // batch instead of 10 log GETs.
        let before = store.stats();
        log.read_until(9).unwrap();
        let delta = store.stats().since(&before);
        assert!(delta.gets <= 4 + 1, "gets with checkpoint: {}", delta.gets);
    }

    #[test]
    fn checkpoint_is_idempotent_and_optional() {
        let store = MemoryStore::unmetered();
        let log = TxLog::new(store.as_ref(), "tbl");
        for i in 0u8..4 {
            log.commit(Bytes::from(vec![i]), 0).unwrap();
        }
        log.write_checkpoint(3).unwrap();
        log.write_checkpoint(3).unwrap(); // no error on re-run
                                          // Reads below the checkpoint ignore it.
        let entries = log.read_until(2).unwrap();
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn read_until_missing_version_errors() {
        let store = MemoryStore::unmetered();
        let log = TxLog::new(store.as_ref(), "tbl");
        log.commit(Bytes::from_static(b"a"), 0).unwrap();
        assert!(matches!(
            log.read_until(5),
            Err(LakeError::NoSuchVersion(_))
        ));
    }
}
