//! Snapshots: point-in-time views of a table (the "manifest list").
//!
//! A snapshot is produced by replaying the commit log up to a version. It
//! lists the active data files (with row counts and sizes) and each file's
//! current deletion vector — exactly the inputs Rottnest's `index` and
//! `search` plans consume (§IV-A step 1, §IV-B step 1).

use std::collections::BTreeMap;

use rottnest_format::Schema;

use crate::log::LogEntry;
use crate::{Action, LakeError, Result};

/// An active data file within a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Store key of the data file.
    pub path: String,
    /// Row count.
    pub rows: u64,
    /// File size in bytes.
    pub size: u64,
    /// Current deletion-vector sidecar, if any rows are deleted.
    pub dv_path: Option<String>,
}

/// A point-in-time view of the table.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    version: u64,
    schema: Schema,
    files: BTreeMap<String, FileEntry>,
}

impl Snapshot {
    /// Replays log entries (which must start at version 0, in order) into a
    /// snapshot at the last entry's version.
    pub fn replay(entries: &[LogEntry]) -> Result<Self> {
        let mut schema: Option<Schema> = None;
        let mut files: BTreeMap<String, FileEntry> = BTreeMap::new();
        let mut version = 0;

        for entry in entries {
            version = entry.version;
            let buf = entry.payload.as_ref();
            let mut pos = 0usize;
            while pos < buf.len() {
                match Action::decode(buf, &mut pos)? {
                    Action::Init { schema_bytes } => {
                        let mut p = 0usize;
                        schema = Some(Schema::decode(&schema_bytes, &mut p)?);
                    }
                    Action::AddFile { path, rows, size } => {
                        files.insert(
                            path.clone(),
                            FileEntry {
                                path,
                                rows,
                                size,
                                dv_path: None,
                            },
                        );
                    }
                    Action::RemoveFile { path } => {
                        if files.remove(&path).is_none() {
                            return Err(LakeError::Corrupt(format!(
                                "remove of unknown file {path} at version {version}"
                            )));
                        }
                    }
                    Action::SetDeletionVector { data_path, dv_path } => {
                        let entry = files.get_mut(&data_path).ok_or_else(|| {
                            LakeError::Corrupt(format!(
                                "deletion vector for unknown file {data_path}"
                            ))
                        })?;
                        entry.dv_path = Some(dv_path);
                    }
                }
            }
        }

        let schema = schema.ok_or_else(|| LakeError::Corrupt("log has no Init action".into()))?;
        Ok(Self {
            version,
            schema,
            files,
        })
    }

    /// The snapshot's version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Active files in path order (the manifest list).
    pub fn files(&self) -> impl Iterator<Item = &FileEntry> {
        self.files.values()
    }

    /// Number of active files.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// Looks up a file by path.
    pub fn file(&self, path: &str) -> Option<&FileEntry> {
        self.files.get(path)
    }

    /// Whether `path` is active in this snapshot — the filter `search`
    /// applies to index postings (§IV-B step 2).
    pub fn contains(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Total live rows (not subtracting deletion vectors).
    pub fn total_rows(&self) -> u64 {
        self.files.values().map(|f| f.rows).sum()
    }

    /// Total bytes across active data files.
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|f| f.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rottnest_format::{DataType, Field};

    fn schema_bytes() -> Vec<u8> {
        let mut out = Vec::new();
        Schema::new(vec![Field::new("x", DataType::Int64)]).encode(&mut out);
        out
    }

    fn entry(version: u64, actions: &[Action]) -> LogEntry {
        let mut payload = Vec::new();
        for a in actions {
            a.encode(&mut payload);
        }
        LogEntry {
            version,
            payload: Bytes::from(payload),
            timestamp_ms: 0,
        }
    }

    #[test]
    fn replay_add_remove_dv() {
        let entries = vec![
            entry(
                0,
                &[Action::Init {
                    schema_bytes: schema_bytes(),
                }],
            ),
            entry(
                1,
                &[
                    Action::AddFile {
                        path: "t/a".into(),
                        rows: 10,
                        size: 100,
                    },
                    Action::AddFile {
                        path: "t/b".into(),
                        rows: 20,
                        size: 200,
                    },
                ],
            ),
            entry(
                2,
                &[Action::SetDeletionVector {
                    data_path: "t/a".into(),
                    dv_path: "t/dv/a".into(),
                }],
            ),
            entry(
                3,
                &[
                    Action::RemoveFile { path: "t/b".into() },
                    Action::AddFile {
                        path: "t/c".into(),
                        rows: 20,
                        size: 190,
                    },
                ],
            ),
        ];
        let snap = Snapshot::replay(&entries).unwrap();
        assert_eq!(snap.version(), 3);
        assert_eq!(snap.num_files(), 2);
        assert!(snap.contains("t/a"));
        assert!(!snap.contains("t/b"));
        assert_eq!(snap.file("t/a").unwrap().dv_path.as_deref(), Some("t/dv/a"));
        assert_eq!(snap.total_rows(), 30);
        assert_eq!(snap.total_bytes(), 290);
    }

    #[test]
    fn remove_unknown_file_is_corrupt() {
        let entries = vec![
            entry(
                0,
                &[Action::Init {
                    schema_bytes: schema_bytes(),
                }],
            ),
            entry(
                1,
                &[Action::RemoveFile {
                    path: "ghost".into(),
                }],
            ),
        ];
        assert!(Snapshot::replay(&entries).is_err());
    }

    #[test]
    fn missing_init_is_corrupt() {
        let entries = vec![entry(
            0,
            &[Action::AddFile {
                path: "a".into(),
                rows: 1,
                size: 1,
            }],
        )];
        assert!(Snapshot::replay(&entries).is_err());
    }

    #[test]
    fn dv_replacement_keeps_latest() {
        let entries = vec![
            entry(
                0,
                &[Action::Init {
                    schema_bytes: schema_bytes(),
                }],
            ),
            entry(
                1,
                &[Action::AddFile {
                    path: "a".into(),
                    rows: 5,
                    size: 50,
                }],
            ),
            entry(
                2,
                &[Action::SetDeletionVector {
                    data_path: "a".into(),
                    dv_path: "dv1".into(),
                }],
            ),
            entry(
                3,
                &[Action::SetDeletionVector {
                    data_path: "a".into(),
                    dv_path: "dv2".into(),
                }],
            ),
        ];
        let snap = Snapshot::replay(&entries).unwrap();
        assert_eq!(snap.file("a").unwrap().dv_path.as_deref(), Some("dv2"));
    }
}
