//! A transactional data lake over object storage — the substrate Rottnest
//! bolts onto.
//!
//! Modeled on Delta Lake / Apache Iceberg (§II-A): immutable
//! `rottnest-format` data files, a versioned commit log of file-level
//! actions ([`log::TxLog`]) committed with `put_if_absent` (optimistic
//! concurrency — no atomic rename required), point-in-time [`Snapshot`]s
//! (time travel), row-level deletes via [`DeletionVector`] sidecar files,
//! LSM-style [`Table::compact`], and [`Table::vacuum`] garbage collection.
//!
//! Everything Rottnest's protocol interacts with is here: manifest lists
//! (snapshots), deletion vectors applied during in-situ probing, and the
//! file-invalidating operations (compaction, delete, vacuum) the consistency
//! invariants must survive.

pub mod dv;
pub mod log;
pub mod snapshot;
pub mod table;

pub use dv::DeletionVector;
pub use log::{LogEntry, TxLog};
pub use snapshot::{FileEntry, Snapshot};
pub use table::{Table, TableConfig};

use rottnest_compress::varint;

/// Errors raised by lake operations.
#[derive(Debug)]
pub enum LakeError {
    /// A commit lost the optimistic-concurrency race too many times or
    /// conflicted logically (e.g. removing a file another writer removed).
    Conflict(String),
    /// Log or sidecar bytes are malformed.
    Corrupt(String),
    /// The referenced snapshot version does not exist.
    NoSuchVersion(u64),
    /// Underlying store failure.
    Store(rottnest_object_store::StoreError),
    /// Underlying format failure.
    Format(rottnest_format::FormatError),
}

impl std::fmt::Display for LakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LakeError::Conflict(m) => write!(f, "commit conflict: {m}"),
            LakeError::Corrupt(m) => write!(f, "corrupt lake metadata: {m}"),
            LakeError::NoSuchVersion(v) => write!(f, "no such table version {v}"),
            LakeError::Store(e) => write!(f, "store error: {e}"),
            LakeError::Format(e) => write!(f, "format error: {e}"),
        }
    }
}

impl std::error::Error for LakeError {}

impl From<rottnest_object_store::StoreError> for LakeError {
    fn from(e: rottnest_object_store::StoreError) -> Self {
        LakeError::Store(e)
    }
}

impl From<rottnest_format::FormatError> for LakeError {
    fn from(e: rottnest_format::FormatError) -> Self {
        LakeError::Format(e)
    }
}

impl From<rottnest_compress::CompressError> for LakeError {
    fn from(e: rottnest_compress::CompressError) -> Self {
        LakeError::Corrupt(format!("varint: {e}"))
    }
}

/// Result alias for lake operations.
pub type Result<T> = std::result::Result<T, LakeError>;

/// File-level actions recorded in the commit log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Records the table schema (first commit only).
    Init {
        /// Serialized [`rottnest_format::Schema`].
        schema_bytes: Vec<u8>,
    },
    /// A new data file joined the table.
    AddFile {
        /// Store key of the data file.
        path: String,
        /// Row count of the file.
        rows: u64,
        /// Size in bytes.
        size: u64,
    },
    /// A data file left the table (delete, compaction rewrite).
    RemoveFile {
        /// Store key of the removed file.
        path: String,
    },
    /// Attach (or replace) the deletion vector of a data file.
    SetDeletionVector {
        /// Data file the vector applies to.
        data_path: String,
        /// Store key of the deletion-vector sidecar.
        dv_path: String,
    },
}

impl Action {
    /// Serializes the action into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Action::Init { schema_bytes } => {
                out.push(0);
                varint::write_bytes(out, schema_bytes);
            }
            Action::AddFile { path, rows, size } => {
                out.push(1);
                varint::write_str(out, path);
                varint::write_u64(out, *rows);
                varint::write_u64(out, *size);
            }
            Action::RemoveFile { path } => {
                out.push(2);
                varint::write_str(out, path);
            }
            Action::SetDeletionVector { data_path, dv_path } => {
                out.push(3);
                varint::write_str(out, data_path);
                varint::write_str(out, dv_path);
            }
        }
    }

    /// Decodes one action, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| LakeError::Corrupt("truncated action".into()))?;
        *pos += 1;
        Ok(match tag {
            0 => Action::Init {
                schema_bytes: varint::read_bytes(buf, pos)?.to_vec(),
            },
            1 => Action::AddFile {
                path: varint::read_str(buf, pos)?,
                rows: varint::read_u64(buf, pos)?,
                size: varint::read_u64(buf, pos)?,
            },
            2 => Action::RemoveFile {
                path: varint::read_str(buf, pos)?,
            },
            3 => Action::SetDeletionVector {
                data_path: varint::read_str(buf, pos)?,
                dv_path: varint::read_str(buf, pos)?,
            },
            other => return Err(LakeError::Corrupt(format!("unknown action tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_round_trip() {
        let actions = vec![
            Action::Init {
                schema_bytes: vec![1, 2, 3],
            },
            Action::AddFile {
                path: "t/data/a.lkpq".into(),
                rows: 100,
                size: 4096,
            },
            Action::RemoveFile {
                path: "t/data/b.lkpq".into(),
            },
            Action::SetDeletionVector {
                data_path: "t/data/a.lkpq".into(),
                dv_path: "t/dv/a.dv".into(),
            },
        ];
        let mut buf = Vec::new();
        for a in &actions {
            a.encode(&mut buf);
        }
        let mut pos = 0;
        for a in &actions {
            assert_eq!(&Action::decode(&buf, &mut pos).unwrap(), a);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn unknown_tag_rejected() {
        let buf = [200u8];
        let mut pos = 0;
        assert!(Action::decode(&buf, &mut pos).is_err());
    }
}
