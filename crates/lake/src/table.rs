//! Table operations: append, row deletes, compaction, vacuum, time travel.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use rottnest_format::{
    ChunkReader, ColumnData, FileMeta, FileWriter, PageCache, RecordBatch, Schema, WriterOptions,
};
use rottnest_object_store::{ObjectStore, RetryPolicy, RetryStore};

use crate::dv::DeletionVector;
use crate::log::TxLog;
use crate::snapshot::{FileEntry, Snapshot};
use crate::{Action, LakeError, Result};

/// Table tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct TableConfig {
    /// Options for data files written by this handle.
    pub writer: WriterOptions,
    /// Optimistic-concurrency retry budget for commits.
    pub max_commit_retries: u32,
    /// Request-level retry/backoff policy; every store request this handle
    /// issues runs under it (default: jittered exponential backoff).
    pub retry: RetryPolicy,
}

impl TableConfig {
    fn retries(&self) -> u32 {
        if self.max_commit_retries == 0 {
            16
        } else {
            self.max_commit_retries
        }
    }
}

static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A handle to a transactional table rooted at `<root>/` on an object store.
///
/// Multiple handles (including in other processes) may operate on the same
/// table concurrently; every state change goes through the commit log.
pub struct Table<'a> {
    store: &'a dyn ObjectStore,
    retry: RetryStore<&'a dyn ObjectStore>,
    root: String,
    config: TableConfig,
}

impl<'a> Table<'a> {
    fn handle(store: &'a dyn ObjectStore, root: String, config: TableConfig) -> Self {
        let retry = RetryStore::new(store, config.retry.clone());
        Self {
            store,
            retry,
            root,
            config,
        }
    }

    /// Creates a new table by committing version 0 with the schema.
    pub fn create(
        store: &'a dyn ObjectStore,
        root: impl Into<String>,
        schema: &Schema,
        config: TableConfig,
    ) -> Result<Self> {
        let this = Self::handle(store, root.into(), config);
        let mut schema_bytes = Vec::new();
        schema.encode(&mut schema_bytes);
        let mut payload = Vec::new();
        Action::Init { schema_bytes }.encode(&mut payload);
        this.log().try_commit_at(0, Bytes::from(payload))?;
        Ok(this)
    }

    /// Opens an existing table (errors if it has no log).
    pub fn open(
        store: &'a dyn ObjectStore,
        root: impl Into<String>,
        config: TableConfig,
    ) -> Result<Self> {
        let this = Self::handle(store, root.into(), config);
        if this.log().latest_version()?.is_none() {
            return Err(LakeError::Corrupt(format!("no table at {}", this.root)));
        }
        Ok(this)
    }

    /// The table's root prefix.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// The store this handle issues requests through — the backing store
    /// wrapped in the handle's [`RetryStore`], so readers layered on top
    /// (page probes, brute-force scans) inherit transient-fault tolerance.
    pub fn store(&self) -> &dyn ObjectStore {
        &self.retry
    }

    /// The raw backing store, bypassing the retry layer.
    pub fn raw_store(&self) -> &'a dyn ObjectStore {
        self.store
    }

    fn log(&self) -> TxLog<'_> {
        TxLog::new(&self.retry, self.root.clone())
    }

    /// Latest snapshot.
    pub fn snapshot(&self) -> Result<Snapshot> {
        let log = self.log();
        let version = log
            .latest_version()?
            .ok_or_else(|| LakeError::Corrupt("empty log".into()))?;
        Snapshot::replay(&log.read_until(version)?)
    }

    /// Snapshot at a historical version (time travel).
    pub fn snapshot_at(&self, version: u64) -> Result<Snapshot> {
        Snapshot::replay(&self.log().read_until(version)?)
    }

    fn fresh_name(&self, dir: &str, ext: &str) -> String {
        let seq = FILE_SEQ.fetch_add(1, Ordering::Relaxed);
        format!(
            "{}/{dir}/{:012}-{seq:06}.{ext}",
            self.root,
            self.retry.now_ms()
        )
    }

    /// Writes `batch` as a new data file and commits it. Returns the file's
    /// path.
    pub fn append(&self, batch: &RecordBatch) -> Result<String> {
        let path = self.fresh_name("data", "lkpq");
        let mut writer =
            FileWriter::with_options(batch.schema().clone(), self.config.writer.clone());
        writer.write_batch(batch)?;
        let (bytes, meta) = writer.finish()?;
        let size = bytes.len() as u64;
        self.retry.put(&path, bytes)?;

        let mut payload = Vec::new();
        Action::AddFile {
            path: path.clone(),
            rows: meta.num_rows,
            size,
        }
        .encode(&mut payload);
        self.log()
            .commit(Bytes::from(payload), self.config.retries())?;
        Ok(path)
    }

    /// Commits with logical validation: re-reads the snapshot between
    /// attempts and calls `validate` against it before each try.
    fn commit_validated(
        &self,
        actions: &[Action],
        validate: impl Fn(&Snapshot) -> Result<()>,
    ) -> Result<u64> {
        let log = self.log();
        let mut payload = Vec::new();
        for a in actions {
            a.encode(&mut payload);
        }
        let payload = Bytes::from(payload);
        for _ in 0..=self.config.retries() {
            let snap = self.snapshot()?;
            validate(&snap)?;
            match log.try_commit_at(snap.version() + 1, payload.clone()) {
                Ok(()) => return Ok(snap.version() + 1),
                Err(LakeError::Conflict(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(LakeError::Conflict(
            "validated commit retries exhausted".into(),
        ))
    }

    /// Marks file-local `rows` of `path` deleted by writing a (unioned)
    /// deletion vector sidecar and committing it.
    pub fn delete_rows(&self, path: &str, rows: &[u64]) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let snap = self.snapshot()?;
        let entry = snap
            .file(path)
            .ok_or_else(|| LakeError::Conflict(format!("{path} is not active")))?;
        let existing = self.load_dv(entry)?.unwrap_or_default();
        let merged = existing.union(&DeletionVector::from_rows(rows.to_vec()));
        let dv_path = self.fresh_name("dv", "dv");
        self.retry.put(&dv_path, merged.to_bytes())?;

        let actions = [Action::SetDeletionVector {
            data_path: path.to_string(),
            dv_path: dv_path.clone(),
        }];
        let path_owned = path.to_string();
        self.commit_validated(&actions, move |snap| {
            if snap.contains(&path_owned) {
                Ok(())
            } else {
                Err(LakeError::Conflict(format!(
                    "{path_owned} removed concurrently"
                )))
            }
        })?;
        Ok(())
    }

    /// Deletes every row of column `col` for which `pred` returns true.
    /// Returns the number of rows newly deleted. A full-scan helper used by
    /// tests and examples; real engines push predicates down.
    pub fn delete_where(
        &self,
        col: usize,
        pred: impl Fn(rottnest_format::ValueRef<'_>) -> bool,
    ) -> Result<u64> {
        let snap = self.snapshot()?;
        let mut deleted = 0u64;
        for entry in snap.files().cloned().collect::<Vec<_>>() {
            let reader = ChunkReader::open(&self.retry, &entry.path)?;
            let data = reader.read_column(col)?;
            let existing = self.load_dv(&entry)?.unwrap_or_default();
            let mut hit = Vec::new();
            for i in 0..data.len() {
                if !existing.contains(i as u64) && pred(data.get(i).unwrap()) {
                    hit.push(i as u64);
                }
            }
            if !hit.is_empty() {
                deleted += hit.len() as u64;
                self.delete_rows(&entry.path, &hit)?;
            }
        }
        Ok(deleted)
    }

    /// Loads a file's deletion vector, if it has one.
    pub fn load_dv(&self, entry: &FileEntry) -> Result<Option<DeletionVector>> {
        match &entry.dv_path {
            None => Ok(None),
            Some(path) => {
                let bytes = self.retry.get(path)?;
                Ok(Some(DeletionVector::from_bytes(&bytes)?))
            }
        }
    }

    /// Compacts data files smaller than `small_bytes` into one merged file
    /// (dropping deleted rows), committing `Remove*` + `Add`. Returns the
    /// new file's path, or `None` if fewer than two files qualified.
    ///
    /// This is the *data lake's own* compaction — the operation that
    /// invalidates Rottnest index files pointing at the old paths, which the
    /// protocol must tolerate (Figure 3's `b.parquet + c.parquet →
    /// d.parquet`).
    pub fn compact(&self, small_bytes: u64) -> Result<Option<String>> {
        let snap = self.snapshot()?;
        let victims: Vec<FileEntry> = snap
            .files()
            .filter(|f| f.size < small_bytes)
            .cloned()
            .collect();
        if victims.len() < 2 {
            return Ok(None);
        }
        let schema = snap.schema().clone();

        // Gather surviving rows column by column.
        let mut columns: Vec<ColumnData> = schema
            .fields()
            .iter()
            .map(|f| ColumnData::empty(f.data_type))
            .collect();
        for entry in &victims {
            let reader = ChunkReader::open(&self.retry, &entry.path)?;
            let dv = self.load_dv(entry)?.unwrap_or_default();
            for (c, out) in columns.iter_mut().enumerate() {
                let data = reader.read_column(c)?;
                if dv.is_empty() {
                    out.extend_from(&data)?;
                } else {
                    for i in 0..data.len() {
                        if !dv.contains(i as u64) {
                            out.extend_from(&data.slice(i, 1))?;
                        }
                    }
                }
            }
        }
        let batch = RecordBatch::new(schema.clone(), columns)?;

        let path = self.fresh_name("data", "lkpq");
        let mut writer = FileWriter::with_options(schema, self.config.writer.clone());
        writer.write_batch(&batch)?;
        let (bytes, meta) = writer.finish()?;
        let size = bytes.len() as u64;
        self.retry.put(&path, bytes)?;

        let mut actions: Vec<Action> = victims
            .iter()
            .map(|f| Action::RemoveFile {
                path: f.path.clone(),
            })
            .collect();
        actions.push(Action::AddFile {
            path: path.clone(),
            rows: meta.num_rows,
            size,
        });

        let victim_paths: Vec<String> = victims.iter().map(|f| f.path.clone()).collect();
        self.commit_validated(&actions, move |snap| {
            for p in &victim_paths {
                if !snap.contains(p) {
                    return Err(LakeError::Conflict(format!("{p} already removed")));
                }
            }
            Ok(())
        })?;
        // The merged file replaces the victims: hint the page cache so the
        // dead files' pages stop pinning budget before eviction gets there.
        self.invalidate_cached_pages(victims.iter().map(|f| f.path.as_str()));
        Ok(Some(path))
    }

    /// Emits page-cache and negative-scan-cache invalidation hints for
    /// files this table has replaced (compaction, clustering rewrites) or
    /// physically deleted (vacuum). Correctness never depends on this —
    /// validators already fence stale generations — it only releases dead
    /// bytes (and dead proven-empty records) early.
    fn invalidate_cached_pages<'p>(&self, paths: impl IntoIterator<Item = &'p str>) {
        let ns = self.retry.store_id();
        if ns == 0 {
            return;
        }
        for path in paths {
            PageCache::global().invalidate_file(ns, path);
            rottnest_format::NegScanCache::global().invalidate_file(ns, path);
        }
    }

    /// Physically deletes data/dv files no longer referenced by the latest
    /// snapshot and older than `retention_ms` on the store's clock. Returns
    /// the number of objects removed.
    pub fn vacuum(&self, retention_ms: u64) -> Result<u64> {
        let snap = self.snapshot()?;
        let now = self.retry.now_ms();
        let mut live: std::collections::BTreeSet<String> =
            snap.files().map(|f| f.path.clone()).collect();
        live.extend(snap.files().filter_map(|f| f.dv_path.clone()));

        let mut removed = 0u64;
        for dir in ["data", "dv"] {
            for meta in self.retry.list(&format!("{}/{dir}/", self.root))? {
                if !live.contains(&meta.key) && now.saturating_sub(meta.created_ms) >= retention_ms
                {
                    self.retry.delete(&meta.key)?;
                    self.invalidate_cached_pages([meta.key.as_str()]);
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }

    /// Opens a file's metadata (footer round trips included).
    pub fn file_meta(&self, path: &str) -> Result<FileMeta> {
        Ok(ChunkReader::open(&self.retry, path)?.meta().clone())
    }

    /// Writes a commit-log checkpoint at the current version, so later
    /// snapshot reads fetch one object instead of the whole log.
    pub fn checkpoint(&self) -> Result<u64> {
        let log = self.log();
        let version = log
            .latest_version()?
            .ok_or_else(|| LakeError::Corrupt("empty log".into()))?;
        log.write_checkpoint(version)?;
        Ok(version)
    }

    /// Rewrites the whole table sorted by column `col` (a Z-order /
    /// clustering maintenance pass): reads every live row, sorts, writes one
    /// new file, commits `Remove*` + `Add`. Returns the new file's path.
    ///
    /// Like compaction, this invalidates every physical location an index
    /// may point at — the hardest case for Rottnest's consistency protocol.
    pub fn rewrite_sorted(&self, col: usize) -> Result<String> {
        let snap = self.snapshot()?;
        let schema = snap.schema().clone();
        let victims: Vec<FileEntry> = snap.files().cloned().collect();
        if victims.is_empty() {
            return Err(LakeError::Corrupt("nothing to rewrite".into()));
        }

        // Materialize live rows.
        let mut columns: Vec<ColumnData> = schema
            .fields()
            .iter()
            .map(|f| ColumnData::empty(f.data_type))
            .collect();
        for entry in &victims {
            let reader = ChunkReader::open(&self.retry, &entry.path)?;
            let dv = self.load_dv(entry)?.unwrap_or_default();
            let file_cols: Vec<ColumnData> = (0..schema.len())
                .map(|c| reader.read_column(c))
                .collect::<std::result::Result<_, _>>()?;
            for i in 0..file_cols[0].len() {
                if dv.contains(i as u64) {
                    continue;
                }
                for (out, data) in columns.iter_mut().zip(&file_cols) {
                    out.extend_from(&data.slice(i, 1))?;
                }
            }
        }

        // Sort row indices by the clustering column.
        let key_col = &columns[col];
        let mut order: Vec<usize> = (0..key_col.len()).collect();
        order.sort_by(|&a, &b| {
            use rottnest_format::ValueRef;
            match (key_col.get(a), key_col.get(b)) {
                (Some(ValueRef::Int64(x)), Some(ValueRef::Int64(y))) => x.cmp(&y),
                (Some(ValueRef::Utf8(x)), Some(ValueRef::Utf8(y))) => x.cmp(y),
                (Some(ValueRef::Binary(x)), Some(ValueRef::Binary(y))) => x.cmp(y),
                _ => std::cmp::Ordering::Equal,
            }
        });
        let sorted: Vec<ColumnData> = columns
            .iter()
            .map(|c| {
                let mut out = ColumnData::empty(c.data_type());
                for &i in &order {
                    out.extend_from(&c.slice(i, 1)).expect("same type");
                }
                out
            })
            .collect();
        let batch = RecordBatch::new(schema.clone(), sorted)?;

        let path = self.fresh_name("data", "lkpq");
        let mut writer = FileWriter::with_options(schema, self.config.writer.clone());
        writer.write_batch(&batch)?;
        let (bytes, meta) = writer.finish()?;
        let size = bytes.len() as u64;
        self.retry.put(&path, bytes)?;

        let mut actions: Vec<Action> = victims
            .iter()
            .map(|f| Action::RemoveFile {
                path: f.path.clone(),
            })
            .collect();
        actions.push(Action::AddFile {
            path: path.clone(),
            rows: meta.num_rows,
            size,
        });
        let victim_paths: Vec<String> = victims.iter().map(|f| f.path.clone()).collect();
        self.commit_validated(&actions, move |snap| {
            for p in &victim_paths {
                if !snap.contains(p) {
                    return Err(LakeError::Conflict(format!("{p} already removed")));
                }
            }
            Ok(())
        })?;
        self.invalidate_cached_pages(victims.iter().map(|f| f.path.as_str()));
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rottnest_format::{DataType, Field, ValueRef};
    use rottnest_object_store::{FaultKind, MemoryStore};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("msg", DataType::Utf8),
        ])
    }

    fn batch(range: std::ops::Range<i64>) -> RecordBatch {
        RecordBatch::new(
            schema(),
            vec![
                ColumnData::Int64(range.clone().collect()),
                ColumnData::from_strings(range.map(|i| format!("message {i}"))),
            ],
        )
        .unwrap()
    }

    fn table(store: &dyn ObjectStore) -> Table<'_> {
        Table::create(store, "tbl", &schema(), TableConfig::default()).unwrap()
    }

    #[test]
    fn create_append_snapshot() {
        let store = MemoryStore::unmetered();
        let t = table(store.as_ref());
        let p1 = t.append(&batch(0..10)).unwrap();
        let p2 = t.append(&batch(10..30)).unwrap();
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.num_files(), 2);
        assert_eq!(snap.total_rows(), 30);
        assert!(snap.contains(&p1) && snap.contains(&p2));
        assert_eq!(snap.schema(), &schema());
    }

    #[test]
    fn open_requires_existing_log() {
        let store = MemoryStore::unmetered();
        assert!(Table::open(store.as_ref(), "ghost", TableConfig::default()).is_err());
        table(store.as_ref());
        assert!(Table::open(store.as_ref(), "tbl", TableConfig::default()).is_ok());
    }

    #[test]
    fn time_travel_sees_old_state() {
        let store = MemoryStore::unmetered();
        let t = table(store.as_ref());
        t.append(&batch(0..5)).unwrap(); // version 1
        t.append(&batch(5..9)).unwrap(); // version 2
        let old = t.snapshot_at(1).unwrap();
        assert_eq!(old.num_files(), 1);
        assert_eq!(old.total_rows(), 5);
    }

    #[test]
    fn delete_rows_accumulates_dvs() {
        let store = MemoryStore::unmetered();
        let t = table(store.as_ref());
        let p = t.append(&batch(0..10)).unwrap();
        t.delete_rows(&p, &[1, 3]).unwrap();
        t.delete_rows(&p, &[3, 7]).unwrap();
        let snap = t.snapshot().unwrap();
        let dv = t.load_dv(snap.file(&p).unwrap()).unwrap().unwrap();
        assert_eq!(dv.rows(), &[1, 3, 7]);
    }

    #[test]
    fn delete_where_scans_all_files() {
        let store = MemoryStore::unmetered();
        let t = table(store.as_ref());
        t.append(&batch(0..10)).unwrap();
        t.append(&batch(10..20)).unwrap();
        let n = t
            .delete_where(0, |v| matches!(v, ValueRef::Int64(i) if i % 2 == 0))
            .unwrap();
        assert_eq!(n, 10);
        // Second call deletes nothing new.
        let n2 = t
            .delete_where(0, |v| matches!(v, ValueRef::Int64(i) if i % 2 == 0))
            .unwrap();
        assert_eq!(n2, 0);
    }

    #[test]
    fn compact_merges_small_files_and_drops_deleted_rows() {
        let store = MemoryStore::unmetered();
        let t = table(store.as_ref());
        let p1 = t.append(&batch(0..10)).unwrap();
        t.append(&batch(10..20)).unwrap();
        t.delete_rows(&p1, &[0, 1]).unwrap();

        let merged = t.compact(u64::MAX).unwrap().expect("should compact");
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.num_files(), 1);
        assert!(snap.contains(&merged));
        assert_eq!(snap.total_rows(), 18, "two deleted rows dropped");

        // Merged data is intact and ordered per input file.
        let reader = ChunkReader::open(store.as_ref(), &merged).unwrap();
        let ids = reader.read_column(0).unwrap();
        let got: Vec<i64> = (0..ids.len())
            .map(|i| match ids.get(i).unwrap() {
                ValueRef::Int64(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, (2..20).collect::<Vec<i64>>());
    }

    #[test]
    fn compact_with_one_small_file_is_noop() {
        let store = MemoryStore::unmetered();
        let t = table(store.as_ref());
        t.append(&batch(0..10)).unwrap();
        assert!(t.compact(u64::MAX).unwrap().is_none());
    }

    #[test]
    fn vacuum_removes_only_old_unreferenced_files() {
        let store = MemoryStore::new(); // metered => clock moves
        let t = Table::create(store.as_ref(), "tbl", &schema(), TableConfig::default()).unwrap();
        t.append(&batch(0..10)).unwrap();
        t.append(&batch(10..20)).unwrap();
        t.compact(u64::MAX).unwrap().unwrap();

        // Old files still within retention: kept.
        assert_eq!(t.vacuum(3_600_000).unwrap(), 0);
        let files_before = store.list("tbl/data/").unwrap().len();
        assert_eq!(files_before, 3);

        // Let simulated time pass beyond retention.
        store.clock().unwrap().advance_ms(3_600_001);
        let removed = t.vacuum(3_600_000).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(store.list("tbl/data/").unwrap().len(), 1);

        // Table still reads fine.
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.total_rows(), 20);
    }

    #[test]
    fn concurrent_appends_all_land() {
        let store = MemoryStore::unmetered();
        Table::create(store.as_ref(), "tbl", &schema(), TableConfig::default()).unwrap();
        crossbeam::scope(|scope| {
            for k in 0..6i64 {
                let store = &store;
                scope.spawn(move |_| {
                    let t = Table::open(store.as_ref(), "tbl", TableConfig::default()).unwrap();
                    t.append(&batch(k * 10..k * 10 + 10)).unwrap();
                });
            }
        })
        .unwrap();
        let t = Table::open(store.as_ref(), "tbl", TableConfig::default()).unwrap();
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.num_files(), 6);
        assert_eq!(snap.total_rows(), 60);
    }

    #[test]
    fn delete_on_removed_file_conflicts() {
        let store = MemoryStore::unmetered();
        let t = table(store.as_ref());
        let p1 = t.append(&batch(0..10)).unwrap();
        t.append(&batch(10..20)).unwrap();
        t.compact(u64::MAX).unwrap().unwrap(); // removes p1
        assert!(matches!(
            t.delete_rows(&p1, &[0]),
            Err(LakeError::Conflict(_))
        ));
    }

    #[test]
    fn rewrite_sorted_orders_rows_and_invalidates_old_files() {
        let store = MemoryStore::unmetered();
        let t = table(store.as_ref());
        t.append(&batch(5..10)).unwrap();
        t.append(&batch(0..5)).unwrap();
        let p = t.snapshot().unwrap().files().next().unwrap().path.clone();
        t.delete_rows(&p, &[0]).unwrap(); // delete id 5

        let new_path = t.rewrite_sorted(0).unwrap();
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.num_files(), 1);
        assert!(snap.contains(&new_path));
        assert_eq!(snap.total_rows(), 9);

        let reader = ChunkReader::open(store.as_ref(), &new_path).unwrap();
        let ids = reader.read_column(0).unwrap();
        let got: Vec<i64> = (0..ids.len())
            .map(|i| match ids.get(i).unwrap() {
                ValueRef::Int64(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 6, 7, 8, 9], "sorted, id 5 deleted");
    }

    #[test]
    fn commit_with_lost_ack_is_not_duplicated() {
        let store = MemoryStore::unmetered();
        let t = table(store.as_ref());
        // The commit's put_if_absent lands but reports a transient failure;
        // the retry layer must recognise its own winning write instead of
        // treating it as a conflict and re-committing at the next version.
        store
            .faults()
            .arm(FaultKind::AckLostPutMatching("_log".into()));
        t.append(&batch(0..10)).unwrap();
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.version(), 1, "exactly one commit after the init");
        assert_eq!(snap.num_files(), 1);
        assert_eq!(snap.total_rows(), 10);
        assert!(store.stats().retries >= 1);
    }

    #[test]
    fn transient_faults_during_table_ops_are_absorbed() {
        let store = MemoryStore::unmetered();
        let t = table(store.as_ref());
        let p = t.append(&batch(0..10)).unwrap();
        store
            .faults()
            .arm(FaultKind::TransientGetMatching(".lkpq".into()));
        store
            .faults()
            .arm(FaultKind::TransientPutMatching("dv".into()));
        t.delete_rows(&p, &[2]).unwrap();
        store
            .faults()
            .arm(FaultKind::TransientDeleteMatching("data".into()));
        t.append(&batch(10..20)).unwrap();
        t.compact(u64::MAX).unwrap().unwrap();
        // Two stale data files plus the orphaned deletion-vector sidecar.
        assert_eq!(t.vacuum(0).unwrap(), 3, "vacuum retried its way through");
        assert_eq!(t.snapshot().unwrap().total_rows(), 19);
    }

    #[test]
    fn checkpoint_accelerates_snapshot_reads() {
        let store = MemoryStore::unmetered();
        let t = table(store.as_ref());
        for i in 0..8i64 {
            t.append(&batch(i * 5..(i + 1) * 5)).unwrap();
        }
        let v = t.checkpoint().unwrap();
        assert_eq!(v, 8);
        t.append(&batch(40..45)).unwrap();

        let before = store.stats();
        let snap = t.snapshot().unwrap();
        let delta = store.stats().since(&before);
        assert_eq!(snap.total_rows(), 45);
        assert!(
            delta.gets <= 3,
            "checkpointed snapshot read took {} GETs",
            delta.gets
        );
    }
}
