//! Deletion vectors: row-level tombstones as sidecar files.
//!
//! A deletion vector records the file-local row indices deleted from one
//! immutable data file (the Delta Lake "deletion vectors" / Iceberg
//! "position delete files" mechanism the paper's Figure 3 shows as
//! `dv.bin`). Rottnest applies them during in-situ probing so deleted rows
//! never surface in search results.

use bytes::Bytes;
use rottnest_compress::bitpack;

use crate::{LakeError, Result};

const DV_MAGIC: &[u8; 4] = b"LKDV";

/// A sorted set of deleted file-local row indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeletionVector {
    rows: Vec<u64>,
}

impl DeletionVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from arbitrary row indices (deduplicated and sorted).
    pub fn from_rows(mut rows: Vec<u64>) -> Self {
        rows.sort_unstable();
        rows.dedup();
        Self { rows }
    }

    /// Whether `row` is deleted — binary search, called per candidate row on
    /// the probe path.
    pub fn contains(&self, row: u64) -> bool {
        self.rows.binary_search(&row).is_ok()
    }

    /// Number of deleted rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows are deleted.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The deleted rows, sorted ascending.
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// Set-union with another vector (deletes accumulate across commits).
    pub fn union(&self, other: &DeletionVector) -> DeletionVector {
        let mut rows = Vec::with_capacity(self.rows.len() + other.rows.len());
        let (mut i, mut j) = (0, 0);
        while i < self.rows.len() && j < other.rows.len() {
            match self.rows[i].cmp(&other.rows[j]) {
                std::cmp::Ordering::Less => {
                    rows.push(self.rows[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    rows.push(other.rows[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    rows.push(self.rows[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        rows.extend_from_slice(&self.rows[i..]);
        rows.extend_from_slice(&other.rows[j..]);
        DeletionVector { rows }
    }

    /// Serializes to the sidecar byte format.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = DV_MAGIC.to_vec();
        bitpack::pack_sorted(&mut out, &self.rows);
        Bytes::from(out)
    }

    /// Parses a sidecar written by [`DeletionVector::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 4 || &bytes[..4] != DV_MAGIC {
            return Err(LakeError::Corrupt("bad deletion vector magic".into()));
        }
        let mut pos = 4usize;
        let rows = bitpack::unpack_sorted(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(LakeError::Corrupt(
                "trailing bytes in deletion vector".into(),
            ));
        }
        Ok(Self { rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_rows_sorts_and_dedups() {
        let dv = DeletionVector::from_rows(vec![5, 1, 5, 3, 1]);
        assert_eq!(dv.rows(), &[1, 3, 5]);
        assert!(dv.contains(3));
        assert!(!dv.contains(2));
    }

    #[test]
    fn union_merges() {
        let a = DeletionVector::from_rows(vec![1, 3, 5]);
        let b = DeletionVector::from_rows(vec![2, 3, 8]);
        assert_eq!(a.union(&b).rows(), &[1, 2, 3, 5, 8]);
        assert_eq!(a.union(&DeletionVector::new()).rows(), a.rows());
    }

    #[test]
    fn byte_round_trip() {
        let dv = DeletionVector::from_rows(vec![0, 7, 100, 1_000_000, u32::MAX as u64]);
        let back = DeletionVector::from_bytes(&dv.to_bytes()).unwrap();
        assert_eq!(back, dv);
        let empty = DeletionVector::new();
        assert_eq!(
            DeletionVector::from_bytes(&empty.to_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(DeletionVector::from_bytes(b"NOPE....").is_err());
        assert!(DeletionVector::from_bytes(b"").is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip(rows in proptest::collection::vec(any::<u32>(), 0..500)) {
            let dv = DeletionVector::from_rows(rows.into_iter().map(u64::from).collect());
            let back = DeletionVector::from_bytes(&dv.to_bytes()).unwrap();
            prop_assert_eq!(back, dv);
        }

        #[test]
        fn prop_union_equals_set_union(
            a in proptest::collection::vec(0u64..200, 0..60),
            b in proptest::collection::vec(0u64..200, 0..60),
        ) {
            let dva = DeletionVector::from_rows(a.clone());
            let dvb = DeletionVector::from_rows(b.clone());
            let mut expect: Vec<u64> = a.into_iter().chain(b).collect();
            expect.sort_unstable();
            expect.dedup();
            let merged = dva.union(&dvb);
            prop_assert_eq!(merged.rows(), expect.as_slice());
        }
    }
}
