//! Model-based property test: a trie index on object storage must agree
//! with a plain `HashMap<key, Vec<Posting>>` for every indexed key, and may
//! only ever *over*-approximate (false positives allowed, false negatives
//! never) for unindexed keys.

use std::collections::HashMap;

use proptest::prelude::*;
use rottnest_object_store::MemoryStore;
use rottnest_trie::{index::merge_tries, Posting, TrieBuilder, TrieIndex};

fn keys_strategy() -> impl Strategy<Value = Vec<[u8; 6]>> {
    proptest::collection::vec(any::<[u8; 6]>(), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lookup_agrees_with_hashmap_model(keys in keys_strategy()) {
        let store = MemoryStore::unmetered();
        let mut model: HashMap<Vec<u8>, Vec<Posting>> = HashMap::new();
        let mut builder = TrieBuilder::new(6).unwrap();
        for (i, k) in keys.iter().enumerate() {
            let p = Posting::new((i % 7) as u32, i as u32);
            builder.add(k, p).unwrap();
            model.entry(k.to_vec()).or_default().push(p);
        }
        builder.finish_into(store.as_ref(), "t.idx").unwrap();
        let idx = TrieIndex::open(store.as_ref(), "t.idx").unwrap();

        for (k, want) in &model {
            let mut got = idx.lookup(k).unwrap();
            got.sort_unstable();
            let mut want = want.clone();
            want.sort_unstable();
            // Every true posting must be present (no false negatives);
            // extras are possible only from other keys' truncated prefixes.
            for w in &want {
                prop_assert!(got.contains(w), "missing posting for key {k:?}");
            }
        }
    }

    #[test]
    fn merge_never_loses_postings(
        a in keys_strategy(),
        b in keys_strategy(),
    ) {
        let store = MemoryStore::unmetered();
        let build = |keys: &[[u8; 6]], name: &str, file: u32| {
            let mut builder = TrieBuilder::new(6).unwrap();
            for (i, k) in keys.iter().enumerate() {
                builder.add(k, Posting::new(file, i as u32)).unwrap();
            }
            builder.finish_into(store.as_ref(), name).unwrap();
        };
        build(&a, "a.idx", 0);
        build(&b, "b.idx", 0);
        let ia = TrieIndex::open(store.as_ref(), "a.idx").unwrap();
        let ib = TrieIndex::open(store.as_ref(), "b.idx").unwrap();
        merge_tries(store.as_ref(), &[(&ia, 0), (&ib, 1)], "m.idx").unwrap();
        let m = TrieIndex::open(store.as_ref(), "m.idx").unwrap();

        for (i, k) in a.iter().enumerate() {
            let got = m.lookup(k).unwrap();
            prop_assert!(got.contains(&Posting::new(0, i as u32)), "a key {i}");
        }
        for (i, k) in b.iter().enumerate() {
            let got = m.lookup(k).unwrap();
            prop_assert!(got.contains(&Posting::new(1, i as u32)), "b key {i}");
        }
    }
}
