//! Builds a componentized trie index file from `(key, posting)` pairs.

use bytes::Bytes;
use rottnest_component::ComponentWriter;
use rottnest_compress::varint;
use rottnest_object_store::ObjectStore;

use crate::bits::{lcp_bits, BitStr};
use crate::node::TrieNode;
use crate::{Posting, Result, TrieError, EXTRA_BITS, LUT_BITS};

/// Builder for a trie index over fixed-length keys.
///
/// Keys are truncated to `LCP + 1 + EXTRA_BITS` bits (§V-C1) before
/// insertion, the first [`LUT_BITS`] bits become the root lookup table, and
/// each first-byte bucket is serialized as one component.
pub struct TrieBuilder {
    key_len: usize,
    entries: Vec<(Vec<u8>, Posting)>,
}

impl TrieBuilder {
    /// Creates a builder for keys of exactly `key_len` bytes (≥ 2).
    pub fn new(key_len: usize) -> Result<Self> {
        if key_len < 2 {
            return Err(TrieError::BadKey(format!(
                "key length {key_len} too short; need at least 2 bytes"
            )));
        }
        Ok(Self {
            key_len,
            entries: Vec::new(),
        })
    }

    /// Registers one key → posting pair.
    pub fn add(&mut self, key: &[u8], posting: Posting) -> Result<()> {
        if key.len() != self.key_len {
            return Err(TrieError::BadKey(format!(
                "key of {} bytes in index of {}-byte keys",
                key.len(),
                self.key_len
            )));
        }
        self.entries.push((key.to_vec(), posting));
        Ok(())
    }

    /// Number of pairs added.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pairs were added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Truncates keys, builds per-bucket tries, and serializes the index
    /// file image.
    pub fn finish(mut self) -> Bytes {
        self.entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let key_bits = self.key_len as u32 * 8;
        let n = self.entries.len();

        // stored bits = min(key_bits, max(lcp(prev), lcp(next)) + 1 + 8),
        // clamped so every key reaches past the lookup table.
        let mut truncated: Vec<(BitStr, Posting)> = Vec::with_capacity(n);
        for i in 0..n {
            let (key, posting) = &self.entries[i];
            let lcp_prev = if i > 0 {
                lcp_bits(key, &self.entries[i - 1].0)
            } else {
                0
            };
            let lcp_next = if i + 1 < n {
                lcp_bits(key, &self.entries[i + 1].0)
            } else {
                0
            };
            let stored = (lcp_prev.max(lcp_next) + 1 + EXTRA_BITS).clamp(LUT_BITS + 1, key_bits);
            truncated.push((BitStr::prefix_of(key, stored), *posting));
        }

        build_from_truncated(self.key_len, truncated)
    }

    /// Serializes and uploads; returns the file size.
    pub fn finish_into(self, store: &dyn ObjectStore, key: &str) -> Result<u64> {
        let bytes = self.finish();
        let len = bytes.len() as u64;
        store.put(key, bytes)?;
        Ok(len)
    }
}

/// Assembles the component file from already-truncated prefixes (each at
/// least `LUT_BITS + 1` bits). Shared by the builder and the merge path.
pub(crate) fn build_from_truncated(key_len: usize, truncated: Vec<(BitStr, Posting)>) -> Bytes {
    let n = truncated.len() as u64;
    let mut buckets: Vec<Vec<(BitStr, Posting)>> = (0..256).map(|_| Vec::new()).collect();
    for (prefix, posting) in truncated {
        debug_assert!(prefix.len() > LUT_BITS);
        let bucket = prefix.bytes()[0] as usize;
        let suffix = prefix.slice(LUT_BITS, prefix.len());
        buckets[bucket].push((suffix, posting));
    }

    let mut writer = ComponentWriter::new();
    // Component 0 (root): key_len, entry count, 256-entry LUT.
    let mut lut = [0u64; 256];
    let mut next_component = 1u64;
    for (b, bucket) in buckets.iter().enumerate() {
        if !bucket.is_empty() {
            lut[b] = next_component;
            next_component += 1;
        }
    }
    let mut root = Vec::new();
    root.push(key_len as u8);
    varint::write_u64(&mut root, n);
    for id in lut {
        varint::write_u64(&mut root, id);
    }
    writer.add(root);

    for bucket in buckets.iter().filter(|b| !b.is_empty()) {
        let mut trie = TrieNode::new();
        for (suffix, posting) in bucket {
            trie.insert(suffix, *posting);
        }
        let mut buf = Vec::new();
        trie.serialize(&mut buf);
        writer.add(buf);
    }
    writer.finish()
}
