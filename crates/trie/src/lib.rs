//! Componentized binary trie index for high-cardinality exact-match search
//! (UUIDs, transaction hashes, pod names) — §V-C1 of the paper.
//!
//! Each indexed key corresponds to a root-to-leaf path in a binary
//! (path-compressed) trie. To save space the trie stores, for every key,
//! only its **longest common prefix with its neighbors plus 8 extra bits**
//! (`LCP+1+8`): enough to be unique now, with headroom so merged indexes
//! rarely need multi-key leaves — but leaves *may* map to multiple postings,
//! and lookups may return false positives, which Rottnest's in-situ probing
//! filters out (§IV-B step 3).
//!
//! Componentization (§V-B): the first 8 trie levels are replaced by a
//! 256-entry lookup table in the root component (fetched by the speculative
//! head GET), and each first-byte bucket is serialized as one component. A
//! lookup therefore costs at most **two** dependent object-store reads:
//! open+root, then one bucket component.
//!
//! Postings are `(file_id, page_id)` pairs at data-page granularity; the
//! caller (Rottnest core) owns the `file_id → path` table.

pub mod bits;
pub mod builder;
pub mod index;
pub mod node;

pub use builder::TrieBuilder;
pub use index::TrieIndex;

/// Re-export of the shared posting type.
pub use rottnest_component::Posting;

/// Errors raised by trie building and querying.
#[derive(Debug)]
pub enum TrieError {
    /// Keys must share one fixed length of at least 2 bytes.
    BadKey(String),
    /// Malformed serialized trie.
    Corrupt(String),
    /// Component-layer failure.
    Component(rottnest_component::ComponentError),
}

impl std::fmt::Display for TrieError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrieError::BadKey(m) => write!(f, "bad key: {m}"),
            TrieError::Corrupt(m) => write!(f, "corrupt trie: {m}"),
            TrieError::Component(e) => write!(f, "component: {e}"),
        }
    }
}

impl std::error::Error for TrieError {}

impl From<rottnest_component::ComponentError> for TrieError {
    fn from(e: rottnest_component::ComponentError) -> Self {
        TrieError::Component(e)
    }
}

impl From<rottnest_compress::CompressError> for TrieError {
    fn from(e: rottnest_compress::CompressError) -> Self {
        TrieError::Corrupt(format!("varint: {e}"))
    }
}

impl From<rottnest_object_store::StoreError> for TrieError {
    fn from(e: rottnest_object_store::StoreError) -> Self {
        TrieError::Component(rottnest_component::ComponentError::Store(e))
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, TrieError>;

/// Number of extra bits indexed beyond the unique prefix (§V-C1: "We thus
/// index up to 8 extra bits of the LCP for each UUID").
pub const EXTRA_BITS: u32 = 8;

/// Trie levels replaced by the root lookup table.
pub const LUT_BITS: u32 = 8;
