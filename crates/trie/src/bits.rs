//! Bit-string utilities for trie keys (MSB-first order).

/// Returns bit `i` of `bytes` (0 = most significant bit of byte 0).
#[inline]
pub fn get_bit(bytes: &[u8], i: u32) -> u8 {
    (bytes[(i / 8) as usize] >> (7 - (i % 8))) & 1
}

/// Length in bits of the longest common prefix of `a` and `b` (equal-length
/// byte strings).
pub fn lcp_bits(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x != y {
            return i as u32 * 8 + (x ^ y).leading_zeros();
        }
    }
    a.len() as u32 * 8
}

/// An owned MSB-first bit string (used for truncated keys and edge labels).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitStr {
    bytes: Vec<u8>,
    len_bits: u32,
}

impl BitStr {
    /// The empty bit string.
    pub fn empty() -> Self {
        Self {
            bytes: Vec::new(),
            len_bits: 0,
        }
    }

    /// The first `len_bits` bits of `bytes` (trailing bits zeroed for
    /// canonical equality).
    pub fn prefix_of(bytes: &[u8], len_bits: u32) -> Self {
        let n_bytes = len_bits.div_ceil(8) as usize;
        let mut out = bytes[..n_bytes].to_vec();
        let spare = (n_bytes as u32 * 8) - len_bits;
        if spare > 0 {
            // Zero the unused low bits of the last byte for canonical
            // equality.
            *out.last_mut().unwrap() &= 0xffu8 << spare;
        }
        Self {
            bytes: out,
            len_bits,
        }
    }

    /// Length in bits.
    pub fn len(&self) -> u32 {
        self.len_bits
    }

    /// Whether the bit string is empty.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// The backing bytes (trailing bits zero).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Bit `i`.
    #[inline]
    pub fn bit(&self, i: u32) -> u8 {
        debug_assert!(i < self.len_bits);
        get_bit(&self.bytes, i)
    }

    /// The sub-range `[from, to)` of this bit string as a new `BitStr`.
    pub fn slice(&self, from: u32, to: u32) -> BitStr {
        debug_assert!(from <= to && to <= self.len_bits);
        let mut out = BitStr::empty();
        for i in from..to {
            out.push(self.bit(i));
        }
        out
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: u8) {
        let byte = (self.len_bits / 8) as usize;
        if byte == self.bytes.len() {
            self.bytes.push(0);
        }
        if bit != 0 {
            self.bytes[byte] |= 1 << (7 - (self.len_bits % 8));
        }
        self.len_bits += 1;
    }

    /// Appends all bits of `other`.
    pub fn extend(&mut self, other: &BitStr) {
        for i in 0..other.len_bits {
            self.push(other.bit(i));
        }
    }

    /// Length (bits) of the common prefix with raw key bits.
    pub fn common_prefix_with_key(&self, key: &[u8], key_offset_bits: u32) -> u32 {
        let key_bits = key.len() as u32 * 8;
        let max = self.len_bits.min(key_bits.saturating_sub(key_offset_bits));
        let mut i = 0;
        while i < max && self.bit(i) == get_bit(key, key_offset_bits + i) {
            i += 1;
        }
        i
    }

    /// Length (bits) of the common prefix with another `BitStr`.
    pub fn common_prefix(&self, other: &BitStr) -> u32 {
        let max = self.len_bits.min(other.len_bits);
        let mut i = 0;
        while i < max && self.bit(i) == other.bit(i) {
            i += 1;
        }
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn get_bit_msb_first() {
        let b = [0b1010_0000u8, 0b0000_0001];
        assert_eq!(get_bit(&b, 0), 1);
        assert_eq!(get_bit(&b, 1), 0);
        assert_eq!(get_bit(&b, 2), 1);
        assert_eq!(get_bit(&b, 15), 1);
        assert_eq!(get_bit(&b, 14), 0);
    }

    #[test]
    fn lcp_bits_cases() {
        assert_eq!(lcp_bits(&[0xff, 0x00], &[0xff, 0x00]), 16);
        assert_eq!(lcp_bits(&[0xff, 0x00], &[0xff, 0x80]), 8);
        assert_eq!(lcp_bits(&[0x00], &[0x80]), 0);
        assert_eq!(lcp_bits(&[0b1010_1010], &[0b1010_1011]), 7);
    }

    #[test]
    fn prefix_canonicalizes_trailing_bits() {
        let a = BitStr::prefix_of(&[0b1111_1111], 3);
        let b = BitStr::prefix_of(&[0b1110_0001], 3);
        assert_eq!(a, b);
        assert_eq!(a.bytes(), &[0b1110_0000]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn push_and_bit_round_trip() {
        let mut s = BitStr::empty();
        let pattern = [1u8, 0, 0, 1, 1, 0, 1, 0, 1, 1, 1];
        for &b in &pattern {
            s.push(b);
        }
        assert_eq!(s.len(), pattern.len() as u32);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(s.bit(i as u32), b, "bit {i}");
        }
    }

    #[test]
    fn slice_and_extend() {
        let s = BitStr::prefix_of(&[0b1011_0110], 8);
        let head = s.slice(0, 3);
        let tail = s.slice(3, 8);
        let mut joined = head.clone();
        joined.extend(&tail);
        assert_eq!(joined, s);
        assert_eq!(head.bytes(), &[0b1010_0000]);
    }

    #[test]
    fn common_prefix_with_key_offsets() {
        let key = [0b1100_1010u8, 0b0111_0000];
        let label = BitStr::prefix_of(&[0b1010_0000], 4); // bits 1,0,1,0
                                                          // Key bits from offset 2: 0,0,1,0,1,0,0,1 ... label 1,0,1,0 → first
                                                          // bit mismatches.
        assert_eq!(label.common_prefix_with_key(&key, 2), 0);
        // Key bits from offset 4: 1,0,1,0 → full match.
        assert_eq!(label.common_prefix_with_key(&key, 4), 4);
    }

    proptest! {
        #[test]
        fn prop_prefix_bits_match_source(bytes in proptest::collection::vec(any::<u8>(), 1..8),
                                         len_frac in 0.0f64..=1.0) {
            let total = bytes.len() as u32 * 8;
            let len = ((total as f64) * len_frac) as u32;
            let s = BitStr::prefix_of(&bytes, len);
            for i in 0..len {
                prop_assert_eq!(s.bit(i), get_bit(&bytes, i));
            }
        }

        #[test]
        fn prop_lcp_symmetric_and_bounded(a in proptest::collection::vec(any::<u8>(), 4),
                                          b in proptest::collection::vec(any::<u8>(), 4)) {
            let l = lcp_bits(&a, &b);
            prop_assert_eq!(l, lcp_bits(&b, &a));
            prop_assert!(l <= 32);
            if a == b { prop_assert_eq!(l, 32); }
            for i in 0..l {
                prop_assert_eq!(get_bit(&a, i), get_bit(&b, i));
            }
            if l < 32 {
                prop_assert_ne!(get_bit(&a, l), get_bit(&b, l));
            }
        }
    }
}
