//! Bit-string utilities for trie keys (MSB-first order).
//!
//! The hot paths here are word-parallel: common-prefix lengths compare 8
//! bytes at a time via `u64` XOR + `leading_zeros`, and slicing/extending
//! move whole bytes with a shift instead of single bits. The `BitStr`
//! canonical-form invariant (trailing bits of the last byte are zero) is
//! what makes byte-wise comparison exact — bits past the logical length
//! can never produce a spurious mismatch before it.

/// Returns bit `i` of `bytes` (0 = most significant bit of byte 0).
#[inline]
pub fn get_bit(bytes: &[u8], i: u32) -> u8 {
    (bytes[(i / 8) as usize] >> (7 - (i % 8))) & 1
}

/// The byte of `bytes` re-aligned to start `shift` bits (0..8) into byte
/// `idx`: bits `[idx*8 + shift, idx*8 + shift + 8)`, reading past the end
/// as zeros.
#[inline]
fn aligned_byte(bytes: &[u8], idx: usize, shift: u32) -> u8 {
    let hi = bytes.get(idx).copied().unwrap_or(0);
    let lo = bytes.get(idx + 1).copied().unwrap_or(0);
    let w = (u16::from(hi) << 8) | u16::from(lo);
    (w >> (8 - shift)) as u8
}

/// Bit position of the first difference between the first
/// `min(a.len(), b.len())` bytes of `a` and `b` (or that many bits when
/// equal), compared 8 bytes per step.
fn lcp_byte_slices(a: &[u8], b: &[u8]) -> u32 {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i + 8 <= n {
        let x = u64::from_be_bytes(a[i..i + 8].try_into().unwrap());
        let y = u64::from_be_bytes(b[i..i + 8].try_into().unwrap());
        let diff = x ^ y;
        if diff != 0 {
            return i as u32 * 8 + diff.leading_zeros();
        }
        i += 8;
    }
    while i < n {
        let diff = a[i] ^ b[i];
        if diff != 0 {
            return i as u32 * 8 + diff.leading_zeros();
        }
        i += 1;
    }
    n as u32 * 8
}

/// Length in bits of the longest common prefix of `a` and `b` (equal-length
/// byte strings).
pub fn lcp_bits(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    lcp_byte_slices(a, b)
}

/// Whether the first `label_bits` bits of `label` equal the bits of `key`
/// starting at `key_offset_bits` (the caller guarantees the key has at
/// least that many bits left). Full label bytes compare directly against
/// re-aligned key bytes; the final partial byte compares under a mask, so
/// non-canonical trailing label bits cannot cause a false mismatch.
pub fn label_matches_key(label: &[u8], label_bits: u32, key: &[u8], key_offset_bits: u32) -> bool {
    let shift = key_offset_bits % 8;
    let base = (key_offset_bits / 8) as usize;
    let n_full = (label_bits / 8) as usize;
    for (i, &lb) in label[..n_full].iter().enumerate() {
        if lb != aligned_byte(key, base + i, shift) {
            return false;
        }
    }
    let rem = label_bits % 8;
    if rem != 0 {
        let mask = 0xffu8 << (8 - rem);
        if (label[n_full] ^ aligned_byte(key, base + n_full, shift)) & mask != 0 {
            return false;
        }
    }
    true
}

/// An owned MSB-first bit string (used for truncated keys and edge labels).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitStr {
    bytes: Vec<u8>,
    len_bits: u32,
}

impl BitStr {
    /// The empty bit string.
    pub fn empty() -> Self {
        Self {
            bytes: Vec::new(),
            len_bits: 0,
        }
    }

    /// The first `len_bits` bits of `bytes` (trailing bits zeroed for
    /// canonical equality).
    pub fn prefix_of(bytes: &[u8], len_bits: u32) -> Self {
        let n_bytes = len_bits.div_ceil(8) as usize;
        let mut out = bytes[..n_bytes].to_vec();
        let spare = (n_bytes as u32 * 8) - len_bits;
        if spare > 0 {
            // Zero the unused low bits of the last byte for canonical
            // equality.
            *out.last_mut().unwrap() &= 0xffu8 << spare;
        }
        Self {
            bytes: out,
            len_bits,
        }
    }

    /// Length in bits.
    pub fn len(&self) -> u32 {
        self.len_bits
    }

    /// Whether the bit string is empty.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// The backing bytes (trailing bits zero).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Bit `i`.
    #[inline]
    pub fn bit(&self, i: u32) -> u8 {
        debug_assert!(i < self.len_bits);
        get_bit(&self.bytes, i)
    }

    /// The sub-range `[from, to)` of this bit string as a new `BitStr`,
    /// built one shifted byte at a time.
    pub fn slice(&self, from: u32, to: u32) -> BitStr {
        debug_assert!(from <= to && to <= self.len_bits);
        let len = to - from;
        let n_bytes = len.div_ceil(8) as usize;
        let shift = from % 8;
        let base = (from / 8) as usize;
        let mut bytes = Vec::with_capacity(n_bytes);
        bytes.extend((0..n_bytes).map(|i| aligned_byte(&self.bytes, base + i, shift)));
        let spare = (n_bytes as u32 * 8) - len;
        if spare > 0 {
            *bytes.last_mut().unwrap() &= 0xffu8 << spare;
        }
        BitStr {
            bytes,
            len_bits: len,
        }
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: u8) {
        let byte = (self.len_bits / 8) as usize;
        if byte == self.bytes.len() {
            self.bytes.push(0);
        }
        if bit != 0 {
            self.bytes[byte] |= 1 << (7 - (self.len_bits % 8));
        }
        self.len_bits += 1;
    }

    /// Appends all bits of `other`, byte-wise: aligned appends are a plain
    /// byte copy, unaligned ones merge each source byte into the partial
    /// last byte and carry the shifted remainder.
    pub fn extend(&mut self, other: &BitStr) {
        if other.len_bits == 0 {
            return;
        }
        let rem = self.len_bits % 8;
        if rem == 0 {
            self.bytes.extend_from_slice(&other.bytes);
        } else {
            let base = self.bytes.len() - 1;
            for (i, &ob) in other.bytes.iter().enumerate() {
                // The partial byte's spare bits are canonically zero, so
                // OR-ing the shifted source byte in is exact.
                self.bytes[base + i] |= ob >> rem;
                self.bytes.push(ob << (8 - rem));
            }
        }
        self.len_bits += other.len_bits;
        let n_bytes = self.len_bits.div_ceil(8) as usize;
        self.bytes.truncate(n_bytes);
        let spare = (n_bytes as u32 * 8) - self.len_bits;
        if spare > 0 {
            *self.bytes.last_mut().unwrap() &= 0xffu8 << spare;
        }
    }

    /// Length (bits) of the common prefix with raw key bits.
    pub fn common_prefix_with_key(&self, key: &[u8], key_offset_bits: u32) -> u32 {
        let key_bits = key.len() as u32 * 8;
        let max = self.len_bits.min(key_bits.saturating_sub(key_offset_bits));
        let shift = key_offset_bits % 8;
        let base = (key_offset_bits / 8) as usize;
        let n_bytes = max.div_ceil(8) as usize;
        for (i, &sb) in self.bytes[..n_bytes].iter().enumerate() {
            let diff = sb ^ aligned_byte(key, base + i, shift);
            if diff != 0 {
                // A first difference past `max` can only come from this
                // string's canonical spare bits — clamp it away.
                return (i as u32 * 8 + diff.leading_zeros()).min(max);
            }
        }
        max
    }

    /// Length (bits) of the common prefix with another `BitStr`. Canonical
    /// trailing zeros make the byte-parallel compare exact up to `max`.
    pub fn common_prefix(&self, other: &BitStr) -> u32 {
        let max = self.len_bits.min(other.len_bits);
        lcp_byte_slices(&self.bytes, &other.bytes).min(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn get_bit_msb_first() {
        let b = [0b1010_0000u8, 0b0000_0001];
        assert_eq!(get_bit(&b, 0), 1);
        assert_eq!(get_bit(&b, 1), 0);
        assert_eq!(get_bit(&b, 2), 1);
        assert_eq!(get_bit(&b, 15), 1);
        assert_eq!(get_bit(&b, 14), 0);
    }

    #[test]
    fn lcp_bits_cases() {
        assert_eq!(lcp_bits(&[0xff, 0x00], &[0xff, 0x00]), 16);
        assert_eq!(lcp_bits(&[0xff, 0x00], &[0xff, 0x80]), 8);
        assert_eq!(lcp_bits(&[0x00], &[0x80]), 0);
        assert_eq!(lcp_bits(&[0b1010_1010], &[0b1010_1011]), 7);
        // Cross the 8-byte word boundary.
        let a = [0u8; 17];
        let mut b = [0u8; 17];
        assert_eq!(lcp_bits(&a, &b), 136);
        b[16] = 0b0000_0100;
        assert_eq!(lcp_bits(&a, &b), 133);
        b[16] = 0;
        b[8] = 0x80;
        assert_eq!(lcp_bits(&a, &b), 64);
        b[8] = 0;
        b[7] = 0x01;
        assert_eq!(lcp_bits(&a, &b), 63);
    }

    #[test]
    fn prefix_canonicalizes_trailing_bits() {
        let a = BitStr::prefix_of(&[0b1111_1111], 3);
        let b = BitStr::prefix_of(&[0b1110_0001], 3);
        assert_eq!(a, b);
        assert_eq!(a.bytes(), &[0b1110_0000]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn push_and_bit_round_trip() {
        let mut s = BitStr::empty();
        let pattern = [1u8, 0, 0, 1, 1, 0, 1, 0, 1, 1, 1];
        for &b in &pattern {
            s.push(b);
        }
        assert_eq!(s.len(), pattern.len() as u32);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(s.bit(i as u32), b, "bit {i}");
        }
    }

    #[test]
    fn slice_and_extend() {
        let s = BitStr::prefix_of(&[0b1011_0110], 8);
        let head = s.slice(0, 3);
        let tail = s.slice(3, 8);
        let mut joined = head.clone();
        joined.extend(&tail);
        assert_eq!(joined, s);
        assert_eq!(head.bytes(), &[0b1010_0000]);
    }

    #[test]
    fn common_prefix_with_key_offsets() {
        let key = [0b1100_1010u8, 0b0111_0000];
        let label = BitStr::prefix_of(&[0b1010_0000], 4); // bits 1,0,1,0
                                                          // Key bits from offset 2: 0,0,1,0,1,0,0,1 ... label 1,0,1,0 → first
                                                          // bit mismatches.
        assert_eq!(label.common_prefix_with_key(&key, 2), 0);
        // Key bits from offset 4: 1,0,1,0 → full match.
        assert_eq!(label.common_prefix_with_key(&key, 4), 4);
    }

    #[test]
    fn label_matches_key_partial_bytes() {
        // Label 1,0,1 against key bytes at several offsets.
        let label = BitStr::prefix_of(&[0b1010_0000], 3);
        assert!(label_matches_key(label.bytes(), 3, &[0b1010_1111], 0));
        assert!(label_matches_key(label.bytes(), 3, &[0b0001_0100], 3));
        assert!(!label_matches_key(label.bytes(), 3, &[0b1110_0000], 0));
        // Non-canonical trailing label bits must not affect the match.
        assert!(label_matches_key(&[0b1010_1111], 3, &[0b1010_0000], 0));
    }

    // Bit-by-bit references for the word-parallel implementations.
    fn naive_slice(s: &BitStr, from: u32, to: u32) -> BitStr {
        let mut out = BitStr::empty();
        for i in from..to {
            out.push(s.bit(i));
        }
        out
    }

    fn naive_common_prefix_with_key(s: &BitStr, key: &[u8], off: u32) -> u32 {
        let key_bits = key.len() as u32 * 8;
        let max = s.len().min(key_bits.saturating_sub(off));
        let mut i = 0;
        while i < max && s.bit(i) == get_bit(key, off + i) {
            i += 1;
        }
        i
    }

    proptest! {
        #[test]
        fn prop_prefix_bits_match_source(bytes in proptest::collection::vec(any::<u8>(), 1..8),
                                         len_frac in 0.0f64..=1.0) {
            let total = bytes.len() as u32 * 8;
            let len = ((total as f64) * len_frac) as u32;
            let s = BitStr::prefix_of(&bytes, len);
            for i in 0..len {
                prop_assert_eq!(s.bit(i), get_bit(&bytes, i));
            }
        }

        #[test]
        fn prop_lcp_symmetric_and_bounded(a in proptest::collection::vec(any::<u8>(), 4),
                                          b in proptest::collection::vec(any::<u8>(), 4)) {
            let l = lcp_bits(&a, &b);
            prop_assert_eq!(l, lcp_bits(&b, &a));
            prop_assert!(l <= 32);
            if a == b { prop_assert_eq!(l, 32); }
            for i in 0..l {
                prop_assert_eq!(get_bit(&a, i), get_bit(&b, i));
            }
            if l < 32 {
                prop_assert_ne!(get_bit(&a, l), get_bit(&b, l));
            }
        }

        #[test]
        fn prop_lcp_long_inputs(a in proptest::collection::vec(any::<u8>(), 20),
                                flip_bit in 0u32..160) {
            let mut b = a.clone();
            b[(flip_bit / 8) as usize] ^= 0x80 >> (flip_bit % 8);
            prop_assert_eq!(lcp_bits(&a, &b), flip_bit);
        }

        #[test]
        fn prop_slice_matches_naive(bytes in proptest::collection::vec(any::<u8>(), 1..24),
                                    from_frac in 0.0f64..=1.0,
                                    to_frac in 0.0f64..=1.0) {
            let s = BitStr::prefix_of(&bytes, bytes.len() as u32 * 8);
            let a = ((s.len() as f64) * from_frac) as u32;
            let b = ((s.len() as f64) * to_frac) as u32;
            let (from, to) = (a.min(b), a.max(b));
            prop_assert_eq!(s.slice(from, to), naive_slice(&s, from, to));
        }

        #[test]
        fn prop_extend_matches_push_loop(a in proptest::collection::vec(any::<u8>(), 0..12),
                                         a_frac in 0.0f64..=1.0,
                                         b in proptest::collection::vec(any::<u8>(), 0..12),
                                         b_frac in 0.0f64..=1.0) {
            let la = ((a.len() as f64 * 8.0) * a_frac) as u32;
            let lb = ((b.len() as f64 * 8.0) * b_frac) as u32;
            let sa = BitStr::prefix_of(&a, la);
            let sb = BitStr::prefix_of(&b, lb);
            let mut fast = sa.clone();
            fast.extend(&sb);
            let mut slow = sa.clone();
            for i in 0..sb.len() {
                slow.push(sb.bit(i));
            }
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_common_prefix_with_key_matches_naive(
            label_bytes in proptest::collection::vec(any::<u8>(), 1..12),
            label_frac in 0.0f64..=1.0,
            key in proptest::collection::vec(any::<u8>(), 0..12),
            off in 0u32..96,
        ) {
            let ll = ((label_bytes.len() as f64 * 8.0) * label_frac) as u32;
            let label = BitStr::prefix_of(&label_bytes, ll);
            prop_assert_eq!(
                label.common_prefix_with_key(&key, off),
                naive_common_prefix_with_key(&label, &key, off)
            );
        }

        #[test]
        fn prop_common_prefix_matches_bitwise(
            a in proptest::collection::vec(any::<u8>(), 0..20),
            a_frac in 0.0f64..=1.0,
            b in proptest::collection::vec(any::<u8>(), 0..20),
            b_frac in 0.0f64..=1.0,
        ) {
            let sa = BitStr::prefix_of(&a, ((a.len() as f64 * 8.0) * a_frac) as u32);
            let sb = BitStr::prefix_of(&b, ((b.len() as f64 * 8.0) * b_frac) as u32);
            let max = sa.len().min(sb.len());
            let mut want = 0;
            while want < max && sa.bit(want) == sb.bit(want) {
                want += 1;
            }
            prop_assert_eq!(sa.common_prefix(&sb), want);
            prop_assert_eq!(sa.common_prefix(&sb), sb.common_prefix(&sa));
        }

        #[test]
        fn prop_label_matches_key_matches_naive(
            label_bytes in proptest::collection::vec(any::<u8>(), 1..8),
            label_frac in 0.0f64..=1.0,
            key in proptest::collection::vec(any::<u8>(), 1..12),
            off_frac in 0.0f64..=1.0,
        ) {
            let ll = ((label_bytes.len() as f64 * 8.0) * label_frac) as u32;
            let label = BitStr::prefix_of(&label_bytes, ll);
            let key_bits = key.len() as u32 * 8;
            // Keep the label inside the key, as walk_serialized guarantees.
            if ll <= key_bits {
                let off = ((key_bits - ll) as f64 * off_frac) as u32;
                let want = (0..ll).all(|i| label.bit(i) == get_bit(&key, off + i));
                prop_assert_eq!(label_matches_key(label.bytes(), ll, &key, off), want);
            }
        }
    }
}
