//! In-memory path-compressed binary trie and its per-bucket serialization.
//!
//! The builder inserts truncated keys into this radix trie, one trie per
//! first-byte bucket, then serializes each trie as one component. Lookup
//! walks the serialized form directly (no deserialization into nodes): the
//! matched path visits O(prefix) nodes, collecting postings stored at any
//! node whose cumulative label is a prefix of the query key.
//!
//! ## Serialized node layout (DFS order)
//!
//! ```text
//! node := label_len_bits: varint, label bytes (ceil/8),
//!         n_postings: varint, posting*,
//!         child_mask: u8 (bit0 = 0-child, bit1 = 1-child),
//!         [left_subtree_bytes: varint when both children],
//!         0-child subtree, 1-child subtree
//! ```

use rottnest_compress::varint;

use crate::bits::{get_bit, label_matches_key, BitStr};
use crate::{Posting, Result, TrieError};

/// A node of the in-memory radix trie.
#[derive(Debug, Default)]
pub struct TrieNode {
    /// Edge label on the way *into* this node.
    pub label: BitStr,
    /// Postings of truncated keys ending exactly here.
    pub postings: Vec<Posting>,
    /// Child on bit 0.
    pub zero: Option<Box<TrieNode>>,
    /// Child on bit 1.
    pub one: Option<Box<TrieNode>>,
}

impl TrieNode {
    /// Creates an empty root (empty label).
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a truncated key (as a `BitStr`) with a posting.
    pub fn insert(&mut self, key: &BitStr, posting: Posting) {
        self.insert_at(key, 0, posting);
    }

    fn insert_at(&mut self, key: &BitStr, depth: u32, posting: Posting) {
        if depth == key.len() {
            self.postings.push(posting);
            return;
        }
        let bit = key.bit(depth);
        let child_slot = if bit == 0 {
            &mut self.zero
        } else {
            &mut self.one
        };
        match child_slot {
            None => {
                let mut node = TrieNode {
                    label: key.slice(depth, key.len()),
                    ..TrieNode::default()
                };
                node.postings.push(posting);
                *child_slot = Some(Box::new(node));
            }
            Some(child) => {
                let rest = key.slice(depth, key.len());
                let common = child.label.common_prefix(&rest);
                if common == child.label.len() {
                    // Label fully matched; descend.
                    child.insert_at(key, depth + common, posting);
                } else {
                    // Split the edge at `common`.
                    let old = child_slot.take().unwrap();
                    let mut split = TrieNode {
                        label: old.label.slice(0, common),
                        ..TrieNode::default()
                    };
                    let mut old = old;
                    let old_bit = old.label.bit(common);
                    old.label = old.label.slice(common, old.label.len());
                    if old_bit == 0 {
                        split.zero = Some(old);
                    } else {
                        split.one = Some(old);
                    }
                    split.insert_at(key, depth + common, posting);
                    *child_slot = Some(Box::new(split));
                }
            }
        }
    }

    /// Serializes this subtree in DFS order.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, u64::from(self.label.len()));
        out.extend_from_slice(self.label.bytes());
        varint::write_usize(out, self.postings.len());
        for p in &self.postings {
            p.encode(out);
        }
        let mask = u8::from(self.zero.is_some()) | (u8::from(self.one.is_some()) << 1);
        out.push(mask);
        match (&self.zero, &self.one) {
            (Some(z), Some(o)) => {
                let mut zbuf = Vec::new();
                z.serialize(&mut zbuf);
                varint::write_usize(out, zbuf.len());
                out.extend_from_slice(&zbuf);
                o.serialize(out);
            }
            (Some(z), None) => z.serialize(out),
            (None, Some(o)) => o.serialize(out),
            (None, None) => {}
        }
    }

    /// Visits every `(full_prefix, postings)` pair in the subtree.
    pub fn for_each_entry(&self, prefix: &BitStr, f: &mut impl FnMut(BitStr, &[Posting])) {
        let mut here = prefix.clone();
        here.extend(&self.label);
        if !self.postings.is_empty() {
            f(here.clone(), &self.postings);
        }
        if let Some(z) = &self.zero {
            z.for_each_entry(&here, f);
        }
        if let Some(o) = &self.one {
            o.for_each_entry(&here, f);
        }
    }
}

/// Walks a serialized subtree, collecting postings of every stored prefix of
/// `key` (bits consumed starting at `key_offset_bits`).
pub fn walk_serialized(
    buf: &[u8],
    key: &[u8],
    key_offset_bits: u32,
    out: &mut Vec<Posting>,
) -> Result<()> {
    let mut pos = 0usize;
    let mut key_pos = key_offset_bits;
    let key_bits = key.len() as u32 * 8;

    loop {
        // Decode one node header.
        let label_bits = varint::read_u64(buf, &mut pos)? as u32;
        let label_bytes = label_bits.div_ceil(8) as usize;
        if pos + label_bytes > buf.len() {
            return Err(TrieError::Corrupt("label truncated".into()));
        }
        let label = &buf[pos..pos + label_bytes];
        pos += label_bytes;

        // Match the label against the key, whole bytes at a time.
        if key_bits.saturating_sub(key_pos) < label_bits {
            return Ok(()); // key shorter than stored prefix: no match
        }
        if !label_matches_key(label, label_bits, key, key_pos) {
            return Ok(());
        }
        key_pos += label_bits;

        let n_postings = varint::read_usize(buf, &mut pos)?;
        let mut postings = Vec::with_capacity(n_postings.min(1 << 16));
        for _ in 0..n_postings {
            postings.push(Posting::decode(buf, &mut pos)?);
        }
        // Every node on the matched path whose cumulative prefix is a prefix
        // of the key contributes its postings.
        out.extend_from_slice(&postings);

        let mask = *buf
            .get(pos)
            .ok_or_else(|| TrieError::Corrupt("missing child mask".into()))?;
        pos += 1;

        let has_zero = mask & 1 != 0;
        let has_one = mask & 2 != 0;
        if !has_zero && !has_one {
            return Ok(());
        }
        if key_pos >= key_bits {
            return Ok(()); // key exhausted at an internal node
        }
        let next_bit = get_bit(key, key_pos);
        match (has_zero, has_one) {
            (true, true) => {
                let left_len = varint::read_usize(buf, &mut pos)?;
                if next_bit == 0 {
                    // continue into left subtree (starts at pos)
                } else {
                    pos += left_len;
                }
            }
            (true, false) => {
                if next_bit != 0 {
                    return Ok(());
                }
            }
            (false, true) => {
                if next_bit != 1 {
                    return Ok(());
                }
            }
            (false, false) => unreachable!(),
        }
    }
}

/// Iterates every `(prefix, postings)` entry of a serialized subtree
/// (used by merge and by tests).
pub fn entries_of_serialized(buf: &[u8], prefix: BitStr) -> Result<Vec<(BitStr, Vec<Posting>)>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    collect_entries(buf, &mut pos, prefix, &mut out)?;
    Ok(out)
}

fn collect_entries(
    buf: &[u8],
    pos: &mut usize,
    prefix: BitStr,
    out: &mut Vec<(BitStr, Vec<Posting>)>,
) -> Result<()> {
    let label_bits = varint::read_u64(buf, pos)? as u32;
    let label_bytes = label_bits.div_ceil(8) as usize;
    if *pos + label_bytes > buf.len() {
        return Err(TrieError::Corrupt("label truncated".into()));
    }
    let label = BitStr::prefix_of(&buf[*pos..*pos + label_bytes], label_bits);
    *pos += label_bytes;
    let mut here = prefix;
    here.extend(&label);

    let n_postings = varint::read_usize(buf, pos)?;
    let mut postings = Vec::with_capacity(n_postings.min(1 << 16));
    for _ in 0..n_postings {
        postings.push(Posting::decode(buf, pos)?);
    }
    if !postings.is_empty() {
        out.push((here.clone(), postings));
    }

    let mask = *buf
        .get(*pos)
        .ok_or_else(|| TrieError::Corrupt("missing child mask".into()))?;
    *pos += 1;
    let has_zero = mask & 1 != 0;
    let has_one = mask & 2 != 0;
    if has_zero && has_one {
        let _left_len = varint::read_usize(buf, pos)?;
        collect_entries(buf, pos, here.clone(), out)?;
        collect_entries(buf, pos, here, out)?;
    } else if has_zero || has_one {
        collect_entries(buf, pos, here, out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(bits: &[u8]) -> BitStr {
        let mut s = BitStr::empty();
        for &b in bits {
            s.push(b);
        }
        s
    }

    fn lookup(root: &TrieNode, key: &[u8]) -> Vec<Posting> {
        let mut buf = Vec::new();
        root.serialize(&mut buf);
        let mut out = Vec::new();
        walk_serialized(&buf, key, 0, &mut out).unwrap();
        out.sort_unstable();
        out
    }

    #[test]
    fn insert_and_walk_simple() {
        let mut root = TrieNode::new();
        root.insert(&bs(&[1, 0, 1]), Posting::new(1, 1));
        root.insert(&bs(&[1, 1, 0]), Posting::new(2, 2));
        root.insert(&bs(&[0, 0, 0]), Posting::new(3, 3));

        // Query keys are full bytes whose leading bits select entries.
        assert_eq!(lookup(&root, &[0b1010_0000]), vec![Posting::new(1, 1)]);
        assert_eq!(lookup(&root, &[0b1100_0000]), vec![Posting::new(2, 2)]);
        assert_eq!(lookup(&root, &[0b0001_1111]), vec![Posting::new(3, 3)]);
        assert_eq!(lookup(&root, &[0b0100_0000]), vec![]);
    }

    #[test]
    fn prefix_entries_all_collected() {
        // A stored prefix that is a prefix of another stored prefix: both
        // must be returned for a key matching the longer one.
        let mut root = TrieNode::new();
        root.insert(&bs(&[1, 0]), Posting::new(1, 0));
        root.insert(&bs(&[1, 0, 1, 1]), Posting::new(2, 0));
        let hits = lookup(&root, &[0b1011_0000]);
        assert_eq!(hits, vec![Posting::new(1, 0), Posting::new(2, 0)]);
        // A key matching only the short prefix returns just it.
        let hits = lookup(&root, &[0b1000_0000]);
        assert_eq!(hits, vec![Posting::new(1, 0)]);
    }

    #[test]
    fn duplicate_keys_share_a_leaf() {
        let mut root = TrieNode::new();
        root.insert(&bs(&[1, 1]), Posting::new(1, 5));
        root.insert(&bs(&[1, 1]), Posting::new(2, 9));
        let hits = lookup(&root, &[0b1100_0000]);
        assert_eq!(hits, vec![Posting::new(1, 5), Posting::new(2, 9)]);
    }

    #[test]
    fn edge_split_preserves_structure() {
        let mut root = TrieNode::new();
        // Insert a long edge then split it in the middle.
        root.insert(&bs(&[1, 1, 1, 1, 1, 1]), Posting::new(1, 0));
        root.insert(&bs(&[1, 1, 1, 0]), Posting::new(2, 0));
        root.insert(&bs(&[1, 1]), Posting::new(3, 0));
        assert_eq!(
            lookup(&root, &[0b1111_1100]),
            vec![Posting::new(1, 0), Posting::new(3, 0)]
        );
        assert_eq!(
            lookup(&root, &[0b1110_0000]),
            vec![Posting::new(2, 0), Posting::new(3, 0)]
        );
    }

    #[test]
    fn entries_round_trip() {
        let mut root = TrieNode::new();
        let items = [
            (bs(&[0, 1, 0]), Posting::new(1, 1)),
            (bs(&[0, 1, 1, 1]), Posting::new(2, 2)),
            (bs(&[1, 0, 0, 0, 1]), Posting::new(3, 3)),
        ];
        for (k, p) in &items {
            root.insert(k, *p);
        }
        let mut buf = Vec::new();
        root.serialize(&mut buf);
        let entries = entries_of_serialized(&buf, BitStr::empty()).unwrap();
        assert_eq!(entries.len(), 3);
        let mut got: Vec<(BitStr, Posting)> =
            entries.into_iter().map(|(k, ps)| (k, ps[0])).collect();
        got.sort_by(|a, b| a.0.cmp(&b.0));
        let mut want: Vec<(BitStr, Posting)> = items.to_vec();
        want.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(got, want);
    }

    #[test]
    fn key_offset_walking() {
        // Bucket tries are walked with the first 8 bits already consumed.
        let mut root = TrieNode::new();
        root.insert(&bs(&[1, 0, 1]), Posting::new(7, 7));
        let mut buf = Vec::new();
        root.serialize(&mut buf);
        let mut out = Vec::new();
        // Key: first byte (bucket) + second byte starting 101...
        walk_serialized(&buf, &[0x42, 0b1010_0000], 8, &mut out).unwrap();
        assert_eq!(out, vec![Posting::new(7, 7)]);
    }
}
