//! Querying and merging serialized trie indexes on object storage.

use rottnest_component::ComponentFile;
use rottnest_compress::varint;
use rottnest_object_store::ObjectStore;

use crate::bits::BitStr;
use crate::builder::build_from_truncated;
use crate::node::{entries_of_serialized, walk_serialized};
use crate::{Posting, Result, TrieError, LUT_BITS};

/// Read handle over a trie index file.
///
/// `open` costs one speculative GET (which also captures the root lookup
/// table); each lookup costs at most one more GET for its bucket component.
pub struct TrieIndex<'a> {
    file: ComponentFile<'a>,
    key_len: usize,
    n_entries: u64,
    lut: Vec<u64>,
}

impl<'a> TrieIndex<'a> {
    /// Opens an index written by [`crate::TrieBuilder`].
    pub fn open(store: &'a dyn ObjectStore, key: &str) -> Result<Self> {
        let file = ComponentFile::open(store, key)?;
        let root = file.component(0)?;
        if root.is_empty() {
            return Err(TrieError::Corrupt("empty root component".into()));
        }
        let key_len = root[0] as usize;
        let mut pos = 1usize;
        let n_entries = varint::read_u64(&root, &mut pos)?;
        let mut lut = Vec::with_capacity(256);
        for _ in 0..256 {
            lut.push(varint::read_u64(&root, &mut pos)?);
        }
        Ok(Self {
            file,
            key_len,
            n_entries,
            lut,
        })
    }

    /// Fixed key length (bytes) this index covers.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Number of key/posting pairs indexed.
    pub fn num_entries(&self) -> u64 {
        self.n_entries
    }

    /// Looks up one key; returns candidate postings (may contain false
    /// positives from prefix truncation — callers probe in situ).
    pub fn lookup(&self, key: &[u8]) -> Result<Vec<Posting>> {
        self.check_key(key)?;
        let comp = self.lut[key[0] as usize];
        if comp == 0 {
            return Ok(Vec::new());
        }
        let bucket = self.file.component(comp as usize)?;
        let mut out = Vec::new();
        walk_serialized(&bucket, key, LUT_BITS, &mut out)?;
        Ok(out)
    }

    /// Looks up many keys; bucket components are fetched in **one parallel
    /// round trip**. Results are ordered like `keys`.
    pub fn lookup_many(&self, keys: &[&[u8]]) -> Result<Vec<Vec<Posting>>> {
        for k in keys {
            self.check_key(k)?;
        }
        let mut needed: Vec<usize> = keys
            .iter()
            .map(|k| self.lut[k[0] as usize] as usize)
            .filter(|&c| c != 0)
            .collect();
        needed.sort_unstable();
        needed.dedup();
        // Warm the component cache with one batched fetch.
        self.file.components(&needed)?;

        keys.iter()
            .map(|key| {
                let comp = self.lut[key[0] as usize];
                if comp == 0 {
                    return Ok(Vec::new());
                }
                let bucket = self.file.component(comp as usize)?;
                let mut out = Vec::new();
                walk_serialized(&bucket, key, LUT_BITS, &mut out)?;
                Ok(out)
            })
            .collect()
    }

    /// Streams every stored `(truncated prefix, postings)` entry; feeds
    /// merges.
    pub fn entries(&self) -> Result<Vec<(BitStr, Vec<Posting>)>> {
        let comps: Vec<usize> = (0..256)
            .filter_map(|b| {
                let c = self.lut[b] as usize;
                (c != 0).then_some(c)
            })
            .collect();
        self.file.components(&comps)?;
        let mut out = Vec::new();
        for b in 0..256usize {
            let comp = self.lut[b] as usize;
            if comp == 0 {
                continue;
            }
            let bucket = self.file.component(comp)?;
            let prefix = BitStr::prefix_of(&[b as u8], 8);
            out.extend(entries_of_serialized(&bucket, prefix)?);
        }
        Ok(out)
    }

    fn check_key(&self, key: &[u8]) -> Result<()> {
        if key.len() != self.key_len {
            return Err(TrieError::BadKey(format!(
                "lookup key of {} bytes in index of {}-byte keys",
                key.len(),
                self.key_len
            )));
        }
        Ok(())
    }
}

/// Merges several trie indexes into one new index file (§IV-C compaction).
///
/// `sources` pair each index with a `file_id` offset: postings of source
/// `i` are remapped by adding its offset, letting the caller concatenate
/// the sources' file lists. Entries stay truncated as stored — identical
/// prefixes from different sources share a leaf, which can only add false
/// positives (filtered in situ), never false negatives.
pub fn merge_tries(
    store: &dyn ObjectStore,
    sources: &[(&TrieIndex<'_>, u32)],
    out_key: &str,
) -> Result<u64> {
    if sources.is_empty() {
        return Err(TrieError::BadKey("nothing to merge".into()));
    }
    let key_len = sources[0].0.key_len();
    for (idx, _) in sources {
        if idx.key_len() != key_len {
            return Err(TrieError::BadKey(
                "merging tries with different key lengths".into(),
            ));
        }
    }
    let mut truncated: Vec<(BitStr, Posting)> = Vec::new();
    for (idx, offset) in sources {
        for (prefix, postings) in idx.entries()? {
            for p in postings {
                truncated.push((prefix.clone(), Posting::new(p.file + offset, p.page)));
            }
        }
    }
    let bytes = build_from_truncated(key_len, truncated);
    let len = bytes.len() as u64;
    store.put(out_key, bytes)?;
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrieBuilder;
    use rand::{Rng, SeedableRng};
    use rottnest_object_store::MemoryStore;

    fn uuid(rng: &mut impl Rng) -> Vec<u8> {
        (0..16).map(|_| rng.gen()).collect()
    }

    fn build_index(store: &dyn ObjectStore, key: &str, pairs: &[(Vec<u8>, Posting)]) {
        let mut b = TrieBuilder::new(16).unwrap();
        for (k, p) in pairs {
            b.add(k, *p).unwrap();
        }
        b.finish_into(store, key).unwrap();
    }

    #[test]
    fn lookup_finds_every_indexed_key() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let store = MemoryStore::unmetered();
        let pairs: Vec<(Vec<u8>, Posting)> = (0..5_000u32)
            .map(|i| (uuid(&mut rng), Posting::new(i / 1000, i % 1000)))
            .collect();
        build_index(store.as_ref(), "t.idx", &pairs);

        let idx = TrieIndex::open(store.as_ref(), "t.idx").unwrap();
        assert_eq!(idx.num_entries(), 5_000);
        assert_eq!(idx.key_len(), 16);
        for (k, p) in pairs.iter().step_by(97) {
            let hits = idx.lookup(k).unwrap();
            assert!(hits.contains(p), "missing posting for indexed key");
        }
    }

    #[test]
    fn unindexed_keys_rarely_hit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let store = MemoryStore::unmetered();
        let pairs: Vec<(Vec<u8>, Posting)> = (0..2_000u32)
            .map(|i| (uuid(&mut rng), Posting::new(0, i)))
            .collect();
        build_index(store.as_ref(), "t.idx", &pairs);
        let idx = TrieIndex::open(store.as_ref(), "t.idx").unwrap();

        let mut false_positives = 0;
        for _ in 0..1_000 {
            let probe = uuid(&mut rng);
            if !idx.lookup(&probe).unwrap().is_empty() {
                false_positives += 1;
            }
        }
        // With LCP+9-bit prefixes over 2k random keys, collisions are rare.
        assert!(false_positives < 20, "{false_positives} false positives");
    }

    #[test]
    fn duplicate_keys_return_all_postings() {
        let store = MemoryStore::unmetered();
        let key = vec![7u8; 16];
        let pairs = vec![
            (key.clone(), Posting::new(0, 1)),
            (key.clone(), Posting::new(1, 2)),
            (key.clone(), Posting::new(2, 3)),
        ];
        build_index(store.as_ref(), "t.idx", &pairs);
        let idx = TrieIndex::open(store.as_ref(), "t.idx").unwrap();
        let mut hits = idx.lookup(&key).unwrap();
        hits.sort_unstable();
        assert_eq!(
            hits,
            vec![Posting::new(0, 1), Posting::new(1, 2), Posting::new(2, 3)]
        );
    }

    #[test]
    fn lookup_costs_at_most_two_gets_after_open() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let store = MemoryStore::unmetered();
        let pairs: Vec<(Vec<u8>, Posting)> = (0..50_000u32)
            .map(|i| (uuid(&mut rng), Posting::new(0, i)))
            .collect();
        build_index(store.as_ref(), "t.idx", &pairs);

        let before = store.stats();
        let idx = TrieIndex::open(store.as_ref(), "t.idx").unwrap();
        let open_gets = store.stats().since(&before).gets;
        assert!(open_gets <= 2, "open cost {open_gets} GETs");

        let before = store.stats();
        idx.lookup(&pairs[42].0).unwrap();
        let gets = store.stats().since(&before).gets;
        assert!(gets <= 1, "lookup cost {gets} GETs");
    }

    #[test]
    fn lookup_many_batches_buckets() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let store = MemoryStore::unmetered();
        let pairs: Vec<(Vec<u8>, Posting)> = (0..20_000u32)
            .map(|i| (uuid(&mut rng), Posting::new(0, i)))
            .collect();
        build_index(store.as_ref(), "t.idx", &pairs);
        let idx = TrieIndex::open(store.as_ref(), "t.idx").unwrap();

        let keys: Vec<&[u8]> = pairs
            .iter()
            .step_by(500)
            .map(|(k, _)| k.as_slice())
            .collect();
        let before = store.stats();
        let results = idx.lookup_many(&keys).unwrap();
        let gets = store.stats().since(&before).gets;
        assert!(
            gets <= keys.len() as u64,
            "batched: {gets} GETs for {} keys",
            keys.len()
        );
        for (r, (_, p)) in results.iter().zip(pairs.iter().step_by(500)) {
            assert!(r.contains(p));
        }
    }

    #[test]
    fn wrong_key_length_rejected() {
        let store = MemoryStore::unmetered();
        build_index(
            store.as_ref(),
            "t.idx",
            &[(vec![1u8; 16], Posting::new(0, 0))],
        );
        let idx = TrieIndex::open(store.as_ref(), "t.idx").unwrap();
        assert!(idx.lookup(&[1u8; 8]).is_err());
        assert!(TrieBuilder::new(1).is_err());
    }

    #[test]
    fn merge_preserves_all_lookups_with_remapped_files() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let store = MemoryStore::unmetered();
        let a: Vec<(Vec<u8>, Posting)> = (0..3_000u32)
            .map(|i| (uuid(&mut rng), Posting::new(i % 3, i)))
            .collect();
        let b: Vec<(Vec<u8>, Posting)> = (0..3_000u32)
            .map(|i| (uuid(&mut rng), Posting::new(i % 2, i)))
            .collect();
        build_index(store.as_ref(), "a.idx", &a);
        build_index(store.as_ref(), "b.idx", &b);

        let ia = TrieIndex::open(store.as_ref(), "a.idx").unwrap();
        let ib = TrieIndex::open(store.as_ref(), "b.idx").unwrap();
        // a keeps file ids 0..3, b's ids shift by 3.
        merge_tries(store.as_ref(), &[(&ia, 0), (&ib, 3)], "m.idx").unwrap();

        let merged = TrieIndex::open(store.as_ref(), "m.idx").unwrap();
        assert_eq!(merged.num_entries(), 6_000);
        for (k, p) in a.iter().step_by(131) {
            assert!(merged.lookup(k).unwrap().contains(p));
        }
        for (k, p) in b.iter().step_by(131) {
            let want = Posting::new(p.file + 3, p.page);
            assert!(merged.lookup(k).unwrap().contains(&want));
        }
    }

    #[test]
    fn merged_index_is_smaller_than_parts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let store = MemoryStore::unmetered();
        let mut sizes = 0u64;
        let mut handles = Vec::new();
        for f in 0..4u32 {
            let pairs: Vec<(Vec<u8>, Posting)> = (0..2_000u32)
                .map(|i| (uuid(&mut rng), Posting::new(f, i)))
                .collect();
            let key = format!("{f}.idx");
            build_index(store.as_ref(), &key, &pairs);
            sizes += store.head(&key).unwrap().size;
            handles.push(key);
        }
        let opened: Vec<TrieIndex> = handles
            .iter()
            .map(|k| TrieIndex::open(store.as_ref(), k).unwrap())
            .collect();
        let sources: Vec<(&TrieIndex, u32)> = opened
            .iter()
            .enumerate()
            .map(|(i, t)| (t, i as u32))
            .collect();
        let merged_size = merge_tries(store.as_ref(), &sources, "m.idx").unwrap();
        assert!(merged_size < sizes, "merged {merged_size} vs parts {sizes}");
    }
}
