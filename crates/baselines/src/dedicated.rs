//! The copy-data baseline: an always-on dedicated search system
//! (OpenSearch / LanceDB stand-in, §II-C1, §VII preamble).
//!
//! Data is ETL'd out of the lake into purpose-built in-memory structures —
//! a hash map for identifier lookup, an in-RAM [`FmCore`] for substring
//! search, a flat vector store for exact ANN ground truth. Queries are
//! RAM-speed (that is the point of the baseline); the *cost* lands in
//! [`monthly_cost`]: three always-on nodes plus triple-replicated EBS for
//! the index, exactly the paper's `cpm_i`.

use rottnest::Match;
use rottnest_fm::{FmCore, DEFAULT_SAMPLE_RATE};
use rottnest_format::{ChunkReader, ValueRef};
use rottnest_ivfpq::l2_sq;
use rottnest_lake::{Snapshot, Table};
use rottnest_object_store::FxHashMap;
use rottnest_tco::prices;

use crate::{BaselineError, Result};

/// Row provenance in the dedicated store.
type RowRef = (String, u64);

fn for_each_live_row(
    table: &Table<'_>,
    snapshot: &Snapshot,
    column: &str,
    mut f: impl FnMut(&str, u64, ValueRef<'_>),
) -> Result<u64> {
    let mut ingested = 0u64;
    for file in snapshot.files() {
        let reader = ChunkReader::open(table.store(), &file.path)?;
        let col = reader
            .meta()
            .schema
            .index_of(column)
            .ok_or_else(|| BaselineError::BadColumn(column.to_string()))?;
        let data = reader.read_column(col)?;
        let dv = table.load_dv(file)?.unwrap_or_default();
        for i in 0..data.len() {
            if dv.contains(i as u64) {
                continue;
            }
            ingested += 1;
            f(&file.path, i as u64, data.get(i).expect("in range"));
        }
    }
    Ok(ingested)
}

/// Monthly cost of the dedicated cluster holding `index_bytes` of index
/// (the paper's `cpm_i`: 3 nodes + 3× EBS replicas).
pub fn monthly_cost(node_hourly: f64, index_bytes: u64) -> f64 {
    prices::dedicated_monthly(node_hourly, index_bytes as f64)
}

/// Exact-match identifier index (ElasticSearch keyword-field stand-in).
pub struct DedicatedUuid {
    map: FxHashMap<Vec<u8>, Vec<RowRef>>,
    index_bytes: u64,
}

impl DedicatedUuid {
    /// ETLs `column` of the snapshot into memory.
    pub fn ingest(table: &Table<'_>, snapshot: &Snapshot, column: &str) -> Result<Self> {
        let mut map: FxHashMap<Vec<u8>, Vec<RowRef>> = FxHashMap::default();
        let mut bytes = 0u64;
        for_each_live_row(table, snapshot, column, |path, row, v| {
            let key = match v {
                ValueRef::Binary(b) => b.to_vec(),
                ValueRef::Utf8(s) => s.as_bytes().to_vec(),
                _ => return,
            };
            bytes += key.len() as u64 + 24;
            map.entry(key).or_default().push((path.to_string(), row));
        })?;
        Ok(Self {
            map,
            index_bytes: bytes,
        })
    }

    /// Exact lookup.
    pub fn search(&self, key: &[u8], k: usize) -> Vec<Match> {
        self.map
            .get(key)
            .into_iter()
            .flatten()
            .take(k)
            .map(|(path, row)| Match {
                path: path.clone(),
                row: *row,
                score: None,
            })
            .collect()
    }

    /// Approximate resident index size (drives the EBS cost term).
    pub fn index_bytes(&self) -> u64 {
        self.index_bytes
    }
}

/// Substring index: a full in-RAM FM-index over the corpus (what a
/// dedicated text engine effectively persists in fast storage).
pub struct DedicatedText {
    core: FmCore,
    /// Document start offsets (sorted) → row refs.
    starts: Vec<u64>,
    rows: Vec<RowRef>,
}

impl DedicatedText {
    /// ETLs `column` into an in-memory FM-index.
    pub fn ingest(table: &Table<'_>, snapshot: &Snapshot, column: &str) -> Result<Self> {
        let mut text = Vec::new();
        let mut starts = Vec::new();
        let mut rows = Vec::new();
        for_each_live_row(table, snapshot, column, |path, row, v| {
            if let ValueRef::Utf8(s) = v {
                starts.push(text.len() as u64);
                rows.push((path.to_string(), row));
                let at = text.len();
                text.extend_from_slice(s.as_bytes());
                rottnest_fm::sanitize(&mut text[at..]);
                text.push(rottnest_fm::SEPARATOR);
            }
        })?;
        let core = FmCore::build(&text, DEFAULT_SAMPLE_RATE);
        Ok(Self { core, starts, rows })
    }

    /// Rows whose value contains `pattern` (up to `k`).
    pub fn search(&self, pattern: &[u8], k: usize) -> Result<Vec<Match>> {
        // Occurrences may repeat within one document; deduplicate rows.
        let positions = self.core.locate(pattern, k.saturating_mul(8).max(256))?;
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for pos in positions {
            let idx = self.starts.partition_point(|&s| s <= pos) - 1;
            if seen.insert(idx) {
                let (path, row) = &self.rows[idx];
                out.push(Match {
                    path: path.clone(),
                    row: *row,
                    score: None,
                });
                if out.len() >= k {
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Total occurrences of `pattern` in the corpus.
    pub fn count(&self, pattern: &[u8]) -> Result<usize> {
        Ok(self.core.count(pattern)?)
    }

    /// Approximate resident index size.
    pub fn index_bytes(&self) -> u64 {
        // BWT + wavelet ≈ 2n plus samples.
        (self.core.len() * 2) as u64 + self.rows.len() as u64 * 24
    }
}

/// Vector store with exact search (LanceDB-with-index-in-RAM stand-in; its
/// recall is 1.0, which the paper notes makes the baseline *stronger*).
pub struct DedicatedVector {
    dim: usize,
    data: Vec<f32>,
    rows: Vec<RowRef>,
}

impl DedicatedVector {
    /// ETLs `column` into a flat in-memory store.
    pub fn ingest(table: &Table<'_>, snapshot: &Snapshot, column: &str) -> Result<Self> {
        let mut data = Vec::new();
        let mut rows = Vec::new();
        let mut dim = 0usize;
        for_each_live_row(table, snapshot, column, |path, row, v| {
            if let ValueRef::VectorF32(vec) = v {
                dim = vec.len();
                data.extend_from_slice(vec);
                rows.push((path.to_string(), row));
            }
        })?;
        Ok(Self { dim, data, rows })
    }

    /// Exact top-`k`.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Match> {
        let mut top: Vec<(usize, f32)> = Vec::new();
        for (i, chunk) in self.data.chunks_exact(self.dim).enumerate() {
            let d = l2_sq(query, chunk);
            let at = top.partition_point(|&(_, td)| td <= d);
            if at < k {
                top.insert(at, (i, d));
                top.truncate(k);
            }
        }
        top.into_iter()
            .map(|(i, d)| {
                let (path, row) = &self.rows[i];
                Match {
                    path: path.clone(),
                    row: *row,
                    score: Some(d),
                }
            })
            .collect()
    }

    /// Approximate resident index size.
    pub fn index_bytes(&self) -> u64 {
        (self.data.len() * 4) as u64 + self.rows.len() as u64 * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rottnest_format::{ColumnData, DataType, Field, RecordBatch, Schema};
    use rottnest_lake::TableConfig;
    use rottnest_object_store::MemoryStore;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Binary),
            Field::new("msg", DataType::Utf8),
            Field::new("v", DataType::VectorF32 { dim: 4 }),
        ])
    }

    fn key(i: u64) -> Vec<u8> {
        let mut k = vec![7u8; 16];
        k[..8].copy_from_slice(&i.to_be_bytes());
        k
    }

    fn setup(store: &MemoryStore) -> Table<'_> {
        let t = Table::create(store, "tbl", &schema(), TableConfig::default()).unwrap();
        let range = 0u64..80;
        let batch = RecordBatch::new(
            schema(),
            vec![
                ColumnData::from_blobs(range.clone().map(key)),
                ColumnData::from_strings(
                    range.clone().map(|i| format!("message {i} tag{}", i % 4)),
                ),
                ColumnData::from_vectors(
                    4,
                    range
                        .map(|i| vec![i as f32, 1.0, 2.0, 3.0])
                        .collect::<Vec<_>>(),
                )
                .unwrap(),
            ],
        )
        .unwrap();
        t.append(&batch).unwrap();
        t
    }

    #[test]
    fn uuid_lookup_matches() {
        let store = MemoryStore::unmetered();
        let t = setup(&store);
        let snap = t.snapshot().unwrap();
        let idx = DedicatedUuid::ingest(&t, &snap, "id").unwrap();
        let m = idx.search(&key(42), 10);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].row, 42);
        assert!(idx.search(&key(999), 10).is_empty());
        assert!(idx.index_bytes() > 0);
    }

    #[test]
    fn text_search_matches_and_counts() {
        let store = MemoryStore::unmetered();
        let t = setup(&store);
        let snap = t.snapshot().unwrap();
        let idx = DedicatedText::ingest(&t, &snap, "msg").unwrap();
        assert_eq!(idx.count(b"tag2").unwrap(), 20);
        let m = idx.search(b"message 7 ", 10).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].row, 7);
        let m = idx.search(b"tag1", 5).unwrap();
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn vector_search_is_exact() {
        let store = MemoryStore::unmetered();
        let t = setup(&store);
        let snap = t.snapshot().unwrap();
        let idx = DedicatedVector::ingest(&t, &snap, "v").unwrap();
        let m = idx.search(&[33.0, 1.0, 2.0, 3.0], 3);
        assert_eq!(m[0].row, 33);
        assert_eq!(m[0].score, Some(0.0));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn deleted_rows_are_not_ingested() {
        let store = MemoryStore::unmetered();
        let t = setup(&store);
        let path = t.snapshot().unwrap().files().next().unwrap().path.clone();
        t.delete_rows(&path, &[42]).unwrap();
        let snap = t.snapshot().unwrap();
        let idx = DedicatedUuid::ingest(&t, &snap, "id").unwrap();
        assert!(idx.search(&key(42), 10).is_empty());
    }

    #[test]
    fn monthly_cost_includes_nodes_and_ebs() {
        let base = monthly_cost(0.167, 0);
        let with_index = monthly_cost(0.167, 100_000_000_000);
        assert!(base > 300.0, "3 nodes for a month: {base}");
        // 100 GB × 3 replicas × $0.08 = $24 extra.
        assert!((with_index - base - 24.0).abs() < 0.5);
    }
}
