//! Brute-force full scans over the data lake (the AWS Athena / SparkSQL
//! approach of §II-C2).
//!
//! Every query downloads the **entire column** of every active file through
//! the traditional chunk reader — the access pattern whose cost the paper's
//! `cpq_bf` captures — and evaluates the exact predicate in memory.
//! Deletion vectors are honored. The returned [`ScanStats`] (bytes moved,
//! rows scanned) feed the cluster scaling model for Figure 8 and the TCO
//! harness.

use rottnest::Match;
use rottnest_format::{ChunkReader, ValueRef};
use rottnest_ivfpq::l2_sq;
use rottnest_lake::{Snapshot, Table};

use crate::{BaselineError, Result};

/// Work accounting of one scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Compressed bytes fetched from object storage.
    pub bytes_scanned: u64,
    /// Rows evaluated.
    pub rows_scanned: u64,
    /// Files touched.
    pub files_scanned: u64,
}

/// A brute-force scanner over one table snapshot.
pub struct BruteForce<'a> {
    table: &'a Table<'a>,
    snapshot: Snapshot,
}

impl<'a> BruteForce<'a> {
    /// Creates a scanner over `snapshot` of `table`.
    pub fn new(table: &'a Table<'a>, snapshot: Snapshot) -> Self {
        Self { table, snapshot }
    }

    fn scan_rows(
        &self,
        column: &str,
        mut on_row: impl FnMut(&str, u64, ValueRef<'_>),
    ) -> Result<ScanStats> {
        let mut stats = ScanStats::default();
        for file in self.snapshot.files() {
            let before = self.table.store().stats();
            let reader = ChunkReader::open(self.table.store(), &file.path)?;
            let col = reader
                .meta()
                .schema
                .index_of(column)
                .ok_or_else(|| BaselineError::BadColumn(column.to_string()))?;
            let data = reader.read_column(col)?;
            stats.bytes_scanned += self.table.store().stats().since(&before).bytes_read;
            stats.files_scanned += 1;
            let dv = self.table.load_dv(file)?.unwrap_or_default();
            for i in 0..data.len() {
                if dv.contains(i as u64) {
                    continue;
                }
                stats.rows_scanned += 1;
                on_row(&file.path, i as u64, data.get(i).expect("in range"));
            }
        }
        Ok(stats)
    }

    /// Exact-match scan for a binary key; stops adding past `k` matches but
    /// still scans everything (a full-scan engine reads all splits).
    pub fn scan_uuid(&self, column: &str, key: &[u8], k: usize) -> Result<(Vec<Match>, ScanStats)> {
        let mut matches = Vec::new();
        let stats = self.scan_rows(column, |path, row, v| {
            let hit = match v {
                ValueRef::Binary(b) => b == key,
                ValueRef::Utf8(s) => s.as_bytes() == key,
                _ => false,
            };
            if hit && matches.len() < k {
                matches.push(Match {
                    path: path.to_string(),
                    row,
                    score: None,
                });
            }
        })?;
        Ok((matches, stats))
    }

    /// Substring containment scan.
    pub fn scan_substring(
        &self,
        column: &str,
        pattern: &[u8],
        k: usize,
    ) -> Result<(Vec<Match>, ScanStats)> {
        let mut matches = Vec::new();
        let stats = self.scan_rows(column, |path, row, v| {
            let hay: &[u8] = match v {
                ValueRef::Utf8(s) => s.as_bytes(),
                ValueRef::Binary(b) => b,
                _ => return,
            };
            let hit = !pattern.is_empty()
                && hay.len() >= pattern.len()
                && hay.windows(pattern.len()).any(|w| w == pattern);
            if hit && matches.len() < k {
                matches.push(Match {
                    path: path.to_string(),
                    row,
                    score: None,
                });
            }
        })?;
        Ok((matches, stats))
    }

    /// Exact top-`k` nearest neighbor scan (perfect recall by definition).
    pub fn scan_vector(
        &self,
        column: &str,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Match>, ScanStats)> {
        let mut top: Vec<Match> = Vec::new();
        let stats = self.scan_rows(column, |path, row, v| {
            if let ValueRef::VectorF32(vec) = v {
                let d = l2_sq(query, vec);
                let at = top.partition_point(|m| m.score.unwrap_or(f32::MAX) <= d);
                if at < k {
                    top.insert(
                        at,
                        Match {
                            path: path.to_string(),
                            row,
                            score: Some(d),
                        },
                    );
                    top.truncate(k);
                }
            }
        })?;
        Ok((top, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rottnest_format::{ColumnData, DataType, Field, RecordBatch, Schema, WriterOptions};
    use rottnest_lake::TableConfig;
    use rottnest_object_store::MemoryStore;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Binary),
            Field::new("msg", DataType::Utf8),
            Field::new("v", DataType::VectorF32 { dim: 4 }),
        ])
    }

    fn key(i: u64) -> Vec<u8> {
        let mut k = vec![0u8; 16];
        k[8..].copy_from_slice(&i.to_be_bytes());
        k
    }

    fn setup(store: &MemoryStore) -> Table<'_> {
        let t = Table::create(
            store,
            "tbl",
            &schema(),
            TableConfig {
                writer: WriterOptions {
                    page_raw_bytes: 1024,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        for f in 0..2u64 {
            let range = f * 50..(f + 1) * 50;
            let batch = RecordBatch::new(
                schema(),
                vec![
                    ColumnData::from_blobs(range.clone().map(key)),
                    ColumnData::from_strings(
                        range.clone().map(|i| format!("row {i} marker{}", i % 10)),
                    ),
                    ColumnData::from_vectors(
                        4,
                        range
                            .map(|i| vec![i as f32, 0.0, 0.0, 0.0])
                            .collect::<Vec<_>>(),
                    )
                    .unwrap(),
                ],
            )
            .unwrap();
            t.append(&batch).unwrap();
        }
        t
    }

    #[test]
    fn uuid_scan_finds_exact_row() {
        let store = MemoryStore::unmetered();
        let t = setup(&store);
        let bf = BruteForce::new(&t, t.snapshot().unwrap());
        let (m, stats) = bf.scan_uuid("id", &key(73), 10).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].row, 23);
        assert_eq!(stats.files_scanned, 2);
        assert_eq!(stats.rows_scanned, 100);
        assert!(stats.bytes_scanned > 0);
    }

    #[test]
    fn substring_scan_honors_k_and_dvs() {
        let store = MemoryStore::unmetered();
        let t = setup(&store);
        // marker7 matches rows 7,17,..,97 → 10 rows; delete one.
        let first = t.snapshot().unwrap().files().next().unwrap().path.clone();
        t.delete_rows(&first, &[7]).unwrap();
        let bf = BruteForce::new(&t, t.snapshot().unwrap());
        let (m, _) = bf.scan_substring("msg", b"marker7", 100).unwrap();
        assert_eq!(m.len(), 9);
        let (m, _) = bf.scan_substring("msg", b"marker7", 3).unwrap();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn vector_scan_returns_sorted_topk() {
        let store = MemoryStore::unmetered();
        let t = setup(&store);
        let bf = BruteForce::new(&t, t.snapshot().unwrap());
        let (m, _) = bf.scan_vector("v", &[60.0, 0.0, 0.0, 0.0], 3).unwrap();
        let rows: Vec<u64> = m.iter().map(|x| x.row).collect();
        // Nearest to 60 are ids 60 (row 10 of file 2), 59, 61.
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].score, Some(0.0));
        assert!(rows.contains(&10));
        assert!(m.windows(2).all(|w| w[0].score <= w[1].score));
    }

    #[test]
    fn scan_respects_snapshot_time_travel() {
        let store = MemoryStore::unmetered();
        let t = setup(&store);
        let v1 = t.snapshot_at(1).unwrap(); // after first append
        let bf = BruteForce::new(&t, v1);
        let (_, stats) = bf.scan_substring("msg", b"row", 10_000).unwrap();
        assert_eq!(stats.files_scanned, 1);
        assert_eq!(stats.rows_scanned, 50);
    }
}
