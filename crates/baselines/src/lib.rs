//! The two baselines Rottnest is evaluated against (§II-C, §VII):
//!
//! * [`brute`] — **brute-force scanning**: a Spark/EMR-like engine that
//!   downloads entire column chunks through the traditional reader and
//!   evaluates predicates over every row, horizontally scaled with the
//!   cluster model of [`rottnest_tco::ClusterModel`];
//! * [`dedicated`] — **copy data**: an OpenSearch/LanceDB-like always-on
//!   system holding purpose-built in-memory indexes (hash map, in-RAM
//!   FM-index, flat vector store) with the paper's 3-node replicated cost
//!   model.
//!
//! Both produce the *same answers* as Rottnest search (tests assert it);
//! they differ in where the cost lands — which is exactly what the phase
//! diagrams measure.

pub mod brute;
pub mod dedicated;

pub use brute::{BruteForce, ScanStats};
pub use dedicated::{DedicatedText, DedicatedUuid, DedicatedVector};

/// Errors from baseline operations.
#[derive(Debug)]
pub enum BaselineError {
    /// Referenced column missing or mistyped.
    BadColumn(String),
    /// Lake failure.
    Lake(rottnest_lake::LakeError),
    /// Format failure.
    Format(rottnest_format::FormatError),
    /// FM failure (dedicated text index).
    Fm(rottnest_fm::FmError),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::BadColumn(m) => write!(f, "bad column: {m}"),
            BaselineError::Lake(e) => write!(f, "lake: {e}"),
            BaselineError::Format(e) => write!(f, "format: {e}"),
            BaselineError::Fm(e) => write!(f, "fm: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<rottnest_lake::LakeError> for BaselineError {
    fn from(e: rottnest_lake::LakeError) -> Self {
        BaselineError::Lake(e)
    }
}

impl From<rottnest_format::FormatError> for BaselineError {
    fn from(e: rottnest_format::FormatError) -> Self {
        BaselineError::Format(e)
    }
}

impl From<rottnest_fm::FmError> for BaselineError {
    fn from(e: rottnest_fm::FmError) -> Self {
        BaselineError::Fm(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, BaselineError>;
