//! Rottnest query serving layer: staying correct — and fast to say no —
//! under overload.
//!
//! [`QueryService`] wraps a [`rottnest::Rottnest`] client with the
//! pipeline a multi-tenant search endpoint needs:
//!
//! 1. **Tenant budgets** — per-tenant admitted-queries-per-second via the
//!    object-store layer's `PrefixThrottle` cost model (rejecting mode).
//! 2. **Admission control** ([`Admission`]) — a counting semaphore with
//!    bounded per-class wait queues scheduled by weighted fair queueing
//!    over virtual time ([`QueryClass`]: interactive vs batch); arrivals
//!    past the bound shed immediately with a typed
//!    [`rottnest::RottnestError::Overloaded`], and under contention each
//!    class keeps at least its weight share of admissions.
//! 3. **Deadline-aware shedding** — a query whose deadline cannot be met
//!    even if admitted ([`estimate_finish_ms`]) is refused before it
//!    costs a single store request.
//! 4. **Single-flight dedup** — identical in-flight queries (same
//!    snapshot version, column, and query fingerprint) share one search;
//!    a thousand concurrent hot-UUID lookups cost one set of GETs.
//! 5. **Deadline propagation** — the absolute deadline rides into
//!    [`rottnest::Rottnest::search_with_deadline`], which polls it
//!    cooperatively between index probes and brute-scanned files and
//!    aborts with a typed `DeadlineExceeded` that never poisons caches.
//!
//! Admitted queries return results bit-identical to a direct
//! `Rottnest::search` call; everything the service refuses or aborts
//! fails fast with a typed error carrying a retry hint.
//!
//! [`sim`] holds a deterministic virtual-time model of the same policy
//! (sharing [`estimate_finish_ms`] verbatim) that `bench_serve` uses to
//! report reproducible tail latencies, shed rates, and dedup rates.

pub mod admission;
pub mod service;
pub mod sim;

pub use admission::{
    estimate_finish_ms, virtual_finish_tag, Admission, AdmissionConfig, Permit, QueryClass,
    ShedReason, WFQ_SCALE,
};
pub use service::{QueryService, ServeMode, ServiceConfig, ServiceStats};
pub use sim::{simulate, SimConfig, SimReport};
