//! Admission control with weighted fair queueing over virtual time,
//! bounded per-class queues, and deadline-aware shedding.
//!
//! The serving layer's first line of defense: at most `max_concurrent`
//! searches run at once, at most `max_queued` *per class* wait behind
//! them, and a query whose deadline cannot be met *even if admitted* is
//! refused immediately — before it costs a single store request — with a
//! typed [`ShedReason`] the client can act on. Everything past those
//! bounds fails fast instead of piling onto a collapsing server.
//!
//! Queued work is scheduled per **flow** under weighted fair queueing: a
//! flow is a scheduling class ([`QueryClass::Interactive`] vs
//! [`QueryClass::Batch`]), optionally refined by tenant for tenants that
//! carry an explicit weight in [`AdmissionConfig::tenant_weights`]. Every
//! arrival is stamped with a virtual finish tag ([`virtual_finish_tag`])
//! on its flow's tag chain — advancing by `WFQ_SCALE / (class_weight ×
//! tenant_weight)` per dispatch — and freed slots go to the queued waiter
//! with the smallest tag (ties to earliest arrival). A flow with weight
//! `w` gets `w / Σw` of contended slots, so a sustained interactive flood
//! cannot starve batch below its weight share, a heavy tenant cannot
//! starve a light one below its, and a deep batch backlog cannot delay an
//! interactive burst by more than one batch inter-service gap. Within a
//! flow, tags are monotone, so dispatch stays FIFO per flow and fresh
//! arrivals can never barge past queued waiters. Tenants *without* a
//! configured weight share their class's default flow, which preserves
//! plain two-class WFQ exactly when `tenant_weights` is empty.
//!
//! The finish-time estimate that drives deadline shedding is a pure
//! function ([`estimate_finish_ms`]) shared with the deterministic
//! open-arrival simulator (`crate::sim`), as is the tag arithmetic —
//! so the benchmark models exactly the policy the threaded controller
//! enforces.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex};
use rottnest::RottnestError;

/// Scheduling class of a query. Interactive queries carry tight deadlines
/// and a high weight; batch queries soak spare capacity at a low weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueryClass {
    /// Latency-sensitive traffic (the default).
    #[default]
    Interactive,
    /// Throughput traffic that tolerates queueing.
    Batch,
}

impl QueryClass {
    /// Index into per-class arrays.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            QueryClass::Interactive => 0,
            QueryClass::Batch => 1,
        }
    }
}

/// Fixed-point scale for virtual-time arithmetic: one dispatched query at
/// weight `w` advances its class tag by `WFQ_SCALE / w`.
pub const WFQ_SCALE: u64 = 1 << 16;

/// Virtual finish tag for a flow's next arrival: the later of global
/// virtual time and the flow's last tag, plus one weighted service
/// quantum. Pure — shared verbatim by the threaded controller and the
/// virtual-time simulator so both schedule identically.
pub fn virtual_finish_tag(virtual_time: u64, class_last_tag: u64, weight: u32) -> u64 {
    virtual_time.max(class_last_tag) + WFQ_SCALE / u64::from(weight.max(1))
}

/// Knobs for the admission controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Searches allowed to run concurrently. With every fan-out on the
    /// shared worker pool this is a pure admission bound, not a thread
    /// count — it can sit far above the pool size (an admitted query whose
    /// fan-out finds no free worker runs its units itself).
    pub max_concurrent: usize,
    /// Searches allowed to wait for a slot, per class; arrivals beyond
    /// this shed with [`ShedReason::QueueFull`]. Bounding per class keeps
    /// an interactive flood from consuming batch's queue space (and vice
    /// versa).
    pub max_queued: usize,
    /// Seed for the per-query service-time estimate (store-clock ms),
    /// used for deadline shedding until real completions refine it.
    pub expected_service_ms: u64,
    /// Weighted-fair-queueing weight for interactive queries.
    pub interactive_weight: u32,
    /// Weighted-fair-queueing weight for batch queries.
    pub batch_weight: u32,
    /// Per-tenant WFQ weights: a tenant listed here is scheduled as its
    /// own flow per class, with effective weight `class_weight ×
    /// tenant_weight`. Tenants not listed share their class's default
    /// flow (weight `class_weight × 1`) — an empty list is exactly
    /// two-class WFQ.
    pub tenant_weights: Vec<(String, u32)>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_concurrent: rottnest_object_store::default_parallelism(),
            max_queued: 64,
            expected_service_ms: 50,
            interactive_weight: 4,
            batch_weight: 1,
            tenant_weights: Vec::new(),
        }
    }
}

impl AdmissionConfig {
    /// The WFQ weight for `class`.
    pub fn weight(&self, class: QueryClass) -> u32 {
        match class {
            QueryClass::Interactive => self.interactive_weight,
            QueryClass::Batch => self.batch_weight,
        }
    }

    /// The configured weight for `tenant`, if it has one. Tenants without
    /// an explicit weight return `None` and ride their class's default
    /// flow.
    pub fn tenant_weight(&self, tenant: &str) -> Option<u32> {
        self.tenant_weights
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|&(_, w)| w.max(1))
    }
}

/// Why a query was refused at admission. Every variant is raised *before*
/// the query issues any store traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShedReason {
    /// The class's wait queue is at capacity.
    QueueFull {
        /// Client hint: one estimated service time from now.
        retry_after_ms: u64,
    },
    /// Even if queued, the estimated finish time is past the deadline —
    /// running the query would only waste work it cannot complete in time.
    DeadlineUnmeetable {
        /// Estimated store-clock finish time were the query admitted.
        estimated_finish_ms: u64,
        /// The query's absolute deadline.
        deadline_ms: u64,
    },
    /// The tenant exhausted its admitted-queries-per-second budget.
    TenantBudget {
        /// Client hint: when the budget window rolls over.
        retry_after_ms: u64,
    },
    /// The service is in brownout (the index domain's circuit breaker is
    /// open) and batch-class work is shed first so the degraded capacity
    /// serves interactive queries.
    Brownout {
        /// Client hint: the breaker cooldown — earliest the service could
        /// be probing its way back to normal.
        retry_after_ms: u64,
    },
}

impl ShedReason {
    /// Converts into the protocol-level typed error.
    pub fn into_error(self) -> RottnestError {
        match self {
            ShedReason::QueueFull { retry_after_ms } => RottnestError::Overloaded {
                reason: "admission queue full".to_string(),
                retry_after_ms,
            },
            ShedReason::DeadlineUnmeetable {
                estimated_finish_ms,
                deadline_ms,
            } => RottnestError::Overloaded {
                reason: format!(
                    "deadline unmeetable: estimated finish {estimated_finish_ms}ms past \
                     deadline {deadline_ms}ms"
                ),
                retry_after_ms: estimated_finish_ms.saturating_sub(deadline_ms).max(1),
            },
            ShedReason::Brownout { retry_after_ms } => RottnestError::Overloaded {
                reason: "brownout: index domain breaker open, batch shed first".to_string(),
                retry_after_ms,
            },
            ShedReason::TenantBudget { retry_after_ms } => RottnestError::Overloaded {
                reason: "tenant budget exhausted".to_string(),
                retry_after_ms,
            },
        }
    }
}

/// Estimated store-clock time at which a query arriving now would finish,
/// given `running` active searches, `queued` waiting ahead of it,
/// `max_concurrent` slots, and a per-query service-time estimate.
///
/// The model is wave-based: the arrivals ahead drain in batches of
/// `max_concurrent`, each batch costing one service time, and the query
/// itself costs one more. Under WFQ "queued ahead" means waiters whose
/// virtual finish tag is at most the arrival's own — the set the
/// scheduler would actually serve first. Pure — shared verbatim by the
/// threaded controller and the virtual-time simulator.
pub fn estimate_finish_ms(
    now_ms: u64,
    running: usize,
    queued: usize,
    max_concurrent: usize,
    service_ms: u64,
) -> u64 {
    let ahead = running + queued;
    let waves = ahead / max_concurrent.max(1);
    now_ms + (waves as u64 + 1) * service_ms.max(1)
}

#[derive(Debug)]
struct Waiter {
    ticket: u64,
    vft: u64,
}

/// One WFQ flow: a class, optionally refined by an explicitly weighted
/// tenant. All waiters in a flow share one weight, so tags are monotone
/// within its queue and the front is the flow's minimum.
#[derive(Debug)]
struct Flow {
    class: usize,
    /// `Some` only for tenants with a configured weight; everyone else
    /// shares their class's `None` flow.
    tenant: Option<String>,
    /// Last tag issued in this flow.
    last_tag: u64,
    queue: VecDeque<Waiter>,
}

#[derive(Debug, Default)]
struct State {
    running: usize,
    /// Per-flow wait queues, created lazily on first arrival and never
    /// removed (so indices stay stable while a waiter is parked).
    flows: Vec<Flow>,
    next_ticket: u64,
    /// Ticket holding an unclaimed slot grant; only its holder may leave
    /// the wait loop, so wakeups hand slots to the WFQ winner.
    granted: Option<u64>,
    /// Global virtual time: the largest tag ever dispatched.
    virtual_time: u64,
}

impl State {
    fn total_queued(&self) -> usize {
        self.flows.iter().map(|f| f.queue.len()).sum()
    }

    fn queued_in_class(&self, class: usize) -> usize {
        self.flows
            .iter()
            .filter(|f| f.class == class)
            .map(|f| f.queue.len())
            .sum()
    }

    /// Index of the flow for (`class`, `tenant`), creating it on first
    /// use.
    fn flow_idx(&mut self, class: usize, tenant: Option<&str>) -> usize {
        if let Some(i) = self
            .flows
            .iter()
            .position(|f| f.class == class && f.tenant.as_deref() == tenant)
        {
            return i;
        }
        self.flows.push(Flow {
            class,
            tenant: tenant.map(str::to_owned),
            last_tag: 0,
            queue: VecDeque::new(),
        });
        self.flows.len() - 1
    }

    /// Grants the freed slot to the waiter with the smallest virtual
    /// finish tag (ties go to interactive, then to earliest arrival).
    /// No-op while a grant is outstanding — the grantee re-dispatches
    /// when it claims its slot.
    fn dispatch(&mut self) {
        if self.granted.is_some() {
            return;
        }
        let best = self
            .flows
            .iter()
            .filter_map(|f| f.queue.front().map(|w| (w.vft, f.class, w.ticket)))
            .min();
        if let Some((vft, _, ticket)) = best {
            self.virtual_time = self.virtual_time.max(vft);
            self.granted = Some(ticket);
        }
    }
}

/// The admission controller: a counting semaphore with bounded per-class
/// wait queues, weighted-fair dispatch, and deadline-aware shedding at
/// the gate.
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    cv: Condvar,
    /// Smoothed observed service time (ms), seeded by
    /// [`AdmissionConfig::expected_service_ms`].
    service_ms: AtomicU64,
}

impl std::fmt::Debug for Admission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (running, queued) = self.occupancy();
        f.debug_struct("Admission")
            .field("cfg", &self.cfg)
            .field("running", &running)
            .field("queued", &queued)
            .field("service_ms", &self.service_ms())
            .finish()
    }
}

impl Admission {
    /// Creates a controller with the given bounds.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            service_ms: AtomicU64::new(cfg.expected_service_ms.max(1)),
            cfg,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        }
    }

    /// The bounds in effect.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Current smoothed service-time estimate (store-clock ms).
    pub fn service_ms(&self) -> u64 {
        self.service_ms.load(Ordering::Relaxed)
    }

    /// Folds an observed query duration into the service-time estimate
    /// (EWMA with 1/4 weight on the new sample).
    pub fn observe_service_ms(&self, observed_ms: u64) {
        let old = self.service_ms.load(Ordering::Relaxed);
        let new = (old * 3 + observed_ms.max(1)) / 4;
        self.service_ms.store(new.max(1), Ordering::Relaxed);
    }

    /// Admits an interactive query or sheds it; see [`Self::admit_class`].
    pub fn admit(&self, now_ms: u64, deadline_ms: Option<u64>) -> Result<Permit<'_>, ShedReason> {
        self.admit_class(now_ms, deadline_ms, QueryClass::Interactive)
    }

    /// Admits a query in `class` with no tenant refinement; see
    /// [`Self::admit_flow`].
    pub fn admit_class(
        &self,
        now_ms: u64,
        deadline_ms: Option<u64>,
        class: QueryClass,
    ) -> Result<Permit<'_>, ShedReason> {
        self.admit_flow(now_ms, deadline_ms, class, None)
    }

    /// Admits a query in `class` on behalf of `tenant`, or sheds it. On
    /// success the returned [`Permit`] holds one concurrency slot until
    /// dropped; callers run the search under it. Shedding never blocks:
    /// `QueueFull` and `DeadlineUnmeetable` are decided from the state at
    /// arrival.
    ///
    /// A tenant with a configured weight ([`AdmissionConfig::
    /// tenant_weights`]) is scheduled as its own flow at `class_weight ×
    /// tenant_weight`; any other tenant (or `None`) rides the class's
    /// default flow, so the call is exactly [`Self::admit_class`] when no
    /// tenant weights are configured.
    ///
    /// A queued query waits (blocking) for a slot; its deadline was
    /// checked as meetable at arrival, and the search itself re-checks
    /// cooperatively once running, so a late wake degrades into a typed
    /// [`RottnestError::DeadlineExceeded`] rather than silent extra load.
    ///
    /// Freed slots go to the queued waiter with the smallest virtual
    /// finish tag. A fresh arrival admits directly only when nobody is
    /// queued, so under sustained arrivals a waiter cannot be barged past
    /// indefinitely — the finish estimate its admission was based on
    /// stays honest, and each flow keeps at least its weight share of
    /// contended slots.
    pub fn admit_flow(
        &self,
        now_ms: u64,
        deadline_ms: Option<u64>,
        class: QueryClass,
        tenant: Option<&str>,
    ) -> Result<Permit<'_>, ShedReason> {
        let c = class.idx();
        let tenant_w = tenant.and_then(|t| self.cfg.tenant_weight(t));
        let weight = match tenant_w {
            Some(tw) => self.cfg.weight(class).saturating_mul(tw),
            None => self.cfg.weight(class),
        };
        // Only explicitly weighted tenants get their own flow.
        let flow_key = if tenant_w.is_some() { tenant } else { None };
        let mut st = self.state.lock();
        if st.running >= self.cfg.max_concurrent || st.total_queued() > 0 {
            if st.queued_in_class(c) >= self.cfg.max_queued {
                return Err(ShedReason::QueueFull {
                    retry_after_ms: self.service_ms(),
                });
            }
            let fi = st.flow_idx(c, flow_key);
            let vft = virtual_finish_tag(st.virtual_time, st.flows[fi].last_tag, weight);
            if let Some(deadline_ms) = deadline_ms {
                // Ahead of me: waiters the scheduler would serve first —
                // those with tags at most mine (FIFO within my flow,
                // weight-share across flows).
                let ahead = st
                    .flows
                    .iter()
                    .flat_map(|f| f.queue.iter())
                    .filter(|w| w.vft <= vft)
                    .count();
                let estimated_finish_ms = estimate_finish_ms(
                    now_ms,
                    st.running,
                    ahead,
                    self.cfg.max_concurrent,
                    self.service_ms(),
                );
                if estimated_finish_ms > deadline_ms {
                    return Err(ShedReason::DeadlineUnmeetable {
                        estimated_finish_ms,
                        deadline_ms,
                    });
                }
            }
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.flows[fi].last_tag = vft;
            st.flows[fi].queue.push_back(Waiter { ticket, vft });
            if st.running < self.cfg.max_concurrent {
                st.dispatch();
                if st.granted.is_some() && st.granted != Some(ticket) {
                    self.cv.notify_all();
                }
            }
            while st.granted != Some(ticket) {
                self.cv.wait(&mut st);
            }
            // Claim the grant: leave the queue, take the slot. Tags are
            // monotone within a flow, so a granted waiter is its flow's
            // front.
            st.granted = None;
            let front = st.flows[fi]
                .queue
                .pop_front()
                .expect("granted waiter is queued");
            debug_assert_eq!(front.ticket, ticket);
            st.running += 1;
            // Several permits may have dropped at once: if a slot is
            // still free, grant it to the next WFQ winner.
            if st.running < self.cfg.max_concurrent {
                st.dispatch();
                if st.granted.is_some() {
                    self.cv.notify_all();
                }
            }
        } else {
            st.running += 1;
        }
        Ok(Permit { admission: self })
    }

    /// `(running, queued)` occupancy across classes (tests and
    /// introspection).
    pub fn occupancy(&self) -> (usize, usize) {
        let st = self.state.lock();
        (st.running, st.total_queued())
    }

    /// Queue depth for one class (summed across its tenant flows).
    pub fn queued_in_class(&self, class: QueryClass) -> usize {
        self.state.lock().queued_in_class(class.idx())
    }
}

/// One admitted query's concurrency slot; releasing it (drop) grants the
/// slot to the WFQ winner among queued queries. RAII, so a panicking
/// search still frees its slot.
#[derive(Debug)]
pub struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.admission.state.lock();
        st.running = st.running.saturating_sub(1);
        if st.running < self.admission.cfg.max_concurrent {
            st.dispatch();
        }
        drop(st);
        // Wake every waiter: only the granted ticket may take the slot,
        // and notify_one could land on a non-granted waiter that just
        // re-waits, losing the wakeup.
        self.admission.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_concurrent: usize, max_queued: usize) -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent,
            max_queued,
            expected_service_ms: 10,
            ..AdmissionConfig::default()
        }
    }

    #[test]
    fn admits_up_to_concurrency_then_queues_then_sheds() {
        let adm = Admission::new(cfg(2, 1));
        let p1 = adm.admit(0, None).unwrap();
        let p2 = adm.admit(0, None).unwrap();
        assert_eq!(adm.occupancy(), (2, 0));
        // Third would queue (blocking), fourth would shed; prove the shed
        // bound without blocking by filling the queue from another thread.
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                // Occupies the single queue slot until permits free up.
                let _p3 = adm.admit(0, None).unwrap();
            });
            while adm.occupancy().1 < 1 {
                std::thread::yield_now();
            }
            match adm.admit(0, None) {
                Err(ShedReason::QueueFull { .. }) => {}
                other => panic!("expected QueueFull, got {other:?}"),
            }
            drop(p1);
            drop(p2);
            h.join().unwrap();
        });
    }

    #[test]
    fn deadline_unmeetable_sheds_before_queueing() {
        let adm = Admission::new(cfg(1, 8));
        let _p = adm.admit(0, None).unwrap();
        // One query running, estimate 10ms service: a queued arrival
        // would finish around t=20 — a deadline of 5 can't be met.
        match adm.admit(0, Some(5)) {
            Err(ShedReason::DeadlineUnmeetable {
                estimated_finish_ms,
                deadline_ms,
            }) => {
                assert!(estimated_finish_ms > deadline_ms);
            }
            other => panic!("expected DeadlineUnmeetable, got {other:?}"),
        }
        // A generous deadline queues instead — prove it doesn't shed by
        // freeing the permit from another thread.
        std::thread::scope(|s| {
            let h = s.spawn(|| adm.admit(0, Some(1_000)).map(|_| ()));
            while adm.occupancy().1 < 1 {
                std::thread::yield_now();
            }
            drop(_p);
            h.join().unwrap().unwrap();
        });
    }

    #[test]
    fn permit_drop_frees_slot() {
        let adm = Admission::new(cfg(1, 0));
        let p = adm.admit(0, None).unwrap();
        assert!(matches!(
            adm.admit(0, None),
            Err(ShedReason::QueueFull { .. })
        ));
        drop(p);
        let _p2 = adm.admit(0, None).unwrap();
    }

    #[test]
    fn freed_slots_go_to_queued_waiters_before_fresh_arrivals() {
        // Regression: a fresh arrival that lands between a permit drop
        // and the queued waiter's wake must not barge past the waiter.
        // The race is real, so hammer it: any iteration where the fresh
        // arrival (B) admits before the waiter (A) is a failure.
        for _ in 0..200 {
            let adm = Admission::new(cfg(2, 4));
            let p1 = adm.admit(0, None).unwrap();
            let _p2 = adm.admit(0, None).unwrap();
            let order = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                let a = s.spawn(|| {
                    let p = adm.admit(0, None).unwrap();
                    order.lock().push('A');
                    drop(p);
                });
                while adm.occupancy().1 < 1 {
                    std::thread::yield_now();
                }
                // A is queued. Free a slot and immediately race B in.
                drop(p1);
                let b = s.spawn(|| {
                    let p = adm.admit(0, None).unwrap();
                    order.lock().push('B');
                    drop(p);
                });
                a.join().unwrap();
                b.join().unwrap();
            });
            assert_eq!(*order.lock(), vec!['A', 'B'], "fresh arrival barged");
        }
    }

    /// Queues `n` waiters of `class` and returns once all are parked.
    /// Each waiter logs its class on dispatch and immediately releases
    /// its slot, so the log records pure WFQ dispatch order.
    fn park_waiters<'s, 'e>(
        s: &'s std::thread::Scope<'s, 'e>,
        adm: &'e Admission,
        class: QueryClass,
        n: usize,
        order: &'e Mutex<Vec<QueryClass>>,
    ) {
        let parked_before = adm.queued_in_class(class);
        for _ in 0..n {
            s.spawn(move || {
                let p = adm.admit_class(0, None, class).unwrap();
                order.lock().push(class);
                drop(p);
            });
        }
        while adm.queued_in_class(class) < parked_before + n {
            std::thread::yield_now();
        }
    }

    #[test]
    fn wfq_gives_batch_its_weight_share_under_interactive_backlog() {
        // One slot, weights 4:1. Park 12 interactive and 3 batch waiters
        // behind a held permit, then release: dispatch order must follow
        // the virtual-time tags exactly — one batch query in every five
        // dispatches — regardless of thread timing, because tags were
        // assigned while everyone was parked.
        let adm = Admission::new(AdmissionConfig {
            max_concurrent: 1,
            max_queued: 16,
            expected_service_ms: 10,
            interactive_weight: 4,
            batch_weight: 1,
            tenant_weights: Vec::new(),
        });
        let gate = adm.admit(0, None).unwrap();
        let order = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            park_waiters(s, &adm, QueryClass::Interactive, 12, &order);
            park_waiters(s, &adm, QueryClass::Batch, 3, &order);
            drop(gate);
        });
        let order: Vec<QueryClass> = order.into_inner();
        assert_eq!(order.len(), 15);
        // Interactive tags: k/4 quanta; batch tags: whole quanta. Merged
        // ascending (ties to interactive): I I I I B I I I I B ...
        for (i, chunk) in order.chunks(5).enumerate() {
            let batch = chunk.iter().filter(|c| **c == QueryClass::Batch).count();
            assert_eq!(
                batch, 1,
                "dispatch wave {i} must carry exactly one batch query: {order:?}"
            );
        }
    }

    #[test]
    fn interactive_burst_is_not_starved_by_queued_batch_work() {
        // A deep batch backlog is parked first; a later interactive burst
        // must still be served ahead of most of it — its tags (quarter
        // quanta) sort below the batch backlog's (whole quanta).
        let adm = Admission::new(AdmissionConfig {
            max_concurrent: 1,
            max_queued: 16,
            expected_service_ms: 10,
            interactive_weight: 4,
            batch_weight: 1,
            tenant_weights: Vec::new(),
        });
        let gate = adm.admit(0, None).unwrap();
        let order = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            park_waiters(s, &adm, QueryClass::Batch, 10, &order);
            park_waiters(s, &adm, QueryClass::Interactive, 5, &order);
            drop(gate);
        });
        let order: Vec<QueryClass> = order.into_inner();
        assert_eq!(order.len(), 15);
        let last_interactive = order
            .iter()
            .rposition(|c| *c == QueryClass::Interactive)
            .unwrap();
        // Tags: interactive at 1/4..=5/4 quanta, batch at 1..=10. Merged:
        // four interactive, batch#1, the fifth interactive, then the
        // batch backlog — the whole burst done within six dispatches.
        assert!(
            last_interactive < 6,
            "burst starved behind batch backlog: {order:?}"
        );
        assert_eq!(order[0], QueryClass::Interactive);
    }

    /// Queues `n` interactive waiters for `tenant` and returns once all
    /// are parked; each logs its tenant on dispatch.
    fn park_tenant_waiters<'s, 'e>(
        s: &'s std::thread::Scope<'s, 'e>,
        adm: &'e Admission,
        tenant: &'static str,
        n: usize,
        order: &'e Mutex<Vec<&'static str>>,
    ) {
        let parked_before = adm.occupancy().1;
        for _ in 0..n {
            s.spawn(move || {
                let p = adm
                    .admit_flow(0, None, QueryClass::Interactive, Some(tenant))
                    .unwrap();
                order.lock().push(tenant);
                drop(p);
            });
        }
        while adm.occupancy().1 < parked_before + n {
            std::thread::yield_now();
        }
    }

    #[test]
    fn weighted_tenant_gets_its_share_without_starving_the_default_flow() {
        // One slot, interactive weight 4, tenant "heavy" weighted 3× and
        // "light" unweighted (class default flow). Heavy's tags advance by
        // 1/12 quantum per arrival, light's by 3/12 — so every window of
        // four dispatches carries exactly one light query: heavy gets 3×
        // the slots, light is never starved below its share.
        let adm = Admission::new(AdmissionConfig {
            max_concurrent: 1,
            max_queued: 16,
            expected_service_ms: 10,
            interactive_weight: 4,
            batch_weight: 1,
            tenant_weights: vec![("heavy".to_string(), 3)],
        });
        let gate = adm.admit(0, None).unwrap();
        let order = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            park_tenant_waiters(s, &adm, "heavy", 9, &order);
            park_tenant_waiters(s, &adm, "light", 3, &order);
            drop(gate);
        });
        let order: Vec<&str> = order.into_inner();
        assert_eq!(order.len(), 12);
        for (i, chunk) in order.chunks(4).enumerate() {
            let light = chunk.iter().filter(|t| **t == "light").count();
            assert_eq!(
                light, 1,
                "dispatch wave {i} must carry exactly one light-tenant query: {order:?}"
            );
        }
    }

    #[test]
    fn unweighted_tenants_share_the_class_flow_fifo() {
        // With no tenant weights configured, tenants ride the class flow:
        // one tag chain, strict FIFO — identical to tenant-blind WFQ.
        let adm = Admission::new(cfg(1, 8));
        let gate = adm.admit(0, None).unwrap();
        let order = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            park_tenant_waiters(s, &adm, "a", 2, &order);
            park_tenant_waiters(s, &adm, "b", 2, &order);
            drop(gate);
        });
        assert_eq!(*order.lock(), vec!["a", "a", "b", "b"]);
    }

    #[test]
    fn tenant_weight_lookup_ignores_unknown_tenants() {
        let cfg = AdmissionConfig {
            tenant_weights: vec![("alice".to_string(), 5), ("zero".to_string(), 0)],
            ..AdmissionConfig::default()
        };
        assert_eq!(cfg.tenant_weight("alice"), Some(5));
        assert_eq!(cfg.tenant_weight("bob"), None);
        // A configured weight of 0 clamps to 1 rather than dividing by 0.
        assert_eq!(cfg.tenant_weight("zero"), Some(1));
    }

    #[test]
    fn estimate_is_wave_based() {
        // Nothing ahead: one service time.
        assert_eq!(estimate_finish_ms(100, 0, 0, 4, 10), 110);
        // A full wave ahead: two service times.
        assert_eq!(estimate_finish_ms(100, 4, 0, 4, 10), 120);
        // Partial wave ahead still drains within the first wave.
        assert_eq!(estimate_finish_ms(100, 3, 0, 4, 10), 110);
        // 11 ahead: two full waves drain, then I run in the third.
        assert_eq!(estimate_finish_ms(100, 4, 7, 4, 10), 130);
        // 12 ahead: three full waves, then mine.
        assert_eq!(estimate_finish_ms(100, 4, 8, 4, 10), 140);
    }

    #[test]
    fn tags_advance_by_weighted_quanta() {
        // Heavier weight → smaller increments → more dispatches per
        // virtual-time unit.
        assert_eq!(virtual_finish_tag(0, 0, 1), WFQ_SCALE);
        assert_eq!(virtual_finish_tag(0, 0, 4), WFQ_SCALE / 4);
        // Tags never regress behind global virtual time: an idle class
        // re-enters at current virtual time, not at its stale last tag.
        assert_eq!(
            virtual_finish_tag(10 * WFQ_SCALE, WFQ_SCALE, 1),
            11 * WFQ_SCALE
        );
    }

    #[test]
    fn service_estimate_smooths_observations() {
        let adm = Admission::new(cfg(1, 1));
        assert_eq!(adm.service_ms(), 10);
        adm.observe_service_ms(50);
        assert_eq!(adm.service_ms(), 20);
        for _ in 0..16 {
            adm.observe_service_ms(50);
        }
        assert!(adm.service_ms() > 40, "estimate converges toward samples");
    }

    #[test]
    fn shed_reasons_map_to_overloaded() {
        let e = ShedReason::QueueFull { retry_after_ms: 7 }.into_error();
        assert!(matches!(
            e,
            RottnestError::Overloaded {
                retry_after_ms: 7,
                ..
            }
        ));
        let e = ShedReason::DeadlineUnmeetable {
            estimated_finish_ms: 30,
            deadline_ms: 20,
        }
        .into_error();
        assert!(matches!(
            e,
            RottnestError::Overloaded {
                retry_after_ms: 10,
                ..
            }
        ));
    }
}
