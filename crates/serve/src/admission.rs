//! Semaphore-based admission control with bounded queueing and
//! deadline-aware shedding.
//!
//! The serving layer's first line of defense: at most `max_concurrent`
//! searches run at once, at most `max_queued` wait behind them, and a
//! query whose deadline cannot be met *even if admitted* is refused
//! immediately — before it costs a single store request — with a typed
//! [`ShedReason`] the client can act on. Everything past those bounds
//! fails fast instead of piling onto a collapsing server.
//!
//! The finish-time estimate that drives deadline shedding is a pure
//! function ([`estimate_finish_ms`]) shared with the deterministic
//! open-arrival simulator (`crate::sim`), so the benchmark models exactly
//! the policy the threaded controller enforces.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex};
use rottnest::RottnestError;

/// Knobs for the admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Searches allowed to run concurrently.
    pub max_concurrent: usize,
    /// Searches allowed to wait for a slot; arrivals beyond this shed
    /// with [`ShedReason::QueueFull`].
    pub max_queued: usize,
    /// Seed for the per-query service-time estimate (store-clock ms),
    /// used for deadline shedding until real completions refine it.
    pub expected_service_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_concurrent: rottnest_object_store::default_parallelism(),
            max_queued: 64,
            expected_service_ms: 50,
        }
    }
}

/// Why a query was refused at admission. Every variant is raised *before*
/// the query issues any store traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShedReason {
    /// The wait queue is at capacity.
    QueueFull {
        /// Client hint: one estimated service time from now.
        retry_after_ms: u64,
    },
    /// Even if queued, the estimated finish time is past the deadline —
    /// running the query would only waste work it cannot complete in time.
    DeadlineUnmeetable {
        /// Estimated store-clock finish time were the query admitted.
        estimated_finish_ms: u64,
        /// The query's absolute deadline.
        deadline_ms: u64,
    },
    /// The tenant exhausted its admitted-queries-per-second budget.
    TenantBudget {
        /// Client hint: when the budget window rolls over.
        retry_after_ms: u64,
    },
}

impl ShedReason {
    /// Converts into the protocol-level typed error.
    pub fn into_error(self) -> RottnestError {
        match self {
            ShedReason::QueueFull { retry_after_ms } => RottnestError::Overloaded {
                reason: "admission queue full".to_string(),
                retry_after_ms,
            },
            ShedReason::DeadlineUnmeetable {
                estimated_finish_ms,
                deadline_ms,
            } => RottnestError::Overloaded {
                reason: format!(
                    "deadline unmeetable: estimated finish {estimated_finish_ms}ms past \
                     deadline {deadline_ms}ms"
                ),
                retry_after_ms: estimated_finish_ms.saturating_sub(deadline_ms).max(1),
            },
            ShedReason::TenantBudget { retry_after_ms } => RottnestError::Overloaded {
                reason: "tenant budget exhausted".to_string(),
                retry_after_ms,
            },
        }
    }
}

/// Estimated store-clock time at which a query arriving now would finish,
/// given `running` active searches, `queued` waiting ahead of it,
/// `max_concurrent` slots, and a per-query service-time estimate.
///
/// The model is wave-based: the arrivals ahead drain in batches of
/// `max_concurrent`, each batch costing one service time, and the query
/// itself costs one more. Pure — shared verbatim by the threaded
/// controller and the virtual-time simulator.
pub fn estimate_finish_ms(
    now_ms: u64,
    running: usize,
    queued: usize,
    max_concurrent: usize,
    service_ms: u64,
) -> u64 {
    let ahead = running + queued;
    let waves = ahead / max_concurrent.max(1);
    now_ms + (waves as u64 + 1) * service_ms.max(1)
}

#[derive(Debug, Default)]
struct State {
    running: usize,
    queued: usize,
    /// Next FIFO ticket to hand to a queued arrival.
    next_ticket: u64,
    /// Ticket first in line for a freed slot; only its holder may leave
    /// the wait loop, so wakeups hand slots over in arrival order.
    serving: u64,
}

/// The admission controller: a counting semaphore with a bounded wait
/// queue and deadline-aware shedding at the gate.
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    cv: Condvar,
    /// Smoothed observed service time (ms), seeded by
    /// [`AdmissionConfig::expected_service_ms`].
    service_ms: AtomicU64,
}

impl std::fmt::Debug for Admission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (running, queued) = self.occupancy();
        f.debug_struct("Admission")
            .field("cfg", &self.cfg)
            .field("running", &running)
            .field("queued", &queued)
            .field("service_ms", &self.service_ms())
            .finish()
    }
}

impl Admission {
    /// Creates a controller with the given bounds.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            service_ms: AtomicU64::new(cfg.expected_service_ms.max(1)),
            cfg,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        }
    }

    /// The bounds in effect.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Current smoothed service-time estimate (store-clock ms).
    pub fn service_ms(&self) -> u64 {
        self.service_ms.load(Ordering::Relaxed)
    }

    /// Folds an observed query duration into the service-time estimate
    /// (EWMA with 1/4 weight on the new sample).
    pub fn observe_service_ms(&self, observed_ms: u64) {
        let old = self.service_ms.load(Ordering::Relaxed);
        let new = (old * 3 + observed_ms.max(1)) / 4;
        self.service_ms.store(new.max(1), Ordering::Relaxed);
    }

    /// Admits a query or sheds it. On success the returned [`Permit`]
    /// holds one concurrency slot until dropped; callers run the search
    /// under it. Shedding never blocks: `QueueFull` and
    /// `DeadlineUnmeetable` are decided from the state at arrival.
    ///
    /// A queued query waits (blocking) for a slot; its deadline was
    /// checked as meetable at arrival, and the search itself re-checks
    /// cooperatively once running, so a late wake degrades into a typed
    /// [`RottnestError::DeadlineExceeded`] rather than silent extra load.
    ///
    /// Freed slots are handed to queued waiters in FIFO order: a fresh
    /// arrival admits directly only when nobody is queued, so under
    /// sustained arrivals a waiter cannot be barged past indefinitely —
    /// the finish estimate its admission was based on stays honest.
    pub fn admit(&self, now_ms: u64, deadline_ms: Option<u64>) -> Result<Permit<'_>, ShedReason> {
        let mut st = self.state.lock();
        if st.running >= self.cfg.max_concurrent || st.queued > 0 {
            if st.queued >= self.cfg.max_queued {
                return Err(ShedReason::QueueFull {
                    retry_after_ms: self.service_ms(),
                });
            }
            if let Some(deadline_ms) = deadline_ms {
                let estimated_finish_ms = estimate_finish_ms(
                    now_ms,
                    st.running,
                    st.queued,
                    self.cfg.max_concurrent,
                    self.service_ms(),
                );
                if estimated_finish_ms > deadline_ms {
                    return Err(ShedReason::DeadlineUnmeetable {
                        estimated_finish_ms,
                        deadline_ms,
                    });
                }
            }
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.queued += 1;
            while st.serving != ticket || st.running >= self.cfg.max_concurrent {
                self.cv.wait(&mut st);
            }
            st.serving += 1;
            st.queued -= 1;
            st.running += 1;
            // Several permits may have dropped at once: if a slot is
            // still free, let the next ticket in line re-check.
            if st.queued > 0 && st.running < self.cfg.max_concurrent {
                self.cv.notify_all();
            }
        } else {
            st.running += 1;
        }
        Ok(Permit { admission: self })
    }

    /// `(running, queued)` occupancy (tests and introspection).
    pub fn occupancy(&self) -> (usize, usize) {
        let st = self.state.lock();
        (st.running, st.queued)
    }
}

/// One admitted query's concurrency slot; releasing it (drop) wakes the
/// next queued query. RAII, so a panicking search still frees its slot.
#[derive(Debug)]
pub struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.admission.state.lock();
        st.running = st.running.saturating_sub(1);
        drop(st);
        // Wake every waiter: only the head ticket may take the slot, and
        // notify_one could land on a non-head waiter that just re-waits,
        // losing the wakeup.
        self.admission.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_concurrent: usize, max_queued: usize) -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent,
            max_queued,
            expected_service_ms: 10,
        }
    }

    #[test]
    fn admits_up_to_concurrency_then_queues_then_sheds() {
        let adm = Admission::new(cfg(2, 1));
        let p1 = adm.admit(0, None).unwrap();
        let p2 = adm.admit(0, None).unwrap();
        assert_eq!(adm.occupancy(), (2, 0));
        // Third would queue (blocking), fourth would shed; prove the shed
        // bound without blocking by filling the queue from another thread.
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                // Occupies the single queue slot until permits free up.
                let _p3 = adm.admit(0, None).unwrap();
            });
            while adm.occupancy().1 < 1 {
                std::thread::yield_now();
            }
            match adm.admit(0, None) {
                Err(ShedReason::QueueFull { .. }) => {}
                other => panic!("expected QueueFull, got {other:?}"),
            }
            drop(p1);
            drop(p2);
            h.join().unwrap();
        });
    }

    #[test]
    fn deadline_unmeetable_sheds_before_queueing() {
        let adm = Admission::new(cfg(1, 8));
        let _p = adm.admit(0, None).unwrap();
        // One query running, estimate 10ms service: a queued arrival
        // would finish around t=20 — a deadline of 5 can't be met.
        match adm.admit(0, Some(5)) {
            Err(ShedReason::DeadlineUnmeetable {
                estimated_finish_ms,
                deadline_ms,
            }) => {
                assert!(estimated_finish_ms > deadline_ms);
            }
            other => panic!("expected DeadlineUnmeetable, got {other:?}"),
        }
        // A generous deadline queues instead — prove it doesn't shed by
        // freeing the permit from another thread.
        std::thread::scope(|s| {
            let h = s.spawn(|| adm.admit(0, Some(1_000)).map(|_| ()));
            while adm.occupancy().1 < 1 {
                std::thread::yield_now();
            }
            drop(_p);
            h.join().unwrap().unwrap();
        });
    }

    #[test]
    fn permit_drop_frees_slot() {
        let adm = Admission::new(cfg(1, 0));
        let p = adm.admit(0, None).unwrap();
        assert!(matches!(
            adm.admit(0, None),
            Err(ShedReason::QueueFull { .. })
        ));
        drop(p);
        let _p2 = adm.admit(0, None).unwrap();
    }

    #[test]
    fn freed_slots_go_to_queued_waiters_before_fresh_arrivals() {
        // Regression: a fresh arrival that lands between a permit drop
        // and the queued waiter's wake must not barge past the waiter.
        // The race is real, so hammer it: any iteration where the fresh
        // arrival (B) admits before the waiter (A) is a failure.
        for _ in 0..200 {
            let adm = Admission::new(cfg(2, 4));
            let p1 = adm.admit(0, None).unwrap();
            let _p2 = adm.admit(0, None).unwrap();
            let order = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                let a = s.spawn(|| {
                    let p = adm.admit(0, None).unwrap();
                    order.lock().push('A');
                    drop(p);
                });
                while adm.occupancy().1 < 1 {
                    std::thread::yield_now();
                }
                // A is queued. Free a slot and immediately race B in.
                drop(p1);
                let b = s.spawn(|| {
                    let p = adm.admit(0, None).unwrap();
                    order.lock().push('B');
                    drop(p);
                });
                a.join().unwrap();
                b.join().unwrap();
            });
            assert_eq!(*order.lock(), vec!['A', 'B'], "fresh arrival barged");
        }
    }

    #[test]
    fn estimate_is_wave_based() {
        // Nothing ahead: one service time.
        assert_eq!(estimate_finish_ms(100, 0, 0, 4, 10), 110);
        // A full wave ahead: two service times.
        assert_eq!(estimate_finish_ms(100, 4, 0, 4, 10), 120);
        // Partial wave ahead still drains within the first wave.
        assert_eq!(estimate_finish_ms(100, 3, 0, 4, 10), 110);
        // 11 ahead: two full waves drain, then I run in the third.
        assert_eq!(estimate_finish_ms(100, 4, 7, 4, 10), 130);
        // 12 ahead: three full waves, then mine.
        assert_eq!(estimate_finish_ms(100, 4, 8, 4, 10), 140);
    }

    #[test]
    fn service_estimate_smooths_observations() {
        let adm = Admission::new(cfg(1, 1));
        assert_eq!(adm.service_ms(), 10);
        adm.observe_service_ms(50);
        assert_eq!(adm.service_ms(), 20);
        for _ in 0..16 {
            adm.observe_service_ms(50);
        }
        assert!(adm.service_ms() > 40, "estimate converges toward samples");
    }

    #[test]
    fn shed_reasons_map_to_overloaded() {
        let e = ShedReason::QueueFull { retry_after_ms: 7 }.into_error();
        assert!(matches!(
            e,
            RottnestError::Overloaded {
                retry_after_ms: 7,
                ..
            }
        ));
        let e = ShedReason::DeadlineUnmeetable {
            estimated_finish_ms: 30,
            deadline_ms: 20,
        }
        .into_error();
        assert!(matches!(
            e,
            RottnestError::Overloaded {
                retry_after_ms: 10,
                ..
            }
        ));
    }
}
