//! Deterministic virtual-time open-arrival simulator of the serving
//! pipeline.
//!
//! `bench_serve` needs tail latencies, shed rates, and dedup rates that
//! reproduce bit-for-bit across machines and runs — real threads give
//! neither. This simulator replays the admission policy
//! ([`crate::admission::estimate_finish_ms`] is shared verbatim) against
//! an **open** arrival process on a virtual clock: arrivals keep coming
//! at the configured rate whether or not the server keeps up, which is
//! exactly the regime where closed-loop benchmarks lie about tail
//! latency.
//!
//! The model: `max_concurrent` servers each take `service_ms` per query;
//! a FIFO queue holds at most `max_queued`; deadline-unmeetable arrivals
//! shed at the gate; every `hot_every`-th arrival (when enabled) is the
//! same hot query, and hot arrivals landing while a hot query is already
//! in flight join it single-flight style — zero servers, zero queue
//! slots, the leader's finish time.

use crate::admission::estimate_finish_ms;

/// Workload + policy knobs for one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Open-arrival rate, queries per (virtual) second.
    pub qps: u64,
    /// Length of the arrival window, virtual ms.
    pub duration_ms: u64,
    /// Service time of one search, virtual ms.
    pub service_ms: u64,
    /// Concurrency slots.
    pub max_concurrent: usize,
    /// Queue bound.
    pub max_queued: usize,
    /// Per-query budget (relative deadline), `None` = no deadline.
    pub deadline_budget_ms: Option<u64>,
    /// Every n-th arrival is the hot query (`0` disables hot traffic).
    pub hot_every: u64,
}

/// What came out of a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimReport {
    /// Total arrivals.
    pub arrivals: u64,
    /// Queries that completed (own run or dedup join).
    pub completed: u64,
    /// Queries shed at the gate (queue full or deadline unmeetable).
    pub shed: u64,
    /// Completed queries served by joining an in-flight hot query.
    pub dedup_hits: u64,
    /// Completion-latency percentiles, virtual ms (arrival → finish).
    pub p50_ms: u64,
    /// 99th percentile.
    pub p99_ms: u64,
    /// 99.9th percentile.
    pub p999_ms: u64,
    /// `shed / arrivals`.
    pub shed_rate: f64,
    /// `dedup_hits / arrivals`.
    pub dedup_hit_rate: f64,
}

/// Runs one open-arrival simulation. Pure and deterministic: the report
/// is a function of the config alone.
pub fn simulate(cfg: SimConfig) -> SimReport {
    let service_ms = cfg.service_ms.max(1);
    let arrivals = cfg.qps * cfg.duration_ms / 1000;
    // Per-server next-free times; index = server.
    let mut servers = vec![0u64; cfg.max_concurrent.max(1)];
    // Start times of admitted-but-not-started queries are implied by the
    // server backlog; track admitted start times to count the queue.
    let mut starts: Vec<u64> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut shed = 0u64;
    let mut dedup_hits = 0u64;
    // Finish time of the in-flight hot query, if any.
    let mut hot_finish: Option<u64> = None;

    for i in 0..arrivals {
        let t = i * 1000 / cfg.qps.max(1);
        let hot = cfg.hot_every != 0 && i % cfg.hot_every == 0;

        if hot {
            if let Some(finish) = hot_finish {
                if finish > t {
                    // Join the in-flight hot query: no server, no queue.
                    dedup_hits += 1;
                    latencies.push(finish - t);
                    continue;
                }
            }
        }

        let (best, &free_at) = servers
            .iter()
            .enumerate()
            .min_by_key(|&(_, &f)| f)
            .expect("at least one server");
        let running = servers.iter().filter(|&&f| f > t).count();
        let queued = starts.iter().filter(|&&s| s > t).count();

        if free_at > t {
            // Must queue: apply the gate's shed policy.
            if queued >= cfg.max_queued {
                shed += 1;
                continue;
            }
            if let Some(budget) = cfg.deadline_budget_ms {
                let est = estimate_finish_ms(t, running, queued, servers.len(), service_ms);
                if est > t + budget {
                    shed += 1;
                    continue;
                }
            }
        }

        let start = free_at.max(t);
        let finish = start + service_ms;
        servers[best] = finish;
        starts.push(start);
        latencies.push(finish - t);
        if hot {
            hot_finish = Some(finish);
        }
    }

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let completed = latencies.len() as u64;
    SimReport {
        arrivals,
        completed,
        shed,
        dedup_hits,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        p999_ms: pct(0.999),
        shed_rate: if arrivals == 0 {
            0.0
        } else {
            shed as f64 / arrivals as f64
        },
        dedup_hit_rate: if arrivals == 0 {
            0.0
        } else {
            dedup_hits as f64 / arrivals as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        SimConfig {
            qps: 100,
            duration_ms: 10_000,
            service_ms: 20,
            max_concurrent: 4,
            max_queued: 8,
            deadline_budget_ms: None,
            hot_every: 0,
        }
    }

    #[test]
    fn underload_completes_everything_at_service_latency() {
        // Capacity = 4 slots / 20ms = 200 qps; offering 100 qps is easy.
        let r = simulate(base());
        assert_eq!(r.arrivals, 1000);
        assert_eq!(r.completed, 1000);
        assert_eq!(r.shed, 0);
        assert_eq!(r.p50_ms, 20, "no queueing below the ceiling");
        assert_eq!(r.p999_ms, 20);
    }

    #[test]
    fn overload_sheds_instead_of_unbounded_queueing() {
        let r = simulate(SimConfig {
            qps: 2_000, // 10x the 200qps ceiling
            ..base()
        });
        assert!(r.shed > 0, "open arrival past capacity must shed");
        assert!(
            r.shed_rate > 0.5,
            "shed rate {} too low for 10x",
            r.shed_rate
        );
        // Bounded queue ⇒ bounded tail: worst case is the full queue
        // draining ahead of you.
        let worst =
            (base().max_queued as u64 / base().max_concurrent as u64 + 2) * base().service_ms;
        assert!(r.p999_ms <= worst, "p999 {} vs bound {worst}", r.p999_ms);
    }

    #[test]
    fn deadline_shedding_caps_the_tail() {
        let no_deadline = simulate(SimConfig { qps: 400, ..base() });
        let with_deadline = simulate(SimConfig {
            qps: 400,
            deadline_budget_ms: Some(25),
            ..base()
        });
        assert!(with_deadline.shed >= no_deadline.shed);
        assert!(with_deadline.p999_ms <= no_deadline.p999_ms);
        assert!(with_deadline.p999_ms <= 25, "deadline bounds completions");
    }

    #[test]
    fn hot_traffic_dedups_instead_of_stampeding() {
        let r = simulate(SimConfig {
            qps: 2_000,
            hot_every: 1, // every arrival is the hot query
            ..base()
        });
        assert!(
            r.dedup_hit_rate > 0.9,
            "hot-key convoy should mostly join in-flight work, got {}",
            r.dedup_hit_rate
        );
        assert_eq!(r.shed, 0, "deduped queries cost no capacity");
        assert_eq!(r.completed, r.arrivals);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = simulate(SimConfig {
            qps: 3_333,
            deadline_budget_ms: Some(60),
            hot_every: 7,
            ..base()
        });
        let b = simulate(SimConfig {
            qps: 3_333,
            deadline_budget_ms: Some(60),
            hot_every: 7,
            ..base()
        });
        assert_eq!(a, b);
    }
}
