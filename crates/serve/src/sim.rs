//! Deterministic virtual-time open-arrival simulator of the serving
//! pipeline.
//!
//! `bench_serve` needs tail latencies, shed rates, fairness shares, and
//! dedup rates that reproduce bit-for-bit across machines and runs —
//! real threads give neither. This simulator replays the admission
//! policy ([`crate::admission::estimate_finish_ms`] and
//! [`crate::admission::virtual_finish_tag`] are shared verbatim) against
//! an **open** arrival process on a virtual clock: arrivals keep coming
//! at the configured rate whether or not the server keeps up, which is
//! exactly the regime where closed-loop benchmarks lie about tail
//! latency.
//!
//! The model: `max_concurrent` servers each take `service_ms` per query
//! (every `slow_every`-th admitted query takes `slow_service_ms` — the
//! straggler the hedge exists for); arrivals are classed interactive or
//! batch (every `batch_every`-th is batch) and queue per class, bounded
//! by `max_queued` each; a free server dispatches the queued query with
//! the smallest weighted-fair virtual finish tag, ties to interactive —
//! the same rule the threaded [`crate::Admission`] uses. Deadline-
//! unmeetable arrivals shed at the gate; every `hot_every`-th arrival
//! (when enabled) is the same hot query, and hot arrivals landing while
//! a hot query is already in flight join it single-flight style — zero
//! servers, zero queue slots, the leader's finish time. With
//! `hedge_threshold_ms` set, a running query whose remaining deadline
//! budget drops below the threshold launches a backup lane at base
//! service time and finishes at whichever lane is earlier — the
//! simulator's model of the executor's hedged probes.
//!
//! With `pool_workers > 0` the simulator models the shared work-stealing
//! executor pool instead of thread-per-slot: `max_concurrent` stays a
//! pure admission bound (it can sit far above the worker count), and an
//! admitted query's service time shrinks by the fan-out overlap the pool
//! affords it — its own thread (caller-runs) plus an even share of the
//! workers, capped at its `fanout` width. Lightly loaded, a query
//! finishes in `service_ms / fanout`; with every worker busy it degrades
//! to sequential `service_ms` on its own thread, never blocks, never
//! deadlocks. The modeled executor thread count is the fixed pool size
//! rather than `max_concurrent × fanout`.
//!
//! With an outage window configured (`outage_end_ms > outage_start_ms`)
//! the simulator replays the store-health policy: dispatches into the
//! window fail typed after spending what the shared retry budget grants,
//! `outage_breaker_fails` consecutive failures trip the circuit breaker,
//! and while it is open the service browns out — batch arrivals shed
//! first with a retry hint, interactive arrivals brute-scan at
//! `brownout_service_ms`, and after each `outage_cooldown_ms` exactly one
//! arrival plays the half-open probe (a failed probe re-arms the
//! breaker; a successful one closes it and ends the brownout). The
//! report's `retry_amplification`, `brownout_recovery_ms`, and
//! `brownout_qps` quantify the bound this machinery enforces.

use std::collections::VecDeque;

use crate::admission::{estimate_finish_ms, virtual_finish_tag};

/// Workload + policy knobs for one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Open-arrival rate, queries per (virtual) second.
    pub qps: u64,
    /// Length of the arrival window, virtual ms.
    pub duration_ms: u64,
    /// Service time of one search, virtual ms.
    pub service_ms: u64,
    /// Concurrency slots.
    pub max_concurrent: usize,
    /// Queue bound (per class, as in [`crate::AdmissionConfig`]).
    pub max_queued: usize,
    /// Per-query budget (relative deadline), `None` = no deadline.
    pub deadline_budget_ms: Option<u64>,
    /// Every n-th arrival is the hot query (`0` disables hot traffic).
    pub hot_every: u64,
    /// Every n-th arrival is batch class (`0` = all interactive).
    pub batch_every: u64,
    /// WFQ weight of the interactive class.
    pub interactive_weight: u32,
    /// WFQ weight of the batch class.
    pub batch_weight: u32,
    /// Every n-th *admitted* query is a straggler (`0` disables).
    pub slow_every: u64,
    /// Service time of a straggler, virtual ms.
    pub slow_service_ms: u64,
    /// Hedge trigger: launch a backup lane when a running query's
    /// remaining deadline budget drops below this (`0` disables).
    pub hedge_threshold_ms: u64,
    /// Shared executor-pool size (`0` = the legacy thread-per-slot model:
    /// each concurrency slot is its own thread and service time is flat).
    /// When set, an admitted query runs on its caller thread plus an even
    /// share of the pool, so service time shrinks by the overlap.
    pub pool_workers: usize,
    /// Per-query fan-out width: the overlap cap when `pool_workers > 0`
    /// (a query's service time never drops below `service_ms / fanout`).
    pub fanout: usize,
    /// Start of a scheduled full outage of the index domain, virtual ms
    /// (the store-health model: dispatches fail until the breaker trips).
    /// Disabled unless `outage_end_ms > outage_start_ms`.
    pub outage_start_ms: u64,
    /// End of the outage window (exclusive), virtual ms.
    pub outage_end_ms: u64,
    /// Consecutive failed dispatches that trip the circuit breaker into
    /// brownout.
    pub outage_breaker_fails: u64,
    /// Breaker cooldown: how long after a trip before one half-open probe
    /// is attempted (a failed probe re-arms for another cooldown).
    pub outage_cooldown_ms: u64,
    /// Process-wide retry budget during the outage: total retries the
    /// failing dispatches may spend before retries are denied (the token
    /// bucket has no refill while nothing succeeds), capping request
    /// amplification.
    pub outage_retry_budget: u64,
    /// Service time of a brownout-served interactive query, virtual ms —
    /// the brute-scan path is slower than the indexed one.
    pub brownout_service_ms: u64,
}

/// What came out of a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimReport {
    /// Total arrivals.
    pub arrivals: u64,
    /// Queries that completed (own run or dedup join).
    pub completed: u64,
    /// Queries shed at the gate (queue full or deadline unmeetable).
    pub shed: u64,
    /// Completed queries served by joining an in-flight hot query.
    pub dedup_hits: u64,
    /// Completion-latency percentiles, virtual ms (arrival → finish).
    /// With batch traffic enabled these cover the **interactive** class
    /// only — the latency promise WFQ protects; batch rides the leftover.
    pub p50_ms: u64,
    /// 99th percentile.
    pub p99_ms: u64,
    /// 99.9th percentile.
    pub p999_ms: u64,
    /// `shed / arrivals`.
    pub shed_rate: f64,
    /// `dedup_hits / arrivals`.
    pub dedup_hit_rate: f64,
    /// Batch-class completions over all completions — the fairness share
    /// WFQ bounds from below at `batch_weight / (sum of weights)` when
    /// batch demand saturates (0 when batch traffic is disabled).
    pub batch_share: f64,
    /// Queries that launched a backup hedge lane.
    pub hedged: u64,
    /// Hedged queries where the backup lane finished first.
    pub hedge_wins: u64,
    /// `hedge_wins / hedged` (0 when nothing hedged).
    pub hedge_win_rate: f64,
    /// Completed throughput over the arrival window, queries per virtual
    /// second.
    pub pool_qps: f64,
    /// Modeled executor thread count: the fixed pool size when
    /// `pool_workers > 0`, else one thread per concurrency slot per
    /// fan-out lane (the thread-per-slot executor this pool replaces).
    pub executor_threads: u64,
    /// Requests sent to the outaged domain over the queries admitted
    /// while it was down — `(failed attempts + budgeted retries + probes)
    /// / admitted`. The retry budget plus the breaker bound this: after
    /// the trip, admitted queries send the dead domain nothing. 0 when no
    /// outage is configured.
    pub retry_amplification: f64,
    /// Virtual ms from the outage's end until the first successful
    /// half-open probe completes and the breaker closes — how long the
    /// service stayed in brownout past the fault itself.
    pub brownout_recovery_ms: u64,
    /// Interactive queries admitted in brownout mode per virtual second
    /// of outage — the throughput the brute-scan path sustained while the
    /// index domain was dark.
    pub brownout_qps: f64,
}

const INTERACTIVE: usize = 0;
const BATCH: usize = 1;

/// An admitted-but-not-yet-dispatched query.
#[derive(Debug, Clone, Copy)]
struct Queued {
    arrive: u64,
    vft: u64,
    class: usize,
    deadline: Option<u64>,
    slow: bool,
    hot: bool,
    brownout: bool,
}

/// Retries one failing dispatch asks for before giving up — the store
/// retry policy's `max_attempts - 1` (granted only while the shared
/// budget has tokens).
const OUTAGE_RETRIES_PER_OP: u64 = 2;

/// Runs one open-arrival simulation. Pure and deterministic: the report
/// is a function of the config alone.
pub fn simulate(cfg: SimConfig) -> SimReport {
    let service_ms = cfg.service_ms.max(1);
    let arrivals = cfg.qps * cfg.duration_ms / 1000;
    let weights = [cfg.interactive_weight.max(1), cfg.batch_weight.max(1)];

    // Per-server next-free times; index = server.
    let mut servers = vec![0u64; cfg.max_concurrent.max(1)];
    let mut queues: [VecDeque<Queued>; 2] = [VecDeque::new(), VecDeque::new()];
    // WFQ virtual time + per-class last finish tags, as in `Admission`.
    let mut virtual_time = 0u64;
    let mut class_tag = [0u64; 2];

    let mut latencies: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
    let mut shed = 0u64;
    let mut dedup_hits = 0u64;
    let mut admitted = 0u64; // dispatch ordinal, drives `slow_every`
    let mut hedged = 0u64;
    let mut hedge_wins = 0u64;
    // Finish time of the in-flight hot query, if any.
    let mut hot_finish: Option<u64> = None;

    // Store-health model state: a scheduled outage of the index domain
    // fails dispatches until `outage_breaker_fails` consecutive failures
    // trip the breaker; while open, interactive queries brown out to the
    // brute path and batch sheds first; after each cooldown one arrival
    // plays the half-open probe.
    let outage_active = cfg.outage_end_ms > cfg.outage_start_ms;
    let mut breaker_open = false;
    let mut breaker_open_until = 0u64;
    let mut consecutive_fails = 0u64;
    let mut retry_tokens = cfg.outage_retry_budget;
    let mut ops_sent = 0u64; // requests offered to the outaged domain
    let mut outage_failed = 0u64; // admitted queries the outage killed
    let mut brownout_served = 0u64; // interactive admitted in brownout
    let mut recovery_ms: Option<u64> = None;

    // Serves one query on a server freeing at `free_at`, with `active`
    // queries (including this one) running at its start: returns the
    // finish time under the pool-overlap + straggler + hedge model.
    let mut serve = |q: Queued, free_at: u64, active: usize| -> u64 {
        let start = free_at.max(q.arrive);
        let base_d = if q.brownout {
            // Brownout: the index domain is dark, so the query brute-scans
            // at the slower service time regardless of straggler rolls.
            cfg.brownout_service_ms.max(1)
        } else if q.slow {
            cfg.slow_service_ms.max(service_ms)
        } else {
            service_ms
        };
        let d1 = if cfg.pool_workers > 0 {
            // Pool model: the query runs on its own admitted thread
            // (caller-runs) plus an even share of the pool workers,
            // capped at its fan-out width. Saturated ⇒ sequential on its
            // own thread; idle ⇒ full fan-out overlap.
            let share = 1 + (cfg.pool_workers / active.max(1)) as u64;
            base_d.div_ceil(share.min(cfg.fanout.max(1) as u64))
        } else {
            base_d
        };
        let mut finish = start + d1;
        if let (Some(deadline), true) = (q.deadline, cfg.hedge_threshold_ms > 0) {
            // The executor's hedge: when the remaining budget drops below
            // the threshold and the primary lane is still running, a
            // backup lane starts at base service time; the query finishes
            // at whichever lane is earlier.
            let hedge_at = deadline.saturating_sub(cfg.hedge_threshold_ms).max(start);
            if finish > hedge_at {
                hedged += 1;
                let backup_finish = hedge_at + service_ms;
                if backup_finish < finish {
                    hedge_wins += 1;
                    finish = backup_finish;
                }
            }
        }
        finish
    };

    // Dispatches queued queries onto every server that frees at or
    // before `t`, smallest virtual finish tag first (ties interactive) —
    // the Admission dispatch rule on the virtual clock.
    macro_rules! dispatch_until {
        ($t:expr) => {
            loop {
                let (best, &free_at) = servers
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &f)| f)
                    .expect("at least one server");
                if free_at > $t {
                    break;
                }
                let pick = match (queues[INTERACTIVE].front(), queues[BATCH].front()) {
                    (Some(i), Some(b)) if b.vft < i.vft => BATCH,
                    (Some(_), _) => INTERACTIVE,
                    (None, Some(_)) => BATCH,
                    (None, None) => break,
                };
                let q = queues[pick].pop_front().expect("picked nonempty queue");
                virtual_time = virtual_time.max(q.vft);
                admitted += 1;
                let slow = cfg.slow_every != 0 && admitted % cfg.slow_every == 0;
                let start = free_at.max(q.arrive);
                let active = servers.iter().filter(|&&f| f > start).count() + 1;
                let finish = serve(Queued { slow, ..q }, free_at, active);
                servers[best] = finish;
                latencies[q.class].push(finish - q.arrive);
                if q.hot {
                    hot_finish = Some(finish);
                }
            }
        };
    }

    for i in 0..arrivals {
        let t = i * 1000 / cfg.qps.max(1);
        let hot = cfg.hot_every != 0 && i % cfg.hot_every == 0;
        let class = if cfg.batch_every != 0 && i % cfg.batch_every == 0 {
            BATCH
        } else {
            INTERACTIVE
        };
        dispatch_until!(t);

        let mut brownout = false;
        if outage_active {
            let in_window = t >= cfg.outage_start_ms && t < cfg.outage_end_ms;
            if breaker_open && t >= breaker_open_until {
                // Half-open: this arrival is the single bounded probe —
                // no thundering herd, everyone else stays browned out.
                ops_sent += 1;
                if in_window {
                    // Probe fails; re-arm for another cooldown.
                    breaker_open_until = t + cfg.outage_cooldown_ms.max(1);
                } else {
                    // Probe succeeds: the breaker closes when it finishes.
                    breaker_open = false;
                    recovery_ms.get_or_insert((t + service_ms).saturating_sub(cfg.outage_end_ms));
                }
            }
            if breaker_open {
                // Brownout: shed batch first; interactive rides the
                // brute-scan path through normal admission below.
                if class == BATCH {
                    shed += 1;
                    continue;
                }
                brownout = true;
            } else if in_window {
                // Pre-trip (or failed-probe window): the dispatch fails
                // typed after spending what the retry budget grants.
                outage_failed += 1;
                let retries = retry_tokens.min(OUTAGE_RETRIES_PER_OP);
                retry_tokens -= retries;
                ops_sent += 1 + retries;
                consecutive_fails += 1;
                if consecutive_fails >= cfg.outage_breaker_fails.max(1) {
                    breaker_open = true;
                    breaker_open_until = t + cfg.outage_cooldown_ms.max(1);
                    consecutive_fails = 0;
                }
                continue;
            }
        }

        if hot {
            if let Some(finish) = hot_finish {
                if finish > t {
                    // Join the in-flight hot query: no server, no queue.
                    dedup_hits += 1;
                    latencies[class].push(finish - t);
                    continue;
                }
            }
        }

        let deadline = cfg.deadline_budget_ms.map(|b| t + b);
        let free_now = servers.iter().any(|&f| f <= t);
        if free_now {
            // Direct admit: a slot is open and (post-dispatch) nothing
            // queues ahead, exactly the Admission fast path — no tag.
            let (best, &free_at) = servers
                .iter()
                .enumerate()
                .min_by_key(|&(_, &f)| f)
                .expect("at least one server");
            admitted += 1;
            let slow = cfg.slow_every != 0 && admitted.is_multiple_of(cfg.slow_every);
            brownout_served += u64::from(brownout);
            let q = Queued {
                arrive: t,
                vft: 0,
                class,
                deadline,
                slow,
                hot,
                brownout,
            };
            let active = servers.iter().filter(|&&f| f > t).count() + 1;
            let finish = serve(q, free_at, active);
            servers[best] = finish;
            latencies[class].push(finish - t);
            if hot {
                hot_finish = Some(finish);
            }
            continue;
        }

        // Must queue: apply the gate's shed policy (per-class bound,
        // then the WFQ-aware deadline estimate).
        if queues[class].len() >= cfg.max_queued {
            shed += 1;
            continue;
        }
        let vft = virtual_finish_tag(virtual_time, class_tag[class], weights[class]);
        if let Some(deadline) = deadline {
            let running = servers.iter().filter(|&&f| f > t).count();
            let ahead = queues
                .iter()
                .flat_map(|q| q.iter())
                .filter(|q| q.vft <= vft)
                .count();
            let est = estimate_finish_ms(t, running, ahead, servers.len(), service_ms);
            if est > deadline {
                shed += 1;
                continue;
            }
        }
        class_tag[class] = vft;
        brownout_served += u64::from(brownout);
        queues[class].push_back(Queued {
            arrive: t,
            vft,
            class,
            deadline,
            slow: false, // decided at dispatch by the admitted ordinal
            hot,
            brownout,
        });
    }
    // Drain whatever is still queued after the arrival window. No
    // arrivals remain to join the hot flight, so consume the tracker —
    // the drain's last assignment to it is dead by construction.
    dispatch_until!(u64::MAX);
    let _ = hot_finish;

    let batch_completed = latencies[BATCH].len() as u64;
    // With batch traffic the latency promise under test is the
    // interactive tail; otherwise every completion counts.
    let mut tail: Vec<u64> = if cfg.batch_every != 0 {
        latencies[INTERACTIVE].clone()
    } else {
        latencies.iter().flatten().copied().collect()
    };
    tail.sort_unstable();
    let pct = |p: f64| -> u64 {
        if tail.is_empty() {
            return 0;
        }
        let idx = ((tail.len() as f64 - 1.0) * p).round() as usize;
        tail[idx.min(tail.len() - 1)]
    };
    let completed = (latencies[INTERACTIVE].len() + latencies[BATCH].len()) as u64;
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    SimReport {
        arrivals,
        completed,
        shed,
        dedup_hits,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        p999_ms: pct(0.999),
        shed_rate: ratio(shed, arrivals),
        dedup_hit_rate: ratio(dedup_hits, arrivals),
        batch_share: ratio(batch_completed, completed),
        hedged,
        hedge_wins,
        hedge_win_rate: ratio(hedge_wins, hedged),
        pool_qps: ratio(completed * 1000, cfg.duration_ms),
        executor_threads: if cfg.pool_workers > 0 {
            cfg.pool_workers as u64
        } else {
            cfg.max_concurrent.max(1) as u64 * cfg.fanout.max(1) as u64
        },
        retry_amplification: ratio(ops_sent, outage_failed + brownout_served),
        brownout_recovery_ms: recovery_ms.unwrap_or(0),
        brownout_qps: ratio(
            brownout_served * 1000,
            cfg.outage_end_ms.saturating_sub(cfg.outage_start_ms),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        SimConfig {
            qps: 100,
            duration_ms: 10_000,
            service_ms: 20,
            max_concurrent: 4,
            max_queued: 8,
            deadline_budget_ms: None,
            hot_every: 0,
            batch_every: 0,
            interactive_weight: 4,
            batch_weight: 1,
            slow_every: 0,
            slow_service_ms: 0,
            hedge_threshold_ms: 0,
            pool_workers: 0,
            fanout: 1,
            outage_start_ms: 0,
            outage_end_ms: 0,
            outage_breaker_fails: 0,
            outage_cooldown_ms: 0,
            outage_retry_budget: 0,
            brownout_service_ms: 0,
        }
    }

    #[test]
    fn underload_completes_everything_at_service_latency() {
        // Capacity = 4 slots / 20ms = 200 qps; offering 100 qps is easy.
        let r = simulate(base());
        assert_eq!(r.arrivals, 1000);
        assert_eq!(r.completed, 1000);
        assert_eq!(r.shed, 0);
        assert_eq!(r.p50_ms, 20, "no queueing below the ceiling");
        assert_eq!(r.p999_ms, 20);
    }

    #[test]
    fn overload_sheds_instead_of_unbounded_queueing() {
        let r = simulate(SimConfig {
            qps: 2_000, // 10x the 200qps ceiling
            ..base()
        });
        assert!(r.shed > 0, "open arrival past capacity must shed");
        assert!(
            r.shed_rate > 0.5,
            "shed rate {} too low for 10x",
            r.shed_rate
        );
        // Bounded queue ⇒ bounded tail: worst case is the full queue
        // draining ahead of you.
        let worst =
            (base().max_queued as u64 / base().max_concurrent as u64 + 2) * base().service_ms;
        assert!(r.p999_ms <= worst, "p999 {} vs bound {worst}", r.p999_ms);
    }

    #[test]
    fn deadline_shedding_caps_the_tail() {
        let no_deadline = simulate(SimConfig { qps: 400, ..base() });
        let with_deadline = simulate(SimConfig {
            qps: 400,
            deadline_budget_ms: Some(25),
            ..base()
        });
        assert!(with_deadline.shed >= no_deadline.shed);
        assert!(with_deadline.p999_ms <= no_deadline.p999_ms);
        assert!(with_deadline.p999_ms <= 25, "deadline bounds completions");
    }

    #[test]
    fn hot_traffic_dedups_instead_of_stampeding() {
        let r = simulate(SimConfig {
            qps: 2_000,
            hot_every: 1, // every arrival is the hot query
            ..base()
        });
        assert!(
            r.dedup_hit_rate > 0.9,
            "hot-key convoy should mostly join in-flight work, got {}",
            r.dedup_hit_rate
        );
        assert_eq!(r.shed, 0, "deduped queries cost no capacity");
        assert_eq!(r.completed, r.arrivals);
    }

    #[test]
    fn batch_gets_its_weight_share_under_sustained_overload() {
        // 2x overload, every 3rd arrival batch, weights 4:1: WFQ must
        // give batch at least ~1/5 of the service — not starve it the way
        // a strict-priority (or FIFO-with-shedding) gate can.
        let r = simulate(SimConfig {
            qps: 400,
            batch_every: 3,
            deadline_budget_ms: Some(100),
            ..base()
        });
        assert!(r.shed > 0, "2x must shed");
        let floor = 1.0 / 5.0 * 0.9; // weight share minus rounding slack
        assert!(
            r.batch_share >= floor,
            "batch share {} below weighted floor {floor}",
            r.batch_share
        );
        // ...but WFQ is not priority inversion either: interactive (2/3
        // of demand, 4/5 of weight) keeps the majority of completions.
        assert!(r.batch_share <= 0.5, "batch share {}", r.batch_share);
    }

    #[test]
    fn interactive_tail_is_protected_when_batch_queues() {
        let r = simulate(SimConfig {
            qps: 400,
            batch_every: 3,
            deadline_budget_ms: Some(100),
            ..base()
        });
        // Percentiles cover interactive only when batch is enabled; the
        // queue-drain bound still holds for them.
        let worst =
            (base().max_queued as u64 / base().max_concurrent as u64 + 2) * base().service_ms;
        assert!(r.p999_ms <= worst, "p999 {} vs bound {worst}", r.p999_ms);
    }

    #[test]
    fn hedging_rescues_stragglers_within_the_deadline() {
        let slow = SimConfig {
            qps: 150,
            deadline_budget_ms: Some(60),
            slow_every: 97,
            slow_service_ms: 200,
            ..base()
        };
        let unhedged = simulate(slow);
        let hedged = simulate(SimConfig {
            hedge_threshold_ms: 40,
            ..slow
        });
        assert_eq!(hedged.arrivals, unhedged.arrivals);
        assert!(hedged.hedged > 0, "stragglers must trigger the hedge");
        assert!(
            hedged.hedge_wins > 0,
            "backup lane must win on 200ms stragglers"
        );
        assert!(
            hedged.p999_ms < unhedged.p999_ms,
            "hedged tail {} must beat unhedged {}",
            hedged.p999_ms,
            unhedged.p999_ms
        );
        assert!(hedged.hedge_win_rate > 0.0);
    }

    #[test]
    fn pool_overlap_shrinks_latency_when_lightly_loaded() {
        // Idle pool, fan-out 4: each query gets caller + ≥3 workers, so
        // it finishes in a quarter of the sequential service time.
        let r = simulate(SimConfig {
            pool_workers: 16,
            fanout: 4,
            ..base()
        });
        assert_eq!(r.shed, 0);
        assert_eq!(r.p50_ms, 5, "20 ms / fan-out 4");
        assert_eq!(r.p999_ms, 5);
        assert_eq!(r.executor_threads, 16, "threads = the fixed pool");
    }

    #[test]
    fn pooled_admission_ceiling_beats_thread_bound_slots() {
        // Same 16 threads, two architectures. Thread-per-slot: 16 slots
        // ARE the 16 threads, capacity 800 qps. Pooled: 256 admitted
        // queries share the 16 workers caller-runs style — saturated
        // queries degrade to sequential 20 ms on their own (admitted)
        // thread, so capacity scales with the admission ceiling instead.
        let threaded = simulate(SimConfig {
            qps: 4_000,
            max_concurrent: 16,
            max_queued: 64,
            deadline_budget_ms: Some(100),
            ..base()
        });
        let pooled = simulate(SimConfig {
            qps: 4_000,
            max_concurrent: 256,
            max_queued: 64,
            deadline_budget_ms: Some(100),
            pool_workers: 16,
            fanout: 8,
            ..base()
        });
        assert!(
            pooled.completed > 2 * threaded.completed,
            "pooled {} must outrun thread-bound {}",
            pooled.completed,
            threaded.completed
        );
        assert!(pooled.pool_qps > threaded.pool_qps);
        assert_eq!(pooled.executor_threads, 16);
        assert_eq!(
            threaded.executor_threads, 16,
            "16 slots × fan-out 1 threads"
        );
    }

    /// 2x overload with a 3s full outage of the index domain mid-run.
    fn outage_base() -> SimConfig {
        SimConfig {
            qps: 400, // 2x the 200 qps healthy ceiling
            batch_every: 3,
            deadline_budget_ms: Some(100),
            outage_start_ms: 2_000,
            outage_end_ms: 5_000,
            outage_breaker_fails: 5,
            outage_cooldown_ms: 200,
            outage_retry_budget: 8,
            brownout_service_ms: 40,
            ..base()
        }
    }

    #[test]
    fn outage_brownout_bounds_amplification_and_recovers() {
        let r = simulate(outage_base());
        assert!(r.retry_amplification > 0.0, "the outage was offered load");
        assert!(
            r.retry_amplification <= 2.0,
            "breaker + retry budget must bound amplification, got {}",
            r.retry_amplification
        );
        assert!(
            r.brownout_qps > 0.0,
            "interactive queries must keep flowing on the brute path"
        );
        // Recovery is one cooldown past the window's last failed probe,
        // plus the successful probe's own service time and at most one
        // arrival gap before someone plays the probe.
        let cfg = outage_base();
        assert!(r.brownout_recovery_ms > 0, "breaker must have tripped");
        let bound = cfg.outage_cooldown_ms + cfg.service_ms + 1000 / cfg.qps + 1;
        assert!(
            r.brownout_recovery_ms <= bound,
            "recovery {} vs bound {bound}",
            r.brownout_recovery_ms
        );
    }

    #[test]
    fn retry_budget_caps_amplification_even_without_the_breaker() {
        // Breaker disabled (impossibly high threshold): every in-window
        // arrival fails and asks for retries, but the shared budget still
        // bounds offered load at admitted + budget.
        let r = simulate(SimConfig {
            outage_breaker_fails: u64::MAX,
            ..outage_base()
        });
        assert!(
            r.retry_amplification > 1.0,
            "early failures spend real retries"
        );
        assert!(
            r.retry_amplification <= 2.0,
            "budget must cap amplification, got {}",
            r.retry_amplification
        );
        assert_eq!(r.brownout_qps, 0.0, "never tripped, never browned out");
        assert_eq!(r.brownout_recovery_ms, 0);
    }

    #[test]
    fn brownout_sheds_batch_first_and_keeps_interactive_flowing() {
        let healthy = simulate(SimConfig {
            outage_start_ms: 0,
            outage_end_ms: 0,
            ..outage_base()
        });
        let outage = simulate(outage_base());
        assert!(
            outage.batch_share < healthy.batch_share,
            "brownout must shed batch first: {} vs healthy {}",
            outage.batch_share,
            healthy.batch_share
        );
        assert!(
            outage.completed * 2 > healthy.completed,
            "interactive service must not collapse: {} vs healthy {}",
            outage.completed,
            healthy.completed
        );
    }

    #[test]
    fn disabled_outage_leaves_the_legacy_model_bit_identical() {
        let mut cfg = SimConfig {
            qps: 400,
            batch_every: 3,
            deadline_budget_ms: Some(100),
            ..base()
        };
        let plain = simulate(cfg);
        // Zero-width window: every other outage knob must be inert.
        cfg.outage_breaker_fails = 5;
        cfg.outage_cooldown_ms = 200;
        cfg.outage_retry_budget = 8;
        cfg.brownout_service_ms = 40;
        assert_eq!(plain, simulate(cfg));
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SimConfig {
            qps: 3_333,
            deadline_budget_ms: Some(60),
            hot_every: 7,
            batch_every: 3,
            slow_every: 53,
            slow_service_ms: 120,
            hedge_threshold_ms: 30,
            ..outage_base()
        };
        assert_eq!(simulate(cfg), simulate(cfg));
    }
}
