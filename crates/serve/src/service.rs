//! The query service: the full serving pipeline over [`Rottnest`].
//!
//! ```text
//! request ──► tenant budget ──► admission ──► single-flight ──► search
//!               (shed)         (shed/queue)     (dedup)       (deadline)
//! ```
//!
//! * **Tenant budgets** reuse the object-store layer's
//!   [`PrefixThrottle`] cost model in rejecting mode: each tenant gets an
//!   admitted-queries-per-second budget, and overflow sheds with a typed
//!   [`RottnestError::Overloaded`] carrying a `retry_after_ms` hint. A
//!   query charged here but shed at admission gets its token back —
//!   refusal never burns budget.
//! * **Admission** bounds concurrency and queueing, and sheds queries
//!   whose deadline cannot be met even if admitted
//!   ([`crate::admission`]).
//! * **Single-flight** dedups identical in-flight queries — same table
//!   root, snapshot version, column, and query fingerprint — so a
//!   thousand concurrent queries for one hot UUID run one search and
//!   share its outcome.
//! * **Deadline propagation** hands the client's absolute deadline to
//!   [`Rottnest::search_with_deadline`], which polls it cooperatively and
//!   aborts with [`RottnestError::DeadlineExceeded`]. A deduped follower
//!   additionally re-checks its *own* deadline after the join, so
//!   waiting on a leader can never return `Ok` past it.
//!
//! Results for admitted queries are bit-identical to calling
//! [`Rottnest::search`] directly — admission and dedup change *when* and
//! *how often* work runs, never what it computes. A deduped follower
//! receives a clone of the leader's outcome (including the leader's
//! per-query stats); the service-level aggregate counts the follower
//! under [`ServiceStats::dedup_hits`] instead of double-counting its
//! work.

use parking_lot::Mutex;
use rottnest::{Query, Rottnest, RottnestError, SearchOutcome, SearchStats};
use rottnest_format::NegScanCache;
use rottnest_lake::{Snapshot, Table};
use rottnest_object_store::{PrefixThrottle, SingleFlight};

use crate::admission::{Admission, AdmissionConfig, QueryClass, ShedReason};

/// Knobs for the query service.
///
/// The default runs with `AdmissionConfig::default()` bounds, no tenant
/// budgeting, and no implicit deadline — exactly like a direct search.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceConfig {
    /// Concurrency / queue bounds and deadline shedding.
    pub admission: AdmissionConfig,
    /// Per-tenant admitted-queries-per-second budget; `0` disables
    /// tenant budgeting.
    pub tenant_limit_per_sec: u64,
    /// Budget applied to requests that carry no explicit deadline;
    /// `None` lets them run unbounded, exactly like a direct search.
    pub default_timeout_ms: Option<u64>,
}

/// The service's operating mode with respect to store health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// The index domain is healthy; queries run the indexed path.
    Normal,
    /// The index domain's circuit breaker is open: searches skip index
    /// probes (brute scans + caches keep results correct), and batch-class
    /// queries are shed before admission so the degraded capacity serves
    /// interactive traffic. The service leaves brownout by itself once the
    /// breaker's half-open probes succeed — recovery traffic is bounded by
    /// the probe slots plus the admission gate, so there is no thundering
    /// herd at the moment the outage ends.
    Brownout,
}

/// Service-level accounting across every request the service saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests that passed every admission check and ran (or joined) a
    /// search.
    pub admitted: u64,
    /// Admitted requests that returned `Ok`.
    pub completed: u64,
    /// Requests refused at admission (queue full, deadline unmeetable,
    /// tenant budget) — typed fast-fails that cost no store traffic.
    pub queries_shed: u64,
    /// Admitted requests aborted mid-search by deadline expiry.
    pub deadline_aborts: u64,
    /// Admitted requests served by joining another identical in-flight
    /// search instead of running their own.
    pub dedup_hits: u64,
    /// Batch-class requests among `admitted` (interactive is the rest) —
    /// `admitted_batch / admitted` is the batch admission share the WFQ
    /// weights bound from below under contention.
    pub admitted_batch: u64,
    /// Batch-class requests among `queries_shed`.
    pub shed_batch: u64,
    /// Admitted requests whose search ran in brownout mode (index probes
    /// skipped because the index domain's breaker was open).
    pub brownout_queries: u64,
    /// Batch-class requests refused up front because the service was in
    /// brownout (also counted under `queries_shed` / `shed_batch`).
    pub brownout_shed: u64,
    /// Work done by the searches this service actually ran, absorbed
    /// per-outcome ([`SearchStats::absorb`]); the shed / abort / dedup
    /// counters above are mirrored into its matching fields.
    pub search: SearchStats,
}

/// `(table root, snapshot version, column, query fingerprint)`: two
/// requests with the same key are provably the same computation — the
/// table root plus snapshot version pin the data (versions are
/// per-table, so the root must participate), the fingerprint pins the
/// predicate — so sharing one in-flight search is always legal.
type QueryFlightKey = (String, u64, String, u64);

/// Builds the whole-query single-flight key. The table root is part of
/// the key because snapshot versions only mean something within one
/// table: two tables both at version 1 are different data.
fn flight_key(
    table_root: &str,
    snapshot_version: u64,
    column: &str,
    query: &Query<'_>,
) -> QueryFlightKey {
    (
        table_root.to_string(),
        snapshot_version,
        column.to_string(),
        query_fingerprint(column, query),
    )
}

/// The serving layer over one [`Rottnest`] client.
pub struct QueryService<'r, 'a> {
    rot: &'r Rottnest<'a>,
    cfg: ServiceConfig,
    admission: Admission,
    tenants: PrefixThrottle,
    flights: SingleFlight<QueryFlightKey, SearchOutcome>,
    stats: Mutex<ServiceStats>,
}

impl<'r, 'a> QueryService<'r, 'a> {
    /// Creates a service over `rot` with the given bounds.
    pub fn new(rot: &'r Rottnest<'a>, cfg: ServiceConfig) -> Self {
        Self {
            rot,
            admission: Admission::new(cfg.admission.clone()),
            tenants: PrefixThrottle::rejecting(cfg.tenant_limit_per_sec),
            flights: SingleFlight::new(),
            cfg,
            stats: Mutex::new(ServiceStats::default()),
        }
    }

    /// The admission controller (introspection and tests).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// The service's current operating mode, read off the client's
    /// store-health tracker (non-mutating — never consumes a half-open
    /// probe slot).
    pub fn mode(&self) -> ServeMode {
        if self.rot.in_brownout() {
            ServeMode::Brownout
        } else {
            ServeMode::Normal
        }
    }

    /// A copy of the service-level accounting so far.
    pub fn stats(&self) -> ServiceStats {
        *self.stats.lock()
    }

    /// Serves one query under the service's default timeout.
    pub fn query(
        &self,
        table: &Table<'_>,
        snapshot: &Snapshot,
        column: &str,
        query: &Query<'_>,
        tenant: &str,
    ) -> rottnest::Result<SearchOutcome> {
        let deadline_ms = self
            .cfg
            .default_timeout_ms
            .map(|budget| self.rot.store().now_ms().saturating_add(budget));
        self.query_with_deadline(table, snapshot, column, query, tenant, deadline_ms)
    }

    /// Serves one query against an absolute store-clock deadline,
    /// running the full shed → admit → dedup → search pipeline.
    ///
    /// Every error is typed: [`RottnestError::Overloaded`] for requests
    /// refused before any work, [`RottnestError::DeadlineExceeded`] for
    /// admitted searches that ran out of budget mid-flight, and the usual
    /// search errors otherwise.
    pub fn query_with_deadline(
        &self,
        table: &Table<'_>,
        snapshot: &Snapshot,
        column: &str,
        query: &Query<'_>,
        tenant: &str,
        deadline_ms: Option<u64>,
    ) -> rottnest::Result<SearchOutcome> {
        self.query_with_class(
            table,
            snapshot,
            column,
            query,
            tenant,
            deadline_ms,
            QueryClass::Interactive,
        )
    }

    /// Serves one query in a scheduling class. Interactive queries hold a
    /// high WFQ weight; batch queries soak spare capacity at a low one —
    /// under contention each class keeps at least its weight share of
    /// admissions (see [`crate::admission`]).
    #[allow(clippy::too_many_arguments)]
    pub fn query_with_class(
        &self,
        table: &Table<'_>,
        snapshot: &Snapshot,
        column: &str,
        query: &Query<'_>,
        tenant: &str,
        deadline_ms: Option<u64>,
        class: QueryClass,
    ) -> rottnest::Result<SearchOutcome> {
        let now_ms = self.rot.store().now_ms();

        // 0. Brownout: with the index domain's breaker open the service
        // runs on brute-scan capacity only, so batch-class work is shed
        // first (typed, before any budget is charged) and interactive
        // queries ride the normal admission gate into the degraded path.
        if class == QueryClass::Batch && self.mode() == ServeMode::Brownout {
            self.note_shed(class);
            self.stats.lock().brownout_shed += 1;
            return Err(ShedReason::Brownout {
                retry_after_ms: self.rot.health().config().cooldown_ms.max(1),
            }
            .into_error());
        }

        // 1. Tenant budget (PrefixThrottle in rejecting mode; the "/q"
        // suffix makes the tenant id the throttled prefix).
        if self.cfg.tenant_limit_per_sec > 0 {
            if let Err(retry_after_ms) = self.tenants.try_charge(&format!("{tenant}/q"), 1, now_ms)
            {
                self.note_shed(class);
                return Err(ShedReason::TenantBudget { retry_after_ms }.into_error());
            }
        }

        // 2. Admission: bounded concurrency + queueing, deadline-aware
        // shedding, per-tenant WFQ for tenants with configured weights.
        // The permit is RAII — released on every path below. An admission
        // shed refunds the tenant token charged above: the query did no
        // work, so refusing it must not also burn budget.
        let permit = match self
            .admission
            .admit_flow(now_ms, deadline_ms, class, Some(tenant))
        {
            Ok(p) => p,
            Err(shed) => {
                if self.cfg.tenant_limit_per_sec > 0 {
                    self.tenants
                        .refund(&format!("{tenant}/q"), 1, self.rot.store().now_ms());
                }
                self.note_shed(class);
                return Err(shed.into_error());
            }
        };

        // 3. Single-flight: identical in-flight queries share one search.
        // Failures never fan out — a follower whose leader errored
        // retries as its own leader (see `SingleFlight`), so one
        // transient fault cannot fail a whole convoy.
        let key = flight_key(table.root(), snapshot.version(), column, query);
        let started_ms = self.rot.store().now_ms();
        let (result, deduped) = self.flights.run(&key, || {
            self.rot
                .search_with_deadline(table, snapshot, column, query, deadline_ms)
        });
        drop(permit);
        if !deduped {
            // Followers measured their wait on the leader, not a service
            // time; folding that in would inflate the EWMA the gate
            // sheds by.
            self.admission
                .observe_service_ms(self.rot.store().now_ms().saturating_sub(started_ms));
        }

        // A deduped follower waited on the leader's flight, which ran
        // under the *leader's* deadline — re-check the follower's own
        // before returning so a long join cannot return Ok late.
        let result = match (deduped, deadline_ms, result) {
            (true, Some(deadline_ms), Ok(out)) => {
                let now_ms = self.rot.store().now_ms();
                if now_ms > deadline_ms {
                    Err(RottnestError::DeadlineExceeded {
                        deadline_ms,
                        now_ms,
                    })
                } else {
                    Ok(out)
                }
            }
            (_, _, result) => result,
        };

        // 4. Accounting.
        let mut st = self.stats.lock();
        st.admitted += 1;
        if class == QueryClass::Batch {
            st.admitted_batch += 1;
        }
        match &result {
            Ok(out) => {
                st.completed += 1;
                if out.stats.brownout_queries > 0 {
                    st.brownout_queries += 1;
                }
                if deduped {
                    st.dedup_hits += 1;
                    st.search.dedup_hits += 1;
                } else {
                    st.search.absorb(&out.stats);
                }
            }
            Err(RottnestError::DeadlineExceeded { .. }) => {
                st.deadline_aborts += 1;
                st.search.deadline_aborts += 1;
            }
            Err(_) => {}
        }
        result
    }

    fn note_shed(&self, class: QueryClass) {
        let mut st = self.stats.lock();
        st.queries_shed += 1;
        st.search.queries_shed += 1;
        if class == QueryClass::Batch {
            st.shed_batch += 1;
        }
    }
}

/// Fingerprints a query for whole-query dedup. Everything that affects
/// the outcome participates: the kind tag, the column, the needle bytes
/// (or vector bits), and `k` / the search-effort knobs.
fn query_fingerprint(column: &str, query: &Query<'_>) -> u64 {
    fn fnv(h: u64, bytes: &[u8]) -> u64 {
        let mut h = h;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
    match query {
        Query::UuidEq { key, k } => {
            let h = NegScanCache::probe_fingerprint(0, column, key);
            fnv(h, &(*k as u64).to_le_bytes())
        }
        Query::Substring { pattern, k } => {
            let h = NegScanCache::probe_fingerprint(1, column, pattern);
            fnv(h, &(*k as u64).to_le_bytes())
        }
        Query::VectorNn {
            query: qvec,
            params,
        } => {
            let mut h = NegScanCache::probe_fingerprint(2, column, &[]);
            for v in *qvec {
                h = fnv(h, &v.to_bits().to_le_bytes());
            }
            h = fnv(h, &(params.k as u64).to_le_bytes());
            h = fnv(h, &(params.nprobe as u64).to_le_bytes());
            fnv(h, &(params.refine as u64).to_le_bytes())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_distinguish_queries() {
        let a = query_fingerprint("c", &Query::UuidEq { key: b"x", k: 5 });
        let b = query_fingerprint("c", &Query::UuidEq { key: b"x", k: 6 });
        let c = query_fingerprint("c", &Query::UuidEq { key: b"y", k: 5 });
        let d = query_fingerprint("d", &Query::UuidEq { key: b"x", k: 5 });
        let e = query_fingerprint(
            "c",
            &Query::Substring {
                pattern: b"x",
                k: 5,
            },
        );
        let all = [a, b, c, d, e];
        for (i, x) in all.iter().enumerate() {
            for (j, y) in all.iter().enumerate() {
                if i != j {
                    assert_ne!(x, y, "fingerprints {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn identical_queries_share_a_fingerprint() {
        let a = query_fingerprint("c", &Query::UuidEq { key: b"abc", k: 10 });
        let b = query_fingerprint("c", &Query::UuidEq { key: b"abc", k: 10 });
        assert_eq!(a, b);
    }

    #[test]
    fn flight_keys_separate_tables_at_the_same_version() {
        // Regression: snapshot versions are per-table, so the identical
        // query on two tables both at version 1 must not share a flight.
        let q = Query::UuidEq { key: b"abc", k: 10 };
        let a = flight_key("tbl_a", 1, "c", &q);
        let b = flight_key("tbl_b", 1, "c", &q);
        assert_ne!(a, b);
        assert_eq!(a, flight_key("tbl_a", 1, "c", &q));
        assert_ne!(a, flight_key("tbl_a", 2, "c", &q));
    }
}
