//! Per-page Bloom-filter index — the minimal Rottnest index.
//!
//! §IV-B explicitly designs the search protocol around indexes that may
//! return false positives ("Rottnest indices are allowed to return false
//! positives (e.g. bloom filter)"): candidates are always re-checked by the
//! in-situ probe. This crate provides that cheapest point in the design
//! space: one small Bloom filter per data page, grouped into one component
//! per covered file.
//!
//! Compared to the binary trie (§V-C1) it trades index size (≈10 bits/key
//! vs LCP+9 bits + structure) and *zero* lookup round-trip depth beyond the
//! batched component fetch, against a fixed false-positive rate (~1 % at
//! the default parameters) that turns into extra page probes.
//!
//! Layout:
//!
//! ```text
//! component 0 (root): version, key_len, n_entries, bits_per_key, n_hashes,
//!                     per file: page count
//! component 1..=F:    per covered file: concatenated per-page filters
//!                     (offset directory + bit arrays)
//! ```

use bytes::Bytes;
use rottnest_component::{ComponentFile, ComponentWriter, Posting};
use rottnest_compress::varint;
use rottnest_object_store::ObjectStore;

/// Default bits per key (~1% false-positive rate with 7 hashes).
pub const DEFAULT_BITS_PER_KEY: u32 = 10;

/// Errors raised by bloom index operations.
#[derive(Debug)]
pub enum BloomError {
    /// Keys must have the fixed declared length.
    BadKey(String),
    /// Malformed serialized index.
    Corrupt(String),
    /// Component-layer failure.
    Component(rottnest_component::ComponentError),
}

impl std::fmt::Display for BloomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BloomError::BadKey(m) => write!(f, "bad key: {m}"),
            BloomError::Corrupt(m) => write!(f, "corrupt bloom index: {m}"),
            BloomError::Component(e) => write!(f, "component: {e}"),
        }
    }
}

impl std::error::Error for BloomError {}

impl From<rottnest_component::ComponentError> for BloomError {
    fn from(e: rottnest_component::ComponentError) -> Self {
        BloomError::Component(e)
    }
}

impl From<rottnest_compress::CompressError> for BloomError {
    fn from(e: rottnest_compress::CompressError) -> Self {
        BloomError::Corrupt(format!("varint: {e}"))
    }
}

impl From<rottnest_object_store::StoreError> for BloomError {
    fn from(e: rottnest_object_store::StoreError) -> Self {
        BloomError::Component(rottnest_component::ComponentError::Store(e))
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, BloomError>;

/// 128-bit double hashing: two independent 64-bit mixes of the key.
fn hash_pair(key: &[u8]) -> (u64, u64) {
    let mut h1 = 0xcbf29ce484222325u64;
    let mut h2 = 0x9e3779b97f4a7c15u64;
    for &b in key {
        h1 = (h1 ^ u64::from(b)).wrapping_mul(0x100000001b3);
        h2 = h2
            .wrapping_add(u64::from(b))
            .wrapping_mul(0xff51afd7ed558ccd);
        h2 ^= h2 >> 33;
    }
    (h1, h2)
}

/// One page's filter: a plain bit array probed with `k` derived hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PageFilter {
    bits: Vec<u64>,
    n_bits: u64,
}

impl PageFilter {
    fn with_capacity(n_keys: usize, bits_per_key: u32) -> Self {
        let n_bits = (n_keys as u64 * u64::from(bits_per_key)).max(64);
        Self {
            bits: vec![0; n_bits.div_ceil(64) as usize],
            n_bits,
        }
    }

    fn insert(&mut self, key: &[u8], n_hashes: u32) {
        let (h1, h2) = hash_pair(key);
        for i in 0..n_hashes {
            let bit = h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % self.n_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    fn contains(bits: &[u64], n_bits: u64, key: &[u8], n_hashes: u32) -> bool {
        let (h1, h2) = hash_pair(key);
        (0..n_hashes).all(|i| {
            let bit = h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % n_bits;
            bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }
}

/// Keys of one file, grouped by page id.
type FileKeys = (u32, Vec<(u32, Vec<Vec<u8>>)>);

/// Builds a bloom index file from `(key, posting)` pairs.
pub struct BloomBuilder {
    key_len: usize,
    bits_per_key: u32,
    n_hashes: u32,
    /// keys grouped per posting, postings grouped per file, in insertion
    /// order (builders feed pages file by file).
    files: Vec<FileKeys>,
    n_entries: u64,
}

impl BloomBuilder {
    /// Creates a builder for keys of exactly `key_len` bytes.
    pub fn new(key_len: usize) -> Result<Self> {
        if key_len == 0 {
            return Err(BloomError::BadKey("zero-length keys".into()));
        }
        Ok(Self {
            key_len,
            bits_per_key: DEFAULT_BITS_PER_KEY,
            n_hashes: 7,
            files: Vec::new(),
            n_entries: 0,
        })
    }

    /// Overrides the bits-per-key sizing (7 hashes kept).
    pub fn with_bits_per_key(mut self, bits: u32) -> Self {
        self.bits_per_key = bits.max(1);
        self
    }

    /// Registers one key → posting pair. Pairs should arrive grouped by
    /// file and page (the natural build order).
    pub fn add(&mut self, key: &[u8], posting: Posting) -> Result<()> {
        if key.len() != self.key_len {
            return Err(BloomError::BadKey(format!(
                "key of {} bytes in {}-byte index",
                key.len(),
                self.key_len
            )));
        }
        self.n_entries += 1;
        if self.files.last().map(|(f, _)| *f) != Some(posting.file) {
            self.files.push((posting.file, Vec::new()));
        }
        let pages = &mut self.files.last_mut().unwrap().1;
        if pages.last().map(|(p, _)| *p) != Some(posting.page) {
            pages.push((posting.page, Vec::new()));
        }
        pages.last_mut().unwrap().1.push(key.to_vec());
        Ok(())
    }

    /// Number of pairs added.
    pub fn len(&self) -> u64 {
        self.n_entries
    }

    /// Whether no pairs were added.
    pub fn is_empty(&self) -> bool {
        self.n_entries == 0
    }

    /// Serializes the index file image.
    pub fn finish(self) -> Bytes {
        let mut writer = ComponentWriter::new();
        let mut root = Vec::new();
        root.push(1u8);
        root.push(self.key_len as u8);
        varint::write_u64(&mut root, self.n_entries);
        varint::write_u64(&mut root, u64::from(self.bits_per_key));
        varint::write_u64(&mut root, u64::from(self.n_hashes));
        varint::write_usize(&mut root, self.files.len());

        let mut components = Vec::with_capacity(self.files.len());
        for (file_id, pages) in &self.files {
            varint::write_u64(&mut root, u64::from(*file_id));
            varint::write_usize(&mut root, pages.len());
            let mut comp = Vec::new();
            varint::write_usize(&mut comp, pages.len());
            for (page_id, keys) in pages {
                let mut filter = PageFilter::with_capacity(keys.len(), self.bits_per_key);
                for k in keys {
                    filter.insert(k, self.n_hashes);
                }
                varint::write_u64(&mut comp, u64::from(*page_id));
                varint::write_u64(&mut comp, filter.n_bits);
                for w in &filter.bits {
                    comp.extend_from_slice(&w.to_le_bytes());
                }
            }
            components.push(comp);
        }
        writer.add(root);
        for c in components {
            writer.add(c);
        }
        writer.finish()
    }

    /// Serializes and uploads; returns the file size.
    pub fn finish_into(self, store: &dyn ObjectStore, key: &str) -> Result<u64> {
        let bytes = self.finish();
        let len = bytes.len() as u64;
        store.put(key, bytes)?;
        Ok(len)
    }
}

/// Read handle over a bloom index file.
pub struct BloomIndex<'a> {
    file: ComponentFile<'a>,
    key_len: usize,
    n_entries: u64,
    n_hashes: u32,
    /// (file_id, page_count) per component, component id = position + 1.
    files: Vec<(u32, usize)>,
}

impl<'a> BloomIndex<'a> {
    /// Opens an index written by [`BloomBuilder`].
    pub fn open(store: &'a dyn ObjectStore, key: &str) -> Result<Self> {
        let file = ComponentFile::open(store, key)?;
        let root = file.component(0)?;
        if root.first() != Some(&1u8) {
            return Err(BloomError::Corrupt(
                "unsupported bloom layout version".into(),
            ));
        }
        let key_len = *root
            .get(1)
            .ok_or_else(|| BloomError::Corrupt("truncated root".into()))?
            as usize;
        let mut pos = 2usize;
        let n_entries = varint::read_u64(&root, &mut pos)?;
        let _bits_per_key = varint::read_u64(&root, &mut pos)?;
        let n_hashes = varint::read_u64(&root, &mut pos)? as u32;
        let n_files = varint::read_usize(&root, &mut pos)?;
        let mut files = Vec::with_capacity(n_files.min(1 << 16));
        for _ in 0..n_files {
            let file_id = varint::read_u64(&root, &mut pos)? as u32;
            let pages = varint::read_usize(&root, &mut pos)?;
            files.push((file_id, pages));
        }
        Ok(Self {
            file,
            key_len,
            n_entries,
            n_hashes,
            files,
        })
    }

    /// Fixed key length (bytes).
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Number of key/posting pairs indexed.
    pub fn num_entries(&self) -> u64 {
        self.n_entries
    }

    /// Candidate postings for `key`: every page whose filter matches.
    /// One **parallel** round trip fetches all per-file components.
    pub fn lookup(&self, key: &[u8]) -> Result<Vec<Posting>> {
        if key.len() != self.key_len {
            return Err(BloomError::BadKey(format!(
                "lookup key of {} bytes in {}-byte index",
                key.len(),
                self.key_len
            )));
        }
        let ids: Vec<usize> = (1..=self.files.len()).collect();
        let comps = self.file.components(&ids)?;
        let mut out = Vec::new();
        for ((file_id, n_pages), comp) in self.files.iter().zip(&comps) {
            let mut pos = 0usize;
            let stored_pages = varint::read_usize(comp, &mut pos)?;
            if stored_pages != *n_pages {
                return Err(BloomError::Corrupt("page count mismatch".into()));
            }
            for _ in 0..stored_pages {
                let page_id = varint::read_u64(comp, &mut pos)? as u32;
                let n_bits = varint::read_u64(comp, &mut pos)?;
                let n_words = n_bits.div_ceil(64) as usize;
                let end = pos + n_words * 8;
                if end > comp.len() {
                    return Err(BloomError::Corrupt("filter truncated".into()));
                }
                let words: Vec<u64> = comp[pos..end]
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                pos = end;
                if PageFilter::contains(&words, n_bits, key, self.n_hashes) {
                    out.push(Posting::new(*file_id, page_id));
                }
            }
        }
        Ok(out)
    }

    /// Raw sections for merging: `(file_id, component bytes)`.
    pub fn sections(&self) -> Result<Vec<(u32, Vec<u8>)>> {
        let ids: Vec<usize> = (1..=self.files.len()).collect();
        let comps = self.file.components(&ids)?;
        Ok(self
            .files
            .iter()
            .zip(comps)
            .map(|(&(file_id, _), c)| (file_id, c.to_vec()))
            .collect())
    }

    fn params(&self) -> (usize, u64, u32) {
        (self.key_len, self.n_entries, self.n_hashes)
    }
}

/// Merges bloom indexes (§IV-C): filters are immutable bit arrays, so a
/// merge simply concatenates the per-file sections with remapped file ids —
/// the cheapest merge of any Rottnest index type.
pub fn merge_blooms(
    store: &dyn ObjectStore,
    sources: &[(&BloomIndex<'_>, u32)],
    out_key: &str,
) -> Result<u64> {
    let (first, _) = sources
        .first()
        .ok_or_else(|| BloomError::BadKey("nothing to merge".into()))?;
    let (key_len, _, n_hashes) = first.params();
    let mut n_entries = 0u64;
    let mut all: Vec<(u32, usize, Vec<u8>)> = Vec::new();
    for (src, offset) in sources {
        if src.key_len() != key_len {
            return Err(BloomError::BadKey("merging different key lengths".into()));
        }
        n_entries += src.num_entries();
        for ((_, n_pages), (file_id, bytes)) in src.files.iter().zip(src.sections()?) {
            all.push((file_id + offset, *n_pages, bytes));
        }
    }

    let mut writer = ComponentWriter::new();
    let mut root = Vec::new();
    root.push(1u8);
    root.push(key_len as u8);
    varint::write_u64(&mut root, n_entries);
    varint::write_u64(&mut root, u64::from(DEFAULT_BITS_PER_KEY));
    varint::write_u64(&mut root, u64::from(n_hashes));
    varint::write_usize(&mut root, all.len());
    for (file_id, n_pages, _) in &all {
        varint::write_u64(&mut root, u64::from(*file_id));
        varint::write_usize(&mut root, *n_pages);
    }
    writer.add(root);
    for (_, _, bytes) in all {
        writer.add(bytes);
    }
    let bytes = writer.finish();
    let len = bytes.len() as u64;
    store.put(out_key, bytes)?;
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rottnest_object_store::MemoryStore;

    fn uuid(rng: &mut impl Rng) -> Vec<u8> {
        (0..16).map(|_| rng.gen()).collect()
    }

    #[test]
    fn every_indexed_key_is_found() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let store = MemoryStore::unmetered();
        let mut b = BloomBuilder::new(16).unwrap();
        let pairs: Vec<(Vec<u8>, Posting)> = (0..8_000u32)
            .map(|i| (uuid(&mut rng), Posting::new(i / 2000, (i % 2000) / 100)))
            .collect();
        for (k, p) in &pairs {
            b.add(k, *p).unwrap();
        }
        b.finish_into(store.as_ref(), "b.idx").unwrap();

        let idx = BloomIndex::open(store.as_ref(), "b.idx").unwrap();
        assert_eq!(idx.num_entries(), 8_000);
        for (k, p) in pairs.iter().step_by(53) {
            assert!(
                idx.lookup(k).unwrap().contains(p),
                "no false negatives allowed"
            );
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let store = MemoryStore::unmetered();
        let mut b = BloomBuilder::new(16).unwrap();
        for i in 0..4_000u32 {
            b.add(&uuid(&mut rng), Posting::new(0, i / 200)).unwrap();
        }
        b.finish_into(store.as_ref(), "b.idx").unwrap();
        let idx = BloomIndex::open(store.as_ref(), "b.idx").unwrap();

        let mut fp_pages = 0usize;
        let probes = 500;
        for _ in 0..probes {
            fp_pages += idx.lookup(&uuid(&mut rng)).unwrap().len();
        }
        // 20 pages × 500 probes = 10k page-checks; ~1% fpp → ~100 hits.
        assert!(fp_pages < 400, "false-positive pages: {fp_pages}");
    }

    #[test]
    fn lookup_is_one_batched_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let store = MemoryStore::unmetered();
        let mut b = BloomBuilder::new(16).unwrap();
        let mut keys = Vec::new();
        for i in 0..5_000u32 {
            let k = uuid(&mut rng);
            b.add(&k, Posting::new(i / 1000, (i % 1000) / 100)).unwrap();
            keys.push(k);
        }
        b.finish_into(store.as_ref(), "b.idx").unwrap();
        let idx = BloomIndex::open(store.as_ref(), "b.idx").unwrap();

        let before = store.stats();
        idx.lookup(&keys[42]).unwrap();
        let gets = store.stats().since(&before).gets;
        assert!(gets <= 5, "5 file components in ≤1 batch: {gets} GETs");
        // Cached afterwards.
        let before = store.stats();
        idx.lookup(&keys[4321]).unwrap();
        assert_eq!(store.stats().since(&before).gets, 0);
    }

    #[test]
    fn merge_concatenates_with_remap() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let store = MemoryStore::unmetered();
        let mut pairs_a = Vec::new();
        let mut pairs_b = Vec::new();
        for i in 0..1_000u32 {
            pairs_a.push((uuid(&mut rng), Posting::new(0, i / 100)));
            pairs_b.push((uuid(&mut rng), Posting::new(0, i / 100)));
        }
        for (name, pairs) in [("a.idx", &pairs_a), ("b.idx", &pairs_b)] {
            let mut b = BloomBuilder::new(16).unwrap();
            for (k, p) in pairs {
                b.add(k, *p).unwrap();
            }
            b.finish_into(store.as_ref(), name).unwrap();
        }
        let ia = BloomIndex::open(store.as_ref(), "a.idx").unwrap();
        let ib = BloomIndex::open(store.as_ref(), "b.idx").unwrap();
        merge_blooms(store.as_ref(), &[(&ia, 0), (&ib, 1)], "m.idx").unwrap();

        let m = BloomIndex::open(store.as_ref(), "m.idx").unwrap();
        assert_eq!(m.num_entries(), 2_000);
        for (k, p) in pairs_a.iter().step_by(97) {
            assert!(m.lookup(k).unwrap().contains(p));
        }
        for (k, p) in pairs_b.iter().step_by(97) {
            let want = Posting::new(p.file + 1, p.page);
            assert!(m.lookup(k).unwrap().contains(&want));
        }
    }

    #[test]
    fn wrong_key_length_rejected() {
        let store = MemoryStore::unmetered();
        let mut b = BloomBuilder::new(16).unwrap();
        assert!(b.add(&[1u8; 4], Posting::new(0, 0)).is_err());
        b.add(&[1u8; 16], Posting::new(0, 0)).unwrap();
        b.finish_into(store.as_ref(), "b.idx").unwrap();
        let idx = BloomIndex::open(store.as_ref(), "b.idx").unwrap();
        assert!(idx.lookup(&[1u8; 4]).is_err());
    }

    #[test]
    fn bloom_is_smaller_than_keys() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let store = MemoryStore::unmetered();
        let mut b = BloomBuilder::new(16).unwrap();
        let n = 10_000u32;
        for i in 0..n {
            b.add(&uuid(&mut rng), Posting::new(0, i / 500)).unwrap();
        }
        let size = b.finish_into(store.as_ref(), "b.idx").unwrap();
        // 10 bits/key ≈ 1.25 B/key, far below the 16 B raw keys.
        assert!(size < u64::from(n) * 4, "bloom index {size}B for {n} keys");
    }
}
