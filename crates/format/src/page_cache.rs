//! Process-wide byte-budgeted cache of lakeparquet **data pages**.
//!
//! The component cache (PR 2, `rottnest-component`) removed repeat GETs for
//! *index* structure; this cache does the same for the *data* pages the
//! probe path fetches to verify candidates. Skewed traffic — the same hot
//! UUIDs or substrings queried again and again — re-reads the same handful
//! of ~300 KiB pages every query, and each re-read is a billable range GET
//! with a ~30 ms first-byte latency (§VII-D3). A warm page cache turns
//! those into memory hits with **identical results**: pages are immutable
//! bytes, so a hit decodes to exactly what the GET would have returned.
//!
//! Keys are `(store id, file key, page offset, page length, validator)`:
//!
//! * store id — [`ObjectStore::store_id`]; `0` means "uncacheable" and
//!   bypasses the cache entirely (reads behave exactly as before).
//! * validator — a hash of the file's HEAD metadata (size + created
//!   timestamp), standing in for the etag real object stores provide. An
//!   overwritten file gets a new validator, so stale pages can never be
//!   served; they age out of the LRU unreferenced.
//!
//! Revalidation costs **one HEAD per file per query**, not per page: the
//! [`PageCacheSession`] a search creates memoizes validators for the
//! duration of the query, and the session is shared across parallel probe
//! workers. A HEAD is an order of magnitude cheaper than the GET it can
//! save, and on a miss the HEAD still primes the insert's validator.
//!
//! Budget: a separate [`ByteLru`] instance from the component cache —
//! default 256 MiB each — so a burst of large data pages can never evict
//! hot index components, and vice versa.
//!
//! Invalidation hints: the lake layer calls [`PageCache::invalidate_file`]
//! when compaction replaces data files and when vacuum physically deletes
//! them, so dead bytes stop pinning cache budget the moment the file is
//! gone rather than lingering until eviction.

use std::sync::{Mutex, OnceLock};

use bytes::Bytes;
use rottnest_object_store::{ByteLru, FxHashMap, ObjectStore};

/// Default page-cache capacity in bytes (separate from the component
/// cache's budget).
pub const DEFAULT_PAGE_CACHE_CAPACITY: usize = 256 * 1024 * 1024;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PageKey {
    ns: u64,
    key: String,
    offset: u64,
    len: u64,
    validator: u64,
}

/// Sharded, byte-capped, process-wide LRU for data pages.
pub struct PageCache {
    lru: ByteLru<PageKey, Bytes>,
}

impl PageCache {
    /// Creates a cache bounded by `capacity` total bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            lru: ByteLru::with_capacity(capacity),
        }
    }

    /// The process-wide instance used by [`crate::PageReader`].
    pub fn global() -> &'static PageCache {
        static GLOBAL: OnceLock<PageCache> = OnceLock::new();
        GLOBAL.get_or_init(|| PageCache::with_capacity(DEFAULT_PAGE_CACHE_CAPACITY))
    }

    /// Combines a file's HEAD metadata into the validator pages are keyed
    /// by. FNV-1a over the fixed-width fields.
    pub fn file_validator(size: u64, created_ms: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in size
            .to_le_bytes()
            .into_iter()
            .chain(created_ms.to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Looks up the page at `offset..offset+len` of `key` on store `ns`
    /// under `validator`.
    pub fn get(&self, ns: u64, key: &str, offset: u64, len: u64, validator: u64) -> Option<Bytes> {
        self.lru.get(&PageKey {
            ns,
            key: key.to_string(),
            offset,
            len,
            validator,
        })
    }

    /// Installs page bytes. Callers must only insert payloads whose length
    /// matches the page-table entry (a torn short read must never be
    /// cached).
    pub fn put(&self, ns: u64, key: &str, offset: u64, len: u64, validator: u64, data: Bytes) {
        let charge = data.len();
        self.lru.insert(
            PageKey {
                ns,
                key: key.to_string(),
                offset,
                len,
                validator,
            },
            data,
            charge,
        );
    }

    /// Drops every cached page of `key` on store `ns`, across all
    /// validators — the invalidation hint compaction and vacuum emit after
    /// replacing or physically deleting a data file.
    pub fn invalidate_file(&self, ns: u64, key: &str) {
        self.lru.retain(|k| !(k.ns == ns && k.key == key));
    }

    /// Number of cached pages for `key` on store `ns` (tests assert
    /// invalidation hints landed).
    pub fn entries_for_file(&self, ns: u64, key: &str) -> usize {
        self.lru.count_matching(|k| k.ns == ns && k.key == key)
    }

    /// Empties the cache (benchmarks use this to model a cold client).
    pub fn clear(&self) {
        self.lru.clear();
    }

    /// Number of cached pages (all shards).
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Total cached bytes (all shards).
    pub fn bytes(&self) -> usize {
        self.lru.bytes()
    }
}

/// Per-query validator memo: one HEAD per file per query.
///
/// A search creates one session and shares it (by reference) across every
/// probe worker. The first reader of each file HEADs it once to derive the
/// validator; every later page of that file — from any worker — reuses the
/// memoized answer. `None` is memoized too: a file whose HEAD failed (or a
/// store with id 0) reads straight through without caching, preserving
/// exact pre-cache behaviour.
#[derive(Default)]
pub struct PageCacheSession {
    validators: Mutex<FxHashMap<(u64, String), Option<u64>>>,
}

impl PageCacheSession {
    /// Creates an empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// The validator for `key` on `store`, HEADing the file on first use.
    ///
    /// Returns `None` when the store is uncacheable (`store_id() == 0`) or
    /// the HEAD failed; callers fall back to plain uncached reads. The memo
    /// lock is held across the HEAD so concurrent workers asking about the
    /// same file still cost a single request.
    pub fn validator(&self, store: &dyn ObjectStore, key: &str) -> Option<u64> {
        let ns = store.store_id();
        if ns == 0 {
            return None;
        }
        let mut memo = self.validators.lock().unwrap();
        if let Some(v) = memo.get(&(ns, key.to_string())) {
            return *v;
        }
        let v = store
            .head(key)
            .ok()
            .map(|meta| PageCache::file_validator(meta.size, meta.created_ms));
        memo.insert((ns, key.to_string()), v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes_of(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn hit_requires_every_key_part_to_match() {
        let cache = PageCache::with_capacity(1 << 20);
        cache.put(1, "d/a.lkpq", 100, 50, 7, bytes_of(50, 1));
        assert!(cache.get(1, "d/a.lkpq", 100, 50, 7).is_some());
        assert!(cache.get(2, "d/a.lkpq", 100, 50, 7).is_none(), "store id");
        assert!(cache.get(1, "d/b.lkpq", 100, 50, 7).is_none(), "file key");
        assert!(cache.get(1, "d/a.lkpq", 150, 50, 7).is_none(), "offset");
        assert!(cache.get(1, "d/a.lkpq", 100, 51, 7).is_none(), "length");
        assert!(cache.get(1, "d/a.lkpq", 100, 50, 8).is_none(), "validator");
    }

    #[test]
    fn eviction_respects_byte_cap() {
        let cache = PageCache::with_capacity(16 * 1024);
        for i in 0..200u64 {
            cache.put(1, "d/a.lkpq", i * 1024, 1024, 7, bytes_of(1024, i as u8));
        }
        assert!(cache.bytes() <= 16 * 1024);
        assert!(cache.len() < 200);
    }

    #[test]
    fn invalidate_file_drops_every_generation() {
        let cache = PageCache::with_capacity(1 << 20);
        cache.put(1, "d/a.lkpq", 0, 10, 7, bytes_of(10, 1));
        cache.put(1, "d/a.lkpq", 10, 10, 7, bytes_of(10, 2));
        cache.put(1, "d/a.lkpq", 0, 10, 8, bytes_of(10, 3)); // older generation
        cache.put(1, "d/b.lkpq", 0, 10, 7, bytes_of(10, 4));
        assert_eq!(cache.entries_for_file(1, "d/a.lkpq"), 3);
        cache.invalidate_file(1, "d/a.lkpq");
        assert_eq!(cache.entries_for_file(1, "d/a.lkpq"), 0);
        assert_eq!(cache.entries_for_file(1, "d/b.lkpq"), 1);
    }

    #[test]
    fn validator_changes_with_size_and_timestamp() {
        let v = PageCache::file_validator(1000, 5);
        assert_ne!(v, PageCache::file_validator(1001, 5));
        assert_ne!(v, PageCache::file_validator(1000, 6));
        assert_eq!(v, PageCache::file_validator(1000, 5));
    }

    #[test]
    fn session_heads_each_file_once() {
        use rottnest_object_store::MemoryStore;
        let store = MemoryStore::unmetered();
        store.put("d/a.lkpq", bytes_of(100, 1)).unwrap();
        store.put("d/b.lkpq", bytes_of(200, 2)).unwrap();

        let session = PageCacheSession::new();
        let before = store.stats();
        let va = session.validator(store.as_ref(), "d/a.lkpq");
        assert!(va.is_some());
        for _ in 0..5 {
            assert_eq!(session.validator(store.as_ref(), "d/a.lkpq"), va);
        }
        session.validator(store.as_ref(), "d/b.lkpq").unwrap();
        let delta = store.stats().since(&before);
        assert_eq!(delta.heads, 2, "one HEAD per distinct file");

        // Missing files memoize None without re-HEADing.
        let before = store.stats();
        assert!(session.validator(store.as_ref(), "d/gone.lkpq").is_none());
        assert!(session.validator(store.as_ref(), "d/gone.lkpq").is_none());
        assert_eq!(store.stats().since(&before).heads, 1);
    }
}
