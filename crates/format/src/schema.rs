//! Schema model: typed named columns.

use rottnest_compress::varint;

use crate::{FormatError, Result};

/// The physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integers (timestamps, counters).
    Int64,
    /// Variable-length UTF-8 strings (log lines, documents).
    Utf8,
    /// Variable-length binary (UUIDs, hashes).
    Binary,
    /// Fixed-dimension `f32` embedding vectors.
    VectorF32 {
        /// Number of dimensions per vector.
        dim: u32,
    },
}

impl DataType {
    fn tag(&self) -> u8 {
        match self {
            DataType::Int64 => 0,
            DataType::Utf8 => 1,
            DataType::Binary => 2,
            DataType::VectorF32 { .. } => 3,
        }
    }

    /// Serializes the type into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        if let DataType::VectorF32 { dim } = self {
            varint::write_u64(out, u64::from(*dim));
        }
    }

    /// Decodes a type written by [`DataType::encode`].
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| FormatError::Corrupt("truncated data type".into()))?;
        *pos += 1;
        match tag {
            0 => Ok(DataType::Int64),
            1 => Ok(DataType::Utf8),
            2 => Ok(DataType::Binary),
            3 => {
                let dim = varint::read_u64(buf, pos)? as u32;
                Ok(DataType::VectorF32 { dim })
            }
            other => Err(FormatError::Corrupt(format!(
                "unknown data type tag {other}"
            ))),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, unique within a schema.
    pub name: String,
    /// Physical type.
    pub data_type: DataType,
}

impl Field {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema; panics on duplicate column names (a programming
    /// error, not a runtime condition).
    pub fn new(fields: Vec<Field>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|g| g.name == f.name),
                "duplicate column name {:?}",
                f.name
            );
        }
        Self { fields }
    }

    /// The schema's fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column called `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Serializes the schema into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::write_usize(out, self.fields.len());
        for f in &self.fields {
            varint::write_str(out, &f.name);
            f.data_type.encode(out);
        }
    }

    /// Decodes a schema written by [`Schema::encode`].
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let n = varint::read_usize(buf, pos)?;
        let mut fields = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = varint::read_str(buf, pos)?;
            let data_type = DataType::decode(buf, pos)?;
            fields.push(Field { name, data_type });
        }
        Ok(Schema { fields })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("ts", DataType::Int64),
            Field::new("body", DataType::Utf8),
            Field::new("trace_id", DataType::Binary),
            Field::new("embedding", DataType::VectorF32 { dim: 128 }),
        ])
    }

    #[test]
    fn round_trip() {
        let schema = sample();
        let mut buf = Vec::new();
        schema.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(Schema::decode(&buf, &mut pos).unwrap(), schema);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn index_of_finds_columns() {
        let schema = sample();
        assert_eq!(schema.index_of("body"), Some(1));
        assert_eq!(schema.index_of("missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Utf8),
        ]);
    }

    #[test]
    fn corrupt_type_tag_rejected() {
        let buf = [9u8];
        let mut pos = 0;
        assert!(DataType::decode(&buf, &mut pos).is_err());
    }
}
