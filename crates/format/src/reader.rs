//! The two read paths of Figure 5.
//!
//! [`ChunkReader`] models today's query engines: a dependent chain of
//! (1) footer fetch → (2) whole-column-chunk fetch → decompress everything.
//! [`PageReader`] is Rottnest's optimized reader: armed with an external
//! [`PageTable`], it issues **one** range GET per needed page (~300 KiB) and
//! never touches the footer. §VII-C shows this one change moves Rottnest
//! from losing to the copy-data approach to matching a purpose-built format.

use rottnest_object_store::{ObjectStore, RangeRequest};

use crate::column::ColumnData;
use crate::footer::FileMeta;
use crate::page::decode_page;
use crate::page_table::PageTable;
use crate::schema::DataType;
use crate::{FormatError, Result};

/// Speculative tail fetch size: one GET usually captures the whole footer.
const TAIL_FETCH: u64 = 64 * 1024;

/// Traditional footer-first, whole-chunk reader.
pub struct ChunkReader<'a> {
    store: &'a dyn ObjectStore,
    key: String,
    meta: FileMeta,
}

impl<'a> ChunkReader<'a> {
    /// Opens a file: HEAD for the length, then a speculative tail GET for
    /// the footer (a second GET only if the footer exceeds 64 KiB).
    pub fn open(store: &'a dyn ObjectStore, key: &str) -> Result<Self> {
        let head = store.head(key)?;
        let len = head.size;
        let tail_start = len.saturating_sub(TAIL_FETCH);
        let tail = store.get_range(key, tail_start..len)?;
        let meta = match FileMeta::from_tail(&tail, len) {
            Ok((meta, _)) => meta,
            Err(_) if tail_start > 0 => {
                // Footer larger than the speculative fetch: read it exactly.
                let frame = store.get_range(key, len - 8..len)?;
                let footer_len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as u64;
                let full = store.get_range(key, len - 8 - footer_len..len)?;
                FileMeta::from_tail(&full, len)?.0
            }
            Err(e) => return Err(e),
        };
        Ok(Self {
            store,
            key: key.to_string(),
            meta,
        })
    }

    /// The parsed file metadata.
    pub fn meta(&self) -> &FileMeta {
        &self.meta
    }

    /// Downloads and decodes **an entire column chunk** (all pages of column
    /// `col` in row group `rg`) — the traditional access pattern whose cost
    /// §II-B2 criticizes.
    pub fn read_chunk(&self, rg: usize, col: usize) -> Result<ColumnData> {
        let group = self
            .meta
            .row_groups
            .get(rg)
            .ok_or_else(|| FormatError::Corrupt(format!("no row group {rg}")))?;
        let chunk = group
            .chunks
            .get(col)
            .ok_or_else(|| FormatError::Corrupt(format!("no column {col}")))?;
        let data_type = self.meta.schema.fields()[col].data_type;
        let bytes = self
            .store
            .get_range(&self.key, chunk.offset..chunk.offset + chunk.size)?;

        let mut out = ColumnData::empty(data_type);
        for page in &chunk.pages {
            let start = (page.offset - chunk.offset) as usize;
            let end = start + page.size as usize;
            let col_data = decode_page(&bytes[start..end], data_type)?;
            out.extend_from_page(&col_data)?;
        }
        Ok(out)
    }

    /// Reads the full column across all row groups (the brute-force scan
    /// path).
    pub fn read_column(&self, col: usize) -> Result<ColumnData> {
        let data_type = self.meta.schema.fields()[col].data_type;
        let mut out = ColumnData::empty(data_type);
        for rg in 0..self.meta.row_groups.len() {
            let chunk = self.read_chunk(rg, col)?;
            out.extend_from_page(&chunk)?;
        }
        Ok(out)
    }

    /// Bytes that [`ChunkReader::read_column`] would transfer, without
    /// reading (used by the cluster cost model).
    pub fn column_bytes(&self, col: usize) -> u64 {
        self.meta
            .row_groups
            .iter()
            .map(|rg| rg.chunks[col].size)
            .sum()
    }
}

// Private helper so ColumnData keeps a single public extend API.
trait ExtendFromPage {
    fn extend_from_page(&mut self, other: &ColumnData) -> Result<()>;
}

impl ExtendFromPage for ColumnData {
    fn extend_from_page(&mut self, other: &ColumnData) -> Result<()> {
        self.extend_from(other)
    }
}

/// Rottnest's page-granular reader.
///
/// Requires no file metadata at all — the caller supplies
/// [`PageLocation`](crate::page_table::PageLocation)s from an index's
/// embedded page table.
pub struct PageReader<'a> {
    store: &'a dyn ObjectStore,
}

impl<'a> PageReader<'a> {
    /// Creates a reader over `store`.
    pub fn new(store: &'a dyn ObjectStore) -> Self {
        Self { store }
    }

    /// Fetches and decodes a single page with one range GET.
    pub fn read_page(
        &self,
        key: &str,
        table: &PageTable,
        page_id: usize,
        data_type: DataType,
    ) -> Result<ColumnData> {
        let loc = table
            .page(page_id)
            .ok_or_else(|| FormatError::Corrupt(format!("no page {page_id} in table")))?;
        let bytes = self
            .store
            .get_range(key, loc.offset..loc.offset + loc.size)?;
        decode_page(&bytes, data_type)
    }

    /// Fetches many pages, possibly across files, in **one parallel round
    /// trip** (the access-width optimization of §V-B). Requests are
    /// `(file_key, page_table, page_id)` triples; results come back in
    /// order.
    pub fn read_pages(
        &self,
        requests: &[(&str, &PageTable, usize)],
        data_type: DataType,
    ) -> Result<Vec<ColumnData>> {
        let mut ranges = Vec::with_capacity(requests.len());
        for (key, table, page_id) in requests {
            let loc = table.page(*page_id).ok_or_else(|| {
                FormatError::Corrupt(format!("no page {page_id} in table for {key}"))
            })?;
            ranges.push(RangeRequest::new(*key, loc.offset..loc.offset + loc.size));
        }
        let payloads = self.store.get_ranges(&ranges)?;
        payloads.iter().map(|b| decode_page(b, data_type)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{RecordBatch, ValueRef};
    use crate::schema::{Field, Schema};
    use crate::writer::{FileWriter, WriterOptions};
    use rottnest_object_store::MemoryStore;

    fn write_file(
        store: &dyn ObjectStore,
        key: &str,
        rows: usize,
        opts: WriterOptions,
    ) -> FileMeta {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("body", DataType::Utf8),
        ]);
        let ids: Vec<i64> = (0..rows as i64).collect();
        let bodies: Vec<String> = (0..rows)
            .map(|i| format!("record {i} body with some text payload"))
            .collect();
        let batch = RecordBatch::new(
            schema.clone(),
            vec![ColumnData::Int64(ids), ColumnData::from_strings(bodies)],
        )
        .unwrap();
        let mut w = FileWriter::with_options(schema, opts);
        w.write_batch(&batch).unwrap();
        w.finish_into(store, key).unwrap()
    }

    #[test]
    fn chunk_reader_reads_whole_column() {
        let store = MemoryStore::unmetered();
        let opts = WriterOptions {
            row_group_rows: 100,
            page_raw_bytes: 512,
            ..Default::default()
        };
        write_file(store.as_ref(), "t/a.lkpq", 250, opts);

        let reader = ChunkReader::open(store.as_ref(), "t/a.lkpq").unwrap();
        assert_eq!(reader.meta().num_rows, 250);
        assert_eq!(reader.meta().row_groups.len(), 3);

        let col = reader.read_column(1).unwrap();
        assert_eq!(col.len(), 250);
        assert_eq!(
            col.get(123),
            Some(ValueRef::Utf8("record 123 body with some text payload"))
        );
    }

    #[test]
    fn chunk_reader_handles_large_footer() {
        let store = MemoryStore::unmetered();
        // Tiny pages => thousands of page entries => footer > 64 KiB.
        let opts = WriterOptions {
            row_group_rows: 50,
            page_raw_bytes: 64,
            ..Default::default()
        };
        write_file(store.as_ref(), "t/big-footer.lkpq", 5000, opts);
        let reader = ChunkReader::open(store.as_ref(), "t/big-footer.lkpq").unwrap();
        assert_eq!(reader.meta().num_rows, 5000);
        let col = reader.read_chunk(0, 0).unwrap();
        assert_eq!(col.len(), 50);
    }

    #[test]
    fn page_reader_fetches_single_pages_without_footer() {
        let store = MemoryStore::unmetered();
        let opts = WriterOptions {
            row_group_rows: 1000,
            page_raw_bytes: 512,
            ..Default::default()
        };
        let meta = write_file(store.as_ref(), "t/b.lkpq", 300, opts);
        let table = PageTable::from_meta(&meta, 1).unwrap();
        assert!(table.len() > 5);

        let reader = PageReader::new(store.as_ref());
        let before = store.stats();
        let page_id = table.page_of_row(200).unwrap();
        let col = reader
            .read_page("t/b.lkpq", &table, page_id, DataType::Utf8)
            .unwrap();
        let after = store.stats().since(&before);
        assert_eq!(after.gets, 1, "exactly one GET, no footer read");
        assert_eq!(after.heads, 0);

        let first = table.page(page_id).unwrap().first_row;
        let within = (200 - first) as usize;
        assert_eq!(
            col.get(within),
            Some(ValueRef::Utf8("record 200 body with some text payload"))
        );
    }

    #[test]
    fn page_reader_batches_many_pages_into_one_round_trip() {
        let store = MemoryStore::new(); // metered
        let opts = WriterOptions {
            row_group_rows: 1000,
            page_raw_bytes: 512,
            ..Default::default()
        };
        let meta = write_file(store.as_ref(), "t/c.lkpq", 400, opts);
        let table = PageTable::from_meta(&meta, 1).unwrap();
        let reader = PageReader::new(store.as_ref());

        let requests: Vec<(&str, &PageTable, usize)> =
            (0..table.len()).map(|i| ("t/c.lkpq", &table, i)).collect();
        let clock = store.clock().unwrap();
        let (cols, elapsed) = clock.time(|| reader.read_pages(&requests, DataType::Utf8).unwrap());
        let total: usize = cols.iter().map(|c| c.len()).sum();
        assert_eq!(total, 400);
        // One parallel round trip: modeled latency ~ a single small GET.
        let single = store.latency_model().get_us(1024);
        assert!(
            elapsed < single * 3,
            "batch cost {elapsed}us vs single {single}us"
        );
    }

    #[test]
    fn page_reader_reads_much_less_than_chunk_reader() {
        let store = MemoryStore::unmetered();
        let opts = WriterOptions {
            row_group_rows: 100_000,
            page_raw_bytes: 4096,
            ..Default::default()
        };
        let meta = write_file(store.as_ref(), "t/d.lkpq", 20_000, opts);
        let table = PageTable::from_meta(&meta, 1).unwrap();

        let before = store.stats();
        let reader = ChunkReader::open(store.as_ref(), "t/d.lkpq").unwrap();
        reader.read_column(1).unwrap();
        let chunk_bytes = store.stats().since(&before).bytes_read;

        let before = store.stats();
        PageReader::new(store.as_ref())
            .read_page("t/d.lkpq", &table, table.len() / 2, DataType::Utf8)
            .unwrap();
        let page_bytes = store.stats().since(&before).bytes_read;

        assert!(
            chunk_bytes > page_bytes * 50,
            "chunk path read {chunk_bytes}B, page path {page_bytes}B"
        );
    }

    #[test]
    fn missing_page_id_is_an_error() {
        let store = MemoryStore::unmetered();
        let meta = write_file(store.as_ref(), "t/e.lkpq", 10, WriterOptions::default());
        let table = PageTable::from_meta(&meta, 0).unwrap();
        let reader = PageReader::new(store.as_ref());
        assert!(reader
            .read_page("t/e.lkpq", &table, 999, DataType::Int64)
            .is_err());
    }
}
