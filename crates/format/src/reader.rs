//! The two read paths of Figure 5.
//!
//! [`ChunkReader`] models today's query engines: a dependent chain of
//! (1) footer fetch → (2) whole-column-chunk fetch → decompress everything.
//! [`PageReader`] is Rottnest's optimized reader: armed with an external
//! [`PageTable`], it issues **one** range GET per needed page (~300 KiB) and
//! never touches the footer. §VII-C shows this one change moves Rottnest
//! from losing to the copy-data approach to matching a purpose-built format.

use std::sync::OnceLock;

use bytes::Bytes;
use rottnest_object_store::{ObjectStore, RangeRequest, SingleFlight};

use crate::column::ColumnData;
use crate::footer::FileMeta;
use crate::page::decode_page;
use crate::page_cache::{PageCache, PageCacheSession};
use crate::page_table::PageTable;
use crate::schema::DataType;
use crate::{FormatError, Result};

/// Speculative tail fetch size: one GET usually captures the whole footer.
const TAIL_FETCH: u64 = 64 * 1024;

/// `(store id, file key, offset, len, validator)` — the same coordinates
/// that key the page cache, so two flights can only merge when a cache hit
/// would also have been legal (same bytes, same file generation).
type PageFlightKey = (u64, String, u64, u64, u64);

/// Process-wide single-flight table for single-page GETs: concurrent
/// identical cache misses share one underlying request instead of
/// stampeding the store. Only validator-fenced reads on cacheable stores
/// participate; everything else goes straight to the store, so sequential
/// request counts are bit-identical to a build without single-flight.
fn page_flights() -> &'static SingleFlight<PageFlightKey, Bytes> {
    static FLIGHTS: OnceLock<SingleFlight<PageFlightKey, Bytes>> = OnceLock::new();
    FLIGHTS.get_or_init(SingleFlight::new)
}

/// Traditional footer-first, whole-chunk reader.
pub struct ChunkReader<'a> {
    store: &'a dyn ObjectStore,
    key: String,
    meta: FileMeta,
}

impl<'a> ChunkReader<'a> {
    /// Opens a file: HEAD for the length, then a speculative tail GET for
    /// the footer (a second GET only if the footer exceeds 64 KiB).
    pub fn open(store: &'a dyn ObjectStore, key: &str) -> Result<Self> {
        let head = store.head(key)?;
        let len = head.size;
        let tail_start = len.saturating_sub(TAIL_FETCH);
        let tail = store.get_range(key, tail_start..len)?;
        let meta = match FileMeta::from_tail(&tail, len) {
            Ok((meta, _)) => meta,
            Err(_) if tail_start > 0 => {
                // Footer larger than the speculative fetch: read it exactly.
                let frame = store.get_range(key, len - 8..len)?;
                let footer_len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as u64;
                let full = store.get_range(key, len - 8 - footer_len..len)?;
                FileMeta::from_tail(&full, len)?.0
            }
            Err(e) => return Err(e),
        };
        Ok(Self {
            store,
            key: key.to_string(),
            meta,
        })
    }

    /// The parsed file metadata.
    pub fn meta(&self) -> &FileMeta {
        &self.meta
    }

    /// Downloads and decodes **an entire column chunk** (all pages of column
    /// `col` in row group `rg`) — the traditional access pattern whose cost
    /// §II-B2 criticizes.
    pub fn read_chunk(&self, rg: usize, col: usize) -> Result<ColumnData> {
        let group = self
            .meta
            .row_groups
            .get(rg)
            .ok_or_else(|| FormatError::Corrupt(format!("no row group {rg}")))?;
        let chunk = group
            .chunks
            .get(col)
            .ok_or_else(|| FormatError::Corrupt(format!("no column {col}")))?;
        let data_type = self.meta.schema.fields()[col].data_type;
        let bytes = self
            .store
            .get_range(&self.key, chunk.offset..chunk.offset + chunk.size)?;

        let mut out = ColumnData::empty(data_type);
        for page in &chunk.pages {
            let start = (page.offset - chunk.offset) as usize;
            let end = start + page.size as usize;
            let col_data = decode_page(&bytes[start..end], data_type)?;
            out.extend_from_page(&col_data)?;
        }
        Ok(out)
    }

    /// Reads the full column across all row groups (the brute-force scan
    /// path).
    pub fn read_column(&self, col: usize) -> Result<ColumnData> {
        let data_type = self.meta.schema.fields()[col].data_type;
        let mut out = ColumnData::empty(data_type);
        for rg in 0..self.meta.row_groups.len() {
            let chunk = self.read_chunk(rg, col)?;
            out.extend_from_page(&chunk)?;
        }
        Ok(out)
    }

    /// Bytes that [`ChunkReader::read_column`] would transfer, without
    /// reading (used by the cluster cost model).
    pub fn column_bytes(&self, col: usize) -> u64 {
        self.meta
            .row_groups
            .iter()
            .map(|rg| rg.chunks[col].size)
            .sum()
    }
}

// Private helper so ColumnData keeps a single public extend API.
trait ExtendFromPage {
    fn extend_from_page(&mut self, other: &ColumnData) -> Result<()>;
}

impl ExtendFromPage for ColumnData {
    fn extend_from_page(&mut self, other: &ColumnData) -> Result<()> {
        self.extend_from(other)
    }
}

/// Rottnest's page-granular reader.
///
/// Requires no file metadata at all — the caller supplies
/// [`PageLocation`](crate::page_table::PageLocation)s from an index's
/// embedded page table.
pub struct PageReader<'a> {
    store: &'a dyn ObjectStore,
    cache: Option<&'a PageCacheSession>,
}

impl<'a> PageReader<'a> {
    /// Creates an uncached reader over `store`: every page is one range
    /// GET, exactly as before the page cache existed.
    pub fn new(store: &'a dyn ObjectStore) -> Self {
        Self { store, cache: None }
    }

    /// Creates a reader that consults the process-wide [`PageCache`],
    /// revalidating files through `session` (one HEAD per file per
    /// session). Results are identical to [`PageReader::new`] — pages are
    /// immutable bytes keyed by a validator of the file generation — only
    /// the request count changes.
    pub fn cached(store: &'a dyn ObjectStore, session: &'a PageCacheSession) -> Self {
        Self {
            store,
            cache: Some(session),
        }
    }

    /// Fetches and decodes a single page with one range GET (or zero, on a
    /// page-cache hit).
    pub fn read_page(
        &self,
        key: &str,
        table: &PageTable,
        page_id: usize,
        data_type: DataType,
    ) -> Result<ColumnData> {
        let loc = table
            .page(page_id)
            .ok_or_else(|| FormatError::Corrupt(format!("no page {page_id} in table")))?;
        let validator = self.cache.and_then(|s| s.validator(self.store, key));
        if let Some(v) = validator {
            let ns = self.store.store_id();
            if let Some(bytes) = PageCache::global().get(ns, key, loc.offset, loc.size, v) {
                self.store.record_page_cache(1, 0, loc.size);
                return decode_page(&bytes, data_type);
            }
        }
        let ns = self.store.store_id();
        let bytes = match validator {
            Some(v) if ns != 0 => {
                let flight_key = (ns, key.to_string(), loc.offset, loc.size, v);
                let (fetched, deduped) = page_flights().run(&flight_key, || {
                    self.store.get_range(key, loc.offset..loc.offset + loc.size)
                });
                if deduped {
                    self.store.record_dedup(1);
                }
                fetched?
            }
            _ => self
                .store
                .get_range(key, loc.offset..loc.offset + loc.size)?,
        };
        if let Some(v) = validator {
            self.store.record_page_cache(0, 1, 0);
            // Never cache a torn short read; retry layers above re-fetch.
            if bytes.len() as u64 == loc.size {
                PageCache::global().put(ns, key, loc.offset, loc.size, v, bytes.clone());
            }
        }
        decode_page(&bytes, data_type)
    }

    /// Fetches many pages, possibly across files, in **one parallel round
    /// trip** (the access-width optimization of §V-B). Requests are
    /// `(file_key, page_table, page_id)` triples; results come back in
    /// order.
    ///
    /// With a cache session, the cache is consulted **before** the batch is
    /// handed to [`ObjectStore::get_ranges`]: cached pages never reach the
    /// range coalescer, so a hit can never widen a covering GET around it —
    /// only the true misses are fetched (and inserted for next time).
    pub fn read_pages(
        &self,
        requests: &[(&str, &PageTable, usize)],
        data_type: DataType,
    ) -> Result<Vec<ColumnData>> {
        let mut locs = Vec::with_capacity(requests.len());
        for (key, table, page_id) in requests {
            let loc = table.page(*page_id).ok_or_else(|| {
                FormatError::Corrupt(format!("no page {page_id} in table for {key}"))
            })?;
            locs.push((loc.offset, loc.size));
        }

        let ns = self.store.store_id();
        let mut payloads: Vec<Option<Bytes>> = vec![None; requests.len()];
        // (request index, validator) for pages the cache could not serve.
        let mut misses: Vec<(usize, Option<u64>)> = Vec::new();
        let (mut hits, mut tracked_misses, mut bytes_saved) = (0u64, 0u64, 0u64);
        for (i, ((key, _, _), &(offset, size))) in requests.iter().zip(&locs).enumerate() {
            let validator = self.cache.and_then(|s| s.validator(self.store, key));
            if let Some(v) = validator {
                if let Some(bytes) = PageCache::global().get(ns, key, offset, size, v) {
                    hits += 1;
                    bytes_saved += size;
                    payloads[i] = Some(bytes);
                    continue;
                }
                tracked_misses += 1;
            }
            misses.push((i, validator));
        }

        if !misses.is_empty() {
            let ranges: Vec<RangeRequest> = misses
                .iter()
                .map(|&(i, _)| {
                    let (offset, size) = locs[i];
                    RangeRequest::new(requests[i].0, offset..offset + size)
                })
                .collect();
            // Share the miss batch *partially* when every page is
            // validator-fenced: each page rides the same per-page flight
            // table as `read_page`, so this caller leads the pages nobody
            // is fetching (one parallel round trip over just those) and
            // joins in-flight fetches for the rest — two queries whose
            // page sets merely overlap still share the overlap, and a
            // single-page reader can join a superset batch fetch. Solo,
            // every page is owned and the one `get_ranges` round trip is
            // bit-identical to a build without single-flight.
            let fetched = if ns != 0 && misses.iter().all(|&(_, v)| v.is_some()) {
                let keys: Vec<PageFlightKey> = misses
                    .iter()
                    .map(|&(i, v)| {
                        let (offset, size) = locs[i];
                        (
                            ns,
                            requests[i].0.to_string(),
                            offset,
                            size,
                            v.expect("checked above"),
                        )
                    })
                    .collect();
                let (fetched, joined) = page_flights().run_partial(&keys, |owned| {
                    let subset: Vec<RangeRequest> = owned
                        .iter()
                        .map(|&j| {
                            let (i, _) = misses[j];
                            let (offset, size) = locs[i];
                            RangeRequest::new(requests[i].0, offset..offset + size)
                        })
                        .collect();
                    self.store.get_ranges(&subset)
                });
                if joined > 0 {
                    self.store.record_dedup(joined);
                }
                fetched?
            } else {
                self.store.get_ranges(&ranges)?
            };
            for ((i, validator), bytes) in misses.into_iter().zip(fetched) {
                if let Some(v) = validator {
                    let (offset, size) = locs[i];
                    // Never cache a torn short read.
                    if bytes.len() as u64 == size {
                        PageCache::global().put(ns, requests[i].0, offset, size, v, bytes.clone());
                    }
                }
                payloads[i] = Some(bytes);
            }
        }
        if hits + tracked_misses > 0 {
            self.store
                .record_page_cache(hits, tracked_misses, bytes_saved);
        }

        payloads
            .iter()
            .map(|b| decode_page(b.as_ref().expect("every payload filled"), data_type))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{RecordBatch, ValueRef};
    use crate::schema::{Field, Schema};
    use crate::writer::{FileWriter, WriterOptions};
    use rottnest_object_store::MemoryStore;

    fn write_file(
        store: &dyn ObjectStore,
        key: &str,
        rows: usize,
        opts: WriterOptions,
    ) -> FileMeta {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("body", DataType::Utf8),
        ]);
        let ids: Vec<i64> = (0..rows as i64).collect();
        let bodies: Vec<String> = (0..rows)
            .map(|i| format!("record {i} body with some text payload"))
            .collect();
        let batch = RecordBatch::new(
            schema.clone(),
            vec![ColumnData::Int64(ids), ColumnData::from_strings(bodies)],
        )
        .unwrap();
        let mut w = FileWriter::with_options(schema, opts);
        w.write_batch(&batch).unwrap();
        w.finish_into(store, key).unwrap()
    }

    #[test]
    fn chunk_reader_reads_whole_column() {
        let store = MemoryStore::unmetered();
        let opts = WriterOptions {
            row_group_rows: 100,
            page_raw_bytes: 512,
            ..Default::default()
        };
        write_file(store.as_ref(), "t/a.lkpq", 250, opts);

        let reader = ChunkReader::open(store.as_ref(), "t/a.lkpq").unwrap();
        assert_eq!(reader.meta().num_rows, 250);
        assert_eq!(reader.meta().row_groups.len(), 3);

        let col = reader.read_column(1).unwrap();
        assert_eq!(col.len(), 250);
        assert_eq!(
            col.get(123),
            Some(ValueRef::Utf8("record 123 body with some text payload"))
        );
    }

    #[test]
    fn chunk_reader_handles_large_footer() {
        let store = MemoryStore::unmetered();
        // Tiny pages => thousands of page entries => footer > 64 KiB.
        let opts = WriterOptions {
            row_group_rows: 50,
            page_raw_bytes: 64,
            ..Default::default()
        };
        write_file(store.as_ref(), "t/big-footer.lkpq", 5000, opts);
        let reader = ChunkReader::open(store.as_ref(), "t/big-footer.lkpq").unwrap();
        assert_eq!(reader.meta().num_rows, 5000);
        let col = reader.read_chunk(0, 0).unwrap();
        assert_eq!(col.len(), 50);
    }

    #[test]
    fn page_reader_fetches_single_pages_without_footer() {
        let store = MemoryStore::unmetered();
        let opts = WriterOptions {
            row_group_rows: 1000,
            page_raw_bytes: 512,
            ..Default::default()
        };
        let meta = write_file(store.as_ref(), "t/b.lkpq", 300, opts);
        let table = PageTable::from_meta(&meta, 1).unwrap();
        assert!(table.len() > 5);

        let reader = PageReader::new(store.as_ref());
        let before = store.stats();
        let page_id = table.page_of_row(200).unwrap();
        let col = reader
            .read_page("t/b.lkpq", &table, page_id, DataType::Utf8)
            .unwrap();
        let after = store.stats().since(&before);
        assert_eq!(after.gets, 1, "exactly one GET, no footer read");
        assert_eq!(after.heads, 0);

        let first = table.page(page_id).unwrap().first_row;
        let within = (200 - first) as usize;
        assert_eq!(
            col.get(within),
            Some(ValueRef::Utf8("record 200 body with some text payload"))
        );
    }

    #[test]
    fn page_reader_batches_many_pages_into_one_round_trip() {
        let store = MemoryStore::new(); // metered
        let opts = WriterOptions {
            row_group_rows: 1000,
            page_raw_bytes: 512,
            ..Default::default()
        };
        let meta = write_file(store.as_ref(), "t/c.lkpq", 400, opts);
        let table = PageTable::from_meta(&meta, 1).unwrap();
        let reader = PageReader::new(store.as_ref());

        let requests: Vec<(&str, &PageTable, usize)> =
            (0..table.len()).map(|i| ("t/c.lkpq", &table, i)).collect();
        let clock = store.clock().unwrap();
        let (cols, elapsed) = clock.time(|| reader.read_pages(&requests, DataType::Utf8).unwrap());
        let total: usize = cols.iter().map(|c| c.len()).sum();
        assert_eq!(total, 400);
        // One parallel round trip: modeled latency ~ a single small GET.
        let single = store.latency_model().get_us(1024);
        assert!(
            elapsed < single * 3,
            "batch cost {elapsed}us vs single {single}us"
        );
    }

    #[test]
    fn page_reader_reads_much_less_than_chunk_reader() {
        let store = MemoryStore::unmetered();
        let opts = WriterOptions {
            row_group_rows: 100_000,
            page_raw_bytes: 4096,
            ..Default::default()
        };
        let meta = write_file(store.as_ref(), "t/d.lkpq", 20_000, opts);
        let table = PageTable::from_meta(&meta, 1).unwrap();

        let before = store.stats();
        let reader = ChunkReader::open(store.as_ref(), "t/d.lkpq").unwrap();
        reader.read_column(1).unwrap();
        let chunk_bytes = store.stats().since(&before).bytes_read;

        let before = store.stats();
        PageReader::new(store.as_ref())
            .read_page("t/d.lkpq", &table, table.len() / 2, DataType::Utf8)
            .unwrap();
        let page_bytes = store.stats().since(&before).bytes_read;

        assert!(
            chunk_bytes > page_bytes * 50,
            "chunk path read {chunk_bytes}B, page path {page_bytes}B"
        );
    }

    #[test]
    fn cached_reader_serves_warm_pages_without_gets() {
        let store = MemoryStore::unmetered();
        let opts = WriterOptions {
            row_group_rows: 1000,
            page_raw_bytes: 512,
            ..Default::default()
        };
        let meta = write_file(store.as_ref(), "t/w.lkpq", 300, opts);
        let table = PageTable::from_meta(&meta, 1).unwrap();
        let page_id = table.page_of_row(200).unwrap();

        let session = PageCacheSession::new();
        let reader = PageReader::cached(store.as_ref(), &session);
        let before = store.stats();
        let cold = reader
            .read_page("t/w.lkpq", &table, page_id, DataType::Utf8)
            .unwrap();
        let after = store.stats().since(&before);
        assert_eq!(after.gets, 1);
        assert_eq!(after.heads, 1, "one revalidation HEAD for the file");
        assert_eq!(after.page_cache_misses, 1);

        let before = store.stats();
        let warm = reader
            .read_page("t/w.lkpq", &table, page_id, DataType::Utf8)
            .unwrap();
        let after = store.stats().since(&before);
        assert_eq!(after.gets, 0, "warm page served from cache");
        assert_eq!(after.heads, 0, "validator memoized for the session");
        assert_eq!(after.page_cache_hits, 1);
        assert!(after.page_cache_bytes_saved > 0);
        assert_eq!(format!("{cold:?}"), format!("{warm:?}"));
    }

    #[test]
    fn cached_batch_reader_fetches_only_misses() {
        let store = MemoryStore::new(); // metered
        let opts = WriterOptions {
            row_group_rows: 1000,
            page_raw_bytes: 512,
            ..Default::default()
        };
        let meta = write_file(store.as_ref(), "t/x.lkpq", 400, opts);
        let table = PageTable::from_meta(&meta, 1).unwrap();
        let all: Vec<(&str, &PageTable, usize)> =
            (0..table.len()).map(|i| ("t/x.lkpq", &table, i)).collect();

        let session = PageCacheSession::new();
        let reader = PageReader::cached(store.as_ref(), &session);
        // Warm half the pages.
        let half: Vec<_> = all.iter().step_by(2).cloned().collect();
        reader.read_pages(&half, DataType::Utf8).unwrap();

        let before = store.stats();
        let cols = reader.read_pages(&all, DataType::Utf8).unwrap();
        let delta = store.stats().since(&before);
        let uncached = PageReader::new(store.as_ref())
            .read_pages(&all, DataType::Utf8)
            .unwrap();
        assert_eq!(delta.page_cache_hits as usize, half.len(), "warm pages hit");
        assert_eq!(delta.page_cache_misses as usize, all.len() - half.len());
        assert_eq!(
            (delta.gets + delta.coalesced_gets) as usize,
            all.len() - half.len(),
            "only misses reach get_ranges"
        );
        assert_eq!(format!("{cols:?}"), format!("{uncached:?}"));
    }

    #[test]
    fn cached_reader_refuses_stale_pages_after_overwrite() {
        let store = MemoryStore::unmetered();
        let opts = WriterOptions {
            row_group_rows: 1000,
            page_raw_bytes: 512,
            ..Default::default()
        };
        let meta = write_file(store.as_ref(), "t/y.lkpq", 100, opts.clone());
        let table = PageTable::from_meta(&meta, 0).unwrap();
        let session = PageCacheSession::new();
        PageReader::cached(store.as_ref(), &session)
            .read_page("t/y.lkpq", &table, 0, DataType::Int64)
            .unwrap();
        assert!(PageCache::global().entries_for_file(store.store_id(), "t/y.lkpq") > 0);

        // Overwrite the file at a later store timestamp: the validator must
        // change, so a fresh session re-reads instead of serving old bytes.
        store.clock().unwrap().advance_ms(10_000);
        let meta2 = write_file(store.as_ref(), "t/y.lkpq", 100, opts);
        let table2 = PageTable::from_meta(&meta2, 0).unwrap();
        let fresh = PageCacheSession::new();
        let before = store.stats();
        PageReader::cached(store.as_ref(), &fresh)
            .read_page("t/y.lkpq", &table2, 0, DataType::Int64)
            .unwrap();
        let delta = store.stats().since(&before);
        assert_eq!(delta.gets, 1, "stale generation is not served");
        assert_eq!(delta.page_cache_hits, 0);
    }

    #[test]
    fn missing_page_id_is_an_error() {
        let store = MemoryStore::unmetered();
        let meta = write_file(store.as_ref(), "t/e.lkpq", 10, WriterOptions::default());
        let table = PageTable::from_meta(&meta, 0).unwrap();
        let reader = PageReader::new(store.as_ref());
        assert!(reader
            .read_page("t/e.lkpq", &table, 999, DataType::Int64)
            .is_err());
    }
}
