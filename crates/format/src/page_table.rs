//! Page tables: the external page directory Rottnest stores inside its index
//! files.
//!
//! §V-A: "Similar to NoDB which maintains *position zone maps* on raw data,
//! Rottnest maintains *page tables* that associate a unique ID for each data
//! page to the offsets and sizes of the data page. Rottnest's indices are
//! built at the granularity of these pages."
//!
//! A [`PageTable`] maps a column's page ordinal (the "unique ID") to its
//! byte range and row range within the data file. Posting lists in every
//! index type point at `(file, page_ordinal)` pairs; at query time the page
//! table turns a posting into a single range GET with **no read of the data
//! file's footer**.

use rottnest_compress::{bitpack, varint};

use crate::footer::FileMeta;
use crate::{FormatError, Result};

/// Location of one data page (the page table entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLocation {
    /// Absolute byte offset within the data file.
    pub offset: u64,
    /// Encoded page size in bytes.
    pub size: u64,
    /// Number of values in the page.
    pub num_values: u64,
    /// File-global row index of the page's first value.
    pub first_row: u64,
}

/// Directory of every page of one column of one data file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageTable {
    pages: Vec<PageLocation>,
    total_rows: u64,
}

impl PageTable {
    /// Extracts the page table for column `col` from a file footer.
    pub fn from_meta(meta: &FileMeta, col: usize) -> Result<Self> {
        if col >= meta.schema.len() {
            return Err(FormatError::Corrupt(format!("no column {col} in schema")));
        }
        let mut pages = Vec::with_capacity(meta.num_pages(col));
        for rg in &meta.row_groups {
            for p in &rg.chunks[col].pages {
                pages.push(PageLocation {
                    offset: p.offset,
                    size: p.size,
                    num_values: p.num_values,
                    first_row: p.first_row,
                });
            }
        }
        Ok(Self {
            pages,
            total_rows: meta.num_rows,
        })
    }

    /// Builds a table directly from locations (used in tests and merges).
    pub fn from_locations(pages: Vec<PageLocation>, total_rows: u64) -> Self {
        Self { pages, total_rows }
    }

    /// The page at ordinal `id`.
    pub fn page(&self, id: usize) -> Option<&PageLocation> {
        self.pages.get(id)
    }

    /// All pages, ordinal-ordered.
    pub fn pages(&self) -> &[PageLocation] {
        &self.pages
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the table has no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total rows across all pages.
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Ordinal of the page containing file-global `row`, by binary search.
    pub fn page_of_row(&self, row: u64) -> Option<usize> {
        if row >= self.total_rows {
            return None;
        }
        let idx = self.pages.partition_point(|p| p.first_row <= row);
        idx.checked_sub(1)
    }

    /// Serializes the table (delta/bit-packed; page offsets are sorted).
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.total_rows);
        bitpack::pack_sorted(
            out,
            &self.pages.iter().map(|p| p.offset).collect::<Vec<_>>(),
        );
        bitpack::pack(out, &self.pages.iter().map(|p| p.size).collect::<Vec<_>>());
        bitpack::pack(
            out,
            &self.pages.iter().map(|p| p.num_values).collect::<Vec<_>>(),
        );
        bitpack::pack_sorted(
            out,
            &self.pages.iter().map(|p| p.first_row).collect::<Vec<_>>(),
        );
    }

    /// Decodes a table written by [`PageTable::encode`].
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let total_rows = varint::read_u64(buf, pos)?;
        let offsets = bitpack::unpack_sorted(buf, pos)?;
        let sizes = bitpack::unpack(buf, pos)?;
        let nums = bitpack::unpack(buf, pos)?;
        let first_rows = bitpack::unpack_sorted(buf, pos)?;
        if sizes.len() != offsets.len()
            || nums.len() != offsets.len()
            || first_rows.len() != offsets.len()
        {
            return Err(FormatError::Corrupt("page table arrays disagree".into()));
        }
        let pages = offsets
            .into_iter()
            .zip(sizes)
            .zip(nums)
            .zip(first_rows)
            .map(|(((offset, size), num_values), first_row)| PageLocation {
                offset,
                size,
                num_values,
                first_row,
            })
            .collect();
        Ok(Self { pages, total_rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PageTable {
        PageTable::from_locations(
            vec![
                PageLocation {
                    offset: 4,
                    size: 100,
                    num_values: 10,
                    first_row: 0,
                },
                PageLocation {
                    offset: 104,
                    size: 120,
                    num_values: 12,
                    first_row: 10,
                },
                PageLocation {
                    offset: 224,
                    size: 80,
                    num_values: 8,
                    first_row: 22,
                },
            ],
            30,
        )
    }

    #[test]
    fn page_of_row_binary_search() {
        let t = sample();
        assert_eq!(t.page_of_row(0), Some(0));
        assert_eq!(t.page_of_row(9), Some(0));
        assert_eq!(t.page_of_row(10), Some(1));
        assert_eq!(t.page_of_row(21), Some(1));
        assert_eq!(t.page_of_row(22), Some(2));
        assert_eq!(t.page_of_row(29), Some(2));
        assert_eq!(t.page_of_row(30), None);
    }

    #[test]
    fn encode_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(PageTable::decode(&buf, &mut pos).unwrap(), t);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn empty_table() {
        let t = PageTable::from_locations(vec![], 0);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let mut pos = 0;
        let back = PageTable::decode(&buf, &mut pos).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.page_of_row(0), None);
    }
}
