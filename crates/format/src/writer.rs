//! The lakeparquet file writer.
//!
//! The writer buffers rows per row group, cuts each column's values into
//! ~`page_raw_bytes` pages (1 MiB raw by default, matching §V-A), compresses
//! every page independently, and finishes with the footer. It reproduces the
//! Parquet property the paper calls an "inherent flaw": *all column chunks in
//! a row group must have the same number of rows*, so a wide column's chunk
//! dominates the row group's bytes.

use bytes::Bytes;
use rottnest_compress::Codec;
use rottnest_object_store::{ordered_parallel_map, ObjectStore};

use crate::column::{ColumnData, RecordBatch, ValueRef};
use crate::footer::{ChunkMeta, FileMeta, PageMeta, RowGroupMeta};
use crate::page::encode_page;
use crate::schema::Schema;
use crate::{Result, MAGIC};

/// Tuning knobs for the writer.
#[derive(Debug, Clone)]
pub struct WriterOptions {
    /// Target raw bytes per data page (Parquet default ≈ 1 MiB).
    pub page_raw_bytes: usize,
    /// Target rows per row group.
    pub row_group_rows: usize,
    /// Page compression codec.
    pub codec: Codec,
    /// Worker-thread bound for page compression. Pages are encoded
    /// independently and emitted in order, so the file image is
    /// byte-identical at every setting (default: the machine's bounded
    /// parallelism).
    pub parallelism: usize,
}

impl Default for WriterOptions {
    fn default() -> Self {
        Self {
            page_raw_bytes: 1 << 20,
            row_group_rows: 1 << 20,
            codec: Codec::Lz,
            parallelism: rottnest_object_store::default_parallelism(),
        }
    }
}

/// Streaming writer producing an in-memory file image.
///
/// Data lakes upload whole immutable objects, so the writer accumulates the
/// byte image and [`FileWriter::finish`] returns it (or
/// [`FileWriter::finish_into`] uploads it directly).
pub struct FileWriter {
    schema: Schema,
    options: WriterOptions,
    buffer: Vec<u8>,
    pending: Vec<ColumnData>,
    pending_rows: usize,
    row_groups: Vec<RowGroupMeta>,
    rows_written: u64,
}

impl FileWriter {
    /// Creates a writer for `schema` with default options.
    pub fn new(schema: Schema) -> Self {
        Self::with_options(schema, WriterOptions::default())
    }

    /// Creates a writer with explicit options.
    pub fn with_options(schema: Schema, options: WriterOptions) -> Self {
        let pending = schema
            .fields()
            .iter()
            .map(|f| ColumnData::empty(f.data_type))
            .collect();
        Self {
            schema,
            options,
            buffer: MAGIC.to_vec(),
            pending,
            pending_rows: 0,
            row_groups: Vec::new(),
            rows_written: 0,
        }
    }

    /// The writer's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Appends a batch; row groups are cut automatically.
    pub fn write_batch(&mut self, batch: &RecordBatch) -> Result<()> {
        if batch.schema() != &self.schema {
            return Err(crate::FormatError::Corrupt("batch schema mismatch".into()));
        }
        for (pending, col) in self.pending.iter_mut().zip(batch.columns()) {
            pending.extend_from(col)?;
        }
        self.pending_rows += batch.num_rows();
        while self.pending_rows >= self.options.row_group_rows {
            self.flush_row_group(self.options.row_group_rows)?;
        }
        Ok(())
    }

    fn flush_row_group(&mut self, rows: usize) -> Result<()> {
        if rows == 0 {
            return Ok(());
        }
        let first_row = self.rows_written;

        // Slice this group's columns and plan the page cuts serially
        // (`page_rows` is a cheap scan), then compress every page of every
        // column independently and emit strictly in plan order — offsets
        // and bytes match the serial writer exactly.
        let mut group_cols = Vec::with_capacity(self.pending.len());
        let mut remainders = Vec::with_capacity(self.pending.len());
        for pending in &self.pending {
            group_cols.push(pending.slice(0, rows));
            remainders.push(pending.slice(rows, pending.len() - rows));
        }
        let mut plan: Vec<(usize, usize, usize)> = Vec::new(); // (col, start, take)
        for (c, group_col) in group_cols.iter().enumerate() {
            let mut written = 0usize;
            while written < rows {
                let take = page_rows(group_col, written, self.options.page_raw_bytes);
                plan.push((c, written, take));
                written += take;
            }
        }
        let encoded =
            ordered_parallel_map(self.options.parallelism, &plan, |_, &(c, start, take)| {
                encode_page(&group_cols[c].slice(start, take), self.options.codec)
            });

        let mut chunks = Vec::with_capacity(self.pending.len());
        let mut page_idx = 0usize;
        for (c, group_col) in group_cols.iter().enumerate() {
            let chunk_offset = self.buffer.len() as u64;
            let mut pages = Vec::new();
            while page_idx < plan.len() && plan[page_idx].0 == c {
                let (_, start, take) = plan[page_idx];
                let bytes = &encoded[page_idx];
                pages.push(PageMeta {
                    offset: self.buffer.len() as u64,
                    size: bytes.len() as u64,
                    num_values: take as u64,
                    first_row: first_row + start as u64,
                });
                self.buffer.extend_from_slice(bytes);
                page_idx += 1;
            }
            let (min, max) = column_min_max(group_col);
            chunks.push(ChunkMeta {
                offset: chunk_offset,
                size: self.buffer.len() as u64 - chunk_offset,
                pages,
                min,
                max,
            });
        }

        self.pending = remainders;
        self.pending_rows -= rows;
        self.rows_written += rows as u64;
        self.row_groups.push(RowGroupMeta {
            num_rows: rows as u64,
            first_row,
            chunks,
        });
        Ok(())
    }

    /// Flushes remaining rows and returns the complete file image plus its
    /// metadata.
    pub fn finish(mut self) -> Result<(Bytes, FileMeta)> {
        let remaining = self.pending_rows;
        self.flush_row_group(remaining)?;
        let meta = FileMeta {
            schema: self.schema.clone(),
            row_groups: std::mem::take(&mut self.row_groups),
            num_rows: self.rows_written,
        };
        let footer = meta.encode();
        self.buffer.extend_from_slice(&footer);
        self.buffer
            .extend_from_slice(&(footer.len() as u32).to_le_bytes());
        self.buffer.extend_from_slice(MAGIC);
        Ok((Bytes::from(std::mem::take(&mut self.buffer)), meta))
    }

    /// Finishes and uploads the file to `store` under `key`.
    pub fn finish_into(self, store: &dyn ObjectStore, key: &str) -> Result<FileMeta> {
        let (bytes, meta) = self.finish()?;
        store.put(key, bytes)?;
        Ok(meta)
    }
}

/// Number of rows of `col` starting at `from` that fit in `budget` raw bytes
/// (always at least 1 so progress is guaranteed).
fn page_rows(col: &ColumnData, from: usize, budget: usize) -> usize {
    let remaining = col.len() - from;
    match col {
        ColumnData::Int64(_) => (budget / 8).clamp(1, remaining),
        ColumnData::VectorF32 { dim, .. } => {
            let per = (*dim as usize * 4).max(1);
            (budget / per).clamp(1, remaining)
        }
        ColumnData::Utf8 { offsets, .. } | ColumnData::Binary { offsets, .. } => {
            let start_bytes = offsets[from] as usize;
            let mut take = 0usize;
            while take < remaining {
                let end_bytes = offsets[from + take + 1] as usize;
                if end_bytes - start_bytes > budget && take > 0 {
                    break;
                }
                take += 1;
                if end_bytes - start_bytes > budget {
                    break; // single oversized value gets its own page
                }
            }
            take.max(1)
        }
    }
}

fn column_min_max(col: &ColumnData) -> (Vec<u8>, Vec<u8>) {
    const TRUNC: usize = 64;
    match col {
        ColumnData::Int64(values) => match (values.iter().min(), values.iter().max()) {
            (Some(min), Some(max)) => (min.to_be_bytes().to_vec(), max.to_be_bytes().to_vec()),
            _ => (Vec::new(), Vec::new()),
        },
        ColumnData::Utf8 { .. } | ColumnData::Binary { .. } => {
            let mut min: Option<&[u8]> = None;
            let mut max: Option<&[u8]> = None;
            for i in 0..col.len() {
                let v: &[u8] = match col.get(i) {
                    Some(ValueRef::Utf8(s)) => s.as_bytes(),
                    Some(ValueRef::Binary(b)) => b,
                    _ => unreachable!(),
                };
                if min.is_none_or(|m| v < m) {
                    min = Some(v);
                }
                if max.is_none_or(|m| v > m) {
                    max = Some(v);
                }
            }
            (
                min.map_or(Vec::new(), |m| m[..m.len().min(TRUNC)].to_vec()),
                max.map_or(Vec::new(), |m| m[..m.len().min(TRUNC)].to_vec()),
            )
        }
        ColumnData::VectorF32 { .. } => (Vec::new(), Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::decode_page;
    use crate::schema::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("body", DataType::Utf8),
        ])
    }

    fn batch(rows: std::ops::Range<i64>) -> RecordBatch {
        let ids: Vec<i64> = rows.clone().collect();
        let bodies: Vec<String> = rows
            .map(|i| format!("log line number {i} with payload"))
            .collect();
        RecordBatch::new(
            schema(),
            vec![ColumnData::Int64(ids), ColumnData::from_strings(bodies)],
        )
        .unwrap()
    }

    #[test]
    fn single_group_file_structure() {
        let mut w = FileWriter::new(schema());
        w.write_batch(&batch(0..100)).unwrap();
        let (bytes, meta) = w.finish().unwrap();
        assert_eq!(&bytes[..4], MAGIC);
        assert_eq!(&bytes[bytes.len() - 4..], MAGIC.as_slice());
        assert_eq!(meta.num_rows, 100);
        assert_eq!(meta.row_groups.len(), 1);
        // Decode the first page of the body column straight from its meta.
        let page = &meta.row_groups[0].chunks[1].pages[0];
        let data = &bytes[page.offset as usize..(page.offset + page.size) as usize];
        let col = decode_page(data, DataType::Utf8).unwrap();
        assert_eq!(col.len() as u64, page.num_values);
        assert_eq!(
            col.get(0),
            Some(ValueRef::Utf8("log line number 0 with payload"))
        );
    }

    #[test]
    fn row_groups_cut_at_configured_rows() {
        let opts = WriterOptions {
            row_group_rows: 64,
            ..Default::default()
        };
        let mut w = FileWriter::with_options(schema(), opts);
        w.write_batch(&batch(0..200)).unwrap();
        let (_, meta) = w.finish().unwrap();
        assert_eq!(meta.row_groups.len(), 4); // 64+64+64+8
        assert_eq!(meta.row_groups[3].num_rows, 8);
        assert_eq!(meta.row_groups[2].first_row, 128);
        // Every chunk in a group has the same row count (the Parquet flaw).
        for rg in &meta.row_groups {
            let n: u64 = rg.chunks[0].pages.iter().map(|p| p.num_values).sum();
            let m: u64 = rg.chunks[1].pages.iter().map(|p| p.num_values).sum();
            assert_eq!(n, rg.num_rows);
            assert_eq!(m, rg.num_rows);
        }
    }

    #[test]
    fn pages_respect_raw_byte_budget() {
        let opts = WriterOptions {
            page_raw_bytes: 1024,
            ..Default::default()
        };
        let mut w = FileWriter::with_options(schema(), opts);
        w.write_batch(&batch(0..2000)).unwrap();
        let (_, meta) = w.finish().unwrap();
        let pages = &meta.row_groups[0].chunks[1].pages;
        assert!(
            pages.len() > 10,
            "should split into many pages, got {}",
            pages.len()
        );
        // first_row values must chain correctly.
        let mut expect = 0u64;
        for p in pages {
            assert_eq!(p.first_row, expect);
            expect += p.num_values;
        }
        assert_eq!(expect, 2000);
    }

    #[test]
    fn oversized_single_value_gets_own_page() {
        let opts = WriterOptions {
            page_raw_bytes: 100,
            ..Default::default()
        };
        let s = Schema::new(vec![Field::new("b", DataType::Utf8)]);
        let mut w = FileWriter::with_options(s.clone(), opts);
        let huge = "x".repeat(1000);
        let b =
            RecordBatch::new(s, vec![ColumnData::from_strings(["small", &huge, "tiny"])]).unwrap();
        w.write_batch(&b).unwrap();
        let (bytes, meta) = w.finish().unwrap();
        let pages = &meta.row_groups[0].chunks[0].pages;
        assert!(pages.len() >= 2);
        // All rows survive.
        let total: u64 = pages.iter().map(|p| p.num_values).sum();
        assert_eq!(total, 3);
        // Round-trip the pages and verify the huge value.
        let mut all = Vec::new();
        for p in pages {
            let col = decode_page(
                &bytes[p.offset as usize..(p.offset + p.size) as usize],
                DataType::Utf8,
            )
            .unwrap();
            for i in 0..col.len() {
                if let Some(ValueRef::Utf8(s)) = col.get(i) {
                    all.push(s.to_string());
                }
            }
        }
        assert_eq!(all, vec!["small".to_string(), huge, "tiny".to_string()]);
    }

    #[test]
    fn min_max_statistics_recorded() {
        let mut w = FileWriter::new(schema());
        w.write_batch(&batch(5..50)).unwrap();
        let (_, meta) = w.finish().unwrap();
        let id_chunk = &meta.row_groups[0].chunks[0];
        assert_eq!(id_chunk.min, 5i64.to_be_bytes().to_vec());
        assert_eq!(id_chunk.max, 49i64.to_be_bytes().to_vec());
        let body_chunk = &meta.row_groups[0].chunks[1];
        assert!(body_chunk.min.starts_with(b"log line number 1"));
    }

    #[test]
    fn empty_file_is_valid() {
        let w = FileWriter::new(schema());
        let (bytes, meta) = w.finish().unwrap();
        assert_eq!(meta.num_rows, 0);
        assert!(meta.row_groups.is_empty());
        let (parsed, _) = FileMeta::from_tail(&bytes, bytes.len() as u64).unwrap();
        assert_eq!(parsed, meta);
    }
}
