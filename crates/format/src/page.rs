//! Data page encoding: the minimal access granularity of the format.
//!
//! A page holds ~1 MiB of raw values of one column (§V-A: "the physical size
//! of a data page is equal to the compressed size of 1MB of raw data, which
//! is around a few hundreds KBs for text or vector data types"). A page is
//! self-describing: its header carries everything needed to decode it
//! without consulting the file footer, which is what allows Rottnest's
//! reader to bypass file metadata entirely.
//!
//! ```text
//! page := codec: u8, num_values: varint, uncompressed_size: varint, payload
//! ```

use rottnest_compress::{varint, Codec};

use crate::column::ColumnData;
use crate::schema::DataType;
use crate::{FormatError, Result};

/// Serializes the values of `column` into a standalone page, compressing
/// with `codec` when it helps (incompressible payloads are stored raw).
pub fn encode_page(column: &ColumnData, codec: Codec) -> Vec<u8> {
    let mut raw = Vec::with_capacity(column.raw_size() + 16);
    encode_values(column, &mut raw);
    let raw_len = raw.len();

    let (used, payload) = match codec {
        Codec::None => (Codec::None, raw),
        Codec::Lz => {
            let compressed = Codec::Lz.compress(&raw);
            if compressed.len() < raw.len() {
                (Codec::Lz, compressed)
            } else {
                (Codec::None, raw)
            }
        }
    };

    let mut out = Vec::with_capacity(payload.len() + 12);
    out.push(used as u8);
    varint::write_usize(&mut out, column.len());
    // Store the raw byte length so decompression can validate exactly.
    varint::write_usize(&mut out, raw_len);
    out.extend_from_slice(&payload);
    out
}

/// Decodes a page produced by [`encode_page`] back into column values.
pub fn decode_page(bytes: &[u8], data_type: DataType) -> Result<ColumnData> {
    let mut pos = 0usize;
    let codec_byte = *bytes
        .first()
        .ok_or_else(|| FormatError::Corrupt("empty page".into()))?;
    pos += 1;
    let codec = Codec::from_u8(codec_byte)?;
    let num_values = varint::read_usize(bytes, &mut pos)?;
    let raw_len = varint::read_usize(bytes, &mut pos)?;
    let raw = codec.decompress(&bytes[pos..], raw_len)?;
    decode_values(&raw, num_values, data_type)
}

/// Reads just the value count from a page header (cheap peek).
pub fn page_num_values(bytes: &[u8]) -> Result<usize> {
    let mut pos = 1usize;
    if bytes.is_empty() {
        return Err(FormatError::Corrupt("empty page".into()));
    }
    Ok(varint::read_usize(bytes, &mut pos)?)
}

fn encode_values(column: &ColumnData, out: &mut Vec<u8>) {
    match column {
        ColumnData::Int64(values) => {
            for v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        ColumnData::Utf8 { offsets, data } | ColumnData::Binary { offsets, data } => {
            // Delta-coded offsets (value lengths) then the flat bytes.
            for w in offsets.windows(2) {
                varint::write_u64(out, u64::from(w[1] - w[0]));
            }
            out.extend_from_slice(data);
        }
        ColumnData::VectorF32 { data, .. } => {
            for v in data {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
}

fn decode_values(raw: &[u8], num_values: usize, data_type: DataType) -> Result<ColumnData> {
    match data_type {
        DataType::Int64 => {
            if raw.len() != num_values * 8 {
                return Err(FormatError::Corrupt("int64 page length mismatch".into()));
            }
            let values = raw
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(ColumnData::Int64(values))
        }
        DataType::Utf8 | DataType::Binary => {
            let mut pos = 0usize;
            let mut offsets = Vec::with_capacity(num_values + 1);
            offsets.push(0u32);
            let mut total = 0u64;
            for _ in 0..num_values {
                let len = varint::read_u64(raw, &mut pos)?;
                total = total
                    .checked_add(len)
                    .ok_or_else(|| FormatError::Corrupt("page offsets overflow".into()))?;
                if total > u64::from(u32::MAX) {
                    return Err(FormatError::Corrupt("page larger than 4GiB".into()));
                }
                offsets.push(total as u32);
            }
            let data = raw[pos..].to_vec();
            if data.len() as u64 != total {
                return Err(FormatError::Corrupt("var-length page data mismatch".into()));
            }
            if data_type == DataType::Utf8 {
                // Validate UTF-8 at the value level once, so ValueRef::Utf8
                // accesses can skip the check safely.
                let mut start = 0usize;
                for &end in &offsets[1..] {
                    std::str::from_utf8(&data[start..end as usize])
                        .map_err(|_| FormatError::Corrupt("invalid utf-8 in utf8 page".into()))?;
                    start = end as usize;
                }
                Ok(ColumnData::Utf8 { offsets, data })
            } else {
                Ok(ColumnData::Binary { offsets, data })
            }
        }
        DataType::VectorF32 { dim } => {
            let expect = num_values * dim as usize * 4;
            if raw.len() != expect {
                return Err(FormatError::Corrupt("vector page length mismatch".into()));
            }
            let data = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(ColumnData::VectorF32 { dim, data })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(column: &ColumnData, codec: Codec) {
        let page = encode_page(column, codec);
        let back = decode_page(&page, column.data_type()).unwrap();
        assert_eq!(&back, column);
        assert_eq!(page_num_values(&page).unwrap(), column.len());
    }

    #[test]
    fn int64_round_trip() {
        round_trip(
            &ColumnData::Int64(vec![i64::MIN, -1, 0, 1, i64::MAX]),
            Codec::Lz,
        );
        round_trip(&ColumnData::Int64(vec![]), Codec::Lz);
    }

    #[test]
    fn utf8_round_trip() {
        round_trip(
            &ColumnData::from_strings(["", "héllo wörld", "a"]),
            Codec::Lz,
        );
        round_trip(&ColumnData::from_strings(Vec::<&str>::new()), Codec::None);
    }

    #[test]
    fn binary_round_trip() {
        round_trip(
            &ColumnData::from_blobs([&[0u8, 255][..], &[][..], &[7; 40][..]]),
            Codec::Lz,
        );
    }

    #[test]
    fn vector_round_trip() {
        let c =
            ColumnData::from_vectors(3, vec![vec![1.5, -2.0, 0.0], vec![4.0, 5.0, 6.0]]).unwrap();
        round_trip(&c, Codec::Lz);
    }

    #[test]
    fn repetitive_text_compresses() {
        let text = vec!["GET /api/v1/health 200 OK"; 10_000];
        let c = ColumnData::from_strings(text);
        let page = encode_page(&c, Codec::Lz);
        assert!(page.len() < c.raw_size() / 10);
        round_trip(&c, Codec::Lz);
    }

    #[test]
    fn invalid_utf8_rejected_at_decode() {
        let c = ColumnData::from_blobs([&[0xffu8, 0xfe][..]]);
        let page = encode_page(&c, Codec::None);
        // Decoding binary bytes as a Utf8 column must fail cleanly.
        assert!(decode_page(&page, DataType::Utf8).is_err());
    }

    #[test]
    fn truncated_page_rejected_or_still_exact() {
        let c = ColumnData::Int64((0..1000).collect());
        let page = encode_page(&c, Codec::Lz);
        for cut in [0, 1, 3, page.len() / 4, page.len() / 2, page.len() - 1] {
            // A cut that only removes a trailing empty-literal token can
            // still decode; it must then decode to exactly the original.
            if let Ok(col) = decode_page(&page[..cut], DataType::Int64) {
                assert_eq!(col, c, "cut {cut} decoded to wrong data");
            }
        }
        // Deep truncation can never succeed: too little entropy remains.
        assert!(decode_page(&page[..4], DataType::Int64).is_err());
    }

    proptest! {
        #[test]
        fn prop_int64_round_trip(values in proptest::collection::vec(any::<i64>(), 0..500)) {
            round_trip(&ColumnData::Int64(values), Codec::Lz);
        }

        #[test]
        fn prop_strings_round_trip(values in proptest::collection::vec(".{0,40}", 0..100)) {
            round_trip(&ColumnData::from_strings(values), Codec::Lz);
        }

        #[test]
        fn prop_blobs_round_trip(
            values in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..100)
        ) {
            round_trip(&ColumnData::from_blobs(values), Codec::Lz);
        }

        #[test]
        fn prop_vectors_round_trip(
            rows in proptest::collection::vec(proptest::collection::vec(any::<f32>(), 4), 0..50)
        ) {
            // NaN-free to keep PartialEq meaningful.
            let rows: Vec<Vec<f32>> = rows
                .into_iter()
                .map(|r| r.into_iter().map(|v| if v.is_nan() { 0.0 } else { v }).collect())
                .collect();
            let c = ColumnData::from_vectors(4, rows).unwrap();
            round_trip(&c, Codec::Lz);
        }
    }
}
