//! Process-wide negative-scan cache: "probe P matched nothing in file F".
//!
//! Brute-force scans are the expensive tail of a search — every uncovered
//! file costs a HEAD plus full-column GETs even when the answer is "no
//! match here". Hot repeated probes (the same missing UUID asked again and
//! again) re-pay that scan on every query. This cache remembers, per
//! `(store, file, file-size validator, probe fingerprint)`, that a full
//! scan of the file produced **zero predicate hits**, so the next identical
//! probe skips the file outright.
//!
//! Correctness:
//!
//! * Entries are recorded only after a scan read the *entire* column and
//!   found no row satisfying the probe's predicate. Deleted rows don't
//!   matter: predicate hits are a function of immutable file bytes, not of
//!   deletion vectors, so DV churn can never invalidate an entry.
//! * The key carries the file's snapshot size as a validator; a replaced
//!   file of different length misses automatically. Same-path rewrites go
//!   through lake compaction / vacuum, which call
//!   [`NegScanCache::invalidate_file`] (the same hint path the
//!   [`crate::PageCache`] uses).
//! * The cache is consulted per probe fingerprint — a different key,
//!   pattern, or column never matches.
//!
//! Budget: entries are tiny (a hash key), but the cache is still bounded —
//! [`rottnest_object_store::ByteLru`] holds it under
//! [`DEFAULT_NEG_CACHE_ENTRIES`] with per-entry charge 1.

use std::sync::OnceLock;

use rottnest_object_store::ByteLru;

/// Default entry budget for the process-wide negative-scan cache.
pub const DEFAULT_NEG_CACHE_ENTRIES: usize = 64 * 1024;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct NegKey {
    ns: u64,
    key: String,
    validator: u64,
    probe: u64,
}

/// Bounded process-wide set of proven-empty (file, probe) scans.
pub struct NegScanCache {
    lru: ByteLru<NegKey, ()>,
}

impl NegScanCache {
    /// Creates a cache bounded to `entries` recorded scans.
    pub fn with_entries(entries: usize) -> Self {
        Self {
            lru: ByteLru::with_capacity(entries),
        }
    }

    /// The process-wide instance consulted by brute-force scans.
    pub fn global() -> &'static NegScanCache {
        static GLOBAL: OnceLock<NegScanCache> = OnceLock::new();
        GLOBAL.get_or_init(|| NegScanCache::with_entries(DEFAULT_NEG_CACHE_ENTRIES))
    }

    /// Fingerprints a probe: FNV-1a over a query-kind tag, the column
    /// name, and the needle bytes. Only exact (non-scoring) probes should
    /// be fingerprinted — scoring queries always scan.
    pub fn probe_fingerprint(kind_tag: u8, column: &str, needle: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in std::iter::once(kind_tag)
            .chain(column.bytes())
            .chain(std::iter::once(0xff))
            .chain(needle.iter().copied())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// True when a prior full scan proved `probe` matches nothing in
    /// `key` (on store `ns`, at file size `validator`).
    pub fn known_empty(&self, ns: u64, key: &str, validator: u64, probe: u64) -> bool {
        self.lru
            .get(&NegKey {
                ns,
                key: key.to_string(),
                validator,
                probe,
            })
            .is_some()
    }

    /// Records a proven-empty scan.
    pub fn record_empty(&self, ns: u64, key: &str, validator: u64, probe: u64) {
        self.lru.insert(
            NegKey {
                ns,
                key: key.to_string(),
                validator,
                probe,
            },
            (),
            1,
        );
    }

    /// Invalidation hint: drops every probe recorded against `key` on
    /// store `ns`. Called by lake compaction / vacuum next to the page
    /// cache's hint.
    pub fn invalidate_file(&self, ns: u64, key: &str) {
        self.lru.retain(|k| !(k.ns == ns && k.key == key));
    }

    /// Number of recorded scans (tests only).
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Drops everything (tests only).
    pub fn clear(&self) {
        self.lru.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_consult_invalidate() {
        let cache = NegScanCache::with_entries(16);
        let p = NegScanCache::probe_fingerprint(0, "trace_id", b"abc");
        assert!(!cache.known_empty(7, "t/data/a", 100, p));
        cache.record_empty(7, "t/data/a", 100, p);
        assert!(cache.known_empty(7, "t/data/a", 100, p));
        // Different validator (rewritten file) or store misses.
        assert!(!cache.known_empty(7, "t/data/a", 101, p));
        assert!(!cache.known_empty(8, "t/data/a", 100, p));
        cache.invalidate_file(7, "t/data/a");
        assert!(!cache.known_empty(7, "t/data/a", 100, p));
    }

    #[test]
    fn fingerprints_separate_probes_and_columns() {
        let a = NegScanCache::probe_fingerprint(0, "c", b"x");
        let b = NegScanCache::probe_fingerprint(1, "c", b"x");
        let c = NegScanCache::probe_fingerprint(0, "d", b"x");
        let d = NegScanCache::probe_fingerprint(0, "c", b"y");
        assert!(a != b && a != c && a != d);
    }

    #[test]
    fn budget_bounds_entries() {
        // The backing LRU spreads the budget over 16 shards, each rounded
        // up to at least one entry, so the effective bound is
        // max(entries, shards).
        let cache = NegScanCache::with_entries(32);
        for i in 0..640 {
            cache.record_empty(1, &format!("f{i}"), 10, 99);
        }
        assert!(cache.len() <= 32, "len {} over budget", cache.len());
    }
}
