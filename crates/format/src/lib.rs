//! `lakeparquet` — a Parquet-like columnar file format built from scratch.
//!
//! The format mirrors the structure that matters for the paper's §V-A
//! analysis (Figure 5):
//!
//! ```text
//! file := magic, row-group*, footer, footer_len: u32, magic
//! row-group := column-chunk*            (all chunks share the row count)
//! column-chunk := data-page*
//! data-page := header, compressed values (~1 MiB of raw data per page)
//! footer := schema + per-chunk page directory + min/max statistics
//! ```
//!
//! Two read paths are provided, matching the paper's Figure 5 exactly:
//!
//! * [`reader::ChunkReader`] — the *traditional* reader: fetch the footer,
//!   then download **entire column chunks** (tens–hundreds of MB for wide
//!   columns). This is what query engines do today and what the brute-force
//!   baseline and the "no custom reader" ablation (Fig 11) use.
//! * [`reader::PageReader`] — Rottnest's optimized reader: given an external
//!   [`page_table::PageTable`], fetch **individual data pages** (~300 KiB
//!   compressed) with a single range GET, *bypassing the file metadata
//!   entirely*.

pub mod column;
pub mod footer;
pub mod neg_cache;
pub mod page;
pub mod page_cache;
pub mod page_table;
pub mod reader;
pub mod schema;
pub mod writer;

pub use column::{ColumnData, RecordBatch, ValueRef};
pub use footer::{ChunkMeta, FileMeta, PageMeta, RowGroupMeta};
pub use neg_cache::{NegScanCache, DEFAULT_NEG_CACHE_ENTRIES};
pub use page_cache::{PageCache, PageCacheSession, DEFAULT_PAGE_CACHE_CAPACITY};
pub use page_table::{PageLocation, PageTable};
pub use reader::{ChunkReader, PageReader};
pub use schema::{DataType, Field, Schema};
pub use writer::{FileWriter, WriterOptions};

/// Magic bytes framing every lakeparquet file.
pub const MAGIC: &[u8; 4] = b"LKP1";

/// Errors raised by format encoding/decoding.
#[derive(Debug)]
pub enum FormatError {
    /// File framing or payload bytes are malformed.
    Corrupt(String),
    /// Schema/type mismatch between writer input and declared schema.
    TypeMismatch {
        /// The type the schema declares.
        expected: DataType,
        /// A description of what was supplied.
        found: &'static str,
    },
    /// Underlying compression failure.
    Compress(rottnest_compress::CompressError),
    /// Underlying object store failure.
    Store(rottnest_object_store::StoreError),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Corrupt(m) => write!(f, "corrupt lakeparquet file: {m}"),
            FormatError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected:?}, found {found}")
            }
            FormatError::Compress(e) => write!(f, "compression error: {e}"),
            FormatError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<rottnest_compress::CompressError> for FormatError {
    fn from(e: rottnest_compress::CompressError) -> Self {
        FormatError::Compress(e)
    }
}

impl From<rottnest_object_store::StoreError> for FormatError {
    fn from(e: rottnest_object_store::StoreError) -> Self {
        FormatError::Store(e)
    }
}

/// Result alias for format operations.
pub type Result<T> = std::result::Result<T, FormatError>;
