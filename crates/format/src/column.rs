//! In-memory column data and record batches.

use crate::schema::{DataType, Schema};
use crate::{FormatError, Result};

/// Columnar values for one column.
///
/// Variable-length types use a flattened `data` buffer plus an `offsets`
/// array (`offsets.len() == n + 1`), the standard Arrow-style layout, so a
/// page decode performs a single allocation per buffer rather than one per
/// value.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// UTF-8 strings (flattened).
    Utf8 {
        /// Byte offsets of each value; length `n + 1`.
        offsets: Vec<u32>,
        /// Concatenated string bytes.
        data: Vec<u8>,
    },
    /// Binary blobs (flattened).
    Binary {
        /// Byte offsets of each value; length `n + 1`.
        offsets: Vec<u32>,
        /// Concatenated blob bytes.
        data: Vec<u8>,
    },
    /// Fixed-dimension vectors (row-major flattened).
    VectorF32 {
        /// Dimensions per vector.
        dim: u32,
        /// `n * dim` floats.
        data: Vec<f32>,
    },
}

/// A borrowed scalar from a column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// An `Int64` element.
    Int64(i64),
    /// A `Utf8` element.
    Utf8(&'a str),
    /// A `Binary` element.
    Binary(&'a [u8]),
    /// A `VectorF32` element.
    VectorF32(&'a [f32]),
}

impl ColumnData {
    /// Creates an empty column of the given type.
    pub fn empty(data_type: DataType) -> Self {
        match data_type {
            DataType::Int64 => ColumnData::Int64(Vec::new()),
            DataType::Utf8 => ColumnData::Utf8 {
                offsets: vec![0],
                data: Vec::new(),
            },
            DataType::Binary => ColumnData::Binary {
                offsets: vec![0],
                data: Vec::new(),
            },
            DataType::VectorF32 { dim } => ColumnData::VectorF32 {
                dim,
                data: Vec::new(),
            },
        }
    }

    /// Builds a `Utf8` column from string slices.
    pub fn from_strings<S: AsRef<str>>(values: impl IntoIterator<Item = S>) -> Self {
        let mut offsets = vec![0u32];
        let mut data = Vec::new();
        for v in values {
            data.extend_from_slice(v.as_ref().as_bytes());
            offsets.push(data.len() as u32);
        }
        ColumnData::Utf8 { offsets, data }
    }

    /// Builds a `Binary` column from byte slices.
    pub fn from_blobs<B: AsRef<[u8]>>(values: impl IntoIterator<Item = B>) -> Self {
        let mut offsets = vec![0u32];
        let mut data = Vec::new();
        for v in values {
            data.extend_from_slice(v.as_ref());
            offsets.push(data.len() as u32);
        }
        ColumnData::Binary { offsets, data }
    }

    /// Builds a `VectorF32` column from equal-length vectors.
    pub fn from_vectors(dim: u32, vectors: impl IntoIterator<Item = Vec<f32>>) -> Result<Self> {
        let mut data = Vec::new();
        for v in vectors {
            if v.len() != dim as usize {
                return Err(FormatError::TypeMismatch {
                    expected: DataType::VectorF32 { dim },
                    found: "vector with wrong dimension",
                });
            }
            data.extend_from_slice(&v);
        }
        Ok(ColumnData::VectorF32 { dim, data })
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Utf8 { .. } => DataType::Utf8,
            ColumnData::Binary { .. } => DataType::Binary,
            ColumnData::VectorF32 { dim, .. } => DataType::VectorF32 { dim: *dim },
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Utf8 { offsets, .. } | ColumnData::Binary { offsets, .. } => {
                offsets.len() - 1
            }
            ColumnData::VectorF32 { dim, data } => {
                if *dim == 0 {
                    0
                } else {
                    data.len() / *dim as usize
                }
            }
        }
    }

    /// Whether the column has no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate raw (uncompressed, unencoded) size in bytes; drives page
    /// splitting in the writer.
    pub fn raw_size(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len() * 8,
            ColumnData::Utf8 { data, offsets } | ColumnData::Binary { data, offsets } => {
                data.len() + offsets.len() * 4
            }
            ColumnData::VectorF32 { data, .. } => data.len() * 4,
        }
    }

    /// Returns element `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<ValueRef<'_>> {
        if i >= self.len() {
            return None;
        }
        Some(match self {
            ColumnData::Int64(v) => ValueRef::Int64(v[i]),
            ColumnData::Utf8 { offsets, data } => {
                let s = &data[offsets[i] as usize..offsets[i + 1] as usize];
                // Written from &str, so this is valid UTF-8; avoid the check
                // cost on the hot probe path in release builds.
                debug_assert!(std::str::from_utf8(s).is_ok());
                ValueRef::Utf8(unsafe { std::str::from_utf8_unchecked(s) })
            }
            ColumnData::Binary { offsets, data } => {
                ValueRef::Binary(&data[offsets[i] as usize..offsets[i + 1] as usize])
            }
            ColumnData::VectorF32 { dim, data } => {
                let d = *dim as usize;
                ValueRef::VectorF32(&data[i * d..(i + 1) * d])
            }
        })
    }

    /// Appends all values of `other` (same type) to `self`.
    pub fn extend_from(&mut self, other: &ColumnData) -> Result<()> {
        match (self, other) {
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend_from_slice(b),
            (
                ColumnData::Utf8 {
                    offsets: ao,
                    data: ad,
                },
                ColumnData::Utf8 {
                    offsets: bo,
                    data: bd,
                },
            )
            | (
                ColumnData::Binary {
                    offsets: ao,
                    data: ad,
                },
                ColumnData::Binary {
                    offsets: bo,
                    data: bd,
                },
            ) => {
                let base = ad.len() as u32;
                ad.extend_from_slice(bd);
                ao.extend(bo.iter().skip(1).map(|&o| o + base));
            }
            (
                ColumnData::VectorF32 { dim: ad, data: a },
                ColumnData::VectorF32 { dim: bd, data: b },
            ) if ad == bd => a.extend_from_slice(b),
            (s, o) => {
                return Err(FormatError::TypeMismatch {
                    expected: s.data_type(),
                    found: type_name(o),
                })
            }
        }
        Ok(())
    }

    /// Returns a copy of rows `range` (used by the page writer to split).
    pub fn slice(&self, start: usize, len: usize) -> ColumnData {
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(v[start..start + len].to_vec()),
            ColumnData::Utf8 { offsets, data } => {
                let (o, d) = slice_var(offsets, data, start, len);
                ColumnData::Utf8 {
                    offsets: o,
                    data: d,
                }
            }
            ColumnData::Binary { offsets, data } => {
                let (o, d) = slice_var(offsets, data, start, len);
                ColumnData::Binary {
                    offsets: o,
                    data: d,
                }
            }
            ColumnData::VectorF32 { dim, data } => {
                let d = *dim as usize;
                ColumnData::VectorF32 {
                    dim: *dim,
                    data: data[start * d..(start + len) * d].to_vec(),
                }
            }
        }
    }
}

fn slice_var(offsets: &[u32], data: &[u8], start: usize, len: usize) -> (Vec<u32>, Vec<u8>) {
    let base = offsets[start];
    let out_offsets: Vec<u32> = offsets[start..=start + len]
        .iter()
        .map(|&o| o - base)
        .collect();
    let out_data = data[offsets[start] as usize..offsets[start + len] as usize].to_vec();
    (out_offsets, out_data)
}

fn type_name(c: &ColumnData) -> &'static str {
    match c {
        ColumnData::Int64(_) => "Int64",
        ColumnData::Utf8 { .. } => "Utf8",
        ColumnData::Binary { .. } => "Binary",
        ColumnData::VectorF32 { .. } => "VectorF32",
    }
}

/// A set of equal-length columns conforming to a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    schema: Schema,
    columns: Vec<ColumnData>,
    num_rows: usize,
}

impl RecordBatch {
    /// Builds a batch, validating column count, types and lengths.
    pub fn new(schema: Schema, columns: Vec<ColumnData>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(FormatError::Corrupt(format!(
                "schema has {} fields but {} columns given",
                schema.len(),
                columns.len()
            )));
        }
        let mut num_rows = None;
        for (field, col) in schema.fields().iter().zip(&columns) {
            if field.data_type != col.data_type() {
                return Err(FormatError::TypeMismatch {
                    expected: field.data_type,
                    found: type_name(col),
                });
            }
            let n = col.len();
            if *num_rows.get_or_insert(n) != n {
                return Err(FormatError::Corrupt("column length mismatch".into()));
            }
        }
        Ok(Self {
            schema,
            columns,
            num_rows: num_rows.unwrap_or(0),
        })
    }

    /// The batch's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The batch's columns.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// Column by index.
    pub fn column(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    #[test]
    fn string_column_access() {
        let c = ColumnData::from_strings(["alpha", "", "gamma"]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Some(ValueRef::Utf8("alpha")));
        assert_eq!(c.get(1), Some(ValueRef::Utf8("")));
        assert_eq!(c.get(2), Some(ValueRef::Utf8("gamma")));
        assert_eq!(c.get(3), None);
    }

    #[test]
    fn vector_column_access() {
        let c = ColumnData::from_vectors(2, vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some(ValueRef::VectorF32(&[3.0, 4.0][..])));
        assert!(ColumnData::from_vectors(2, vec![vec![1.0]]).is_err());
    }

    #[test]
    fn slicing_var_length() {
        let c = ColumnData::from_strings(["aa", "bbb", "c", "dddd"]);
        let s = c.slice(1, 2);
        assert_eq!(s.get(0), Some(ValueRef::Utf8("bbb")));
        assert_eq!(s.get(1), Some(ValueRef::Utf8("c")));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn extend_matches_concatenation() {
        let mut a = ColumnData::from_strings(["x", "y"]);
        let b = ColumnData::from_strings(["z"]);
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(2), Some(ValueRef::Utf8("z")));
        let mut ints = ColumnData::Int64(vec![1]);
        assert!(ints.extend_from(&b).is_err());
    }

    #[test]
    fn batch_validation() {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("body", DataType::Utf8),
        ]);
        let ok = RecordBatch::new(
            schema.clone(),
            vec![
                ColumnData::Int64(vec![1, 2]),
                ColumnData::from_strings(["a", "b"]),
            ],
        );
        assert_eq!(ok.unwrap().num_rows(), 2);

        let len_mismatch = RecordBatch::new(
            schema.clone(),
            vec![
                ColumnData::Int64(vec![1]),
                ColumnData::from_strings(["a", "b"]),
            ],
        );
        assert!(len_mismatch.is_err());

        let type_mismatch = RecordBatch::new(
            schema,
            vec![ColumnData::Int64(vec![1, 2]), ColumnData::Int64(vec![3, 4])],
        );
        assert!(type_mismatch.is_err());
    }

    #[test]
    fn raw_size_tracks_payload() {
        let c = ColumnData::from_strings(["hello", "world"]);
        assert!(c.raw_size() >= 10);
    }
}
