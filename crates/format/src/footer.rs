//! File footer metadata: the page directory and statistics.
//!
//! Like Parquet's thrift footer, the metadata sits at the *end* of the file
//! (writers stream row groups first), framed as
//! `[footer bytes][footer_len: u32 LE][magic]`. The traditional read path
//! must fetch and parse this before it can locate any data — the extra
//! dependent round trip Rottnest's page-table reader avoids (Figure 5).

use rottnest_compress::varint;

use crate::schema::Schema;
use crate::{FormatError, Result, MAGIC};

/// Location and shape of one data page within a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageMeta {
    /// Absolute byte offset of the page within the file.
    pub offset: u64,
    /// Total encoded size of the page in bytes.
    pub size: u64,
    /// Number of values stored in the page.
    pub num_values: u64,
    /// File-global index of the page's first row.
    pub first_row: u64,
}

/// Metadata for one column chunk (all pages of one column in a row group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Byte offset of the chunk's first page.
    pub offset: u64,
    /// Total chunk size in bytes.
    pub size: u64,
    /// Per-page directory.
    pub pages: Vec<PageMeta>,
    /// Minimum value bytes (Int64 as big-endian-sortable, Utf8/Binary
    /// truncated to 64 bytes); empty when untracked (vectors).
    pub min: Vec<u8>,
    /// Maximum value bytes; see `min`.
    pub max: Vec<u8>,
}

/// Metadata for one row group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowGroupMeta {
    /// Number of rows in every chunk of this group.
    pub num_rows: u64,
    /// File-global index of the group's first row.
    pub first_row: u64,
    /// One chunk per schema column, in schema order.
    pub chunks: Vec<ChunkMeta>,
}

/// Complete file metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// The file's schema.
    pub schema: Schema,
    /// Row groups in file order.
    pub row_groups: Vec<RowGroupMeta>,
    /// Total rows in the file.
    pub num_rows: u64,
}

impl FileMeta {
    /// Serializes the footer body (without length/magic framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.schema.encode(&mut out);
        varint::write_u64(&mut out, self.num_rows);
        varint::write_usize(&mut out, self.row_groups.len());
        for rg in &self.row_groups {
            varint::write_u64(&mut out, rg.num_rows);
            varint::write_u64(&mut out, rg.first_row);
            varint::write_usize(&mut out, rg.chunks.len());
            for c in &rg.chunks {
                varint::write_u64(&mut out, c.offset);
                varint::write_u64(&mut out, c.size);
                varint::write_bytes(&mut out, &c.min);
                varint::write_bytes(&mut out, &c.max);
                varint::write_usize(&mut out, c.pages.len());
                for p in &c.pages {
                    varint::write_u64(&mut out, p.offset);
                    varint::write_u64(&mut out, p.size);
                    varint::write_u64(&mut out, p.num_values);
                    varint::write_u64(&mut out, p.first_row);
                }
            }
        }
        out
    }

    /// Decodes a footer body written by [`FileMeta::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let schema = Schema::decode(buf, &mut pos)?;
        let num_rows = varint::read_u64(buf, &mut pos)?;
        let n_groups = varint::read_usize(buf, &mut pos)?;
        let mut row_groups = Vec::with_capacity(n_groups.min(1 << 16));
        for _ in 0..n_groups {
            let rg_rows = varint::read_u64(buf, &mut pos)?;
            let first_row = varint::read_u64(buf, &mut pos)?;
            let n_chunks = varint::read_usize(buf, &mut pos)?;
            let mut chunks = Vec::with_capacity(n_chunks.min(1 << 10));
            for _ in 0..n_chunks {
                let offset = varint::read_u64(buf, &mut pos)?;
                let size = varint::read_u64(buf, &mut pos)?;
                let min = varint::read_bytes(buf, &mut pos)?.to_vec();
                let max = varint::read_bytes(buf, &mut pos)?.to_vec();
                let n_pages = varint::read_usize(buf, &mut pos)?;
                let mut pages = Vec::with_capacity(n_pages.min(1 << 20));
                for _ in 0..n_pages {
                    pages.push(PageMeta {
                        offset: varint::read_u64(buf, &mut pos)?,
                        size: varint::read_u64(buf, &mut pos)?,
                        num_values: varint::read_u64(buf, &mut pos)?,
                        first_row: varint::read_u64(buf, &mut pos)?,
                    });
                }
                chunks.push(ChunkMeta {
                    offset,
                    size,
                    pages,
                    min,
                    max,
                });
            }
            row_groups.push(RowGroupMeta {
                num_rows: rg_rows,
                first_row,
                chunks,
            });
        }
        Ok(FileMeta {
            schema,
            row_groups,
            num_rows,
        })
    }

    /// Parses a footer from the file *tail* (the last `tail.len()` bytes of a
    /// file of `file_len` bytes). Returns the metadata and the footer's start
    /// offset, or an error if `tail` is too short to contain it.
    pub fn from_tail(tail: &[u8], file_len: u64) -> Result<(Self, u64)> {
        if tail.len() < 8 {
            return Err(FormatError::Corrupt(
                "tail shorter than footer frame".into(),
            ));
        }
        let magic = &tail[tail.len() - 4..];
        if magic != MAGIC {
            return Err(FormatError::Corrupt("bad trailing magic".into()));
        }
        let len_bytes: [u8; 4] = tail[tail.len() - 8..tail.len() - 4].try_into().unwrap();
        let footer_len = u32::from_le_bytes(len_bytes) as usize;
        if footer_len + 8 > tail.len() {
            return Err(FormatError::Corrupt(format!(
                "footer of {footer_len} bytes exceeds fetched tail of {} bytes",
                tail.len()
            )));
        }
        let start = tail.len() - 8 - footer_len;
        let meta = Self::decode(&tail[start..tail.len() - 8])?;
        Ok((meta, file_len - 8 - footer_len as u64))
    }

    /// Total pages of column `col` across all row groups.
    pub fn num_pages(&self, col: usize) -> usize {
        self.row_groups
            .iter()
            .map(|rg| rg.chunks[col].pages.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    fn sample() -> FileMeta {
        FileMeta {
            schema: Schema::new(vec![Field::new("body", DataType::Utf8)]),
            num_rows: 100,
            row_groups: vec![RowGroupMeta {
                num_rows: 100,
                first_row: 0,
                chunks: vec![ChunkMeta {
                    offset: 4,
                    size: 2048,
                    min: b"aaa".to_vec(),
                    max: b"zzz".to_vec(),
                    pages: vec![
                        PageMeta {
                            offset: 4,
                            size: 1024,
                            num_values: 60,
                            first_row: 0,
                        },
                        PageMeta {
                            offset: 1028,
                            size: 1024,
                            num_values: 40,
                            first_row: 60,
                        },
                    ],
                }],
            }],
        }
    }

    #[test]
    fn round_trip() {
        let meta = sample();
        let buf = meta.encode();
        assert_eq!(FileMeta::decode(&buf).unwrap(), meta);
    }

    #[test]
    fn tail_framing_round_trip() {
        let meta = sample();
        let body = meta.encode();
        let mut file = vec![0u8; 500]; // pretend data section
        file.extend_from_slice(&body);
        file.extend_from_slice(&(body.len() as u32).to_le_bytes());
        file.extend_from_slice(MAGIC);
        let (parsed, footer_off) = FileMeta::from_tail(&file, file.len() as u64).unwrap();
        assert_eq!(parsed, meta);
        assert_eq!(footer_off, 500);
        // A tail window also works.
        let tail = &file[file.len() - body.len() - 8..];
        let (parsed2, _) = FileMeta::from_tail(tail, file.len() as u64).unwrap();
        assert_eq!(parsed2, meta);
    }

    #[test]
    fn short_tail_is_reported() {
        let meta = sample();
        let body = meta.encode();
        let mut file = Vec::new();
        file.extend_from_slice(&body);
        file.extend_from_slice(&(body.len() as u32).to_le_bytes());
        file.extend_from_slice(MAGIC);
        let too_short = &file[file.len() - 10..];
        assert!(FileMeta::from_tail(too_short, file.len() as u64).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; 64];
        assert!(FileMeta::from_tail(&buf, 64).is_err());
    }

    #[test]
    fn num_pages_sums_groups() {
        let mut meta = sample();
        meta.row_groups.push(meta.row_groups[0].clone());
        assert_eq!(meta.num_pages(0), 4);
    }
}
