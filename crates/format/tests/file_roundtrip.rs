//! Property tests: arbitrary record batches survive a full write → store →
//! read cycle through both read paths, under arbitrary writer options.

use proptest::prelude::*;
use rottnest_format::{
    page_table::PageTable, ChunkReader, ColumnData, DataType, Field, FileWriter, PageReader,
    RecordBatch, Schema, ValueRef, WriterOptions,
};
use rottnest_object_store::MemoryStore;

#[derive(Debug, Clone)]
struct Rows {
    ids: Vec<i64>,
    texts: Vec<String>,
    blobs: Vec<Vec<u8>>,
}

fn rows_strategy() -> impl Strategy<Value = Rows> {
    (1usize..300).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<i64>(), n),
            proptest::collection::vec(".{0,60}", n),
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), n),
        )
            .prop_map(|(ids, texts, blobs)| Rows { ids, texts, blobs })
    })
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("text", DataType::Utf8),
        Field::new("blob", DataType::Binary),
    ])
}

fn batch(rows: &Rows) -> RecordBatch {
    RecordBatch::new(
        schema(),
        vec![
            ColumnData::Int64(rows.ids.clone()),
            ColumnData::from_strings(&rows.texts),
            ColumnData::from_blobs(&rows.blobs),
        ],
    )
    .unwrap()
}

fn check_column(col: &ColumnData, rows: &Rows) {
    assert_eq!(col.len(), rows.ids.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn whole_file_round_trips_via_chunk_reader(
        rows in rows_strategy(),
        page_bytes in 64usize..4096,
        rg_rows in 16usize..200,
    ) {
        let store = MemoryStore::unmetered();
        let opts = WriterOptions { page_raw_bytes: page_bytes, row_group_rows: rg_rows, ..Default::default() };
        let mut w = FileWriter::with_options(schema(), opts);
        w.write_batch(&batch(&rows)).unwrap();
        w.finish_into(store.as_ref(), "f.lkpq").unwrap();

        let reader = ChunkReader::open(store.as_ref(), "f.lkpq").unwrap();
        prop_assert_eq!(reader.meta().num_rows as usize, rows.ids.len());

        let ids = reader.read_column(0).unwrap();
        let texts = reader.read_column(1).unwrap();
        let blobs = reader.read_column(2).unwrap();
        check_column(&ids, &rows);
        for i in 0..rows.ids.len() {
            prop_assert_eq!(ids.get(i), Some(ValueRef::Int64(rows.ids[i])));
            prop_assert_eq!(texts.get(i), Some(ValueRef::Utf8(rows.texts[i].as_str())));
            prop_assert_eq!(blobs.get(i), Some(ValueRef::Binary(rows.blobs[i].as_slice())));
        }
    }

    #[test]
    fn page_reader_agrees_with_chunk_reader(
        rows in rows_strategy(),
        page_bytes in 64usize..2048,
    ) {
        let store = MemoryStore::unmetered();
        let opts = WriterOptions { page_raw_bytes: page_bytes, ..Default::default() };
        let mut w = FileWriter::with_options(schema(), opts);
        w.write_batch(&batch(&rows)).unwrap();
        let meta = w.finish_into(store.as_ref(), "f.lkpq").unwrap();

        for col in 0..3usize {
            let table = PageTable::from_meta(&meta, col).unwrap();
            let data_type = meta.schema.fields()[col].data_type;
            let reader = PageReader::new(store.as_ref());

            // Reassemble the column from individual pages and compare.
            let mut rebuilt = ColumnData::empty(data_type);
            for p in 0..table.len() {
                let page = reader.read_page("f.lkpq", &table, p, data_type).unwrap();
                rebuilt.extend_from(&page).unwrap();
            }
            let chunked = ChunkReader::open(store.as_ref(), "f.lkpq")
                .unwrap()
                .read_column(col)
                .unwrap();
            prop_assert_eq!(rebuilt, chunked, "column {}", col);
        }
    }

    #[test]
    fn page_of_row_is_exact(rows in rows_strategy(), page_bytes in 64usize..1024) {
        let store = MemoryStore::unmetered();
        let opts = WriterOptions { page_raw_bytes: page_bytes, ..Default::default() };
        let mut w = FileWriter::with_options(schema(), opts);
        w.write_batch(&batch(&rows)).unwrap();
        let meta = w.finish_into(store.as_ref(), "f.lkpq").unwrap();
        let table = PageTable::from_meta(&meta, 1).unwrap();

        for row in (0..rows.ids.len() as u64).step_by(7) {
            let p = table.page_of_row(row).expect("row in range");
            let loc = table.page(p).unwrap();
            prop_assert!(loc.first_row <= row && row < loc.first_row + loc.num_values);
        }
        prop_assert_eq!(table.page_of_row(rows.ids.len() as u64), None);
    }
}
