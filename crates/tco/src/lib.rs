//! Total-cost-of-ownership evaluation framework (§VI of the paper).
//!
//! The paper's key evaluation device is the *phase diagram*: over a log-log
//! grid of (operating months × total normalized queries), compute which of
//! three approaches minimizes
//!
//! ```text
//! TCO = index_cost + cost_per_month × months + cost_per_query × queries
//! ```
//!
//! * **copy data** — `TCO = cpm_i × months` (always-on dedicated cluster);
//! * **brute force** — `TCO = cpm_bf × months + cpq_bf × queries`;
//! * **Rottnest** — `TCO = ic_r + cpm_r × months + cpq_r × queries`.
//!
//! [`phase::PhaseDiagram`] computes winners and phase boundaries,
//! [`prices`] holds the AWS price constants the paper uses, [`cluster`]
//! models horizontal scaling for Figure 8, and [`sensitivity`] reproduces
//! the ×0.1…×10 parameter sweeps of Figure 12.

pub mod cluster;
pub mod phase;
pub mod prices;
pub mod sensitivity;

pub use cluster::ClusterModel;
pub use phase::{Boundary, PhaseDiagram, Winner};
pub use sensitivity::scale_param;

/// Cost model of one approach, in dollars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproachCosts {
    /// One-time indexing/ingest cost (`ic`).
    pub index_cost: f64,
    /// Recurring cost per month (`cpm`): storage, always-on servers.
    pub cost_per_month: f64,
    /// Marginal cost per normalized query (`cpq`).
    pub cost_per_query: f64,
}

impl ApproachCosts {
    /// Total cost of ownership at an operating point.
    pub fn tco(&self, months: f64, queries: f64) -> f64 {
        self.index_cost + self.cost_per_month * months + self.cost_per_query * queries
    }
}

/// The three approaches compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Approaches {
    /// Copy data into a dedicated system (OpenSearch/LanceDB-style).
    pub copy_data: ApproachCosts,
    /// Brute-force scanning with an on-demand query engine.
    pub brute_force: ApproachCosts,
    /// Rottnest indices on object storage.
    pub rottnest: ApproachCosts,
}

impl Approaches {
    /// TCO-minimal approach at an operating point.
    pub fn winner(&self, months: f64, queries: f64) -> Winner {
        let c = self.copy_data.tco(months, queries);
        let b = self.brute_force.tco(months, queries);
        let r = self.rottnest.tco(months, queries);
        if r <= b && r <= c {
            Winner::Rottnest
        } else if b <= c {
            Winner::BruteForce
        } else {
            Winner::CopyData
        }
    }
}

/// Derives a per-query cost from a measured latency and a cluster of
/// instances (the paper: "computed from query latency times the hourly cost
/// of the EC2 instances on which the queries are executed").
pub fn cpq_from_latency(latency_seconds: f64, instances: f64, hourly_rate: f64) -> f64 {
    latency_seconds / 3600.0 * hourly_rate * instances
}

/// Monthly S3 storage cost for `bytes`.
pub fn cpm_storage(bytes: f64) -> f64 {
    bytes / 1e9 * prices::S3_STORAGE_PER_GB_MONTH
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Approaches {
        Approaches {
            copy_data: ApproachCosts {
                index_cost: 0.0,
                cost_per_month: 500.0,
                cost_per_query: 0.0,
            },
            brute_force: ApproachCosts {
                index_cost: 0.0,
                cost_per_month: 7.0,
                cost_per_query: 0.5,
            },
            rottnest: ApproachCosts {
                index_cost: 30.0,
                cost_per_month: 10.0,
                cost_per_query: 0.002,
            },
        }
    }

    #[test]
    fn tco_is_affine() {
        let a = sample().rottnest;
        assert_eq!(a.tco(0.0, 0.0), 30.0);
        assert_eq!(a.tco(2.0, 100.0), 30.0 + 20.0 + 0.2);
    }

    #[test]
    fn winners_match_intuition() {
        let a = sample();
        // Few queries, short horizon: brute force (no upfront cost).
        assert_eq!(a.winner(1.0, 10.0), Winner::BruteForce);
        // Medium load: Rottnest amortizes its index.
        assert_eq!(a.winner(10.0, 10_000.0), Winner::Rottnest);
        // Huge load: always-on cluster with zero marginal query cost.
        assert_eq!(a.winner(10.0, 10_000_000.0), Winner::CopyData);
    }

    #[test]
    fn cpq_math() {
        // 3.6s on one $1/h instance = $0.001.
        assert!((cpq_from_latency(3.6, 1.0, 1.0) - 0.001).abs() < 1e-12);
        // 8 workers double-count.
        assert!((cpq_from_latency(3.6, 8.0, 1.0) - 0.008).abs() < 1e-12);
    }

    #[test]
    fn storage_cost_scales_linearly() {
        let one_gb = cpm_storage(1e9);
        assert!((cpm_storage(304e9) / one_gb - 304.0).abs() < 1e-9);
    }
}
