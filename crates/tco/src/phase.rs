//! Phase-change diagrams over (months × queries), Figures 7, 9, 11.

use crate::Approaches;

/// The TCO-minimal approach at a grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Winner {
    /// Copy data into a dedicated system.
    CopyData,
    /// Brute-force scanning.
    BruteForce,
    /// Rottnest indices.
    Rottnest,
}

impl Winner {
    /// One-letter cell label for ASCII rendering.
    pub fn glyph(&self) -> char {
        match self {
            Winner::CopyData => 'C',
            Winner::BruteForce => 'B',
            Winner::Rottnest => 'R',
        }
    }

    /// Stable name for CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            Winner::CopyData => "copy_data",
            Winner::BruteForce => "brute_force",
            Winner::Rottnest => "rottnest",
        }
    }
}

/// A phase boundary sample: at `months`, Rottnest wins for queries in
/// `[lo, hi]` (empty when Rottnest never wins in that column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boundary {
    /// Operating duration (months).
    pub months: f64,
    /// Lowest query count where Rottnest is optimal (`None` if never).
    pub rottnest_lo: Option<f64>,
    /// Highest query count where Rottnest is optimal.
    pub rottnest_hi: Option<f64>,
}

/// A computed phase diagram on a log-log grid.
#[derive(Debug, Clone)]
pub struct PhaseDiagram {
    /// Month samples (log-spaced).
    pub months: Vec<f64>,
    /// Query samples (log-spaced).
    pub queries: Vec<f64>,
    /// Winner per cell, row-major `[query_idx][month_idx]`.
    pub cells: Vec<Vec<Winner>>,
}

/// Log-spaced samples from `lo` to `hi` inclusive.
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2);
    let (a, b) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (a + (b - a) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

impl PhaseDiagram {
    /// Computes the diagram for `approaches` over the paper's default range:
    /// months 0.03–120 (≈1 day to 10 years), queries 1–10⁸.
    pub fn compute(approaches: &Approaches) -> Self {
        Self::compute_over(
            approaches,
            log_space(0.03, 120.0, 49),
            log_space(1.0, 1e8, 49),
        )
    }

    /// Computes over explicit axes.
    pub fn compute_over(approaches: &Approaches, months: Vec<f64>, queries: Vec<f64>) -> Self {
        let cells = queries
            .iter()
            .map(|&q| months.iter().map(|&m| approaches.winner(m, q)).collect())
            .collect();
        Self {
            months,
            queries,
            cells,
        }
    }

    /// Winner at the grid point nearest `(months, queries)`.
    pub fn winner_at(&self, months: f64, queries: f64) -> Winner {
        let mi = nearest_log(&self.months, months);
        let qi = nearest_log(&self.queries, queries);
        self.cells[qi][mi]
    }

    /// Rottnest's winning query range per month column — the phase
    /// boundaries the paper reads off Figure 7 ("from around 8×10² to 4×10⁶
    /// total queries at 10 months").
    pub fn rottnest_band(&self) -> Vec<Boundary> {
        self.months
            .iter()
            .enumerate()
            .map(|(mi, &m)| {
                let mut lo = None;
                let mut hi = None;
                for (qi, &q) in self.queries.iter().enumerate() {
                    if self.cells[qi][mi] == Winner::Rottnest {
                        lo.get_or_insert(q);
                        hi = Some(q);
                    }
                }
                Boundary {
                    months: m,
                    rottnest_lo: lo,
                    rottnest_hi: hi,
                }
            })
            .collect()
    }

    /// Fraction of grid cells won by each approach `(copy, brute,
    /// rottnest)`.
    pub fn area_shares(&self) -> (f64, f64, f64) {
        let mut counts = [0usize; 3];
        for row in &self.cells {
            for w in row {
                counts[match w {
                    Winner::CopyData => 0,
                    Winner::BruteForce => 1,
                    Winner::Rottnest => 2,
                }] += 1;
            }
        }
        let total = (self.months.len() * self.queries.len()) as f64;
        (
            counts[0] as f64 / total,
            counts[1] as f64 / total,
            counts[2] as f64 / total,
        )
    }

    /// Orders of magnitude spanned by Rottnest's winning band at `months`.
    pub fn rottnest_decades_at(&self, months: f64) -> f64 {
        let mi = nearest_log(&self.months, months);
        let mut lo = None;
        let mut hi = None;
        for (qi, &q) in self.queries.iter().enumerate() {
            if self.cells[qi][mi] == Winner::Rottnest {
                lo.get_or_insert(q);
                hi = Some(q);
            }
        }
        match (lo, hi) {
            (Some(l), Some(h)) if h > l => (h / l).log10(),
            _ => 0.0,
        }
    }

    /// ASCII rendering (queries grow upward), for harness output.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        for qi in (0..self.queries.len()).rev() {
            out.push_str(&format!("{:>9.1e} |", self.queries[qi]));
            for mi in 0..self.months.len() {
                out.push(self.cells[qi][mi].glyph());
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>9} +{}\n{:>11}{:.2} … {:.0} months\n",
            "queries",
            "-".repeat(self.months.len()),
            "",
            self.months[0],
            self.months[self.months.len() - 1]
        ));
        out
    }

    /// CSV rows `months,queries,winner`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("months,queries,winner\n");
        for (qi, &q) in self.queries.iter().enumerate() {
            for (mi, &m) in self.months.iter().enumerate() {
                out.push_str(&format!("{m:.6},{q:.6},{}\n", self.cells[qi][mi].name()));
            }
        }
        out
    }
}

fn nearest_log(axis: &[f64], v: f64) -> usize {
    let lv = v.ln();
    axis.iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            (a.ln() - lv)
                .abs()
                .partial_cmp(&(b.ln() - lv).abs())
                .unwrap()
        })
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproachCosts;

    fn approaches() -> Approaches {
        Approaches {
            copy_data: ApproachCosts {
                index_cost: 0.0,
                cost_per_month: 500.0,
                cost_per_query: 0.0,
            },
            brute_force: ApproachCosts {
                index_cost: 0.0,
                cost_per_month: 7.0,
                cost_per_query: 0.5,
            },
            rottnest: ApproachCosts {
                index_cost: 30.0,
                cost_per_month: 10.0,
                cost_per_query: 0.002,
            },
        }
    }

    #[test]
    fn log_space_endpoints_and_monotonicity() {
        let v = log_space(0.1, 100.0, 10);
        assert!((v[0] - 0.1).abs() < 1e-12);
        assert!((v[9] - 100.0).abs() < 1e-9);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn diagram_has_three_phases_in_expected_corners() {
        let d = PhaseDiagram::compute(&approaches());
        assert_eq!(d.winner_at(0.1, 1.0), Winner::BruteForce);
        assert_eq!(d.winner_at(10.0, 1e4), Winner::Rottnest);
        assert_eq!(d.winner_at(10.0, 1e8), Winner::CopyData);
        let (c, b, r) = d.area_shares();
        assert!(c > 0.0 && b > 0.0 && r > 0.0);
        assert!((c + b + r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rottnest_band_grows_with_months() {
        let d = PhaseDiagram::compute(&approaches());
        let early = d.rottnest_decades_at(0.1);
        let late = d.rottnest_decades_at(10.0);
        assert!(late > early, "band at 10mo ({late}) vs 0.1mo ({early})");
        assert!(late > 3.0, "paper: >4 decades at 10 months; got {late}");
    }

    #[test]
    fn band_boundaries_are_ordered() {
        let d = PhaseDiagram::compute(&approaches());
        for b in d.rottnest_band() {
            if let (Some(lo), Some(hi)) = (b.rottnest_lo, b.rottnest_hi) {
                assert!(lo <= hi);
            }
        }
    }

    #[test]
    fn renders_and_serializes() {
        let d = PhaseDiagram::compute_over(
            &approaches(),
            log_space(0.1, 10.0, 8),
            log_space(1.0, 1e6, 8),
        );
        let ascii = d.render_ascii();
        assert!(ascii.contains('R') && ascii.contains('B'));
        let csv = d.to_csv();
        assert_eq!(csv.lines().count(), 1 + 64);
        assert!(csv.starts_with("months,queries,winner"));
    }
}
