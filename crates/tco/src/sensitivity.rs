//! Parameter sensitivity sweeps (Figure 12): how the phase diagram moves
//! when `cpq_r`, `ic_r`, or `cpm_r − cpm_bf` is scaled ×0.1 … ×10.

use crate::Approaches;

/// Which Rottnest parameter a sweep scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RottnestParam {
    /// Per-query cost (search latency).
    Cpq,
    /// One-time indexing cost.
    Ic,
    /// Index *storage* overhead — scales `cpm_r − cpm_bf`, as the paper
    /// does ("we show the result of scaling cpm_r − cpm_bf, or just the
    /// storage cost associated with the Rottnest index files").
    CpmOverhead,
}

/// Returns `approaches` with one Rottnest parameter multiplied by `factor`.
pub fn scale_param(approaches: &Approaches, param: RottnestParam, factor: f64) -> Approaches {
    let mut out = *approaches;
    let r = &mut out.rottnest;
    match param {
        RottnestParam::Cpq => r.cost_per_query *= factor,
        RottnestParam::Ic => r.index_cost *= factor,
        RottnestParam::CpmOverhead => {
            let base = approaches.brute_force.cost_per_month;
            let overhead = (r.cost_per_month - base).max(0.0);
            r.cost_per_month = base + overhead * factor;
        }
    }
    out
}

/// One sweep row: the factor and the resulting Rottnest-optimal area share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Multiplier applied.
    pub factor: f64,
    /// Fraction of the phase-diagram grid Rottnest wins.
    pub rottnest_share: f64,
    /// Earliest month at which Rottnest wins anywhere (`None` = never).
    pub min_winning_month: Option<f64>,
}

/// Sweeps one parameter over `factors` and reports the phase-diagram
/// response.
pub fn sweep(approaches: &Approaches, param: RottnestParam, factors: &[f64]) -> Vec<SweepPoint> {
    factors
        .iter()
        .map(|&factor| {
            let scaled = scale_param(approaches, param, factor);
            let d = crate::PhaseDiagram::compute(&scaled);
            let (_, _, share) = d.area_shares();
            let min_month = d
                .rottnest_band()
                .into_iter()
                .find(|b| b.rottnest_lo.is_some())
                .map(|b| b.months);
            SweepPoint {
                factor,
                rottnest_share: share,
                min_winning_month: min_month,
            }
        })
        .collect()
}

/// Conclusions of §VII-D1 as an executable check, used by tests and by the
/// Figure 12 harness:
/// scaling `ic_r` moves the minimum worthwhile operating time; scaling
/// `cpq_r`/`cpm_r` moves the asymptotic band.
pub fn observations_hold(approaches: &Approaches) -> bool {
    let factors = [0.1, 1.0, 10.0];
    let ic = sweep(approaches, RottnestParam::Ic, &factors);
    let cheaper_ic_starts_earlier = match (ic[0].min_winning_month, ic[2].min_winning_month) {
        (Some(lo), Some(hi)) => lo <= hi,
        (Some(_), None) => true,
        _ => false,
    };
    let cpq = sweep(approaches, RottnestParam::Cpq, &factors);
    let cheaper_cpq_wins_more = cpq[0].rottnest_share >= cpq[2].rottnest_share;
    let cpm = sweep(approaches, RottnestParam::CpmOverhead, &factors);
    let cheaper_cpm_wins_more = cpm[0].rottnest_share >= cpm[2].rottnest_share;
    cheaper_ic_starts_earlier && cheaper_cpq_wins_more && cheaper_cpm_wins_more
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproachCosts;

    fn approaches() -> Approaches {
        Approaches {
            copy_data: ApproachCosts {
                index_cost: 0.0,
                cost_per_month: 500.0,
                cost_per_query: 0.0,
            },
            brute_force: ApproachCosts {
                index_cost: 0.0,
                cost_per_month: 7.0,
                cost_per_query: 0.5,
            },
            rottnest: ApproachCosts {
                index_cost: 30.0,
                cost_per_month: 10.0,
                cost_per_query: 0.002,
            },
        }
    }

    #[test]
    fn scaling_identity_is_noop() {
        let a = approaches();
        for p in [
            RottnestParam::Cpq,
            RottnestParam::Ic,
            RottnestParam::CpmOverhead,
        ] {
            assert_eq!(scale_param(&a, p, 1.0), a);
        }
    }

    #[test]
    fn cpm_overhead_scaling_keeps_brute_force_base() {
        let a = approaches();
        let scaled = scale_param(&a, RottnestParam::CpmOverhead, 10.0);
        // overhead = 10 - 7 = 3 → 30; cpm_r = 7 + 30.
        assert!((scaled.rottnest.cost_per_month - 37.0).abs() < 1e-9);
        let shrunk = scale_param(&a, RottnestParam::CpmOverhead, 0.0);
        assert!((shrunk.rottnest.cost_per_month - 7.0).abs() < 1e-9);
    }

    #[test]
    fn paper_observations_hold_on_representative_costs() {
        assert!(observations_hold(&approaches()));
    }

    #[test]
    fn sweep_is_monotone_for_cpq() {
        let pts = sweep(
            &approaches(),
            RottnestParam::Cpq,
            &[0.1, 0.3, 1.0, 3.0, 10.0],
        );
        for w in pts.windows(2) {
            assert!(
                w[0].rottnest_share >= w[1].rottnest_share - 1e-9,
                "share must not grow with costlier queries: {w:?}"
            );
        }
    }
}
