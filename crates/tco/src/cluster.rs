//! Horizontal-scaling model for the brute-force cluster (Figure 8).
//!
//! The paper finds Spark "fairly horizontally scalable up to 32 worker
//! instances" with "a marked decrease in latency improvement" at 64. We
//! model per-query latency of a `W`-worker scan as
//!
//! ```text
//! latency(W) = spinup + serial + scan_work / W × skew(W)
//! skew(W) = 1 + straggler_coeff × log2(W)
//! ```
//!
//! The fixed spin-up and coordination terms plus straggler skew reproduce
//! the measured shape: near-linear speedup early, diminishing returns past
//! ~32 workers, and per-query *cost* (`W × hourly × latency`) that is flat
//! then rises.

/// Parameters of the scan cluster.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    /// Fixed task spin-up / scheduling time per query (seconds).
    pub spinup_seconds: f64,
    /// Non-parallelizable work per query (planning, result merge).
    pub serial_seconds: f64,
    /// Total single-worker scan time for the dataset (seconds).
    pub scan_seconds_1worker: f64,
    /// Straggler coefficient for the `1 + c·log2(W)` skew term.
    pub straggler_coeff: f64,
    /// Per-instance hourly price.
    pub hourly_rate: f64,
}

impl ClusterModel {
    /// Per-query latency on `workers` instances (seconds).
    pub fn latency(&self, workers: u32) -> f64 {
        let w = f64::from(workers.max(1));
        let skew = 1.0 + self.straggler_coeff * w.log2();
        self.spinup_seconds + self.serial_seconds + self.scan_seconds_1worker / w * skew
    }

    /// Per-query dollar cost on `workers` instances.
    pub fn cost_per_query(&self, workers: u32) -> f64 {
        f64::from(workers.max(1)) * self.hourly_rate / 3600.0 * self.latency(workers)
    }

    /// Parallel speedup over one worker.
    pub fn speedup(&self, workers: u32) -> f64 {
        self.latency(1) / self.latency(workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ClusterModel {
        ClusterModel {
            spinup_seconds: 2.0,
            serial_seconds: 1.0,
            scan_seconds_1worker: 600.0,
            straggler_coeff: 0.08,
            hourly_rate: 1.008,
        }
    }

    #[test]
    fn latency_decreases_with_workers() {
        let m = model();
        let l: Vec<f64> = [1, 2, 4, 8, 16, 32, 64]
            .iter()
            .map(|&w| m.latency(w))
            .collect();
        assert!(l.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn speedup_saturates_past_32_workers() {
        // Figure 8a: near-linear to 32, markedly sublinear at 64.
        let m = model();
        let eff32 = m.speedup(32) / 32.0;
        let eff64 = m.speedup(64) / 64.0;
        assert!(eff32 > 0.55, "32-worker efficiency {eff32}");
        assert!(
            eff64 < eff32 * 0.9,
            "64-worker efficiency must drop: {eff64} vs {eff32}"
        );
    }

    #[test]
    fn cost_rises_at_high_worker_counts() {
        // Figure 8b: cost per query grows once scaling saturates.
        let m = model();
        assert!(m.cost_per_query(64) > m.cost_per_query(8));
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let m = model();
        assert_eq!(m.latency(0), m.latency(1));
    }
}
