//! AWS us-east-1 on-demand prices (2024) used throughout the paper's
//! evaluation. Dollars.

/// r6i.4xlarge (16 vCPU, 128 GiB) — the paper's EMR / Rottnest worker.
pub const R6I_4XLARGE_HOURLY: f64 = 1.008;

/// r6g.large — the paper's OpenSearch data node (×3).
pub const R6G_LARGE_SEARCH_HOURLY: f64 = 0.167;

/// r6g.xlarge — the paper's LanceDB node (×3).
pub const R6G_XLARGE_HOURLY: f64 = 0.2016;

/// S3 standard storage, $/GB-month.
pub const S3_STORAGE_PER_GB_MONTH: f64 = 0.023;

/// S3 GET request price.
pub const S3_GET_PER_REQUEST: f64 = 0.0000004;

/// S3 PUT request price.
pub const S3_PUT_PER_REQUEST: f64 = 0.000005;

/// EBS gp3 storage, $/GB-month (index replicas of the dedicated system).
pub const EBS_PER_GB_MONTH: f64 = 0.08;

/// Hours per month used for cpm conversions.
pub const HOURS_PER_MONTH: f64 = 730.0;

/// Replication factor of the dedicated system's index (paper: "replicate
/// the primary index three times").
pub const DEDICATED_REPLICATION: f64 = 3.0;

/// Monthly cost of the paper's dedicated search cluster (3 search nodes +
/// replicated EBS for `index_bytes`).
pub fn dedicated_monthly(node_hourly: f64, index_bytes: f64) -> f64 {
    3.0 * node_hourly * HOURS_PER_MONTH
        + DEDICATED_REPLICATION * (index_bytes / 1e9) * EBS_PER_GB_MONTH
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_cluster_dominated_by_instances_at_small_scale() {
        let m = dedicated_monthly(R6G_LARGE_SEARCH_HOURLY, 10e9);
        let instances = 3.0 * R6G_LARGE_SEARCH_HOURLY * HOURS_PER_MONTH;
        assert!(m > instances && m < instances * 1.02);
    }

    #[test]
    fn request_prices_are_tiny_relative_to_compute() {
        // §VII preamble: request costs "eclipsed by compute resource costs".
        let thousand_gets = 1000.0 * S3_GET_PER_REQUEST;
        let second_of_worker = R6I_4XLARGE_HOURLY / 3600.0;
        assert!(thousand_gets < second_of_worker * 2.0);
    }
}
