//! Componentized index files — the object-store access layer of every
//! Rottnest index (§V-B, Figure 6).
//!
//! A data structure is broken into **components**; each component is
//! compressed independently and concatenated into one index file behind an
//! offset directory. Querying reads only the components it needs:
//!
//! * The directory lives at the **head** of the file with a fixed-offset
//!   length field, so `open` is a single speculative range GET that usually
//!   captures the directory *and* the root component (component 0 by
//!   convention) in one round trip — two dependent requests for a whole
//!   lookup instead of one per data-structure node, exactly the BST example
//!   of Figure 6.
//! * Batch access via [`ComponentFile::components`] fetches any number of
//!   components in one parallel round trip (access *width* instead of
//!   *depth*).
//! * Decompressed components are cached **process-wide** in a shared,
//!   byte-capped LRU ([`ComponentCache`]), so repeated accesses — within
//!   one query or across queries — are free. Reopening a cached file
//!   revalidates with a single HEAD instead of re-reading the head bytes.

use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use rottnest_compress::{varint, Codec};
use rottnest_object_store::{ObjectStore, RangeRequest, SingleFlight};

mod cache;

pub use cache::{ComponentCache, OpenEntry, DEFAULT_CACHE_CAPACITY};

/// `(store id, file key, speculative length)` — concurrent cold opens of
/// the same index file share one speculative head GET.
type OpenFlightKey = (u64, String, u64);

fn open_flights() -> &'static SingleFlight<OpenFlightKey, Bytes> {
    static FLIGHTS: OnceLock<SingleFlight<OpenFlightKey, Bytes>> = OnceLock::new();
    FLIGHTS.get_or_init(SingleFlight::new)
}

/// `(store id, file key, directory validator, component id)` — the same
/// coordinates that key the component cache, so flights only merge when a
/// cache hit would also have been legal.
type ComponentFlightKey = (u64, String, u64, usize);

fn component_flights() -> &'static SingleFlight<ComponentFlightKey, Bytes> {
    static FLIGHTS: OnceLock<SingleFlight<ComponentFlightKey, Bytes>> = OnceLock::new();
    FLIGHTS.get_or_init(SingleFlight::new)
}

/// Magic bytes of a component file.
pub const MAGIC: &[u8; 4] = b"LKCX";

/// A page-granular posting shared by every Rottnest index type: which file,
/// which data page (§V-A: "the posting lists do not point to individual rows
/// but to data pages").
///
/// `file` is an index-local id; the metadata layer owns the `file → path`
/// table and remaps ids during merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Posting {
    /// Index-local file id.
    pub file: u32,
    /// Data-page ordinal within that file's indexed column.
    pub page: u32,
}

impl Posting {
    /// Convenience constructor.
    pub fn new(file: u32, page: u32) -> Self {
        Self { file, page }
    }

    /// Serializes as two varints.
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, u64::from(self.file));
        varint::write_u64(out, u64::from(self.page));
    }

    /// Decodes a posting written by [`Posting::encode`].
    pub fn decode(
        buf: &[u8],
        pos: &mut usize,
    ) -> std::result::Result<Self, rottnest_compress::CompressError> {
        Ok(Self {
            file: varint::read_u64(buf, pos)? as u32,
            page: varint::read_u64(buf, pos)? as u32,
        })
    }
}

/// Format version written by this build.
pub const VERSION: u8 = 1;

/// Default speculative head fetch: captures directory + root component for
/// every index type in this workspace.
pub const DEFAULT_SPECULATIVE_BYTES: u64 = 64 * 1024;

/// Errors from component encoding/decoding.
#[derive(Debug)]
pub enum ComponentError {
    /// Malformed file bytes.
    Corrupt(String),
    /// Component index out of range.
    NoSuchComponent(usize),
    /// Decompression failure.
    Compress(rottnest_compress::CompressError),
    /// Store failure.
    Store(rottnest_object_store::StoreError),
}

impl std::fmt::Display for ComponentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComponentError::Corrupt(m) => write!(f, "corrupt component file: {m}"),
            ComponentError::NoSuchComponent(i) => write!(f, "no component {i}"),
            ComponentError::Compress(e) => write!(f, "compress: {e}"),
            ComponentError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for ComponentError {}

impl From<rottnest_compress::CompressError> for ComponentError {
    fn from(e: rottnest_compress::CompressError) -> Self {
        ComponentError::Compress(e)
    }
}

impl From<rottnest_object_store::StoreError> for ComponentError {
    fn from(e: rottnest_object_store::StoreError) -> Self {
        ComponentError::Store(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, ComponentError>;

/// Directory entry for one component. Fields are crate-internal; the type
/// is public only so [`OpenEntry`] can carry a parsed directory.
#[derive(Debug, Clone, Copy)]
pub struct DirEntry {
    offset: u64,
    compressed_len: u64,
    uncompressed_len: u64,
    codec: Codec,
}

/// Builds a component file in memory.
///
/// Components are added in order; index 0 should be the structure's "root"
/// (lookup tables, centroids, global counts) so the speculative head fetch
/// covers it.
#[derive(Debug, Default)]
pub struct ComponentWriter {
    components: Vec<(Vec<u8>, Codec)>,
}

impl ComponentWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component compressed with the LZ codec (stored raw if
    /// incompressible). Returns its index.
    pub fn add(&mut self, bytes: Vec<u8>) -> usize {
        self.add_with_codec(bytes, Codec::Lz)
    }

    /// Adds a component with an explicit codec preference.
    pub fn add_with_codec(&mut self, bytes: Vec<u8>, codec: Codec) -> usize {
        self.components.push((bytes, codec));
        self.components.len() - 1
    }

    /// Number of components added so far.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether no components were added.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Serializes the file: header, directory, compressed components.
    pub fn finish(self) -> Bytes {
        // Compress everything first so the directory knows the layout.
        let mut encoded = Vec::with_capacity(self.components.len());
        for (raw, codec) in &self.components {
            let (payload, used) = match codec {
                Codec::None => (raw.clone(), Codec::None),
                Codec::Lz => {
                    let c = Codec::Lz.compress(raw);
                    if c.len() < raw.len() {
                        (c, Codec::Lz)
                    } else {
                        (raw.clone(), Codec::None)
                    }
                }
            };
            encoded.push((payload, used, raw.len() as u64));
        }

        let mut dir = Vec::new();
        varint::write_usize(&mut dir, encoded.len());
        // Offsets are relative to the end of the directory; the reader adds
        // the header size back.
        let mut offset = 0u64;
        for (payload, used, raw_len) in &encoded {
            dir.push(*used as u8);
            varint::write_u64(&mut dir, offset);
            varint::write_u64(&mut dir, payload.len() as u64);
            varint::write_u64(&mut dir, *raw_len);
            offset += payload.len() as u64;
        }

        let mut out = Vec::with_capacity(9 + dir.len() + offset as usize);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&(dir.len() as u32).to_le_bytes());
        out.extend_from_slice(&dir);
        for (payload, _, _) in &encoded {
            out.extend_from_slice(payload);
        }
        Bytes::from(out)
    }

    /// Serializes and uploads to `store` under `key`.
    pub fn finish_into(self, store: &dyn ObjectStore, key: &str) -> Result<u64> {
        let bytes = self.finish();
        let len = bytes.len() as u64;
        store.put(key, bytes)?;
        Ok(len)
    }
}

/// Read handle over a component file on an object store.
pub struct ComponentFile<'a> {
    store: &'a dyn ObjectStore,
    key: String,
    entries: Vec<DirEntry>,
    payload_base: u64,
    /// Bytes captured by the speculative head fetch (offset 0-based).
    head: Bytes,
    /// Store cache namespace ([`ObjectStore::store_id`]); 0 disables the
    /// shared cache for this handle.
    ns: u64,
    /// Validator hash of the directory bytes; keys component cache slots.
    dir_hash: u64,
}

impl<'a> ComponentFile<'a> {
    /// Opens a component file with a single speculative head GET of
    /// [`DEFAULT_SPECULATIVE_BYTES`].
    pub fn open(store: &'a dyn ObjectStore, key: &str) -> Result<Self> {
        Self::open_with(store, key, DEFAULT_SPECULATIVE_BYTES)
    }

    /// Opens with an explicit speculative fetch size.
    ///
    /// If the process-wide [`ComponentCache`] holds this file's open entry,
    /// the head GET is replaced by a HEAD that revalidates the cached file
    /// length; a mismatch (overwritten file) or HEAD failure falls back to
    /// the normal GET path.
    pub fn open_with(store: &'a dyn ObjectStore, key: &str, speculative: u64) -> Result<Self> {
        let ns = store.store_id();
        if ns != 0 {
            if let Some(open) = ComponentCache::global().get_open(ns, key) {
                match store.head(key) {
                    Ok(meta) if meta.size == open.file_len => {
                        store.record_cache(1, 0, open.head.len() as u64);
                        return Ok(Self {
                            store,
                            key: key.to_string(),
                            entries: open.entries.clone(),
                            payload_base: open.payload_base,
                            head: open.head.clone(),
                            ns,
                            dir_hash: open.dir_hash,
                        });
                    }
                    _ => ComponentCache::global().remove_open(ns, key),
                }
            }
        }
        let head = if ns != 0 {
            // Concurrent cold opens of one hot index file share the
            // leader's speculative GET instead of stampeding the store.
            let fk = (ns, key.to_string(), speculative.max(9));
            let (head, deduped) =
                open_flights().run(&fk, || store.get_range(key, 0..speculative.max(9)));
            if deduped {
                store.record_dedup(1);
            }
            head?
        } else {
            store.get_range(key, 0..speculative.max(9))?
        };
        if head.len() < 9 || &head[..4] != MAGIC {
            return Err(ComponentError::Corrupt(format!("{key}: bad header")));
        }
        if head[4] != VERSION {
            return Err(ComponentError::Corrupt(format!(
                "{key}: unsupported version {}",
                head[4]
            )));
        }
        let dir_len = u32::from_le_bytes(head[5..9].try_into().unwrap()) as usize;
        let dir_bytes: Bytes = if head.len() >= 9 + dir_len {
            head.slice(9..9 + dir_len)
        } else {
            // Directory larger than the speculative window: one more GET.
            store.get_range(key, 9..9 + dir_len as u64)?
        };
        let entries = Self::parse_dir(&dir_bytes)?;
        let payload_base = 9 + dir_len as u64;
        let dir_hash = ComponentCache::dir_validator(&dir_bytes);
        if ns != 0 {
            store.record_cache(0, 1, 0);
            // Components are laid out back to back after the directory, so
            // the directory alone pins the exact file length — the
            // revalidation HEAD above compares against it.
            let file_len = payload_base + entries.iter().map(|e| e.compressed_len).sum::<u64>();
            ComponentCache::global().put_open(
                ns,
                key,
                Arc::new(OpenEntry {
                    head: head.clone(),
                    entries: entries.clone(),
                    payload_base,
                    dir_hash,
                    file_len,
                }),
            );
        }
        Ok(Self {
            store,
            key: key.to_string(),
            entries,
            payload_base,
            head,
            ns,
            dir_hash,
        })
    }

    fn parse_dir(dir: &[u8]) -> Result<Vec<DirEntry>> {
        let mut pos = 0usize;
        let n = varint::read_usize(dir, &mut pos)?;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let codec_byte = *dir
                .get(pos)
                .ok_or_else(|| ComponentError::Corrupt("truncated directory".into()))?;
            pos += 1;
            entries.push(DirEntry {
                codec: Codec::from_u8(codec_byte)?,
                offset: varint::read_u64(dir, &mut pos)?,
                compressed_len: varint::read_u64(dir, &mut pos)?,
                uncompressed_len: varint::read_u64(dir, &mut pos)?,
            });
        }
        Ok(entries)
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the file has no components.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Uncompressed size of component `i`.
    pub fn uncompressed_len(&self, i: usize) -> Option<u64> {
        self.entries.get(i).map(|e| e.uncompressed_len)
    }

    /// Fetches (or serves from the shared cache / head window) component
    /// `i`, decompressed.
    pub fn component(&self, i: usize) -> Result<Bytes> {
        let entry = *self
            .entries
            .get(i)
            .ok_or(ComponentError::NoSuchComponent(i))?;
        if self.ns != 0 {
            if let Some(hit) =
                ComponentCache::global().get_component(self.ns, &self.key, self.dir_hash, i)
            {
                // Only out-of-head components would have cost a GET.
                let saved = if self.in_head(&entry) {
                    0
                } else {
                    entry.compressed_len
                };
                self.store.record_cache(1, 0, saved);
                return Ok(hit);
            }
        }
        let data = if self.ns != 0 && !self.in_head(&entry) {
            // Out-of-head misses cost a GET; concurrent identical ones
            // share the leader's fetch (and its decode, for free).
            let fk = (self.ns, self.key.clone(), self.dir_hash, i);
            let (data, deduped) = component_flights().run(&fk, || {
                let raw = self.fetch_raw(&entry)?;
                self.decode(&entry, &raw)
            });
            if deduped {
                self.store.record_dedup(1);
            }
            data?
        } else {
            let raw = self.fetch_raw(&entry)?;
            self.decode(&entry, &raw)?
        };
        if self.ns != 0 {
            self.store.record_cache(0, 1, 0);
            ComponentCache::global().put_component(
                self.ns,
                &self.key,
                self.dir_hash,
                i,
                data.clone(),
            );
        }
        Ok(data)
    }

    /// Fetches several components in **one parallel round trip** (cached
    /// ones are served locally, and the remaining ranges are coalesced by
    /// the store's `get_ranges`). Results are ordered like `ids`.
    pub fn components(&self, ids: &[usize]) -> Result<Vec<Bytes>> {
        let cache = ComponentCache::global();
        let mut out: Vec<Option<Bytes>> = vec![None; ids.len()];
        let mut fetch: Vec<(usize, usize, DirEntry)> = Vec::new(); // (slot, id, entry)
        let (mut hits, mut misses, mut saved) = (0u64, 0u64, 0u64);
        for (slot, &id) in ids.iter().enumerate() {
            let entry = *self
                .entries
                .get(id)
                .ok_or(ComponentError::NoSuchComponent(id))?;
            if self.ns != 0 {
                if let Some(hit) = cache.get_component(self.ns, &self.key, self.dir_hash, id) {
                    hits += 1;
                    if !self.in_head(&entry) {
                        saved += entry.compressed_len;
                    }
                    out[slot] = Some(hit);
                    continue;
                }
            }
            if self.in_head(&entry) {
                // Served from the speculative head bytes without a request.
                misses += 1;
                let raw = self.fetch_raw(&entry)?;
                let data = self.decode(&entry, &raw)?;
                if self.ns != 0 {
                    cache.put_component(self.ns, &self.key, self.dir_hash, id, data.clone());
                }
                out[slot] = Some(data);
            } else {
                fetch.push((slot, id, entry));
            }
        }
        if !fetch.is_empty() {
            if self.ns != 0 {
                // Per-component flights shared with `component` and with
                // *overlapping* concurrent batches: lead the components
                // nobody is fetching (one parallel round trip, decoded
                // once behind the flight), join the in-flight fetches for
                // the rest. Solo, every component is owned and the single
                // `get_ranges` call matches the pre-flight request count.
                let keys: Vec<ComponentFlightKey> = fetch
                    .iter()
                    .map(|&(_, id, _)| (self.ns, self.key.clone(), self.dir_hash, id))
                    .collect();
                let (decoded, joined) = component_flights().run_partial(&keys, |owned| {
                    let subset: Vec<RangeRequest> = owned
                        .iter()
                        .map(|&j| {
                            let e = fetch[j].2;
                            let start = self.payload_base + e.offset;
                            RangeRequest::new(self.key.clone(), start..start + e.compressed_len)
                        })
                        .collect();
                    let raws = self.store.get_ranges(&subset)?;
                    owned
                        .iter()
                        .zip(raws)
                        .map(|(&j, raw)| self.decode(&fetch[j].2, &raw))
                        .collect()
                });
                if joined > 0 {
                    self.store.record_dedup(joined);
                }
                for (&(slot, id, _), data) in fetch.iter().zip(decoded?) {
                    misses += 1;
                    cache.put_component(self.ns, &self.key, self.dir_hash, id, data.clone());
                    out[slot] = Some(data);
                }
            } else {
                let requests: Vec<RangeRequest> = fetch
                    .iter()
                    .map(|(_, _, e)| {
                        let start = self.payload_base + e.offset;
                        RangeRequest::new(self.key.clone(), start..start + e.compressed_len)
                    })
                    .collect();
                let payloads = self.store.get_ranges(&requests)?;
                for ((slot, _, entry), raw) in fetch.into_iter().zip(payloads) {
                    misses += 1;
                    let data = self.decode(&entry, &raw)?;
                    out[slot] = Some(data);
                }
            }
        }
        if self.ns != 0 && hits + misses > 0 {
            self.store.record_cache(hits, misses, saved);
        }
        Ok(out
            .into_iter()
            .map(|b| b.expect("all slots filled"))
            .collect())
    }

    fn in_head(&self, entry: &DirEntry) -> bool {
        let start = self.payload_base + entry.offset;
        start + entry.compressed_len <= self.head.len() as u64
    }

    fn fetch_raw(&self, entry: &DirEntry) -> Result<Bytes> {
        let start = self.payload_base + entry.offset;
        let end = start + entry.compressed_len;
        if end <= self.head.len() as u64 {
            Ok(self.head.slice(start as usize..end as usize))
        } else {
            Ok(self.store.get_range(&self.key, start..end)?)
        }
    }

    fn decode(&self, entry: &DirEntry, raw: &[u8]) -> Result<Bytes> {
        Ok(Bytes::from(
            entry
                .codec
                .decompress(raw, entry.uncompressed_len as usize)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rottnest_object_store::{LatencyModel, MemoryStore};

    fn build(store: &dyn ObjectStore, key: &str, parts: &[&[u8]]) {
        let mut w = ComponentWriter::new();
        for p in parts {
            w.add(p.to_vec());
        }
        w.finish_into(store, key).unwrap();
    }

    #[test]
    fn round_trip_components() {
        let store = MemoryStore::unmetered();
        let big = vec![7u8; 200_000];
        build(store.as_ref(), "x.idx", &[b"root data", b"leaf-1", &big]);
        let f = ComponentFile::open(store.as_ref(), "x.idx").unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(f.component(0).unwrap().as_ref(), b"root data");
        assert_eq!(f.component(1).unwrap().as_ref(), b"leaf-1");
        assert_eq!(f.component(2).unwrap().as_ref(), big.as_slice());
        assert!(matches!(
            f.component(3),
            Err(ComponentError::NoSuchComponent(3))
        ));
    }

    #[test]
    fn open_plus_root_is_one_get() {
        let store = MemoryStore::unmetered();
        build(store.as_ref(), "x.idx", &[b"root", b"leaf"]);
        let before = store.stats();
        let f = ComponentFile::open(store.as_ref(), "x.idx").unwrap();
        f.component(0).unwrap(); // root is inside the speculative window
        let delta = store.stats().since(&before);
        assert_eq!(delta.gets, 1, "open + root component must cost one GET");
    }

    #[test]
    fn leaf_outside_head_costs_one_more_get() {
        let store = MemoryStore::unmetered();
        // Incompressible filler pushes later components past the 64 KiB
        // speculative window.
        let mut x = 0x9e3779b97f4a7c15u64;
        let filler: Vec<u8> = (0..300_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        build(store.as_ref(), "x.idx", &[b"root", &filler, b"target-leaf"]);
        let f = ComponentFile::open(store.as_ref(), "x.idx").unwrap();
        let before = store.stats();
        assert_eq!(f.component(2).unwrap().as_ref(), b"target-leaf");
        assert_eq!(store.stats().since(&before).gets, 1);
        // Cached now: free.
        let before = store.stats();
        f.component(2).unwrap();
        assert_eq!(store.stats().since(&before).gets, 0);
    }

    #[test]
    fn batch_fetch_is_one_round_trip() {
        let store = MemoryStore::with_model_and_limit(LatencyModel::default(), 0);
        let mut parts: Vec<Vec<u8>> = Vec::new();
        let mut rngish = 1u64;
        for _ in 0..20 {
            // Incompressible-ish distinct parts, each ~100 KiB.
            let part: Vec<u8> = (0..100_000)
                .map(|_| {
                    rngish = rngish.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (rngish >> 33) as u8
                })
                .collect();
            parts.push(part);
        }
        let mut w = ComponentWriter::new();
        for p in &parts {
            w.add(p.clone());
        }
        w.finish_into(store.as_ref(), "big.idx").unwrap();

        let f = ComponentFile::open(store.as_ref(), "big.idx").unwrap();
        let ids: Vec<usize> = (0..20).collect();
        let clock = store.clock().unwrap();
        let (got, elapsed) = clock.time(|| f.components(&ids).unwrap());
        for (g, p) in got.iter().zip(&parts) {
            assert_eq!(g.as_ref(), p.as_slice());
        }
        let single = store.latency_model().get_us(100_000);
        assert!(
            elapsed < single * 3,
            "batch {elapsed}us vs single {single}us"
        );
    }

    #[test]
    fn batch_mixes_cached_head_and_remote() {
        let store = MemoryStore::unmetered();
        let filler = vec![0u8; 200_000];
        build(store.as_ref(), "x.idx", &[b"a", &filler, b"c", b"d"]);
        let f = ComponentFile::open(store.as_ref(), "x.idx").unwrap();
        f.component(3).unwrap(); // prime cache
        let got = f.components(&[0, 2, 3, 0]).unwrap();
        assert_eq!(got[0].as_ref(), b"a");
        assert_eq!(got[2].as_ref(), b"d");
        assert_eq!(got[3].as_ref(), b"a");
    }

    #[test]
    fn huge_directory_needs_second_get_but_works() {
        let store = MemoryStore::unmetered();
        let mut w = ComponentWriter::new();
        for i in 0..20_000u32 {
            w.add_with_codec(i.to_le_bytes().to_vec(), Codec::None);
        }
        w.finish_into(store.as_ref(), "many.idx").unwrap();
        let f = ComponentFile::open(store.as_ref(), "many.idx").unwrap();
        assert_eq!(f.len(), 20_000);
        assert_eq!(
            f.component(19_999).unwrap().as_ref(),
            19_999u32.to_le_bytes()
        );
    }

    #[test]
    fn compressible_components_shrink_file() {
        let store = MemoryStore::unmetered();
        let repetitive = b"abcabcabc".repeat(10_000);
        build(store.as_ref(), "c.idx", &[&repetitive]);
        let size = store.head("c.idx").unwrap().size;
        assert!(size < repetitive.len() as u64 / 4);
    }

    #[test]
    fn empty_file_round_trips() {
        let store = MemoryStore::unmetered();
        ComponentWriter::new()
            .finish_into(store.as_ref(), "e.idx")
            .unwrap();
        let f = ComponentFile::open(store.as_ref(), "e.idx").unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn corrupt_header_rejected() {
        let store = MemoryStore::unmetered();
        store
            .put("bad.idx", Bytes::from_static(b"NOTAFILE"))
            .unwrap();
        assert!(ComponentFile::open(store.as_ref(), "bad.idx").is_err());
    }
}
