//! Process-wide cache of decompressed index components and open-file
//! directories.
//!
//! Repeated queries against the same index files dominate a search-heavy
//! workload, and §V-B's componentization makes the unit of reuse obvious:
//! the decompressed component. The per-handle cache that used to live in
//! [`crate::ComponentFile`] only helped within one query; this cache is
//! shared by every handle in the process, so a warm query pays zero GETs
//! for index structure it has seen before.
//!
//! Keys are `(store id, object key, slot)`:
//!
//! * store id — [`rottnest_object_store::ObjectStore::store_id`]; `0` means
//!   "uncacheable" and never reaches this module.
//! * slot — either the open-file entry (head bytes + parsed directory) or
//!   one decompressed component, qualified by a **validator** hash of the
//!   directory bytes so components from an overwritten file can never be
//!   served against a new directory.
//!
//! Staleness: cached open entries remember the exact file length (the
//! directory records every component's compressed length, so the length is
//! known without a HEAD). Reopening revalidates with one HEAD — an order of
//! magnitude cheaper than the GET it replaces under the simulator's latency
//! model — and any length mismatch drops the entry and falls back to the
//! normal open path. A same-length overwrite is indistinguishable without
//! object versions/etags, which the stores here don't model; the metadata
//! layer never rewrites an index file in place, so this is a theoretical
//! gap only.
//!
//! Capacity: bounded by total cached bytes, default 256 MiB, evicting
//! least-recently-used entries per shard. The LRU machinery is the shared
//! [`ByteLru`] (also used by the page cache in `rottnest-format`); each
//! cache instantiates its **own budget**, so hot index components and hot
//! data pages never evict each other.

use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use rottnest_object_store::ByteLru;

use crate::DirEntry;

/// Default cache capacity in bytes.
pub const DEFAULT_CACHE_CAPACITY: usize = 256 * 1024 * 1024;

/// What a cache slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Slot {
    /// Head bytes + parsed directory of an open component file.
    Open,
    /// One decompressed component, valid only for the directory whose
    /// bytes hash to `validator`.
    Component { validator: u64, id: usize },
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    ns: u64,
    key: String,
    slot: Slot,
}

/// Cached result of opening a component file.
#[derive(Debug)]
pub struct OpenEntry {
    /// Bytes captured by the original speculative head fetch.
    pub head: Bytes,
    /// Parsed directory.
    pub entries: Vec<DirEntry>,
    /// Offset of the first component payload.
    pub payload_base: u64,
    /// Hash of the directory bytes; validator for component slots.
    pub dir_hash: u64,
    /// Exact length of the file on the store, derived from the directory.
    pub file_len: u64,
}

#[derive(Clone)]
enum Value {
    Open(Arc<OpenEntry>),
    Component(Bytes),
}

/// Sharded, byte-capped, process-wide LRU for index components.
pub struct ComponentCache {
    lru: ByteLru<CacheKey, Value>,
}

/// FNV-1a, used as the directory validator.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl ComponentCache {
    /// Creates a cache bounded by `capacity` total bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            lru: ByteLru::with_capacity(capacity),
        }
    }

    /// The process-wide instance used by [`crate::ComponentFile`].
    pub fn global() -> &'static ComponentCache {
        static GLOBAL: OnceLock<ComponentCache> = OnceLock::new();
        GLOBAL.get_or_init(|| ComponentCache::with_capacity(DEFAULT_CACHE_CAPACITY))
    }

    /// Hashes `dir` into the validator component slots are keyed by.
    pub fn dir_validator(dir: &[u8]) -> u64 {
        fnv1a(dir)
    }

    /// Looks up the open entry for `key` on store `ns`.
    pub fn get_open(&self, ns: u64, key: &str) -> Option<Arc<OpenEntry>> {
        let k = CacheKey {
            ns,
            key: key.to_string(),
            slot: Slot::Open,
        };
        match self.lru.get(&k)? {
            Value::Open(e) => Some(e),
            Value::Component(_) => None,
        }
    }

    /// Installs an open entry; its charge is the retained head bytes plus
    /// directory overhead.
    pub fn put_open(&self, ns: u64, key: &str, entry: Arc<OpenEntry>) {
        let charge = entry.head.len() + entry.entries.len() * std::mem::size_of::<DirEntry>();
        self.lru.insert(
            CacheKey {
                ns,
                key: key.to_string(),
                slot: Slot::Open,
            },
            Value::Open(entry),
            charge,
        );
    }

    /// Drops a stale open entry (after a failed revalidation).
    pub fn remove_open(&self, ns: u64, key: &str) {
        self.lru.remove(&CacheKey {
            ns,
            key: key.to_string(),
            slot: Slot::Open,
        });
    }

    /// Looks up decompressed component `id` of `key` under directory
    /// validator `validator`.
    pub fn get_component(&self, ns: u64, key: &str, validator: u64, id: usize) -> Option<Bytes> {
        let k = CacheKey {
            ns,
            key: key.to_string(),
            slot: Slot::Component { validator, id },
        };
        match self.lru.get(&k)? {
            Value::Component(b) => Some(b),
            Value::Open(_) => None,
        }
    }

    /// Installs decompressed component bytes.
    pub fn put_component(&self, ns: u64, key: &str, validator: u64, id: usize, data: Bytes) {
        let charge = data.len();
        self.lru.insert(
            CacheKey {
                ns,
                key: key.to_string(),
                slot: Slot::Component { validator, id },
            },
            Value::Component(data),
            charge,
        );
    }

    /// Drops every entry (open slot and all components) for `key` on store
    /// `ns` — the invalidation hint vacuum emits after physically deleting
    /// an index file, so dead bytes stop pinning cache budget immediately.
    pub fn invalidate_file(&self, ns: u64, key: &str) {
        self.lru.retain(|k| !(k.ns == ns && k.key == key));
    }

    /// Number of cached entries for `key` on store `ns` (tests assert
    /// invalidation hints landed).
    pub fn entries_for_file(&self, ns: u64, key: &str) -> usize {
        self.lru.count_matching(|k| k.ns == ns && k.key == key)
    }

    /// Empties the cache. Tests that exercise cold-read behaviour (fault
    /// degradation, GET accounting) call this to shed state left by earlier
    /// operations in the same process.
    pub fn clear(&self) {
        self.lru.clear();
    }

    /// Number of cached entries (all shards).
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Total cached bytes (all shards).
    pub fn bytes(&self) -> usize {
        self.lru.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes_of(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn eviction_respects_byte_cap() {
        let cache = ComponentCache::with_capacity(16 * 1024);
        for i in 0..200 {
            cache.put_component(1, "f.idx", 7, i, bytes_of(1024, i as u8));
        }
        assert!(
            cache.bytes() <= 16 * 1024,
            "cache holds {} bytes over the 16 KiB cap",
            cache.bytes()
        );
        assert!(cache.len() < 200, "everything survived a 16x over-insert");
    }

    #[test]
    fn lru_keeps_recently_touched_entries() {
        // One shard so insertion order is the only variable.
        let cache = ComponentCache {
            lru: ByteLru::with_shards(4 * 1024, 1),
        };
        for i in 0..4 {
            cache.put_component(1, "f.idx", 7, i, bytes_of(1024, i as u8));
        }
        // Touch component 0 so it is warmer than 1.
        assert!(cache.get_component(1, "f.idx", 7, 0).is_some());
        // Inserting one more 1 KiB entry must evict exactly the coldest: 1.
        cache.put_component(1, "f.idx", 7, 4, bytes_of(1024, 4));
        assert!(cache.get_component(1, "f.idx", 7, 0).is_some());
        assert!(cache.get_component(1, "f.idx", 7, 1).is_none());
        assert!(cache.get_component(1, "f.idx", 7, 4).is_some());
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache =
            ComponentCache::with_capacity(rottnest_object_store::bytecache::DEFAULT_SHARDS * 1024);
        cache.put_component(1, "f.idx", 7, 0, bytes_of(2048, 1));
        assert!(cache.get_component(1, "f.idx", 7, 0).is_none());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn validator_partitions_generations() {
        let cache = ComponentCache::with_capacity(1 << 20);
        cache.put_component(1, "f.idx", 100, 0, bytes_of(10, 1));
        assert!(cache.get_component(1, "f.idx", 200, 0).is_none());
        assert!(cache.get_component(1, "f.idx", 100, 0).is_some());
    }

    #[test]
    fn store_ids_partition_namespaces() {
        let cache = ComponentCache::with_capacity(1 << 20);
        cache.put_component(1, "f.idx", 7, 0, bytes_of(10, 1));
        assert!(cache.get_component(2, "f.idx", 7, 0).is_none());
    }

    #[test]
    fn invalidate_file_drops_all_slots_for_the_key() {
        let cache = ComponentCache::with_capacity(1 << 20);
        cache.put_component(1, "f.idx", 7, 0, bytes_of(10, 1));
        cache.put_component(1, "f.idx", 7, 1, bytes_of(10, 2));
        cache.put_component(1, "g.idx", 7, 0, bytes_of(10, 3));
        cache.put_open(
            1,
            "f.idx",
            Arc::new(OpenEntry {
                head: bytes_of(10, 4),
                entries: Vec::new(),
                payload_base: 9,
                dir_hash: 7,
                file_len: 19,
            }),
        );
        assert_eq!(cache.entries_for_file(1, "f.idx"), 3);
        cache.invalidate_file(1, "f.idx");
        assert_eq!(cache.entries_for_file(1, "f.idx"), 0);
        // Other files and other namespaces survive.
        assert!(cache.get_component(1, "g.idx", 7, 0).is_some());
    }

    #[test]
    fn clear_empties_everything() {
        let cache = ComponentCache::with_capacity(1 << 20);
        cache.put_component(1, "f.idx", 7, 0, bytes_of(10, 1));
        cache.put_open(
            1,
            "f.idx",
            Arc::new(OpenEntry {
                head: bytes_of(10, 2),
                entries: Vec::new(),
                payload_base: 9,
                dir_hash: 7,
                file_len: 19,
            }),
        );
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }
}
