//! Process-wide cache of decompressed index components and open-file
//! directories.
//!
//! Repeated queries against the same index files dominate a search-heavy
//! workload, and §V-B's componentization makes the unit of reuse obvious:
//! the decompressed component. The per-handle cache that used to live in
//! [`crate::ComponentFile`] only helped within one query; this cache is
//! shared by every handle in the process, so a warm query pays zero GETs
//! for index structure it has seen before.
//!
//! Keys are `(store id, object key, slot)`:
//!
//! * store id — [`rottnest_object_store::ObjectStore::store_id`]; `0` means
//!   "uncacheable" and never reaches this module.
//! * slot — either the open-file entry (head bytes + parsed directory) or
//!   one decompressed component, qualified by a **validator** hash of the
//!   directory bytes so components from an overwritten file can never be
//!   served against a new directory.
//!
//! Staleness: cached open entries remember the exact file length (the
//! directory records every component's compressed length, so the length is
//! known without a HEAD). Reopening revalidates with one HEAD — an order of
//! magnitude cheaper than the GET it replaces under the simulator's latency
//! model — and any length mismatch drops the entry and falls back to the
//! normal open path. A same-length overwrite is indistinguishable without
//! object versions/etags, which the stores here don't model; the metadata
//! layer never rewrites an index file in place, so this is a theoretical
//! gap only.
//!
//! Capacity: bounded by total cached bytes, default 256 MiB, evicting
//! least-recently-used entries per shard. Sharded (16 ways, keyed by hash)
//! so the parallel search executor's workers don't serialize on one lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use parking_lot::Mutex;
use rottnest_object_store::FxHashMap;

use crate::DirEntry;

const SHARDS: usize = 16;

/// Default cache capacity in bytes.
pub const DEFAULT_CACHE_CAPACITY: usize = 256 * 1024 * 1024;

/// What a cache slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Slot {
    /// Head bytes + parsed directory of an open component file.
    Open,
    /// One decompressed component, valid only for the directory whose
    /// bytes hash to `validator`.
    Component { validator: u64, id: usize },
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    ns: u64,
    key: String,
    slot: Slot,
}

/// Cached result of opening a component file.
#[derive(Debug)]
pub struct OpenEntry {
    /// Bytes captured by the original speculative head fetch.
    pub head: Bytes,
    /// Parsed directory.
    pub entries: Vec<DirEntry>,
    /// Offset of the first component payload.
    pub payload_base: u64,
    /// Hash of the directory bytes; validator for component slots.
    pub dir_hash: u64,
    /// Exact length of the file on the store, derived from the directory.
    pub file_len: u64,
}

#[derive(Clone)]
enum Value {
    Open(Arc<OpenEntry>),
    Component(Bytes),
}

struct Entry {
    value: Value,
    charge: usize,
    tick: u64,
}

#[derive(Default)]
struct Shard {
    map: FxHashMap<CacheKey, Entry>,
    bytes: usize,
}

impl Shard {
    fn evict_to(&mut self, cap: usize) {
        while self.bytes > cap && !self.map.is_empty() {
            let coldest = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            if let Some(e) = self.map.remove(&coldest) {
                self.bytes -= e.charge;
            }
        }
    }
}

/// Sharded, byte-capped, process-wide LRU for index components.
pub struct ComponentCache {
    shards: Vec<Mutex<Shard>>,
    shard_cap: usize,
    tick: AtomicU64,
}

/// FNV-1a, used both to pick a shard and as the directory validator.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl ComponentCache {
    /// Creates a cache bounded by `capacity` total bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: capacity.div_ceil(SHARDS),
            tick: AtomicU64::new(0),
        }
    }

    /// The process-wide instance used by [`crate::ComponentFile`].
    pub fn global() -> &'static ComponentCache {
        static GLOBAL: OnceLock<ComponentCache> = OnceLock::new();
        GLOBAL.get_or_init(|| ComponentCache::with_capacity(DEFAULT_CACHE_CAPACITY))
    }

    /// Hashes `dir` into the validator component slots are keyed by.
    pub fn dir_validator(dir: &[u8]) -> u64 {
        fnv1a(dir)
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = fnv1a(key.key.as_bytes()) ^ key.ns.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if let Slot::Component { id, .. } = key.slot {
            h = h.wrapping_add(id as u64).wrapping_mul(0x100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    fn get(&self, key: &CacheKey) -> Option<Value> {
        let tick = self.next_tick();
        let mut shard = self.shard_of(key).lock();
        let entry = shard.map.get_mut(key)?;
        entry.tick = tick;
        Some(entry.value.clone())
    }

    fn put(&self, key: CacheKey, value: Value, charge: usize) {
        if charge > self.shard_cap {
            return; // larger than a whole shard: not worth caching
        }
        let tick = self.next_tick();
        let mut shard = self.shard_of(&key).lock();
        if let Some(old) = shard.map.insert(
            key,
            Entry {
                value,
                charge,
                tick,
            },
        ) {
            shard.bytes -= old.charge;
        }
        shard.bytes += charge;
        let cap = self.shard_cap;
        shard.evict_to(cap);
    }

    /// Looks up the open entry for `key` on store `ns`.
    pub fn get_open(&self, ns: u64, key: &str) -> Option<Arc<OpenEntry>> {
        let k = CacheKey {
            ns,
            key: key.to_string(),
            slot: Slot::Open,
        };
        match self.get(&k)? {
            Value::Open(e) => Some(e),
            Value::Component(_) => None,
        }
    }

    /// Installs an open entry; its charge is the retained head bytes plus
    /// directory overhead.
    pub fn put_open(&self, ns: u64, key: &str, entry: Arc<OpenEntry>) {
        let charge = entry.head.len() + entry.entries.len() * std::mem::size_of::<DirEntry>();
        self.put(
            CacheKey {
                ns,
                key: key.to_string(),
                slot: Slot::Open,
            },
            Value::Open(entry),
            charge,
        );
    }

    /// Drops a stale open entry (after a failed revalidation).
    pub fn remove_open(&self, ns: u64, key: &str) {
        let k = CacheKey {
            ns,
            key: key.to_string(),
            slot: Slot::Open,
        };
        let mut shard = self.shard_of(&k).lock();
        if let Some(e) = shard.map.remove(&k) {
            shard.bytes -= e.charge;
        }
    }

    /// Looks up decompressed component `id` of `key` under directory
    /// validator `validator`.
    pub fn get_component(&self, ns: u64, key: &str, validator: u64, id: usize) -> Option<Bytes> {
        let k = CacheKey {
            ns,
            key: key.to_string(),
            slot: Slot::Component { validator, id },
        };
        match self.get(&k)? {
            Value::Component(b) => Some(b),
            Value::Open(_) => None,
        }
    }

    /// Installs decompressed component bytes.
    pub fn put_component(&self, ns: u64, key: &str, validator: u64, id: usize, data: Bytes) {
        let charge = data.len();
        self.put(
            CacheKey {
                ns,
                key: key.to_string(),
                slot: Slot::Component { validator, id },
            },
            Value::Component(data),
            charge,
        );
    }

    /// Empties the cache. Tests that exercise cold-read behaviour (fault
    /// degradation, GET accounting) call this to shed state left by earlier
    /// operations in the same process.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.map.clear();
            s.bytes = 0;
        }
    }

    /// Number of cached entries (all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cached bytes (all shards).
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes_of(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn eviction_respects_byte_cap() {
        let cache = ComponentCache::with_capacity(16 * 1024);
        for i in 0..200 {
            cache.put_component(1, "f.idx", 7, i, bytes_of(1024, i as u8));
        }
        assert!(
            cache.bytes() <= 16 * 1024,
            "cache holds {} bytes over the 16 KiB cap",
            cache.bytes()
        );
        assert!(cache.len() < 200, "everything survived a 16x over-insert");
    }

    #[test]
    fn lru_keeps_recently_touched_entries() {
        // One shard so insertion order is the only variable.
        let cache = ComponentCache {
            shards: vec![Mutex::new(Shard::default())],
            shard_cap: 4 * 1024,
            tick: AtomicU64::new(0),
        };
        for i in 0..4 {
            cache.put_component(1, "f.idx", 7, i, bytes_of(1024, i as u8));
        }
        // Touch component 0 so it is warmer than 1.
        assert!(cache.get_component(1, "f.idx", 7, 0).is_some());
        // Inserting one more 1 KiB entry must evict exactly the coldest: 1.
        cache.put_component(1, "f.idx", 7, 4, bytes_of(1024, 4));
        assert!(cache.get_component(1, "f.idx", 7, 0).is_some());
        assert!(cache.get_component(1, "f.idx", 7, 1).is_none());
        assert!(cache.get_component(1, "f.idx", 7, 4).is_some());
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = ComponentCache::with_capacity(SHARDS * 1024);
        cache.put_component(1, "f.idx", 7, 0, bytes_of(2048, 1));
        assert!(cache.get_component(1, "f.idx", 7, 0).is_none());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn validator_partitions_generations() {
        let cache = ComponentCache::with_capacity(1 << 20);
        cache.put_component(1, "f.idx", 100, 0, bytes_of(10, 1));
        assert!(cache.get_component(1, "f.idx", 200, 0).is_none());
        assert!(cache.get_component(1, "f.idx", 100, 0).is_some());
    }

    #[test]
    fn store_ids_partition_namespaces() {
        let cache = ComponentCache::with_capacity(1 << 20);
        cache.put_component(1, "f.idx", 7, 0, bytes_of(10, 1));
        assert!(cache.get_component(2, "f.idx", 7, 0).is_none());
    }

    #[test]
    fn clear_empties_everything() {
        let cache = ComponentCache::with_capacity(1 << 20);
        cache.put_component(1, "f.idx", 7, 0, bytes_of(10, 1));
        cache.put_open(
            1,
            "f.idx",
            Arc::new(OpenEntry {
                head: bytes_of(10, 2),
                entries: Vec::new(),
                payload_base: 9,
                dir_hash: 7,
                file_len: 19,
            }),
        );
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }
}
