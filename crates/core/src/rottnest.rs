//! The Rottnest client: `index`, `search`, `compact`, `vacuum` (§IV).

use std::sync::atomic::{AtomicU64, Ordering};

use rottnest_bloom::BloomIndex;
use rottnest_fm::{FmIndex, FmOptions, MergePolicy};
use rottnest_format::{ChunkReader, DataType, NegScanCache, PageCacheSession, ValueRef};
use rottnest_ivfpq::{IvfPqIndex, IvfPqParams, SearchParams, VecPosting};
use rottnest_lake::{FileEntry, Snapshot, Table};
use rottnest_object_store::{
    is_cancelled, ordered_parallel_map_io, parallel::captured_lane_micros, push_deadline,
    BreakerState, CancelStore, FxHashMap, FxHashSet, HealthTracker, ObjectStore, RetryPolicy,
    RetryStore, StoreError, WorkerPool,
};
use rottnest_trie::TrieIndex;

use crate::build::build_index_file;
use crate::executor::{parallel_map_io, SearchConfig};
use crate::meta::{IndexEntry, IndexKind, MetaOp, MetaTable};
use crate::probe::{fetch_vectors, load_dvs, probe_exact, PageRef};
use crate::query::{Match, Query, SearchOutcome, SearchStats};
use crate::{Result, RottnestError};

/// Configuration of a Rottnest client.
#[derive(Debug, Clone)]
pub struct RottnestConfig {
    /// Index operations must finish within this budget (store clock); it is
    /// also the age below which `vacuum` never deletes uncommitted objects
    /// (§IV-A step 4, §IV-C).
    pub index_timeout_ms: u64,
    /// Index builds covering fewer rows abort in favor of brute-force scan
    /// (§IV-A footnote 2). Only enforced for vector indexes, which need
    /// enough vectors to train quantizers.
    pub min_vector_rows: u64,
    /// `compact` merges index files smaller than this (bin packing, §IV-C).
    pub compact_below_bytes: u64,
    /// Maximum index files merged per compaction bin.
    pub compact_fanin: usize,
    /// FM-index layout options.
    pub fm: FmOptions,
    /// IVF-PQ training parameters.
    pub ivf: IvfPqParams,
    /// FM merge policy.
    pub fm_merge: MergePolicy,
    /// Metadata commit retry budget.
    pub meta_retries: u32,
    /// Transient-fault retry policy for every store request the client
    /// issues (index builds, searches, compaction, vacuum). Deterministic
    /// failures are never retried; see [`RetryStore`].
    pub retry: RetryPolicy,
    /// Parallel search executor knobs. Results are identical at every
    /// setting (the merge is deterministic); only wall-clock changes.
    pub search: SearchConfig,
    /// Maximum worker threads the ingest pipeline fans out over: file
    /// download+decode during `index`, builder internals (FM block
    /// serialization, PQ subspace training), and source-component opens
    /// during `compact`. `1` runs everything inline on the calling
    /// thread. The produced index bytes are **bit-identical** at every
    /// setting — decoded files feed the builder through a single
    /// in-order consumer and every parallelized stage merges its results
    /// in input order (`tests/tests/build_equivalence.rs`) — so only
    /// wall-clock changes.
    pub build_parallelism: usize,
}

impl Default for RottnestConfig {
    fn default() -> Self {
        Self {
            index_timeout_ms: 3_600_000,
            min_vector_rows: 256,
            compact_below_bytes: 64 << 20,
            compact_fanin: 16,
            fm: FmOptions::default(),
            ivf: IvfPqParams::default(),
            fm_merge: MergePolicy::default(),
            meta_retries: 16,
            retry: RetryPolicy::default(),
            search: SearchConfig::default(),
            build_parallelism: rottnest_object_store::default_parallelism(),
        }
    }
}

static INDEX_SEQ: AtomicU64 = AtomicU64::new(0);

/// What happened to one potentially hedged index probe.
#[derive(Debug, Clone, Copy, Default)]
struct HedgeOutcome {
    /// The probe ran on two lanes (the hedge trigger fired).
    hedged: bool,
    /// The backup lane's result was the one used.
    backup_won: bool,
    /// The losing lane was observed to stop at a cancellation point.
    loser_cancelled: bool,
}

impl HedgeOutcome {
    /// Folds this outcome into a search's stats counters.
    fn account(&self, stats: &mut SearchStats) {
        if self.hedged {
            stats.hedged_probes += 1;
            if self.backup_won {
                stats.hedge_wins += 1;
            }
            if self.loser_cancelled {
                stats.hedge_cancels += 1;
            }
        }
    }
}

/// Whether `e` is (or wraps, through any index/format/component layer)
/// the typed cancellation error a [`CancelStore`] raises — i.e. the
/// expected way a losing hedge lane dies, not a real fault.
fn error_is_cancelled(e: &RottnestError) -> bool {
    use rottnest_component::ComponentError;
    let store_err = match e {
        RottnestError::Store(s) => Some(s),
        RottnestError::Format(rottnest_format::FormatError::Store(s)) => Some(s),
        RottnestError::Trie(rottnest_trie::TrieError::Component(ComponentError::Store(s)))
        | RottnestError::Bloom(rottnest_bloom::BloomError::Component(ComponentError::Store(s)))
        | RottnestError::Fm(rottnest_fm::FmError::Component(ComponentError::Store(s)))
        | RottnestError::Ivf(rottnest_ivfpq::IvfError::Component(ComponentError::Store(s))) => {
            Some(s)
        }
        _ => None,
    };
    store_err.is_some_and(is_cancelled)
}

/// Outcome of a `vacuum` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VacuumReport {
    /// Metadata records dropped.
    pub records_removed: u64,
    /// Index objects physically deleted.
    pub objects_deleted: u64,
    /// Objects spared because they are younger than the index timeout.
    pub objects_spared: u64,
}

/// A Rottnest index client bound to an `index_dir` on an object store.
///
/// All four APIs may be called from any process with store access,
/// concurrently with each other and with lake operations (§IV).
pub struct Rottnest<'a> {
    retry: RetryStore<&'a dyn ObjectStore>,
    index_dir: String,
    config: RottnestConfig,
    /// Metadata record set memoized per log version. Revalidation is one
    /// LIST (`latest_version`); any index/compact/vacuum commit — from any
    /// process — bumps the version, so a version match proves the cached
    /// plan is current.
    plan_cache: std::sync::Mutex<Option<(u64, std::sync::Arc<Vec<IndexEntry>>)>>,
    /// EWMA of per-entry index-probe duration (store-clock ms), fed by
    /// unhedged probes and read by the hedge trigger: a probe hedges when
    /// the remaining deadline budget is smaller than a few typical probe
    /// durations. 0 until the first observation.
    probe_ewma_ms: AtomicU64,
}

impl<'a> Rottnest<'a> {
    /// Creates a client for the index at `index_dir`.
    pub fn new(
        store: &'a dyn ObjectStore,
        index_dir: impl Into<String>,
        config: RottnestConfig,
    ) -> Self {
        let retry = RetryStore::new(store, config.retry.clone());
        Self {
            retry,
            index_dir: index_dir.into(),
            config,
            plan_cache: std::sync::Mutex::new(None),
            probe_ewma_ms: AtomicU64::new(0),
        }
    }

    /// The store every client request goes through: the caller's store
    /// behind the configured transient-fault retry decorator.
    pub fn store(&self) -> &dyn ObjectStore {
        &self.retry
    }

    /// The metadata table handle.
    pub fn meta(&self) -> MetaTable<'_> {
        MetaTable::new(self.store(), &self.index_dir)
    }

    /// The store-health tracker behind this client's retry layer: per-
    /// failure-domain circuit breakers plus the process-wide retry budget.
    /// The serving layer reads it to detect brownout; tests read it to
    /// assert breaker state.
    pub fn health(&self) -> &std::sync::Arc<HealthTracker> {
        self.retry.health()
    }

    /// Whether searches against this index would currently run in
    /// brownout mode: the circuit breaker for the index directory's
    /// failure domain is open, so index probes are skipped in favor of
    /// brute-force scans. Non-mutating — reading the state never
    /// consumes a half-open probe slot.
    pub fn in_brownout(&self) -> bool {
        let domain = HealthTracker::domain_of(&self.index_dir);
        self.health().state(domain, self.store().now_ms()) == BreakerState::Open
    }

    /// The configuration in effect.
    pub fn config(&self) -> &RottnestConfig {
        &self.config
    }

    /// Total bytes of committed index files (the `cpm_r − cpm_bf` storage
    /// term of the TCO model).
    pub fn index_bytes(&self) -> Result<u64> {
        Ok(self.meta().scan()?.iter().map(|e| e.size).sum())
    }

    fn fresh_index_key(&self, ext: &str) -> String {
        let seq = INDEX_SEQ.fetch_add(1, Ordering::Relaxed);
        format!(
            "{}/files/{:012}-{seq:06}.{ext}",
            self.index_dir,
            self.store().now_ms()
        )
    }

    fn ext_of(kind: &IndexKind) -> &'static str {
        match kind {
            IndexKind::Uuid { .. } => "trie",
            IndexKind::Substring => "fm",
            IndexKind::Vector { .. } => "ivf",
            IndexKind::Bloom { .. } => "bloom",
        }
    }

    /// Whether an index of `entry_kind` can serve a query planned for
    /// `query_kind` (UUID-equality queries are served by tries *and* bloom
    /// filters over the same key length).
    fn serves(entry_kind: &IndexKind, query_kind: &IndexKind) -> bool {
        match (entry_kind, query_kind) {
            (IndexKind::Uuid { key_len: a }, IndexKind::Uuid { key_len: b })
            | (IndexKind::Bloom { key_len: a }, IndexKind::Uuid { key_len: b })
            | (IndexKind::Bloom { key_len: a }, IndexKind::Bloom { key_len: b })
            | (IndexKind::Uuid { key_len: a }, IndexKind::Bloom { key_len: b }) => a == b,
            _ => entry_kind.compatible(query_kind),
        }
    }

    /// §IV-A: indexes every Parquet file in the latest snapshot not yet
    /// covered by the metadata table. Returns the new entry, or `None` when
    /// nothing needed indexing (or a vector build had too few rows).
    pub fn index(
        &self,
        table: &Table<'_>,
        kind: IndexKind,
        column: &str,
    ) -> Result<Option<IndexEntry>> {
        let start_ms = self.store().now_ms();
        // 1. Plan.
        let snapshot = table.snapshot()?;
        let meta = self.meta();
        let indexed: FxHashSet<String> = meta
            .scan()?
            .iter()
            .filter(|e| e.kind.compatible(&kind) && e.column == column)
            .flat_map(|e| e.covered_paths().map(str::to_string))
            .collect();
        let new_files: Vec<FileEntry> = snapshot
            .files()
            .filter(|f| !indexed.contains(&f.path))
            .cloned()
            .collect();
        if new_files.is_empty() {
            return Ok(None);
        }
        let total_rows: u64 = new_files.iter().map(|f| f.rows).sum();
        if matches!(kind, IndexKind::Vector { .. }) && total_rows < self.config.min_vector_rows {
            // Abort in favor of brute-force scanning (§IV-A footnote 2).
            return Ok(None);
        }

        // 2. Index (aborts if an input file vanished mid-build, or if the
        // timeout budget runs out between files).
        let (bytes, coverage, rows) = build_index_file(
            self.store(),
            &self.config,
            &kind,
            column,
            &new_files,
            &|| self.check_timeout(start_ms),
        )?;
        self.check_timeout(start_ms)?;

        // Upload.
        let path = self.fresh_index_key(Self::ext_of(&kind));
        let size = bytes.len() as u64;
        self.store().put(&path, bytes)?;
        self.check_timeout(start_ms)?;

        // 3. Commit.
        let created_ms = self.store().now_ms();
        let column = column.to_string();
        let mut committed = None;
        meta.commit_with(self.config.meta_retries, |version| {
            let entry = IndexEntry {
                id: MetaTable::id_for(version, 0),
                kind,
                column: column.clone(),
                path: path.clone(),
                size,
                rows,
                created_ms,
                files: coverage.clone(),
            };
            committed = Some(entry.clone());
            vec![MetaOp::Add(Box::new(entry))]
        })?;
        Ok(committed)
    }

    fn check_timeout(&self, start_ms: u64) -> Result<()> {
        let elapsed = self.store().now_ms().saturating_sub(start_ms);
        if elapsed > self.config.index_timeout_ms {
            return Err(RottnestError::Aborted(format!(
                "index operation exceeded timeout ({elapsed}ms > {}ms)",
                self.config.index_timeout_ms
            )));
        }
        Ok(())
    }

    /// Cooperative deadline poll for searches: compares the store clock
    /// against the query's absolute deadline. Polled between index probes
    /// and between brute-scanned files, so an over-budget search aborts at
    /// the next unit boundary — never mid-read, which is what keeps the
    /// process-wide caches unpoisoned (only fully verified payloads are
    /// ever inserted). `None` means no deadline and always passes.
    fn check_deadline(&self, deadline_ms: Option<u64>) -> Result<()> {
        let Some(deadline_ms) = deadline_ms else {
            return Ok(());
        };
        let now_ms = self.store().now_ms();
        if now_ms > deadline_ms {
            return Err(RottnestError::DeadlineExceeded {
                deadline_ms,
                now_ms,
            });
        }
        Ok(())
    }

    /// Folds one observed probe duration into the EWMA (weight 1/4 for
    /// the new sample). Only unhedged probes feed it: a hedged probe's
    /// duration reflects two racing lanes, not typical cost.
    fn observe_probe_ms(&self, elapsed_ms: u64) {
        // Lock-free read-modify-write; a lost race just drops one sample,
        // which an EWMA tolerates by construction.
        let old = self.probe_ewma_ms.load(Ordering::Relaxed);
        let next = if old == 0 {
            elapsed_ms
        } else {
            (old * 3 + elapsed_ms) / 4
        };
        self.probe_ewma_ms.store(next, Ordering::Relaxed);
    }

    /// Whether a probe starting now should hedge: hedging is on, a
    /// deadline exists, and the remaining budget is below
    /// `ewma * hedge_threshold_pct / 100`.
    fn should_hedge(&self, deadline_ms: Option<u64>) -> bool {
        if !self.config.search.hedge {
            return false;
        }
        let Some(deadline_ms) = deadline_ms else {
            return false;
        };
        let remaining = deadline_ms.saturating_sub(self.store().now_ms());
        let ewma = self.probe_ewma_ms.load(Ordering::Relaxed).max(1);
        let pct = u64::from(self.config.search.hedge_threshold_pct);
        remaining < ewma.saturating_mul(pct) / 100
    }

    /// Runs `probe` once — or, under deadline pressure with hedging
    /// enabled, twice concurrently on independent cancellation lanes,
    /// returning whichever lane finishes first and cancelling the loser
    /// at its next store request.
    ///
    /// Both lanes evaluate the identical pure function over the same
    /// shared caches and single-flight tables (the [`CancelStore`]
    /// wrapper preserves `store_id`), so the *value* returned is the same
    /// whichever lane wins — hedging changes latency and the hedge
    /// counters, never matches. A lane that lost and was cancelled
    /// surfaces a typed [`rottnest_object_store::CANCELLED`] error, which
    /// is discarded in favor of the winner's result.
    fn hedged_probe<R: Send>(
        &self,
        deadline_ms: Option<u64>,
        probe: &(dyn Fn(&dyn ObjectStore) -> Result<R> + Sync),
    ) -> (Result<R>, HedgeOutcome) {
        if !self.should_hedge(deadline_ms) {
            // Simulated elapsed time for the EWMA: inside a captured
            // fan-out item the clock defers to the item's lane, so the
            // true duration is the clock delta plus the lane delta.
            let started_ms = self.store().now_ms();
            let started_lane = captured_lane_micros().unwrap_or(0);
            let out = probe(self.store());
            if out.is_ok() {
                let lane_ms = captured_lane_micros()
                    .unwrap_or(0)
                    .saturating_sub(started_lane)
                    / 1000;
                let clock_ms = self.store().now_ms().saturating_sub(started_ms);
                self.observe_probe_ms(clock_ms + lane_ms);
            }
            return (out, HedgeOutcome::default());
        }

        let first = AtomicU64::new(u64::MAX);
        let cancels = [
            std::sync::atomic::AtomicBool::new(false),
            std::sync::atomic::AtomicBool::new(false),
        ];
        let run_lane = |lane: usize| -> Result<R> {
            // The backup lane may run on a pool worker: re-install the
            // caller's deadline for the retry layer on that thread.
            let _deadline = push_deadline(deadline_ms);
            let lane_store = CancelStore::new(self.store(), &cancels[lane]);
            let out = probe(&lane_store);
            if first
                .compare_exchange(u64::MAX, lane as u64, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                cancels[1 - lane].store(true, Ordering::Release);
            }
            out
        };
        // The backup lane is a single stealable unit offered to the shared
        // pool — no thread is spawned for it. If no worker claims it by the
        // time the primary finishes, `join` revokes it (the backup never
        // ran: a busy pool degrades hedging to the unhedged path, it never
        // queues latent work behind the query). If a worker did claim it,
        // `join` waits for it — the losing lane dies at its next store
        // request via the cancellation token, exactly as before.
        let offer = WorkerPool::global().offer(|| run_lane(1));
        let primary = run_lane(0);
        let backup = offer.join();

        let backup_won = match (&primary, &backup) {
            (Ok(_), Some(Ok(_))) => first.load(Ordering::Acquire) == 1,
            (Err(_), Some(Ok(_))) => true,
            _ => false,
        };
        let (winner, loser) = match backup {
            Some(backup) if backup_won => (backup, Some(primary)),
            Some(backup) => (primary, Some(backup)),
            None => (primary, None),
        };
        let loser_cancelled = matches!(&loser, Some(Err(e)) if error_is_cancelled(e));
        (
            winner,
            HedgeOutcome {
                hedged: true,
                backup_won,
                loser_cancelled,
            },
        )
    }

    /// The full metadata record set, memoized per log version. A hit costs
    /// one LIST instead of replaying the log (checkpoint/record GETs);
    /// since every metadata mutation commits a new version, an unchanged
    /// version guarantees an unchanged record set across processes.
    fn cached_meta_scan(&self) -> Result<std::sync::Arc<Vec<IndexEntry>>> {
        let meta = self.meta();
        let Some(version) = meta.latest_version()? else {
            // Empty log: nothing to key a cache entry on (and nothing to
            // cache — the scan would be free anyway).
            return Ok(std::sync::Arc::new(Vec::new()));
        };
        if let Some((cached_version, entries)) = &*self.plan_cache.lock().expect("plan cache lock")
        {
            if *cached_version == version {
                return Ok(entries.clone());
            }
        }
        let fresh = std::sync::Arc::new(meta.scan_at(version)?);
        *self.plan_cache.lock().expect("plan cache lock") = Some((version, fresh.clone()));
        Ok(fresh)
    }

    /// Greedy cover (§IV-B plan): entries of the right kind/column, picked
    /// while they add coverage of active files. Returns (selected entries,
    /// uncovered active files).
    fn plan_search(
        &self,
        snapshot: &Snapshot,
        kind: &IndexKind,
        column: &str,
    ) -> Result<(Vec<IndexEntry>, Vec<FileEntry>)> {
        let mut entries: Vec<IndexEntry> = self
            .cached_meta_scan()?
            .iter()
            .filter(|e| Self::serves(&e.kind, kind) && e.column == column)
            .cloned()
            .collect();
        let active: FxHashSet<&str> = snapshot.files().map(|f| f.path.as_str()).collect();
        entries.sort_by_key(|e| {
            std::cmp::Reverse(e.covered_paths().filter(|p| active.contains(p)).count())
        });

        let mut covered: FxHashSet<String> = FxHashSet::default();
        let mut selected = Vec::new();
        for e in entries {
            let adds = e
                .covered_paths()
                .any(|p| active.contains(p) && !covered.contains(p));
            if adds {
                covered.extend(
                    e.covered_paths()
                        .filter(|p| active.contains(p))
                        .map(str::to_string),
                );
                selected.push(e);
            }
        }
        let uncovered: Vec<FileEntry> = snapshot
            .files()
            .filter(|f| !covered.contains(&f.path))
            .cloned()
            .collect();
        Ok((selected, uncovered))
    }

    /// §IV-B: searches a snapshot of the lake table.
    ///
    /// With [`SearchConfig::timeout_ms`] set, the search runs against an
    /// absolute deadline of "now + budget" on the store clock; see
    /// [`Rottnest::search_with_deadline`] for the abort semantics.
    pub fn search(
        &self,
        table: &Table<'_>,
        snapshot: &Snapshot,
        column: &str,
        query: &Query<'_>,
    ) -> Result<SearchOutcome> {
        let deadline_ms = self
            .config
            .search
            .timeout_ms
            .map(|budget| self.store().now_ms().saturating_add(budget));
        self.search_with_deadline(table, snapshot, column, query, deadline_ms)
    }

    /// [`Rottnest::search`] against an absolute deadline on the store
    /// clock (the serving layer's entry point — it propagates the client
    /// deadline rather than a fresh per-call budget).
    ///
    /// The deadline is polled cooperatively between index probes and
    /// between brute-scanned files. Expiry aborts the whole search with
    /// [`RottnestError::DeadlineExceeded`] — never partial results — and
    /// an already-expired deadline fails before any store traffic. An
    /// aborted search leaves every process-wide cache (component, page,
    /// negative-scan) exactly as correct as before: caches only ever
    /// admit fully read and verified payloads, so there is nothing a
    /// mid-flight abort could poison.
    pub fn search_with_deadline(
        &self,
        table: &Table<'_>,
        snapshot: &Snapshot,
        column: &str,
        query: &Query<'_>,
        deadline_ms: Option<u64>,
    ) -> Result<SearchOutcome> {
        // The retry layer consults the caller's absolute deadline before
        // every backoff sleep (a wait that cannot fit fails typed instead
        // of burning the budget asleep). The guard propagates it to every
        // sequential store call in this search; fan-out closures re-install
        // it on their worker threads.
        let _deadline = push_deadline(deadline_ms);
        self.search_inner(table, snapshot, column, query, deadline_ms)
            .map_err(map_health_error)
    }

    fn search_inner(
        &self,
        table: &Table<'_>,
        snapshot: &Snapshot,
        column: &str,
        query: &Query<'_>,
        deadline_ms: Option<u64>,
    ) -> Result<SearchOutcome> {
        self.check_deadline(deadline_ms)?;
        let kind = match query {
            Query::UuidEq { key, .. } => IndexKind::Uuid {
                key_len: key.len() as u8,
            },
            Query::Substring { .. } => IndexKind::Substring,
            Query::VectorNn { query, .. } => IndexKind::Vector {
                dim: query.len() as u32,
            },
        };
        // Component- and page-cache accounting is kept on the store; the
        // delta over this search becomes the outcome's cache_* stats.
        let store_before = self.store().stats();
        // One page-cache session per query: probe reads across all workers
        // share its validator memo, so revalidation costs one HEAD per
        // data file per query. `None` disables the cache entirely.
        let session = self.config.search.page_cache.then(PageCacheSession::new);
        let session = session.as_ref();
        // Exact probes get a negative-scan-cache fingerprint; scoring
        // queries must rank every row, so they never consult it.
        let probe = match query {
            Query::UuidEq { key, .. } => Some(NegScanCache::probe_fingerprint(0, column, key)),
            Query::Substring { pattern, .. } => {
                Some(NegScanCache::probe_fingerprint(1, column, pattern))
            }
            Query::VectorNn { .. } => None,
        };
        // Brownout (tentpole of the store-health layer): when the circuit
        // breaker for the index domain is open, planning and probing the
        // index would only be rejected at admission — skip both and treat
        // every snapshot file as uncovered. Exact queries brute-scan (with
        // negative-scan-cache help); vector queries already rank every
        // file. Results are identical to the indexed path, only costlier.
        // Half-open is NOT brownout: probes flow through store-level
        // admission, which bounds them, and a rejected probe degrades per
        // entry below.
        let mut brownout = self.in_brownout();
        let (selected, mut uncovered) = if brownout {
            (Vec::new(), snapshot.files().cloned().collect())
        } else {
            match self.plan_search(snapshot, &kind, column) {
                Ok(plan) => plan,
                // The index *metadata* itself is unreachable (mid-outage,
                // before the breaker trips, or a rejected half-open
                // probe): degrade the whole query to a brute scan rather
                // than failing it — same results, costlier path — and let
                // the recorded failures trip the breaker for successors.
                Err(e) if is_degradable(&e) => {
                    brownout = true;
                    (Vec::new(), snapshot.files().cloned().collect())
                }
                Err(e) => return Err(e),
            }
        };
        let mut stats = SearchStats {
            index_files_queried: selected.len() as u64,
            brownout_queries: u64::from(brownout),
            ..SearchStats::default()
        };

        let mut outcome = match query {
            Query::UuidEq { key, k } => {
                let predicate = |v: ValueRef<'_>| match v {
                    ValueRef::Binary(b) => b == *key,
                    ValueRef::Utf8(s) => s.as_bytes() == *key,
                    _ => false,
                };
                let (mut matches, failed) = self.exact_index_pass(
                    table,
                    snapshot,
                    &selected,
                    &mut stats,
                    *k,
                    DataType::Binary,
                    &predicate,
                    session,
                    deadline_ms,
                    |store, entry| match entry.kind {
                        IndexKind::Bloom { .. } => {
                            let idx = BloomIndex::open(store, &entry.path)?;
                            Ok(idx.lookup(key)?)
                        }
                        _ => {
                            let idx = TrieIndex::open(store, &entry.path)?;
                            Ok(idx.lookup(key)?)
                        }
                    },
                )?;
                self.extend_uncovered_for_failures(
                    snapshot,
                    &selected,
                    &failed,
                    &mut uncovered,
                    &mut stats,
                );
                if matches.len() < *k {
                    let need = *k - matches.len();
                    matches.extend(self.brute_exact(
                        table,
                        snapshot,
                        &uncovered,
                        column,
                        need,
                        &predicate,
                        &mut stats,
                        deadline_ms,
                        probe,
                    )?);
                }
                matches.truncate(*k);
                Ok(SearchOutcome { matches, stats })
            }
            Query::Substring { pattern, k } => {
                let predicate = |v: ValueRef<'_>| match v {
                    ValueRef::Utf8(s) => contains_sub(s.as_bytes(), pattern),
                    ValueRef::Binary(b) => contains_sub(b, pattern),
                    _ => false,
                };
                let (mut matches, failed) = self.exact_index_pass(
                    table,
                    snapshot,
                    &selected,
                    &mut stats,
                    *k,
                    DataType::Utf8,
                    &predicate,
                    session,
                    deadline_ms,
                    |store, entry| {
                        let idx = FmIndex::open(store, &entry.path)?;
                        // Stage the locate: a small multiple of k first; if
                        // the limit was hit there are unresolved occurrences
                        // and the full locate runs. (Resolving fewer than the
                        // limit proves completeness — no extra count() pass.)
                        let limit = k.saturating_mul(8).max(64);
                        let mut hits = idx.locate_pages(pattern, limit)?;
                        let resolved: usize = hits.iter().map(|&(_, n)| n as usize).sum();
                        if resolved >= limit {
                            hits = idx.locate_pages(pattern, usize::MAX)?;
                        }
                        Ok(hits.into_iter().map(|(p, _)| p).collect())
                    },
                )?;
                self.extend_uncovered_for_failures(
                    snapshot,
                    &selected,
                    &failed,
                    &mut uncovered,
                    &mut stats,
                );
                if matches.len() < *k {
                    let need = *k - matches.len();
                    matches.extend(self.brute_exact(
                        table,
                        snapshot,
                        &uncovered,
                        column,
                        need,
                        &predicate,
                        &mut stats,
                        deadline_ms,
                        probe,
                    )?);
                }
                matches.truncate(*k);
                Ok(SearchOutcome { matches, stats })
            }
            Query::VectorNn {
                query: qvec,
                params,
            } => self.vector_search(
                table,
                snapshot,
                column,
                qvec,
                *params,
                &selected,
                uncovered,
                session,
                stats,
                deadline_ms,
            ),
        }?;
        let delta = self.store().stats().since(&store_before);
        outcome.stats.cache_hits = delta.cache_hits;
        outcome.stats.cache_misses = delta.cache_misses;
        outcome.stats.cache_bytes_saved = delta.cache_bytes_saved;
        outcome.stats.page_cache_hits = delta.page_cache_hits;
        outcome.stats.page_cache_misses = delta.page_cache_misses;
        outcome.stats.page_cache_bytes_saved = delta.page_cache_bytes_saved;
        outcome.stats.page_cache_bypassed = delta.page_cache_bypassed;
        outcome.stats.dedup_hits = delta.dedup_hits;
        outcome.stats.breaker_rejections = delta.breaker_rejections;
        outcome.stats.retry_tokens_denied = delta.retry_tokens_denied;
        Ok(outcome)
    }

    /// Runs the index-query + in-situ-probe pipeline for exact queries.
    /// Returns the matches plus the indices (into `selected`) of entries
    /// whose index files could not be read even after retries — the caller
    /// degrades their coverage to the brute-force path.
    ///
    /// Index entries are queried by the parallel executor; the merge below
    /// walks outcomes in entry order, so stats, page dedup, degradation,
    /// and the first hard error all reproduce the sequential pass exactly.
    /// (Sequential execution stops querying after a hard error; running
    /// the remaining entries' queries is the only extra work parallelism
    /// adds on that path, and their outcomes are discarded.)
    #[allow(clippy::too_many_arguments)]
    fn exact_index_pass(
        &self,
        table: &Table<'_>,
        snapshot: &Snapshot,
        selected: &[IndexEntry],
        stats: &mut SearchStats,
        k: usize,
        data_type: DataType,
        predicate: &(dyn Fn(ValueRef<'_>) -> bool + Sync),
        session: Option<&PageCacheSession>,
        deadline_ms: Option<u64>,
        query_index: impl Fn(&dyn ObjectStore, &IndexEntry) -> Result<Vec<rottnest_component::Posting>>
            + Sync,
    ) -> Result<(Vec<Match>, Vec<usize>)> {
        // 2. Query indexes (fanned out), filtering postings outside the
        // snapshot (merged in entry order). Each probe polls the deadline
        // first, so an over-budget fan-out aborts per entry instead of
        // finishing every index query it already queued. Under deadline
        // pressure with hedging on, individual probes race two lanes (see
        // `hedged_probe`); the winning value is identical either way.
        // The I/O-aware map charges the probes' simulated latency as the
        // overlapped critical path of `parallelism` connection lanes.
        let outcomes = parallel_map_io(
            self.config.search.parallelism,
            self.store().clock(),
            selected,
            |_, entry| {
                let _deadline = push_deadline(deadline_ms);
                if let Err(e) = self.check_deadline(deadline_ms) {
                    return (Err(e), HedgeOutcome::default());
                }
                self.hedged_probe(deadline_ms, &|store| query_index(store, entry))
            },
        );
        let mut pages: Vec<PageRef<'_>> = Vec::new();
        let mut failed: Vec<usize> = Vec::new();
        // Keyed by (path, page): concurrently-built indexes may cover the
        // same file (§IV-A allows the wasteful overlap), and the same page
        // must be probed only once or matches would duplicate.
        let mut seen: FxHashSet<(&str, u32)> = FxHashSet::default();
        for (entry_idx, (entry, (outcome, hedge))) in selected.iter().zip(outcomes).enumerate() {
            hedge.account(stats);
            let postings = match outcome {
                Ok(postings) => postings,
                Err(e) if is_degradable(&e) => {
                    stats.index_files_failed += 1;
                    failed.push(entry_idx);
                    continue;
                }
                Err(e) => return Err(e),
            };
            stats.postings_returned += postings.len() as u64;
            for p in postings {
                let Some(cov) = entry.files.get(p.file as usize) else {
                    return Err(RottnestError::Corrupt(format!(
                        "posting references file {} beyond coverage of {}",
                        p.file, entry.path
                    )));
                };
                if !snapshot.contains(&cov.path) {
                    stats.postings_filtered += 1;
                    continue;
                }
                let key = (cov.path.as_str(), p.page);
                if seen.insert(key) {
                    pages.push(PageRef {
                        path: &cov.path,
                        table: &cov.page_table,
                        page_id: p.page,
                    });
                }
            }
        }
        // 3. In-situ probe.
        self.check_deadline(deadline_ms)?;
        let matches = probe_exact(
            table, snapshot, &pages, data_type, predicate, k, session, stats,
        )?;
        Ok((matches, failed))
    }

    /// Graceful degradation (tentpole of the resilience layer): files whose
    /// only selected index entries failed fall back to the brute-force scan
    /// list. Results stay correct — the query just pays scan cost for the
    /// affected files — and the reassignment is visible in `stats`.
    fn extend_uncovered_for_failures(
        &self,
        snapshot: &Snapshot,
        selected: &[IndexEntry],
        failed: &[usize],
        uncovered: &mut Vec<FileEntry>,
        stats: &mut SearchStats,
    ) {
        if failed.is_empty() {
            return;
        }
        let failed_set: FxHashSet<usize> = failed.iter().copied().collect();
        let ok_covered: FxHashSet<&str> = selected
            .iter()
            .enumerate()
            .filter(|(i, _)| !failed_set.contains(i))
            .flat_map(|(_, e)| e.covered_paths())
            .collect();
        let listed: FxHashSet<String> = uncovered.iter().map(|f| f.path.clone()).collect();
        for file in snapshot.files() {
            if ok_covered.contains(file.path.as_str()) || listed.contains(&file.path) {
                continue;
            }
            stats.files_degraded += 1;
            uncovered.push(file.clone());
        }
    }

    /// Brute-force scan of uncovered files for exact queries — "the
    /// unindexed Parquet files are only scanned if the filtered results are
    /// not sufficient" (§IV-B step 3).
    ///
    /// With `parallelism <= 1` this is a literal sequential scan with
    /// global early exit: a file is not even opened once `need` matches
    /// exist, which is the cheapest possible request count. In parallel
    /// every uncovered file is scanned speculatively (each worker stops
    /// after `need` live rows, an upper bound on what any file can
    /// contribute) and a sequential replay over the per-file row events
    /// reapplies the exact global cutoff — matches, `files_brute_scanned`,
    /// `rows_deleted`, and error order come out identical to the
    /// sequential scan; the speculative extra GETs are the price of the
    /// wall-clock win.
    ///
    /// The negative-scan cache rides on top without disturbing that
    /// equivalence: the skip set is computed upfront from pure cache
    /// consults (no store traffic, so both executors see identical
    /// decisions), skips are counted only inside the sequential cutoff,
    /// and "proved empty" is recorded only for files the cutoff actually
    /// consumed whose full scan produced zero predicate hits. Predicate
    /// hits depend only on the file's immutable bytes — deletion-vector
    /// churn can never stale an entry — and the file's snapshot size acts
    /// as the validator against rewrites.
    #[allow(clippy::too_many_arguments)]
    fn brute_exact(
        &self,
        table: &Table<'_>,
        snapshot: &Snapshot,
        uncovered: &[FileEntry],
        column: &str,
        need: usize,
        predicate: &(dyn Fn(ValueRef<'_>) -> bool + Sync),
        stats: &mut SearchStats,
        deadline_ms: Option<u64>,
        probe: Option<u64>,
    ) -> Result<Vec<Match>> {
        let mut matches = Vec::new();
        let dvs = load_dvs(table, snapshot, uncovered.iter().map(|f| f.path.as_str()))?;
        let parallelism = self.config.search.parallelism;
        let neg = match (self.config.search.neg_cache, self.store().store_id(), probe) {
            (true, ns, Some(p)) if ns != 0 => Some((NegScanCache::global(), ns, p)),
            _ => None,
        };
        let skip: Vec<bool> = uncovered
            .iter()
            .map(|f| neg.is_some_and(|(c, ns, p)| c.known_empty(ns, &f.path, f.size, p)))
            .collect();
        if parallelism <= 1 || uncovered.len() <= 1 {
            for (file, &skipped) in uncovered.iter().zip(&skip) {
                if matches.len() >= need {
                    break;
                }
                self.check_deadline(deadline_ms)?;
                if skipped {
                    stats.neg_cache_skips += 1;
                    continue;
                }
                stats.files_brute_scanned += 1;
                // Under deadline pressure the file scan races two lanes,
                // like an index probe. Both lanes scan the same immutable
                // bytes, so the event list is identical whichever wins.
                let limit = need - matches.len();
                let dv = dvs.get(&file.path);
                let (scan, hedge) = self.hedged_probe(deadline_ms, &|store| {
                    self.scan_file_events(store, file, column, limit, predicate, dv)
                });
                hedge.account(stats);
                if hedge.hedged {
                    stats.hedged_scans += 1;
                }
                let (events, pages) = scan?;
                self.store().record_page_cache_bypass(pages);
                // Zero hits ⟹ the row loop never broke early ⟹ the whole
                // column was scanned: safe to record as proven empty.
                if let Some((cache, ns, p)) = neg {
                    if events.is_empty() {
                        cache.record_empty(ns, &file.path, file.size, p);
                    }
                }
                for (row, deleted) in events {
                    if matches.len() >= need {
                        break;
                    }
                    if deleted {
                        stats.rows_deleted += 1;
                        continue;
                    }
                    matches.push(Match {
                        path: file.path.clone(),
                        row,
                        score: None,
                    });
                }
            }
            return Ok(matches);
        }

        // Each worker emits the file's predicate hits in row order as
        // (row, deleted) events plus the file's page count, stopping after
        // `need` live rows (an upper bound on the file's contribution).
        // Known-empty files are not even opened. Individual file scans
        // hedge under the same trigger as index probes.
        let scans = parallel_map_io(parallelism, self.store().clock(), uncovered, |i, file| {
            if skip[i] {
                return (Ok((Vec::new(), 0)), HedgeOutcome::default());
            }
            let _deadline = push_deadline(deadline_ms);
            if let Err(e) = self.check_deadline(deadline_ms) {
                return (Err(e), HedgeOutcome::default());
            }
            let dv = dvs.get(&file.path);
            self.hedged_probe(deadline_ms, &|store| {
                self.scan_file_events(store, file, column, need, predicate, dv)
            })
        });

        // Replay in file order under the sequential cutoff. Bypass, skip,
        // proven-empty, and hedge accounting all happen here — not on the
        // workers — so they cover exactly the files the sequential scan
        // would have touched, at any parallelism.
        for ((file, (scan, hedge)), &skipped) in uncovered.iter().zip(scans).zip(&skip) {
            if matches.len() >= need {
                break;
            }
            if skipped {
                stats.neg_cache_skips += 1;
                continue;
            }
            stats.files_brute_scanned += 1;
            hedge.account(stats);
            if hedge.hedged {
                stats.hedged_scans += 1;
            }
            let (events, pages) = scan?;
            self.store().record_page_cache_bypass(pages);
            if let Some((cache, ns, p)) = neg {
                // Workers stop early only after a predicate hit, so an
                // empty event list proves a full scan with zero hits.
                if events.is_empty() {
                    cache.record_empty(ns, &file.path, file.size, p);
                }
            }
            for (row, deleted) in events {
                if matches.len() >= need {
                    break;
                }
                if deleted {
                    stats.rows_deleted += 1;
                    continue;
                }
                matches.push(Match {
                    path: file.path.clone(),
                    row,
                    score: None,
                });
            }
        }
        Ok(matches)
    }

    /// Scans one uncovered file's column for predicate hits, emitting
    /// `(row, deleted)` events in row order and stopping after `limit`
    /// live rows; also returns the column's page count for bypass
    /// accounting. This is the brute-force unit of work: both the
    /// sequential cutoff loop and the parallel fan-out (and each lane of a
    /// hedged scan) run exactly this function, so its event list depends
    /// only on the file's immutable bytes — never on the executor.
    fn scan_file_events(
        &self,
        store: &dyn ObjectStore,
        file: &FileEntry,
        column: &str,
        limit: usize,
        predicate: &(dyn Fn(ValueRef<'_>) -> bool + Sync),
        dv: Option<&rottnest_lake::DeletionVector>,
    ) -> Result<(Vec<(u64, bool)>, u64)> {
        let reader = ChunkReader::open(store, &file.path)?;
        let col = reader
            .meta()
            .schema
            .index_of(column)
            .ok_or_else(|| RottnestError::BadQuery(format!("no column {column}")))?;
        let data = reader.read_column(col)?;
        let pages = column_page_count(reader.meta(), col);
        let mut events = Vec::new();
        let mut live = 0usize;
        for i in 0..data.len() {
            if live >= limit {
                break;
            }
            if !predicate(data.get(i).expect("in range")) {
                continue;
            }
            let row = i as u64;
            let deleted = dv.is_some_and(|dv| dv.contains(row));
            if !deleted {
                live += 1;
            }
            events.push((row, deleted));
        }
        Ok((events, pages))
    }

    /// Vector search: probed + refined index candidates merged with a
    /// brute-force pass over uncovered files (scoring queries must rank all
    /// data, §IV-B footnote 3).
    #[allow(clippy::too_many_arguments)]
    fn vector_search(
        &self,
        table: &Table<'_>,
        snapshot: &Snapshot,
        column: &str,
        qvec: &[f32],
        params: SearchParams,
        selected: &[IndexEntry],
        mut uncovered: Vec<FileEntry>,
        session: Option<&PageCacheSession>,
        mut stats: SearchStats,
        deadline_ms: Option<u64>,
    ) -> Result<SearchOutcome> {
        let dim = qvec.len() as u32;
        let mut results: Vec<Match> = Vec::new();
        let mut failed: Vec<usize> = Vec::new();
        let parallelism = self.config.search.parallelism;

        // Index entries probe in parallel into per-entry results + stats;
        // the merge absorbs them in entry order. A degradable failure
        // simply discards the entry's contribution (the sequential
        // executor's rollback, for free) and routes its files to the
        // brute-force pass below. Deadline expiry is NOT degradable: the
        // poll before each entry aborts the whole search.
        let passes = parallel_map_io(parallelism, self.store().clock(), selected, |_, entry| {
            let _deadline = push_deadline(deadline_ms);
            if let Err(e) = self.check_deadline(deadline_ms) {
                return (Err(e), HedgeOutcome::default());
            }
            self.hedged_probe(deadline_ms, &|store| {
                self.vector_entry_pass(store, table, snapshot, entry, qvec, params, dim, session)
            })
        });
        for (entry_idx, (pass, hedge)) in passes.into_iter().enumerate() {
            hedge.account(&mut stats);
            match pass {
                Ok((matches, entry_stats)) => {
                    results.extend(matches);
                    stats.absorb(&entry_stats);
                }
                Err(e) if is_degradable(&e) => {
                    stats.index_files_failed += 1;
                    failed.push(entry_idx);
                }
                Err(e) => return Err(e),
            }
        }
        self.extend_uncovered_for_failures(snapshot, selected, &failed, &mut uncovered, &mut stats);
        let uncovered = &uncovered;

        // Brute-force scan of uncovered files (always, for scoring
        // queries) — no early exit, so the parallel fan-out does no
        // speculative work; the merge just sums in file order.
        let dvs = load_dvs(table, snapshot, uncovered.iter().map(|f| f.path.as_str()))?;
        let scans = parallel_map_io(
            parallelism,
            self.store().clock(),
            uncovered,
            |_, file| -> Result<(Vec<Match>, u64, u64)> {
                let _deadline = push_deadline(deadline_ms);
                self.check_deadline(deadline_ms)?;
                let reader = ChunkReader::open(self.store(), &file.path)?;
                let col = reader
                    .meta()
                    .schema
                    .index_of(column)
                    .ok_or_else(|| RottnestError::BadQuery(format!("no column {column}")))?;
                let field_type = reader.meta().schema.fields()[col].data_type;
                if field_type != (rottnest_format::DataType::VectorF32 { dim }) {
                    return Err(RottnestError::BadQuery(format!(
                        "column {column} is {field_type:?}, not VectorF32 {{ dim: {dim} }}"
                    )));
                }
                let data = reader.read_column(col)?;
                let pages = column_page_count(reader.meta(), col);
                let dv = dvs.get(&file.path);
                let mut found = Vec::new();
                let mut deleted = 0u64;
                for i in 0..data.len() {
                    if let Some(ValueRef::VectorF32(v)) = data.get(i) {
                        let row = i as u64;
                        if let Some(dv) = dv {
                            if dv.contains(row) {
                                deleted += 1;
                                continue;
                            }
                        }
                        found.push(Match {
                            path: file.path.clone(),
                            row,
                            score: Some(rottnest_ivfpq::l2_sq(qvec, v)),
                        });
                    }
                }
                Ok((found, deleted, pages))
            },
        );
        for scan in scans {
            stats.files_brute_scanned += 1;
            let (found, deleted, pages) = scan?;
            self.store().record_page_cache_bypass(pages);
            stats.rows_deleted += deleted;
            results.extend(found);
        }

        // Tie-break equal scores by (path, row) so duplicates from
        // double-covered files are adjacent for dedup.
        results.sort_by(|a, b| {
            a.score
                .unwrap_or(f32::MAX)
                .partial_cmp(&b.score.unwrap_or(f32::MAX))
                .unwrap()
                .then_with(|| a.path.cmp(&b.path))
                .then_with(|| a.row.cmp(&b.row))
        });
        results.dedup_by(|a, b| a.path == b.path && a.row == b.row);
        results.truncate(params.k);
        Ok(SearchOutcome {
            matches: results,
            stats,
        })
    }

    /// One index entry's contribution to a vector search: ADC pass, stale
    /// posting + deletion-vector filtering, optional exact rerank. Returns
    /// the entry's matches and local stats so the executor's workers never
    /// share mutable state; on error the caller discards both (the
    /// sequential rollback semantics).
    #[allow(clippy::too_many_arguments)]
    fn vector_entry_pass(
        &self,
        store: &dyn ObjectStore,
        table: &Table<'_>,
        snapshot: &Snapshot,
        entry: &IndexEntry,
        qvec: &[f32],
        params: SearchParams,
        dim: u32,
        session: Option<&PageCacheSession>,
    ) -> Result<(Vec<Match>, SearchStats)> {
        let mut results: Vec<Match> = Vec::new();
        let mut stats = SearchStats::default();
        let idx = IvfPqIndex::open(store, &entry.path)?;
        // ADC pass without refine so stale postings can be filtered
        // before any page fetch.
        let adc = idx.search(
            qvec,
            SearchParams {
                k: params.refine.max(params.k),
                nprobe: params.nprobe,
                refine: 0,
            },
            &|_| Ok(Vec::new()),
        )?;
        stats.postings_returned += adc.len() as u64;
        let dvs = load_dvs(table, snapshot, entry.files.iter().map(|f| f.path.as_str()))?;
        let live: Vec<(VecPosting, f32)> = adc
            .into_iter()
            .filter(|(p, _)| {
                let Some(cov) = entry.files.get(p.posting.file as usize) else {
                    return false;
                };
                if !snapshot.contains(&cov.path) {
                    stats.postings_filtered += 1;
                    return false;
                }
                // Deletion vectors apply at probe time.
                if let Some(dv) = dvs.get(&cov.path) {
                    let first = cov
                        .page_table
                        .page(p.posting.page as usize)
                        .map_or(0, |l| l.first_row);
                    if dv.contains(first + p.row as u64) {
                        stats.rows_deleted += 1;
                        return false;
                    }
                }
                true
            })
            .collect();

        let resolve_match = |p: &VecPosting, score: f32| {
            let cov = &entry.files[p.posting.file as usize];
            let first = cov
                .page_table
                .page(p.posting.page as usize)
                .map_or(0, |l| l.first_row);
            Match {
                path: cov.path.clone(),
                row: first + p.row as u64,
                score: Some(score),
            }
        };

        if params.refine == 0 {
            results.extend(
                live.iter()
                    .take(params.k)
                    .map(|(p, d)| resolve_match(p, *d)),
            );
            return Ok((results, stats));
        }
        // Exact rerank of the top `refine` live candidates, fetched in
        // situ from the data pages.
        let candidates: Vec<VecPosting> =
            live.iter().take(params.refine).map(|&(p, _)| p).collect();
        let exact = fetch_vectors(
            store,
            dim,
            &candidates,
            &|file_id| {
                entry
                    .files
                    .get(file_id as usize)
                    .map(|c| (c.path.as_str(), &c.page_table))
            },
            session,
            &mut stats.pages_probed,
        )?;
        let mut reranked: Vec<(VecPosting, f32)> = candidates
            .into_iter()
            .zip(exact)
            .map(|(p, v)| (p, rottnest_ivfpq::l2_sq(qvec, &v)))
            .collect();
        reranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        results.extend(
            reranked
                .iter()
                .take(params.k)
                .map(|(p, d)| resolve_match(p, *d)),
        );
        Ok((results, stats))
    }

    /// §IV-C: merges small index files of one kind/column (bin packing),
    /// committing `remove`s and the `add` atomically. Old index files stay
    /// behind for `vacuum`. Returns the merged entries created.
    pub fn compact(&self, kind: IndexKind, column: &str) -> Result<Vec<IndexEntry>> {
        let meta = self.meta();
        // 1. Plan.
        let mut small: Vec<IndexEntry> = meta
            .scan()?
            .into_iter()
            .filter(|e| {
                e.kind.compatible(&kind)
                    && e.column == column
                    && e.size < self.config.compact_below_bytes
            })
            .collect();
        small.sort_by_key(|e| e.size);

        let mut created = Vec::new();
        for bin in small.chunks(self.config.compact_fanin.max(2)) {
            if bin.len() < 2 {
                continue;
            }
            // 2. Merge. Source index files are opened in parallel (their
            // root/component GETs overlap); the kind-specific merge then
            // consumes them strictly in bin order, so the merged bytes are
            // identical to sequential opens.
            let out_key = self.fresh_index_key(Self::ext_of(&kind));
            let offsets: Vec<u32> = bin
                .iter()
                .scan(0u32, |acc, e| {
                    let here = *acc;
                    *acc += e.files.len() as u32;
                    Some(here)
                })
                .collect();
            let size = match kind {
                IndexKind::Uuid { .. } => {
                    let opened: Vec<TrieIndex<'_>> = ordered_parallel_map_io(
                        self.config.build_parallelism,
                        self.store().clock(),
                        bin,
                        |_, e| TrieIndex::open(self.store(), &e.path),
                    )
                    .into_iter()
                    .collect::<std::result::Result<_, _>>()?;
                    let sources: Vec<(&TrieIndex<'_>, u32)> =
                        opened.iter().zip(offsets.iter().copied()).collect();
                    rottnest_trie::index::merge_tries(self.store(), &sources, &out_key)?
                }
                IndexKind::Substring => {
                    let opened: Vec<FmIndex<'_>> = ordered_parallel_map_io(
                        self.config.build_parallelism,
                        self.store().clock(),
                        bin,
                        |_, e| FmIndex::open(self.store(), &e.path),
                    )
                    .into_iter()
                    .collect::<std::result::Result<_, _>>()?;
                    let sources: Vec<(&FmIndex<'_>, u32)> =
                        opened.iter().zip(offsets.iter().copied()).collect();
                    let mut policy = self.config.fm_merge.clone();
                    policy.parallelism = self.config.build_parallelism;
                    rottnest_fm::merge_fm(self.store(), &sources, &out_key, &policy)?
                }
                IndexKind::Vector { .. } => {
                    let opened: Vec<IvfPqIndex<'_>> = ordered_parallel_map_io(
                        self.config.build_parallelism,
                        self.store().clock(),
                        bin,
                        |_, e| IvfPqIndex::open(self.store(), &e.path),
                    )
                    .into_iter()
                    .collect::<std::result::Result<_, _>>()?;
                    let sources: Vec<(&IvfPqIndex<'_>, u32)> =
                        opened.iter().zip(offsets.iter().copied()).collect();
                    rottnest_ivfpq::index::merge_ivf(self.store(), &sources, &out_key)?
                }
                IndexKind::Bloom { .. } => {
                    let opened: Vec<BloomIndex<'_>> = ordered_parallel_map_io(
                        self.config.build_parallelism,
                        self.store().clock(),
                        bin,
                        |_, e| BloomIndex::open(self.store(), &e.path),
                    )
                    .into_iter()
                    .collect::<std::result::Result<_, _>>()?;
                    let sources: Vec<(&BloomIndex<'_>, u32)> =
                        opened.iter().zip(offsets.iter().copied()).collect();
                    rottnest_bloom::merge_blooms(self.store(), &sources, &out_key)?
                }
            };

            // 3. Commit (removes + add, atomically).
            let files: Vec<crate::meta::FileCoverage> =
                bin.iter().flat_map(|e| e.files.iter().cloned()).collect();
            let rows = bin.iter().map(|e| e.rows).sum();
            let created_ms = self.store().now_ms();
            let ids: Vec<u64> = bin.iter().map(|e| e.id).collect();
            let column = column.to_string();
            let mut merged_entry = None;
            meta.commit_with(self.config.meta_retries, |version| {
                let entry = IndexEntry {
                    id: MetaTable::id_for(version, 0),
                    kind,
                    column: column.clone(),
                    path: out_key.clone(),
                    size,
                    rows,
                    created_ms,
                    files: files.clone(),
                };
                merged_entry = Some(entry.clone());
                let mut ops: Vec<MetaOp> = ids.iter().map(|&id| MetaOp::Remove(id)).collect();
                ops.push(MetaOp::Add(Box::new(entry)));
                ops
            })?;
            created.push(merged_entry.expect("commit ran"));
        }
        Ok(created)
    }

    /// Writes a checkpoint of the metadata table's log, so search planning
    /// reads one object instead of the whole commit history. Safe to run
    /// any time, from any process.
    pub fn checkpoint_meta(&self) -> Result<()> {
        let log = rottnest_lake::TxLog::new(self.store(), format!("{}/meta", self.index_dir));
        if let Some(v) = log.latest_version().map_err(RottnestError::Lake)? {
            log.write_checkpoint(v).map_err(RottnestError::Lake)?;
        }
        Ok(())
    }

    /// §IV-C `vacuum`: keeps a greedy cover of the latest snapshot's files
    /// per (kind, column) group, removes the rest from the metadata table,
    /// then physically deletes unreferenced index objects **older than the
    /// index timeout** (so concurrent uncommitted uploads survive).
    pub fn vacuum(&self, table: &Table<'_>) -> Result<VacuumReport> {
        let snapshot = table.snapshot()?;
        let active: FxHashSet<&str> = snapshot.files().map(|f| f.path.as_str()).collect();
        let meta = self.meta();
        let entries = meta.scan()?;

        // 1. Plan: greedy cover per (kind, column).
        let mut groups: FxHashMap<(String, &'static str), Vec<&IndexEntry>> = FxHashMap::default();
        for e in &entries {
            groups
                .entry((e.column.clone(), Self::ext_of(&e.kind)))
                .or_default()
                .push(e);
        }
        let mut keep: FxHashSet<u64> = FxHashSet::default();
        for group in groups.values_mut() {
            group.sort_by_key(|e| {
                std::cmp::Reverse(e.covered_paths().filter(|p| active.contains(p)).count())
            });
            let mut covered: FxHashSet<&str> = FxHashSet::default();
            for e in group.iter() {
                let adds = e
                    .covered_paths()
                    .any(|p| active.contains(p) && !covered.contains(p));
                if adds {
                    covered.extend(e.covered_paths().filter(|p| active.contains(p)));
                    keep.insert(e.id);
                }
            }
        }

        // 2. Commit removals.
        let doomed: Vec<u64> = entries
            .iter()
            .filter(|e| !keep.contains(&e.id))
            .map(|e| e.id)
            .collect();
        let mut report = VacuumReport {
            records_removed: doomed.len() as u64,
            ..Default::default()
        };
        if !doomed.is_empty() {
            meta.commit_with(self.config.meta_retries, |_| {
                doomed.iter().map(|&id| MetaOp::Remove(id)).collect()
            })?;
        }

        // 3. Remove: LIST the index dir, delete unreferenced objects older
        // than the timeout (store clock).
        let referenced: FxHashSet<String> = meta.scan()?.into_iter().map(|e| e.path).collect();
        let now = self.store().now_ms();
        for obj in self.store().list(&format!("{}/files/", self.index_dir))? {
            if referenced.contains(&obj.key) {
                continue;
            }
            if now.saturating_sub(obj.created_ms) < self.config.index_timeout_ms {
                report.objects_spared += 1;
                continue;
            }
            self.store().delete(&obj.key)?;
            // Hint the component cache so the vacuumed index file's open
            // entry and components stop pinning cache budget immediately.
            let ns = self.store().store_id();
            if ns != 0 {
                rottnest_component::ComponentCache::global().invalidate_file(ns, &obj.key);
            }
            report.objects_deleted += 1;
        }
        Ok(report)
    }
}

/// Whether a search-time failure can be absorbed by degrading to the
/// brute-force path: store faults that are still retryable after the
/// retry budget ran out (throttling, transient request failures), plus
/// circuit-breaker rejections (the domain is collapsed; scanning data
/// files instead is exactly what the breaker buys). Deterministic
/// failures — missing objects, corrupt bytes, injected crashes — and
/// deadline expiry must surface to the caller.
fn is_degradable(err: &RottnestError) -> bool {
    err.store_fault()
        .is_some_and(|e| e.is_retryable() || matches!(e.root(), StoreError::BreakerOpen { .. }))
}

/// Surfaces store-health outcomes as typed protocol errors at the search
/// boundary: a retry-layer deadline expiry becomes
/// [`RottnestError::DeadlineExceeded`] (same contract as the cooperative
/// poll) and a breaker rejection that could not be degraded becomes
/// [`RottnestError::Overloaded`] (the query was refused, not corrupted —
/// retry after the cooldown). Every other error passes through.
fn map_health_error(err: RottnestError) -> RottnestError {
    match err.store_fault().map(StoreError::root) {
        Some(&StoreError::DeadlineExceeded {
            deadline_ms,
            now_ms,
        }) => RottnestError::DeadlineExceeded {
            deadline_ms,
            now_ms,
        },
        Some(StoreError::BreakerOpen {
            domain,
            retry_after_ms,
        }) => RottnestError::Overloaded {
            reason: format!("circuit breaker open for store domain '{domain}'"),
            retry_after_ms: *retry_after_ms,
        },
        _ => err,
    }
}

/// Number of data pages in column `col` across every row group — the
/// page count a brute-force whole-column read covers, reported as
/// page-cache admission bypasses.
fn column_page_count(meta: &rottnest_format::FileMeta, col: usize) -> u64 {
    meta.row_groups
        .iter()
        .map(|g| g.chunks[col].pages.len() as u64)
        .sum()
}

/// Byte-level substring containment (naive scan — patterns are short).
pub(crate) fn contains_sub(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() || needle.len() > haystack.len() {
        return needle.is_empty();
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}
