//! Rottnest: bolt-on search indexing for data lakes (§III–§IV of the paper).
//!
//! Rottnest maintains lightweight index files *next to* an existing data
//! lake, on the same object store, with a **consistent-on-demand** protocol:
//! indexing, searching, compaction and garbage collection all run
//! independently of the lake's own operations and of each other, requiring
//! nothing from the store beyond read-after-write consistency and
//! conditional PUT.
//!
//! The four client APIs mirror §IV:
//!
//! * [`Rottnest::index`] — plan (diff snapshot against the metadata table)
//!   → build an index file over the new Parquet files → upload → commit;
//! * [`Rottnest::search`] — plan (map snapshot files to covering index
//!   files) → query indexes in parallel (filtering postings not in the
//!   snapshot) → **in-situ probe** of data pages (applying deletion
//!   vectors) → brute-force scan of uncovered files when needed;
//! * [`Rottnest::compact`] — bin-pack small index files and merge them
//!   (trie merge / BWT interleave merge / IVF-PQ re-encoding);
//! * [`Rottnest::vacuum`] — greedy-cover selection of index files, metadata
//!   commit, then physical deletion of unreferenced index objects **older
//!   than the index timeout** (against the store's clock).
//!
//! Two invariants guarantee correctness (§IV-D), and [`invariants`] provides
//! executable checkers for both:
//!
//! * **Existence** — indexed files referenced in the metadata table are
//!   present in the bucket;
//! * **Consistency** — an index file correctly indexes its associated
//!   Parquet files if they still exist.
//!
//! # Example
//!
//! ```
//! use rottnest::{IndexKind, Query, Rottnest, RottnestConfig};
//! use rottnest_format::{ColumnData, DataType, Field, RecordBatch, Schema};
//! use rottnest_lake::{Table, TableConfig};
//! use rottnest_object_store::MemoryStore;
//!
//! let store = MemoryStore::unmetered();
//! let schema = Schema::new(vec![Field::new("body", DataType::Utf8)]);
//! let table = Table::create(store.as_ref(), "logs", &schema, TableConfig::default())?;
//! let docs = ColumnData::from_strings(["error: connection reset", "ok"]);
//! table.append(&RecordBatch::new(schema, vec![docs])?)?;
//!
//! let rot = Rottnest::new(store.as_ref(), "logs-idx", RottnestConfig::default());
//! rot.index(&table, IndexKind::Substring, "body")?;
//!
//! let snap = table.snapshot()?;
//! let out = rot.search(&table, &snap, "body",
//!     &Query::Substring { pattern: b"connection reset", k: 10 })?;
//! assert_eq!(out.matches.len(), 1);
//! assert_eq!(out.matches[0].row, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod build;
pub mod executor;
pub mod invariants;
pub mod meta;
pub mod probe;
pub mod query;
pub mod rottnest;

pub use executor::SearchConfig;
pub use meta::{IndexEntry, IndexKind, MetaTable};
pub use query::{Match, Query, SearchOutcome, SearchStats};
pub use rottnest::{Rottnest, RottnestConfig};

/// Errors raised by the Rottnest protocol layer.
#[derive(Debug)]
pub enum RottnestError {
    /// The index build was aborted (timeout, vanished input file, or too
    /// few rows per §IV-A footnote 2) and should be retried.
    Aborted(String),
    /// Malformed metadata or index bytes.
    Corrupt(String),
    /// The query is invalid for the target index (wrong type, bad pattern).
    BadQuery(String),
    /// Lake-layer failure.
    Lake(rottnest_lake::LakeError),
    /// Format-layer failure.
    Format(rottnest_format::FormatError),
    /// Store-layer failure.
    Store(rottnest_object_store::StoreError),
    /// Trie index failure.
    Trie(rottnest_trie::TrieError),
    /// Bloom index failure.
    Bloom(rottnest_bloom::BloomError),
    /// FM index failure.
    Fm(rottnest_fm::FmError),
    /// Vector index failure.
    Ivf(rottnest_ivfpq::IvfError),
    /// The query's deadline passed before the search finished. Raised
    /// cooperatively between index probes / brute-scanned files, so no
    /// partial results leak and no cache is left poisoned.
    DeadlineExceeded {
        /// Absolute deadline on the store clock (ms).
        deadline_ms: u64,
        /// Store-clock time at which the deadline was observed (ms).
        now_ms: u64,
    },
    /// The serving layer refused the query without running it: the queue
    /// was full, the tenant exceeded its budget, or the deadline could not
    /// be met even if admitted. Always raised *before* any store traffic.
    Overloaded {
        /// Which admission check rejected the query.
        reason: String,
        /// Client hint: earliest time a retry could be admitted (ms).
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for RottnestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RottnestError::Aborted(m) => write!(f, "index operation aborted: {m}"),
            RottnestError::Corrupt(m) => write!(f, "corrupt rottnest metadata: {m}"),
            RottnestError::BadQuery(m) => write!(f, "bad query: {m}"),
            RottnestError::Lake(e) => write!(f, "lake: {e}"),
            RottnestError::Format(e) => write!(f, "format: {e}"),
            RottnestError::Store(e) => write!(f, "store: {e}"),
            RottnestError::Trie(e) => write!(f, "trie: {e}"),
            RottnestError::Bloom(e) => write!(f, "bloom: {e}"),
            RottnestError::Fm(e) => write!(f, "fm: {e}"),
            RottnestError::Ivf(e) => write!(f, "ivfpq: {e}"),
            RottnestError::DeadlineExceeded {
                deadline_ms,
                now_ms,
            } => {
                write!(
                    f,
                    "deadline exceeded: now {now_ms}ms is past deadline {deadline_ms}ms"
                )
            }
            RottnestError::Overloaded {
                reason,
                retry_after_ms,
            } => {
                write!(f, "overloaded ({reason}); retry after {retry_after_ms}ms")
            }
        }
    }
}

impl RottnestError {
    /// Digs the underlying [`rottnest_object_store::StoreError`] out of the
    /// wrapper chain, however deep: the protocol layer sees store faults
    /// wrapped by the lake, format, and component layers. Returns `None`
    /// when the error did not originate at the object store.
    pub fn store_fault(&self) -> Option<&rottnest_object_store::StoreError> {
        use rottnest_component::ComponentError as CE;
        use rottnest_format::FormatError as FE;
        use rottnest_lake::LakeError as LE;
        match self {
            RottnestError::Store(e)
            | RottnestError::Lake(LE::Store(e))
            | RottnestError::Lake(LE::Format(FE::Store(e)))
            | RottnestError::Format(FE::Store(e))
            | RottnestError::Trie(rottnest_trie::TrieError::Component(CE::Store(e)))
            | RottnestError::Bloom(rottnest_bloom::BloomError::Component(CE::Store(e)))
            | RottnestError::Fm(rottnest_fm::FmError::Component(CE::Store(e)))
            | RottnestError::Ivf(rottnest_ivfpq::IvfError::Component(CE::Store(e))) => Some(e),
            _ => None,
        }
    }
}

impl std::error::Error for RottnestError {}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for RottnestError {
            fn from(e: $ty) -> Self {
                RottnestError::$variant(e)
            }
        }
    };
}

from_err!(Lake, rottnest_lake::LakeError);
from_err!(Format, rottnest_format::FormatError);
from_err!(Store, rottnest_object_store::StoreError);
from_err!(Trie, rottnest_trie::TrieError);
from_err!(Bloom, rottnest_bloom::BloomError);
from_err!(Fm, rottnest_fm::FmError);
from_err!(Ivf, rottnest_ivfpq::IvfError);

impl From<rottnest_compress::CompressError> for RottnestError {
    fn from(e: rottnest_compress::CompressError) -> Self {
        RottnestError::Corrupt(format!("varint: {e}"))
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, RottnestError>;
