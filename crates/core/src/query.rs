//! Query and result types for `Rottnest::search`.

use rottnest_ivfpq::SearchParams;

/// A search query against one indexed column.
///
/// Exact-match queries (`UuidEq`, `Substring`) return *any* `k` rows
/// satisfying the predicate; scoring queries (`VectorNn`) return the top-`k`
/// ranked rows and must consider every file (§IV-B footnote 3).
#[derive(Debug, Clone)]
pub enum Query<'q> {
    /// Exact equality on a fixed-length binary key column.
    UuidEq {
        /// The key to find.
        key: &'q [u8],
        /// Maximum matches to return.
        k: usize,
    },
    /// Exact substring containment on a text column.
    Substring {
        /// The needle (raw bytes; must not contain bytes ≤ 0x01).
        pattern: &'q [u8],
        /// Maximum matches to return.
        k: usize,
    },
    /// Approximate nearest neighbors on a vector column.
    VectorNn {
        /// The query vector.
        query: &'q [f32],
        /// Search-effort knobs (`k`, `nprobe`, `refine`).
        params: SearchParams,
    },
}

impl Query<'_> {
    /// The `k` of the query.
    pub fn k(&self) -> usize {
        match self {
            Query::UuidEq { k, .. } | Query::Substring { k, .. } => *k,
            Query::VectorNn { params, .. } => params.k,
        }
    }

    /// Whether the query is scoring (must rank all data) rather than exact.
    pub fn is_scoring(&self) -> bool {
        matches!(self, Query::VectorNn { .. })
    }
}

/// One matched row.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// Data file the row lives in.
    pub path: String,
    /// File-global row index.
    pub row: u64,
    /// Squared distance for scoring queries; `None` for exact queries.
    pub score: Option<f32>,
}

/// Where the work went during a search — drives the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Index files consulted.
    pub index_files_queried: u64,
    /// Candidate postings returned by indexes (before snapshot filtering).
    pub postings_returned: u64,
    /// Postings dropped because their file left the snapshot.
    pub postings_filtered: u64,
    /// Data pages probed in situ.
    pub pages_probed: u64,
    /// Files scanned by brute force (unindexed coverage).
    pub files_brute_scanned: u64,
    /// Rows rejected by deletion vectors.
    pub rows_deleted: u64,
    /// Index files whose reads still failed after exhausting the retry
    /// budget; their results were discarded and the search degraded.
    pub index_files_failed: u64,
    /// Data files reassigned to the brute-force path because every selected
    /// index covering them failed (graceful degradation — results stay
    /// correct, the scan just costs more).
    pub files_degraded: u64,
    /// Index components served from the process-wide component cache.
    pub cache_hits: u64,
    /// Index components that had to be fetched from the store.
    pub cache_misses: u64,
    /// GET bytes the component cache saved this search.
    pub cache_bytes_saved: u64,
    /// Data pages served from the process-wide page cache.
    pub page_cache_hits: u64,
    /// Data pages that had to be fetched from the store.
    pub page_cache_misses: u64,
    /// GET bytes the page cache saved this search.
    pub page_cache_bytes_saved: u64,
    /// One-shot page reads this search performed that deliberately
    /// bypassed page-cache admission (brute-force column scans), so scan
    /// traffic never evicts warm probe pages. Index builds account their
    /// bypassed downloads the same way on the store's counters.
    pub page_cache_bypassed: u64,
    /// Underlying reads this search avoided by joining another in-flight
    /// identical request (single-flight deduplication). Always 0 without
    /// concurrent identical traffic, so sequential runs are unchanged.
    pub dedup_hits: u64,
    /// Brute-force file scans skipped because a prior scan of the same
    /// (unchanged) file proved the probe matches nothing there.
    pub neg_cache_skips: u64,
    /// Queries the serving layer shed at admission (only the service-level
    /// aggregate ever sets this; a single search is 0 or was never run).
    pub queries_shed: u64,
    /// Searches aborted mid-flight by deadline expiry (service-level
    /// aggregate, like [`SearchStats::queries_shed`]).
    pub deadline_aborts: u64,
    /// Index probes that ran on two lanes because the remaining deadline
    /// budget fell below the hedge threshold (0 unless hedging is on).
    pub hedged_probes: u64,
    /// Hedged probes where the backup lane finished first and supplied
    /// the result used.
    pub hedge_wins: u64,
    /// Losing hedge lanes observed to have stopped at a cancellation
    /// point (their next store request) rather than running to completion.
    pub hedge_cancels: u64,
    /// The subset of [`SearchStats::hedged_probes`] that were brute-force
    /// file scans (per-file scan units hedge under the same EWMA trigger
    /// as index probes; 0 unless hedging is on).
    pub hedged_scans: u64,
    /// Searches that ran in brownout mode: the circuit breaker for the
    /// index-file failure domain was open, so index probes were skipped
    /// entirely and coverage fell back to brute-force scans + caches.
    /// Results stay correct; only the cost profile changes.
    pub brownout_queries: u64,
    /// Store operations this search never sent because the failure
    /// domain's circuit breaker rejected them at admission (from the
    /// store's health counters, like the `cache_*` fields).
    pub breaker_rejections: u64,
    /// Retries this search was denied because the process-wide retry
    /// budget was exhausted — the fleet-wide signal that correlated
    /// failure, not per-request noise, is underway.
    pub retry_tokens_denied: u64,
}

impl SearchStats {
    /// Adds `other` field-wise. The parallel executor's workers account
    /// into local stats; the merge absorbs them in input order so totals
    /// equal the sequential executor's exactly.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.index_files_queried += other.index_files_queried;
        self.postings_returned += other.postings_returned;
        self.postings_filtered += other.postings_filtered;
        self.pages_probed += other.pages_probed;
        self.files_brute_scanned += other.files_brute_scanned;
        self.rows_deleted += other.rows_deleted;
        self.index_files_failed += other.index_files_failed;
        self.files_degraded += other.files_degraded;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_bytes_saved += other.cache_bytes_saved;
        self.page_cache_hits += other.page_cache_hits;
        self.page_cache_misses += other.page_cache_misses;
        self.page_cache_bytes_saved += other.page_cache_bytes_saved;
        self.page_cache_bypassed += other.page_cache_bypassed;
        self.dedup_hits += other.dedup_hits;
        self.neg_cache_skips += other.neg_cache_skips;
        self.queries_shed += other.queries_shed;
        self.deadline_aborts += other.deadline_aborts;
        self.hedged_probes += other.hedged_probes;
        self.hedge_wins += other.hedge_wins;
        self.hedge_cancels += other.hedge_cancels;
        self.hedged_scans += other.hedged_scans;
        self.brownout_queries += other.brownout_queries;
        self.breaker_rejections += other.breaker_rejections;
        self.retry_tokens_denied += other.retry_tokens_denied;
    }
}

/// The result of a search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Matches, at most `k`; scoring queries sort ascending by score.
    pub matches: Vec<Match>,
    /// Work accounting.
    pub stats: SearchStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_k_and_kind() {
        let q = Query::UuidEq {
            key: b"0123456789abcdef",
            k: 5,
        };
        assert_eq!(q.k(), 5);
        assert!(!q.is_scoring());
        let q = Query::VectorNn {
            query: &[0.0; 4],
            params: SearchParams {
                k: 9,
                nprobe: 4,
                refine: 32,
            },
        };
        assert_eq!(q.k(), 9);
        assert!(q.is_scoring());
    }
}
