//! Index-file construction from Parquet files (§IV-A step 2).
//!
//! The builder downloads each new Parquet file once, walks its data pages,
//! and feeds the page-granular values into the kind-specific index builder
//! (trie / FM / IVF-PQ). Postings use index-local `file_id`s equal to the
//! file's ordinal in the coverage list.
//!
//! Download + decode fans out over a bounded scoped pool
//! ([`RottnestConfig::build_parallelism`] workers) while a **single
//! in-order consumer** on the caller's thread feeds the kind-specific
//! builder, so the produced index bytes are identical to the serial path
//! at every parallelism setting (`tests/tests/build_equivalence.rs` proves
//! it fault-free and under chaos). Builder downloads are one-shot reads:
//! they bypass the process-wide page cache entirely (counted via
//! [`ObjectStore::record_page_cache_bypass`]) so ingest traffic cannot
//! evict warm probe pages.

use bytes::Bytes;
use rottnest_bloom::BloomBuilder;
use rottnest_component::Posting;
use rottnest_fm::FmBuilder;
use rottnest_format::{ColumnData, FileMeta, PageTable, ValueRef};
use rottnest_ivfpq::{IvfPqBuilder, VecPosting};
use rottnest_lake::FileEntry;
use rottnest_object_store::{ordered_pipeline, ObjectStore};
use rottnest_trie::TrieBuilder;

use crate::meta::{FileCoverage, IndexKind};
use crate::rottnest::RottnestConfig;
use crate::{Result, RottnestError};

/// A fully decoded column page with its provenance.
pub(crate) struct DecodedPage {
    pub file_id: u32,
    pub page_id: u32,
    pub data: ColumnData,
}

/// Downloads `file` (one GET) and decodes every page of `column`.
///
/// This is a one-shot read: the whole file is fetched once, decoded, and
/// never consulted again, so the pages deliberately bypass page-cache
/// admission (recorded as [`StatsSnapshot::page_cache_bypassed`]
/// bookkeeping).
///
/// [`StatsSnapshot::page_cache_bypassed`]: rottnest_object_store::StatsSnapshot::page_cache_bypassed
pub(crate) fn decode_file_pages(
    store: &dyn ObjectStore,
    path: &str,
    column: &str,
    file_id: u32,
) -> Result<(FileMeta, PageTable, Vec<DecodedPage>)> {
    let bytes = store.get(path).map_err(|e| match e {
        rottnest_object_store::StoreError::NotFound(_) => {
            RottnestError::Aborted(format!("{path} vanished during indexing"))
        }
        other => RottnestError::Store(other),
    })?;
    let (meta, _) = FileMeta::from_tail(&bytes, bytes.len() as u64)?;
    let col = meta
        .schema
        .index_of(column)
        .ok_or_else(|| RottnestError::BadQuery(format!("no column {column} in {path}")))?;
    let data_type = meta.schema.fields()[col].data_type;
    let table = PageTable::from_meta(&meta, col)?;
    let mut pages = Vec::with_capacity(table.len());
    for (page_id, loc) in table.pages().iter().enumerate() {
        // A corrupt footer can describe pages beyond the object's actual
        // length; surface that as Corrupt instead of panicking on slice.
        let end = loc
            .offset
            .checked_add(loc.size)
            .filter(|&e| e <= bytes.len() as u64);
        let Some(end) = end else {
            return Err(RottnestError::Corrupt(format!(
                "page {page_id} of {path} spans {}..{} past file length {}",
                loc.offset,
                loc.offset.wrapping_add(loc.size),
                bytes.len()
            )));
        };
        let page_bytes = &bytes[loc.offset as usize..end as usize];
        let data = rottnest_format::page::decode_page(page_bytes, data_type)?;
        pages.push(DecodedPage {
            file_id,
            page_id: page_id as u32,
            data,
        });
    }
    store.record_page_cache_bypass(pages.len() as u64);
    Ok((meta, table, pages))
}

/// Fans `decode_file_pages` over `parallelism` workers and feeds each
/// file's pages to `feed` strictly in file order on the caller's thread,
/// returning the coverage records and total row count exactly as the
/// serial loop accumulated them. `check` runs before each file is
/// consumed so `index_timeout_ms` can abort mid-build.
fn for_each_decoded_file(
    store: &dyn ObjectStore,
    column: &str,
    files: &[FileEntry],
    parallelism: usize,
    check: &dyn Fn() -> Result<()>,
    mut feed: impl FnMut(&[DecodedPage]) -> Result<()>,
) -> Result<(Vec<FileCoverage>, u64)> {
    let mut coverage = Vec::with_capacity(files.len());
    let mut total_rows = 0u64;
    ordered_pipeline(
        parallelism,
        store.clock(),
        files,
        |file_id, entry| decode_file_pages(store, &entry.path, column, file_id as u32),
        |i, (_, table, pages)| {
            check()?;
            feed(&pages)?;
            let entry = &files[i];
            total_rows += entry.rows;
            coverage.push(FileCoverage {
                path: entry.path.clone(),
                rows: entry.rows,
                page_table: table,
            });
            Ok(())
        },
    )?;
    Ok((coverage, total_rows))
}

/// Builds one index file covering `files`, returning the file image and the
/// coverage records. `check` is polled between files (and builder bytes are
/// only assembled after every file passed it), so a timeout aborts
/// mid-build rather than after the whole pass.
pub(crate) fn build_index_file(
    store: &dyn ObjectStore,
    config: &RottnestConfig,
    kind: &IndexKind,
    column: &str,
    files: &[FileEntry],
    check: &dyn Fn() -> Result<()>,
) -> Result<(Bytes, Vec<FileCoverage>, u64)> {
    let parallelism = config.build_parallelism;

    match kind {
        IndexKind::Uuid { key_len } => {
            let mut builder = TrieBuilder::new(*key_len as usize)?;
            let (coverage, total_rows) =
                for_each_decoded_file(store, column, files, parallelism, check, |pages| {
                    for page in pages {
                        let mut last: Option<&[u8]> = None;
                        for i in 0..page.data.len() {
                            let key = match page.data.get(i) {
                                Some(ValueRef::Binary(b)) => b,
                                Some(ValueRef::Utf8(s)) => s.as_bytes(),
                                _ => {
                                    return Err(RottnestError::BadQuery(format!(
                                        "column {column} is not binary/utf8"
                                    )))
                                }
                            };
                            if key.len() != *key_len as usize {
                                return Err(RottnestError::BadQuery(format!(
                                    "key of {} bytes in {}-byte uuid index",
                                    key.len(),
                                    key_len
                                )));
                            }
                            // Consecutive duplicates within a page share one
                            // posting.
                            if last != Some(key) {
                                builder.add(key, Posting::new(page.file_id, page.page_id))?;
                                last = Some(key);
                            }
                        }
                    }
                    Ok(())
                })?;
            Ok((builder.finish(), coverage, total_rows))
        }
        IndexKind::Substring => {
            let mut builder =
                FmBuilder::with_options(config.fm.clone()).with_parallelism(parallelism);
            let (coverage, total_rows) =
                for_each_decoded_file(store, column, files, parallelism, check, |pages| {
                    for page in pages {
                        let posting = Posting::new(page.file_id, page.page_id);
                        for i in 0..page.data.len() {
                            match page.data.get(i) {
                                Some(ValueRef::Utf8(s)) => {
                                    builder.add_document(posting, s.as_bytes())
                                }
                                Some(ValueRef::Binary(b)) => builder.add_document(posting, b),
                                _ => {
                                    return Err(RottnestError::BadQuery(format!(
                                        "column {column} is not text"
                                    )))
                                }
                            }
                        }
                    }
                    Ok(())
                })?;
            Ok((builder.finish(), coverage, total_rows))
        }
        IndexKind::Vector { dim } => {
            let mut builder =
                IvfPqBuilder::new(*dim as usize, config.ivf.clone())?.with_parallelism(parallelism);
            let (coverage, total_rows) =
                for_each_decoded_file(store, column, files, parallelism, check, |pages| {
                    for page in pages {
                        for i in 0..page.data.len() {
                            match page.data.get(i) {
                                Some(ValueRef::VectorF32(v)) => builder.add(
                                    VecPosting::new(page.file_id, page.page_id, i as u32),
                                    v,
                                )?,
                                _ => {
                                    return Err(RottnestError::BadQuery(format!(
                                        "column {column} is not a vector column"
                                    )))
                                }
                            }
                        }
                    }
                    Ok(())
                })?;
            Ok((builder.finish()?, coverage, total_rows))
        }
        IndexKind::Bloom { key_len } => {
            let mut builder = BloomBuilder::new(*key_len as usize)?;
            let (coverage, total_rows) =
                for_each_decoded_file(store, column, files, parallelism, check, |pages| {
                    for page in pages {
                        let mut last: Option<&[u8]> = None;
                        for i in 0..page.data.len() {
                            let key = match page.data.get(i) {
                                Some(ValueRef::Binary(b)) => b,
                                Some(ValueRef::Utf8(s)) => s.as_bytes(),
                                _ => {
                                    return Err(RottnestError::BadQuery(format!(
                                        "column {column} is not binary/utf8"
                                    )))
                                }
                            };
                            if last != Some(key) {
                                builder.add(key, Posting::new(page.file_id, page.page_id))?;
                                last = Some(key);
                            }
                        }
                    }
                    Ok(())
                })?;
            Ok((builder.finish(), coverage, total_rows))
        }
    }
}
