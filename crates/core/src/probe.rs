//! In-situ probing of data pages (§IV-B step 3).
//!
//! Index postings are page-granular and may include false positives; the
//! prober downloads exactly the referenced pages (batched into one parallel
//! round trip through [`PageReader`]), re-evaluates the true predicate on
//! the decoded rows, and applies deletion vectors.

use rottnest_format::{DataType, PageCacheSession, PageReader, PageTable, ValueRef};
use rottnest_lake::{DeletionVector, Snapshot, Table};
use rottnest_object_store::FxHashMap;

use crate::query::{Match, SearchStats};
use crate::Result;

/// A page to probe: which file (by path + page table) and which page.
#[derive(Debug, Clone)]
pub(crate) struct PageRef<'p> {
    pub path: &'p str,
    pub table: &'p PageTable,
    pub page_id: u32,
}

/// Loads deletion vectors for every distinct path in `pages`.
pub(crate) fn load_dvs<'p>(
    table: &Table<'_>,
    snapshot: &Snapshot,
    paths: impl Iterator<Item = &'p str>,
) -> Result<FxHashMap<String, DeletionVector>> {
    let mut dvs = FxHashMap::default();
    for path in paths {
        if dvs.contains_key(path) {
            continue;
        }
        if let Some(entry) = snapshot.file(path) {
            if let Some(dv) = table.load_dv(entry)? {
                dvs.insert(path.to_string(), dv);
            }
        }
    }
    Ok(dvs)
}

/// Probes `pages` with `predicate`, returning matches (file-global row
/// indices) with deletion vectors applied. Updates `stats`.
///
/// Pages are fetched in **one** parallel round trip; `limit` truncates the
/// result but never the fetch (the batch is already in flight).
#[allow(clippy::too_many_arguments)]
pub(crate) fn probe_exact(
    table: &Table<'_>,
    snapshot: &Snapshot,
    pages: &[PageRef<'_>],
    data_type: DataType,
    predicate: &(dyn Fn(ValueRef<'_>) -> bool + Sync),
    limit: usize,
    session: Option<&PageCacheSession>,
    stats: &mut SearchStats,
) -> Result<Vec<Match>> {
    if pages.is_empty() {
        return Ok(Vec::new());
    }
    let dvs = load_dvs(table, snapshot, pages.iter().map(|p| p.path))?;

    let reader = match session {
        Some(s) => PageReader::cached(table.store(), s),
        None => PageReader::new(table.store()),
    };
    let requests: Vec<(&str, &PageTable, usize)> = pages
        .iter()
        .map(|p| (p.path, p.table, p.page_id as usize))
        .collect();
    let decoded = reader.read_pages(&requests, data_type)?;
    stats.pages_probed += pages.len() as u64;

    let mut matches = Vec::new();
    'outer: for (page, data) in pages.iter().zip(&decoded) {
        let first_row = page
            .table
            .page(page.page_id as usize)
            .map_or(0, |loc| loc.first_row);
        let dv = dvs.get(page.path);
        for i in 0..data.len() {
            let value = data.get(i).expect("in range");
            if !predicate(value) {
                continue;
            }
            let row = first_row + i as u64;
            if let Some(dv) = dv {
                if dv.contains(row) {
                    stats.rows_deleted += 1;
                    continue;
                }
            }
            matches.push(Match {
                path: page.path.to_string(),
                row,
                score: None,
            });
            if matches.len() >= limit {
                break 'outer;
            }
        }
    }
    Ok(matches)
}

/// Fetches exact vectors for refine candidates: one batched page fetch,
/// then row extraction. `resolve` maps an index-local file id to its
/// `(path, page_table)`.
pub(crate) fn fetch_vectors<'p>(
    store: &dyn rottnest_object_store::ObjectStore,
    dim: u32,
    candidates: &[rottnest_ivfpq::VecPosting],
    resolve: &dyn Fn(u32) -> Option<(&'p str, &'p PageTable)>,
    session: Option<&PageCacheSession>,
    stats_pages: &mut u64,
) -> std::result::Result<Vec<Vec<f32>>, rottnest_ivfpq::IvfError> {
    use rottnest_ivfpq::IvfError;

    // Group unique pages.
    let mut order: Vec<(&str, &PageTable, usize)> = Vec::new();
    let mut page_slot: FxHashMap<(u32, u32), usize> = FxHashMap::default();
    for c in candidates {
        let key = (c.posting.file, c.posting.page);
        if let std::collections::hash_map::Entry::Vacant(e) = page_slot.entry(key) {
            let (path, table) = resolve(c.posting.file)
                .ok_or_else(|| IvfError::BadInput(format!("unknown file id {}", c.posting.file)))?;
            e.insert(order.len());
            order.push((path, table, c.posting.page as usize));
        }
    }
    let reader = match session {
        Some(s) => PageReader::cached(store, s),
        None => PageReader::new(store),
    };
    let decoded = reader
        .read_pages(&order, DataType::VectorF32 { dim })
        .map_err(|e| IvfError::BadInput(format!("page fetch failed: {e}")))?;
    *stats_pages += order.len() as u64;

    candidates
        .iter()
        .map(|c| {
            let slot = page_slot[&(c.posting.file, c.posting.page)];
            match decoded[slot].get(c.row as usize) {
                Some(ValueRef::VectorF32(v)) => Ok(v.to_vec()),
                _ => Err(IvfError::BadInput(format!(
                    "row {} out of range in probed page",
                    c.row
                ))),
            }
        })
        .collect()
}
