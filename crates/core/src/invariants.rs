//! Executable checkers for the two protocol invariants (§IV-D).
//!
//! Tests (and operators debugging an index) call these after arbitrary
//! interleavings of `index` / `compact` / `vacuum` / lake operations /
//! injected crashes; both must hold at every quiescent point.

use rottnest_format::{ChunkReader, PageTable};
use rottnest_object_store::ObjectStore;

use crate::meta::MetaTable;
use crate::{Result, RottnestError};

/// **Existence** (Lemma 1): every index file referenced by the metadata
/// table is present in the bucket (`∀ f ∈ M : f ∈ B`).
pub fn verify_existence(store: &dyn ObjectStore, index_dir: &str) -> Result<()> {
    let meta = MetaTable::new(store, index_dir);
    for entry in meta.scan()? {
        store.head(&entry.path).map_err(|_| {
            RottnestError::Corrupt(format!(
                "existence violated: metadata references missing index file {}",
                entry.path
            ))
        })?;
    }
    Ok(())
}

/// **Consistency** (Lemma 2): an index file correctly indexes its associated
/// Parquet files *if they still exist*
/// (`∀ f ∈ B : ¬exists(d_f) ∨ indexes(f, d_f)`).
///
/// Structural form of `indexes(f, d_f)`: for every covered Parquet file
/// still present, the page table recorded at index time matches the file's
/// current footer and the row counts agree — sufficient because both index
/// files and data files are immutable (the paper's proof hinges on exactly
/// that immutability). Content-level equivalence is exercised separately by
/// the search-vs-brute-force integration tests.
pub fn verify_consistency(store: &dyn ObjectStore, index_dir: &str) -> Result<()> {
    let meta = MetaTable::new(store, index_dir);
    for entry in meta.scan()? {
        for cov in &entry.files {
            let Ok(reader) = ChunkReader::open(store, &cov.path) else {
                continue; // ¬exists(d_f): vacuously consistent.
            };
            let file_meta = reader.meta();
            if file_meta.num_rows != cov.rows {
                return Err(RottnestError::Corrupt(format!(
                    "consistency violated: {} records {} rows for {}, file has {}",
                    entry.path, cov.rows, cov.path, file_meta.num_rows
                )));
            }
            // The recorded page table must match some column of the footer
            // (the indexed column's layout is immutable).
            let matches_any = (0..file_meta.schema.len()).any(|c| {
                PageTable::from_meta(file_meta, c)
                    .map(|t| t == cov.page_table)
                    .unwrap_or(false)
            });
            if !matches_any {
                return Err(RottnestError::Corrupt(format!(
                    "consistency violated: page table of {} for {} matches no column",
                    entry.path, cov.path
                )));
            }
        }
    }
    Ok(())
}

/// Convenience: check both invariants.
pub fn verify_all(store: &dyn ObjectStore, index_dir: &str) -> Result<()> {
    verify_existence(store, index_dir)?;
    verify_consistency(store, index_dir)
}
