//! The parallel search executor: bounded fan-out with deterministic merge.
//!
//! Searches spend most of their time waiting on object-store round trips
//! (index component fetches, page probes, brute-force column reads), and
//! the units of work — index entries, uncovered files — are independent.
//! `parallel_map_io` fans them out over the process-wide work-stealing pool
//! ([`rottnest_object_store::WorkerPool`]) with at most `parallelism`-wide
//! concurrency and returns the results **in input order**, so callers can
//! merge sequentially and reproduce the single-threaded outcome byte for
//! byte: stats are summed in input order, the first hard error in input
//! order wins, and degradable failures degrade exactly the entries they
//! would have degraded sequentially. Because every search in the process
//! shares the one pool, the serving layer can admit far more concurrent
//! queries than there are OS threads — a query whose fan-out finds no free
//! worker simply runs its own units on the admitted thread (caller-runs),
//! so saturation degrades to sequential execution, never to deadlock.
//!
//! With `parallelism <= 1` (or a single item) the closure runs inline on
//! the caller's thread — no pool traffic, identical code path to the old
//! sequential executor.

/// Knobs for the parallel search executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Maximum worker threads a single search fans out over. `1` disables
    /// threading entirely (work runs inline on the calling thread).
    /// Results are identical at every setting; only wall-clock changes.
    pub parallelism: usize,
    /// Whether probe reads consult the process-wide data-page cache
    /// (`rottnest_format::PageCache`). Results are identical either way —
    /// pages are immutable and validator-fenced — only the GET count
    /// changes. On by default; benchmarks turn it off to measure the
    /// uncached path.
    pub page_cache: bool,
    /// Per-query time budget in store-clock milliseconds. `None` (the
    /// default) searches without a deadline, exactly as before. With a
    /// budget set, the executor polls the deadline between index probes
    /// and between brute-scanned files and aborts the whole search with
    /// [`crate::RottnestError::DeadlineExceeded`] — never partial results.
    pub timeout_ms: Option<u64>,
    /// Whether brute-force scans consult and feed the process-wide
    /// negative-scan cache ("probe P matched nothing in file F"), skipping
    /// re-scans of unchanged files that are known not to match. Results
    /// are identical either way; only the request count changes.
    pub neg_cache: bool,
    /// Whether deadline-pressured index probes are hedged: when a query's
    /// remaining budget drops below the EWMA-derived threshold (see
    /// [`SearchConfig::hedge_threshold_pct`]), the executor issues the
    /// same probe on a second lane and takes whichever finishes first,
    /// cancelling the loser at its next store request. Both lanes compute
    /// the identical probe over shared caches, so *matches* are
    /// bit-identical with hedging on or off; only latency and the
    /// hedge counters in `SearchStats` change. Off by default.
    pub hedge: bool,
    /// Hedge trigger, as a percentage of the probe-duration EWMA: a probe
    /// is hedged when `remaining_budget_ms < ewma_ms * pct / 100`. The
    /// default 300 hedges once fewer than three typical probes fit in the
    /// remaining budget. `u32::MAX` effectively hedges every probe (used
    /// by tests); `0` never triggers.
    pub hedge_threshold_pct: u32,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            parallelism: rottnest_object_store::default_parallelism(),
            page_cache: true,
            timeout_ms: None,
            neg_cache: true,
            hedge: false,
            hedge_threshold_pct: 300,
        }
    }
}

/// Applies `f` to every item of `items`, returning results in input order.
///
/// Work is claimed dynamically (an atomic cursor, not pre-chunked) so one
/// slow item — a large index file, a latency spike — does not idle the
/// other workers. A panicking closure propagates the panic to the caller.
/// This is the shared deterministic primitive the ingest pipeline also
/// builds on ([`rottnest_object_store::ordered_parallel_map_io`]).
///
/// Search fan-out closures all issue store requests, so when the store has
/// a simulated clock each item's modeled request latency is captured and
/// charged as the critical path of `parallelism` virtual connection lanes
/// instead of additively — benchmark latencies reflect the overlap a real
/// fan-out achieves. Results are identical at every setting (and with
/// `clock` absent); only simulated time differs.
pub(crate) fn parallel_map_io<T, R, F>(
    parallelism: usize,
    clock: Option<&rottnest_object_store::SimClock>,
    items: &[T],
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    rottnest_object_store::ordered_parallel_map_io(parallelism, clock, items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_parallelism() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for parallelism in [1, 2, 3, 8, 200] {
            let got = parallel_map_io(parallelism, None, &items, |_, &x| x * 3);
            assert_eq!(got, expect, "parallelism {parallelism}");
        }
    }

    #[test]
    fn passes_the_input_index() {
        let items = ["a", "b", "c"];
        let got = parallel_map_io(4, None, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let none: Vec<u8> = Vec::new();
        assert!(parallel_map_io(8, None, &none, |_, &x| x).is_empty());
        assert_eq!(parallel_map_io(8, None, &[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn default_parallelism_is_bounded() {
        let p = SearchConfig::default().parallelism;
        assert!((1..=8).contains(&p));
    }
}
