//! The Rottnest metadata table.
//!
//! "Rottnest keeps track of the list of Parquet files it has already indexed
//! in the Rottnest metadata table, which is implemented as a Delta Lake
//! table itself resident on object storage" (§IV-A). We reuse the lake's
//! transactional log machinery ([`rottnest_lake::TxLog`]) with Rottnest's
//! own record type: each committed entry adds and/or removes index-file
//! records atomically.
//!
//! Each record also embeds, per covered Parquet file, the **page table** of
//! the indexed column (§V-A) — everything a searcher needs to turn page
//! postings into single-page range GETs without ever reading a Parquet
//! footer.

use bytes::Bytes;
use rottnest_compress::varint;
use rottnest_format::PageTable;
use rottnest_lake::{LakeError, TxLog};
use rottnest_object_store::ObjectStore;

use crate::{Result, RottnestError};

/// Which index structure a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Binary trie over fixed-length keys (§V-C1).
    Uuid {
        /// Key length in bytes.
        key_len: u8,
    },
    /// FM-index for exact substring search (§V-C2).
    Substring,
    /// IVF-PQ vector index (§V-C3).
    Vector {
        /// Vector dimensionality.
        dim: u32,
    },
    /// Per-page Bloom filter over fixed-length keys (cheapest index; false
    /// positives filtered in situ, §IV-B).
    Bloom {
        /// Key length in bytes.
        key_len: u8,
    },
}

impl IndexKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            IndexKind::Uuid { key_len } => {
                out.push(0);
                out.push(*key_len);
            }
            IndexKind::Substring => out.push(1),
            IndexKind::Vector { dim } => {
                out.push(2);
                varint::write_u64(out, u64::from(*dim));
            }
            IndexKind::Bloom { key_len } => {
                out.push(3);
                out.push(*key_len);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| RottnestError::Corrupt("truncated index kind".into()))?;
        *pos += 1;
        Ok(match tag {
            0 => {
                let key_len = *buf
                    .get(*pos)
                    .ok_or_else(|| RottnestError::Corrupt("truncated key len".into()))?;
                *pos += 1;
                IndexKind::Uuid { key_len }
            }
            1 => IndexKind::Substring,
            2 => IndexKind::Vector {
                dim: varint::read_u64(buf, pos)? as u32,
            },
            3 => {
                let key_len = *buf
                    .get(*pos)
                    .ok_or_else(|| RottnestError::Corrupt("truncated key len".into()))?;
                *pos += 1;
                IndexKind::Bloom { key_len }
            }
            other => {
                return Err(RottnestError::Corrupt(format!(
                    "unknown index kind {other}"
                )))
            }
        })
    }

    /// Whether two kinds target the same index family and parameters.
    pub fn compatible(&self, other: &IndexKind) -> bool {
        self == other
    }
}

/// Coverage of one Parquet file by an index file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCoverage {
    /// Store key of the Parquet file.
    pub path: String,
    /// Rows indexed from it.
    pub rows: u64,
    /// Page table of the indexed column at index time.
    pub page_table: PageTable,
}

/// One index-file record in the metadata table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Unique id (derived from the commit version — unique by construction).
    pub id: u64,
    /// Index family and parameters.
    pub kind: IndexKind,
    /// Indexed column name.
    pub column: String,
    /// Store key of the index file.
    pub path: String,
    /// Index file size in bytes.
    pub size: u64,
    /// Total rows indexed.
    pub rows: u64,
    /// Commit timestamp (store clock, ms).
    pub created_ms: u64,
    /// Covered Parquet files, in the index's `file_id` order.
    pub files: Vec<FileCoverage>,
}

impl IndexEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.id);
        self.kind.encode(out);
        varint::write_str(out, &self.column);
        varint::write_str(out, &self.path);
        varint::write_u64(out, self.size);
        varint::write_u64(out, self.rows);
        varint::write_u64(out, self.created_ms);
        varint::write_usize(out, self.files.len());
        for f in &self.files {
            varint::write_str(out, &f.path);
            varint::write_u64(out, f.rows);
            f.page_table.encode(out);
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let id = varint::read_u64(buf, pos)?;
        let kind = IndexKind::decode(buf, pos)?;
        let column = varint::read_str(buf, pos)?;
        let path = varint::read_str(buf, pos)?;
        let size = varint::read_u64(buf, pos)?;
        let rows = varint::read_u64(buf, pos)?;
        let created_ms = varint::read_u64(buf, pos)?;
        let n = varint::read_usize(buf, pos)?;
        let mut files = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            files.push(FileCoverage {
                path: varint::read_str(buf, pos)?,
                rows: varint::read_u64(buf, pos)?,
                page_table: PageTable::decode(buf, pos)?,
            });
        }
        Ok(Self {
            id,
            kind,
            column,
            path,
            size,
            rows,
            created_ms,
            files,
        })
    }

    /// Paths of the covered Parquet files.
    pub fn covered_paths(&self) -> impl Iterator<Item = &str> {
        self.files.iter().map(|f| f.path.as_str())
    }
}

/// A metadata mutation; one commit may carry several.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaOp {
    /// Insert an index-file record.
    Add(Box<IndexEntry>),
    /// Delete the record with this id.
    Remove(u64),
}

impl MetaOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MetaOp::Add(e) => {
                out.push(0);
                e.encode(out);
            }
            MetaOp::Remove(id) => {
                out.push(1);
                varint::write_u64(out, *id);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| RottnestError::Corrupt("truncated meta op".into()))?;
        *pos += 1;
        Ok(match tag {
            0 => MetaOp::Add(Box::new(IndexEntry::decode(buf, pos)?)),
            1 => MetaOp::Remove(varint::read_u64(buf, pos)?),
            other => return Err(RottnestError::Corrupt(format!("unknown meta op {other}"))),
        })
    }
}

/// The transactional metadata table at `<index_dir>/meta/`.
pub struct MetaTable<'a> {
    store: &'a dyn ObjectStore,
    root: String,
}

impl<'a> MetaTable<'a> {
    /// Opens (lazily) the table under `index_dir`.
    pub fn new(store: &'a dyn ObjectStore, index_dir: &str) -> Self {
        Self {
            store,
            root: format!("{index_dir}/meta"),
        }
    }

    fn log(&self) -> TxLog<'a> {
        TxLog::new(self.store, self.root.clone())
    }

    /// Latest committed log version, or `None` for an empty table. Costs
    /// one LIST and no GETs — the cheap revalidation probe for plan
    /// caching: the log at a given version is immutable, so an unchanged
    /// version proves a previous `scan_at` result is still current.
    pub fn latest_version(&self) -> Result<Option<u64>> {
        self.log().latest_version().map_err(RottnestError::Lake)
    }

    /// Replays the log into the current set of records, keyed by id.
    pub fn scan(&self) -> Result<Vec<IndexEntry>> {
        match self.latest_version()? {
            None => Ok(Vec::new()),
            Some(latest) => self.scan_at(latest),
        }
    }

    /// Replays the log up to commit `version` into the record set as of
    /// that commit.
    pub fn scan_at(&self, version: u64) -> Result<Vec<IndexEntry>> {
        let log = self.log();
        let mut entries: std::collections::BTreeMap<u64, IndexEntry> = Default::default();
        for rec in log.read_until(version).map_err(RottnestError::Lake)? {
            let buf = rec.payload.as_ref();
            let mut pos = 0usize;
            while pos < buf.len() {
                match MetaOp::decode(buf, &mut pos)? {
                    MetaOp::Add(e) => {
                        entries.insert(e.id, *e);
                    }
                    MetaOp::Remove(id) => {
                        entries.remove(&id);
                    }
                }
            }
        }
        Ok(entries.into_values().collect())
    }

    /// Commits a batch of ops transactionally. `make_ops` receives the next
    /// commit version (used to derive fresh unique ids: `version * 1024 +
    /// ordinal`) and may be called again on version races.
    pub fn commit_with(
        &self,
        max_retries: u32,
        mut make_ops: impl FnMut(u64) -> Vec<MetaOp>,
    ) -> Result<u64> {
        let log = self.log();
        for _ in 0..=max_retries {
            let version = log
                .latest_version()
                .map_err(RottnestError::Lake)?
                .map_or(0, |v| v + 1);
            let ops = make_ops(version);
            let mut payload = Vec::new();
            for op in &ops {
                op.encode(&mut payload);
            }
            match log.try_commit_at(version, Bytes::from(payload)) {
                Ok(()) => return Ok(version),
                Err(LakeError::Conflict(_)) => continue,
                Err(e) => return Err(RottnestError::Lake(e)),
            }
        }
        Err(RottnestError::Corrupt(
            "metadata commit retries exhausted".into(),
        ))
    }

    /// Derives a unique record id from a commit version and ordinal.
    pub fn id_for(version: u64, ordinal: u64) -> u64 {
        version * 1024 + ordinal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rottnest_format::PageLocation;
    use rottnest_object_store::MemoryStore;

    fn entry(id: u64, path: &str, covered: &[&str]) -> IndexEntry {
        IndexEntry {
            id,
            kind: IndexKind::Uuid { key_len: 16 },
            column: "trace_id".into(),
            path: path.into(),
            size: 1234,
            rows: 10,
            created_ms: 99,
            files: covered
                .iter()
                .map(|p| FileCoverage {
                    path: p.to_string(),
                    rows: 5,
                    page_table: PageTable::from_locations(
                        vec![PageLocation {
                            offset: 4,
                            size: 100,
                            num_values: 5,
                            first_row: 0,
                        }],
                        5,
                    ),
                })
                .collect(),
        }
    }

    #[test]
    fn records_round_trip_through_commits() {
        let store = MemoryStore::unmetered();
        let meta = MetaTable::new(store.as_ref(), "idx");
        assert!(meta.scan().unwrap().is_empty());

        meta.commit_with(4, |v| {
            vec![MetaOp::Add(Box::new(entry(
                MetaTable::id_for(v, 0),
                "idx/a.index",
                &["t/a"],
            )))]
        })
        .unwrap();
        meta.commit_with(4, |v| {
            vec![MetaOp::Add(Box::new(entry(
                MetaTable::id_for(v, 0),
                "idx/b.index",
                &["t/b", "t/c"],
            )))]
        })
        .unwrap();

        let entries = meta.scan().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].path, "idx/a.index");
        assert_eq!(entries[1].files.len(), 2);
        assert_eq!(entries[1].files[0].page_table.len(), 1);
    }

    #[test]
    fn remove_and_add_in_one_commit_is_atomic() {
        let store = MemoryStore::unmetered();
        let meta = MetaTable::new(store.as_ref(), "idx");
        let id0 = meta
            .commit_with(4, |v| {
                vec![MetaOp::Add(Box::new(entry(
                    MetaTable::id_for(v, 0),
                    "a",
                    &["t/a"],
                )))]
            })
            .map(|v| MetaTable::id_for(v, 0))
            .unwrap();
        // Compaction-style swap.
        meta.commit_with(4, |v| {
            vec![
                MetaOp::Remove(id0),
                MetaOp::Add(Box::new(entry(
                    MetaTable::id_for(v, 0),
                    "merged",
                    &["t/a", "t/b"],
                ))),
            ]
        })
        .unwrap();
        let entries = meta.scan().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].path, "merged");
    }

    #[test]
    fn concurrent_commits_serialize() {
        let store = MemoryStore::unmetered();
        crossbeam::scope(|scope| {
            for t in 0..6 {
                let store = &store;
                scope.spawn(move |_| {
                    let meta = MetaTable::new(store.as_ref(), "idx");
                    meta.commit_with(32, |v| {
                        vec![MetaOp::Add(Box::new(entry(
                            MetaTable::id_for(v, 0),
                            &format!("idx/{t}.index"),
                            &["t/x"],
                        )))]
                    })
                    .unwrap();
                });
            }
        })
        .unwrap();
        let meta = MetaTable::new(store.as_ref(), "idx");
        let entries = meta.scan().unwrap();
        assert_eq!(entries.len(), 6);
        // Ids are unique.
        let ids: std::collections::BTreeSet<u64> = entries.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn kind_encoding_round_trip() {
        for kind in [
            IndexKind::Uuid { key_len: 16 },
            IndexKind::Substring,
            IndexKind::Vector { dim: 128 },
            IndexKind::Bloom { key_len: 16 },
        ] {
            let mut buf = Vec::new();
            kind.encode(&mut buf);
            let mut pos = 0;
            assert_eq!(IndexKind::decode(&buf, &mut pos).unwrap(), kind);
        }
    }
}
